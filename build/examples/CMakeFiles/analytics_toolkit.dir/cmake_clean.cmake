file(REMOVE_RECURSE
  "CMakeFiles/analytics_toolkit.dir/analytics_toolkit.cpp.o"
  "CMakeFiles/analytics_toolkit.dir/analytics_toolkit.cpp.o.d"
  "analytics_toolkit"
  "analytics_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
