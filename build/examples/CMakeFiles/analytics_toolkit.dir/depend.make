# Empty dependencies file for analytics_toolkit.
# This may be replaced when dependencies are built.
