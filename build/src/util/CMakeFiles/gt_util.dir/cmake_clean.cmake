file(REMOVE_RECURSE
  "CMakeFiles/gt_util.dir/env.cpp.o"
  "CMakeFiles/gt_util.dir/env.cpp.o.d"
  "CMakeFiles/gt_util.dir/table.cpp.o"
  "CMakeFiles/gt_util.dir/table.cpp.o.d"
  "CMakeFiles/gt_util.dir/thread_pool.cpp.o"
  "CMakeFiles/gt_util.dir/thread_pool.cpp.o.d"
  "libgt_util.a"
  "libgt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
