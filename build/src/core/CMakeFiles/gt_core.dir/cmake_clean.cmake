file(REMOVE_RECURSE
  "CMakeFiles/gt_core.dir/cal.cpp.o"
  "CMakeFiles/gt_core.dir/cal.cpp.o.d"
  "CMakeFiles/gt_core.dir/edgeblock_array.cpp.o"
  "CMakeFiles/gt_core.dir/edgeblock_array.cpp.o.d"
  "CMakeFiles/gt_core.dir/graphtinker.cpp.o"
  "CMakeFiles/gt_core.dir/graphtinker.cpp.o.d"
  "CMakeFiles/gt_core.dir/serialize.cpp.o"
  "CMakeFiles/gt_core.dir/serialize.cpp.o.d"
  "libgt_core.a"
  "libgt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
