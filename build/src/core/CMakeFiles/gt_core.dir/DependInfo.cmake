
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cal.cpp" "src/core/CMakeFiles/gt_core.dir/cal.cpp.o" "gcc" "src/core/CMakeFiles/gt_core.dir/cal.cpp.o.d"
  "/root/repo/src/core/edgeblock_array.cpp" "src/core/CMakeFiles/gt_core.dir/edgeblock_array.cpp.o" "gcc" "src/core/CMakeFiles/gt_core.dir/edgeblock_array.cpp.o.d"
  "/root/repo/src/core/graphtinker.cpp" "src/core/CMakeFiles/gt_core.dir/graphtinker.cpp.o" "gcc" "src/core/CMakeFiles/gt_core.dir/graphtinker.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/gt_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/gt_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
