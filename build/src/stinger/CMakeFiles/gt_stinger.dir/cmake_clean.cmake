file(REMOVE_RECURSE
  "CMakeFiles/gt_stinger.dir/stinger.cpp.o"
  "CMakeFiles/gt_stinger.dir/stinger.cpp.o.d"
  "libgt_stinger.a"
  "libgt_stinger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_stinger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
