file(REMOVE_RECURSE
  "libgt_stinger.a"
)
