# Empty compiler generated dependencies file for gt_stinger.
# This may be replaced when dependencies are built.
