# Empty compiler generated dependencies file for gt_gen.
# This may be replaced when dependencies are built.
