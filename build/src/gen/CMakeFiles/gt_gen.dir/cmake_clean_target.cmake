file(REMOVE_RECURSE
  "libgt_gen.a"
)
