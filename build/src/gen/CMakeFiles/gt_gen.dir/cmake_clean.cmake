file(REMOVE_RECURSE
  "CMakeFiles/gt_gen.dir/datasets.cpp.o"
  "CMakeFiles/gt_gen.dir/datasets.cpp.o.d"
  "CMakeFiles/gt_gen.dir/io.cpp.o"
  "CMakeFiles/gt_gen.dir/io.cpp.o.d"
  "CMakeFiles/gt_gen.dir/rmat.cpp.o"
  "CMakeFiles/gt_gen.dir/rmat.cpp.o.d"
  "libgt_gen.a"
  "libgt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
