file(REMOVE_RECURSE
  "CMakeFiles/gt_engine.dir/reference.cpp.o"
  "CMakeFiles/gt_engine.dir/reference.cpp.o.d"
  "libgt_engine.a"
  "libgt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
