# Empty compiler generated dependencies file for gt_engine.
# This may be replaced when dependencies are built.
