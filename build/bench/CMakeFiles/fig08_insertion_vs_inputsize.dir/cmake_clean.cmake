file(REMOVE_RECURSE
  "CMakeFiles/fig08_insertion_vs_inputsize.dir/fig08_insertion_vs_inputsize.cpp.o"
  "CMakeFiles/fig08_insertion_vs_inputsize.dir/fig08_insertion_vs_inputsize.cpp.o.d"
  "fig08_insertion_vs_inputsize"
  "fig08_insertion_vs_inputsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_insertion_vs_inputsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
