# Empty compiler generated dependencies file for fig08_insertion_vs_inputsize.
# This may be replaced when dependencies are built.
