# Empty dependencies file for ext_parallel_analytics.
# This may be replaced when dependencies are built.
