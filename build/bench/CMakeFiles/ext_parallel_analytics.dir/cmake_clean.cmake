file(REMOVE_RECURSE
  "CMakeFiles/ext_parallel_analytics.dir/ext_parallel_analytics.cpp.o"
  "CMakeFiles/ext_parallel_analytics.dir/ext_parallel_analytics.cpp.o.d"
  "ext_parallel_analytics"
  "ext_parallel_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallel_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
