# Empty dependencies file for fig19_pagewidth_ratio.
# This may be replaced when dependencies are built.
