file(REMOVE_RECURSE
  "CMakeFiles/fig19_pagewidth_ratio.dir/fig19_pagewidth_ratio.cpp.o"
  "CMakeFiles/fig19_pagewidth_ratio.dir/fig19_pagewidth_ratio.cpp.o.d"
  "fig19_pagewidth_ratio"
  "fig19_pagewidth_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_pagewidth_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
