# Empty dependencies file for ext_direction_bfs.
# This may be replaced when dependencies are built.
