file(REMOVE_RECURSE
  "CMakeFiles/ext_direction_bfs.dir/ext_direction_bfs.cpp.o"
  "CMakeFiles/ext_direction_bfs.dir/ext_direction_bfs.cpp.o.d"
  "ext_direction_bfs"
  "ext_direction_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_direction_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
