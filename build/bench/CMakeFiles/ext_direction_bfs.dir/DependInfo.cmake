
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_direction_bfs.cpp" "bench/CMakeFiles/ext_direction_bfs.dir/ext_direction_bfs.cpp.o" "gcc" "bench/CMakeFiles/ext_direction_bfs.dir/ext_direction_bfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/stinger/CMakeFiles/gt_stinger.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
