# Empty dependencies file for fig17_pagewidth_insert.
# This may be replaced when dependencies are built.
