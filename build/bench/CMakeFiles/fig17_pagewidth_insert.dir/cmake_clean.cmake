file(REMOVE_RECURSE
  "CMakeFiles/fig17_pagewidth_insert.dir/fig17_pagewidth_insert.cpp.o"
  "CMakeFiles/fig17_pagewidth_insert.dir/fig17_pagewidth_insert.cpp.o.d"
  "fig17_pagewidth_insert"
  "fig17_pagewidth_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pagewidth_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
