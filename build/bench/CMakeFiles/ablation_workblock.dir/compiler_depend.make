# Empty compiler generated dependencies file for ablation_workblock.
# This may be replaced when dependencies are built.
