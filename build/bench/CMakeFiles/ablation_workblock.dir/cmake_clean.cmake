file(REMOVE_RECURSE
  "CMakeFiles/ablation_workblock.dir/ablation_workblock.cpp.o"
  "CMakeFiles/ablation_workblock.dir/ablation_workblock.cpp.o.d"
  "ablation_workblock"
  "ablation_workblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
