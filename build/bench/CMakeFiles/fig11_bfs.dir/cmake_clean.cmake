file(REMOVE_RECURSE
  "CMakeFiles/fig11_bfs.dir/fig11_bfs.cpp.o"
  "CMakeFiles/fig11_bfs.dir/fig11_bfs.cpp.o.d"
  "fig11_bfs"
  "fig11_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
