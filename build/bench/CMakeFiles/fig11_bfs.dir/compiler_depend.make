# Empty compiler generated dependencies file for fig11_bfs.
# This may be replaced when dependencies are built.
