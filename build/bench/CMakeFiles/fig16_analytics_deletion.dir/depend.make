# Empty dependencies file for fig16_analytics_deletion.
# This may be replaced when dependencies are built.
