file(REMOVE_RECURSE
  "CMakeFiles/fig16_analytics_deletion.dir/fig16_analytics_deletion.cpp.o"
  "CMakeFiles/fig16_analytics_deletion.dir/fig16_analytics_deletion.cpp.o.d"
  "fig16_analytics_deletion"
  "fig16_analytics_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_analytics_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
