# Empty compiler generated dependencies file for fig09_insertion_datasets.
# This may be replaced when dependencies are built.
