file(REMOVE_RECURSE
  "CMakeFiles/fig09_insertion_datasets.dir/fig09_insertion_datasets.cpp.o"
  "CMakeFiles/fig09_insertion_datasets.dir/fig09_insertion_datasets.cpp.o.d"
  "fig09_insertion_datasets"
  "fig09_insertion_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_insertion_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
