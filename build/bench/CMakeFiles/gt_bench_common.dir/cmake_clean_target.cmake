file(REMOVE_RECURSE
  "libgt_bench_common.a"
)
