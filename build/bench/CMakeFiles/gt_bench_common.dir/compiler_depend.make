# Empty compiler generated dependencies file for gt_bench_common.
# This may be replaced when dependencies are built.
