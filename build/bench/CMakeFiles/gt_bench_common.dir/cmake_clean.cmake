file(REMOVE_RECURSE
  "CMakeFiles/gt_bench_common.dir/common/drivers.cpp.o"
  "CMakeFiles/gt_bench_common.dir/common/drivers.cpp.o.d"
  "CMakeFiles/gt_bench_common.dir/common/harness.cpp.o"
  "CMakeFiles/gt_bench_common.dir/common/harness.cpp.o.d"
  "libgt_bench_common.a"
  "libgt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
