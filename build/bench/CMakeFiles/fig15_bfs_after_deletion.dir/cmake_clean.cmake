file(REMOVE_RECURSE
  "CMakeFiles/fig15_bfs_after_deletion.dir/fig15_bfs_after_deletion.cpp.o"
  "CMakeFiles/fig15_bfs_after_deletion.dir/fig15_bfs_after_deletion.cpp.o.d"
  "fig15_bfs_after_deletion"
  "fig15_bfs_after_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bfs_after_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
