# Empty compiler generated dependencies file for fig15_bfs_after_deletion.
# This may be replaced when dependencies are built.
