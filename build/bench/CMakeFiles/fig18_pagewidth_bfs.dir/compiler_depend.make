# Empty compiler generated dependencies file for fig18_pagewidth_bfs.
# This may be replaced when dependencies are built.
