file(REMOVE_RECURSE
  "CMakeFiles/fig18_pagewidth_bfs.dir/fig18_pagewidth_bfs.cpp.o"
  "CMakeFiles/fig18_pagewidth_bfs.dir/fig18_pagewidth_bfs.cpp.o.d"
  "fig18_pagewidth_bfs"
  "fig18_pagewidth_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_pagewidth_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
