file(REMOVE_RECURSE
  "CMakeFiles/micro_rhh.dir/micro_rhh.cpp.o"
  "CMakeFiles/micro_rhh.dir/micro_rhh.cpp.o.d"
  "micro_rhh"
  "micro_rhh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rhh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
