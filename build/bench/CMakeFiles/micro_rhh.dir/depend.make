# Empty dependencies file for micro_rhh.
# This may be replaced when dependencies are built.
