# Empty compiler generated dependencies file for fig12_sssp.
# This may be replaced when dependencies are built.
