file(REMOVE_RECURSE
  "CMakeFiles/fig12_sssp.dir/fig12_sssp.cpp.o"
  "CMakeFiles/fig12_sssp.dir/fig12_sssp.cpp.o.d"
  "fig12_sssp"
  "fig12_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
