file(REMOVE_RECURSE
  "CMakeFiles/ablation_sgh_cal.dir/ablation_sgh_cal.cpp.o"
  "CMakeFiles/ablation_sgh_cal.dir/ablation_sgh_cal.cpp.o.d"
  "ablation_sgh_cal"
  "ablation_sgh_cal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sgh_cal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
