# Empty dependencies file for ablation_sgh_cal.
# This may be replaced when dependencies are built.
