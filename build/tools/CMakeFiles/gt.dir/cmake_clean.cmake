file(REMOVE_RECURSE
  "CMakeFiles/gt.dir/gt_cli.cpp.o"
  "CMakeFiles/gt.dir/gt_cli.cpp.o.d"
  "gt"
  "gt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
