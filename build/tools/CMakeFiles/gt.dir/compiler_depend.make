# Empty compiler generated dependencies file for gt.
# This may be replaced when dependencies are built.
