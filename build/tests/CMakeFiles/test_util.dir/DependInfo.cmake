
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/active_set_test.cpp" "tests/CMakeFiles/test_util.dir/util/active_set_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/active_set_test.cpp.o.d"
  "/root/repo/tests/util/misc_test.cpp" "tests/CMakeFiles/test_util.dir/util/misc_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/misc_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/stinger/CMakeFiles/gt_stinger.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gt_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
