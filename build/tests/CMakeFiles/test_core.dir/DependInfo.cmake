
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bidirectional_test.cpp" "tests/CMakeFiles/test_core.dir/core/bidirectional_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/bidirectional_test.cpp.o.d"
  "/root/repo/tests/core/cal_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/cal_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cal_property_test.cpp.o.d"
  "/root/repo/tests/core/cal_test.cpp" "tests/CMakeFiles/test_core.dir/core/cal_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cal_test.cpp.o.d"
  "/root/repo/tests/core/eba_property_test.cpp" "tests/CMakeFiles/test_core.dir/core/eba_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/eba_property_test.cpp.o.d"
  "/root/repo/tests/core/edgeblock_array_test.cpp" "tests/CMakeFiles/test_core.dir/core/edgeblock_array_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/edgeblock_array_test.cpp.o.d"
  "/root/repo/tests/core/graphtinker_test.cpp" "tests/CMakeFiles/test_core.dir/core/graphtinker_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/graphtinker_test.cpp.o.d"
  "/root/repo/tests/core/serialize_test.cpp" "tests/CMakeFiles/test_core.dir/core/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/serialize_test.cpp.o.d"
  "/root/repo/tests/core/sgh_test.cpp" "tests/CMakeFiles/test_core.dir/core/sgh_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sgh_test.cpp.o.d"
  "/root/repo/tests/core/sharded_test.cpp" "tests/CMakeFiles/test_core.dir/core/sharded_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sharded_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/stinger/CMakeFiles/gt_stinger.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gt_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
