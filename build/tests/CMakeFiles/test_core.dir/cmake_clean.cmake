file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/bidirectional_test.cpp.o"
  "CMakeFiles/test_core.dir/core/bidirectional_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cal_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cal_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cal_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cal_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/eba_property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/eba_property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/edgeblock_array_test.cpp.o"
  "CMakeFiles/test_core.dir/core/edgeblock_array_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/graphtinker_test.cpp.o"
  "CMakeFiles/test_core.dir/core/graphtinker_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/serialize_test.cpp.o"
  "CMakeFiles/test_core.dir/core/serialize_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sgh_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sgh_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sharded_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sharded_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
