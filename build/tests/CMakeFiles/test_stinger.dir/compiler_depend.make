# Empty compiler generated dependencies file for test_stinger.
# This may be replaced when dependencies are built.
