file(REMOVE_RECURSE
  "CMakeFiles/test_stinger.dir/stinger/stinger_test.cpp.o"
  "CMakeFiles/test_stinger.dir/stinger/stinger_test.cpp.o.d"
  "test_stinger"
  "test_stinger.pdb"
  "test_stinger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stinger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
