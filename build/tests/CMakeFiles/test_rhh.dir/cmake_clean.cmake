file(REMOVE_RECURSE
  "CMakeFiles/test_rhh.dir/rhh/robin_hood_map_test.cpp.o"
  "CMakeFiles/test_rhh.dir/rhh/robin_hood_map_test.cpp.o.d"
  "test_rhh"
  "test_rhh.pdb"
  "test_rhh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
