# Empty compiler generated dependencies file for test_rhh.
# This may be replaced when dependencies are built.
