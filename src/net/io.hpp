// Socket plumbing for gt::net — the only files in the tree allowed to call
// the raw socket syscalls (::send/::recv/::read/::write on fds that may be
// sockets); tools/gt_lint.py's raw-socket-io rule enforces that boundary.
// Everything here encodes the loop disciplines the rest of the server must
// not re-derive per call site:
//
//   - EINTR retries on every syscall (accept included),
//   - MSG_NOSIGNAL on sends so a vanished peer raises EPIPE instead of
//     delivering SIGPIPE and killing the daemon,
//   - a zero return from a *send* treated as an error, never progress
//     (the write_all spin bug from wal.cpp, fixed once, stays fixed here),
//   - EAGAIN surfaced as WouldBlock so nonblocking event loops can park,
//   - poll-based deadlines on every blocking operation (connect included):
//     a stalled or half-open peer costs at most the deadline, never a hung
//     client. tools/gt_lint.py's deadline-discipline rule keeps the rest
//     of src/net/ on these helpers with explicit deadlines.
//
// Fault injection: the gt::fail sites named net.* live here (short writes,
// EINTR storms, connection resets, stalled reads). They use the
// non-throwing GT_FAILPOINT_HIT form — these functions are noexcept, so a
// fired site mutates the syscall outcome (errno + return) instead of
// throwing.
#pragma once

#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.hpp"

namespace gt::net {

/// Absolute monotonic deadline for a blocking io operation. Default
/// construction means "no deadline" (legacy blocking behaviour); bounded
/// deadlines are enforced with poll(2) before every syscall that could
/// block, so expiry surfaces as StatusCode::TimedOut within one poll
/// granularity.
class Deadline {
public:
    constexpr Deadline() noexcept = default;

    /// A deadline `ms` from now (monotonic clock).
    [[nodiscard]] static Deadline after(std::chrono::milliseconds ms) noexcept {
        Deadline d;
        d.bounded_ = true;
        d.at_ = std::chrono::steady_clock::now() + ms;
        return d;
    }
    [[nodiscard]] static constexpr Deadline infinite() noexcept { return {}; }

    [[nodiscard]] bool bounded() const noexcept { return bounded_; }
    [[nodiscard]] bool expired() const noexcept {
        return bounded_ && std::chrono::steady_clock::now() >= at_;
    }
    /// Remaining time as a poll(2) timeout: -1 when unbounded, else >= 0
    /// milliseconds (rounded up so a 0.5ms remainder still waits).
    [[nodiscard]] int poll_timeout_ms() const noexcept {
        if (!bounded_) {
            return -1;
        }
        const auto left = std::chrono::ceil<std::chrono::milliseconds>(
            at_ - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
            return 0;
        }
        constexpr long kMaxPollMs = 1000L * 60 * 60 * 24;  // cap at a day
        return static_cast<int>(std::min<long>(left.count(), kMaxPollMs));
    }

private:
    std::chrono::steady_clock::time_point at_{};
    bool bounded_ = false;
};

/// Owning fd handle (close-on-destroy, move-only).
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) noexcept : fd_(fd) {}
    ~Fd() { reset(); }
    Fd(Fd&& other) noexcept : fd_(other.release()) {}
    Fd& operator=(Fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int release() noexcept {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// Outcome of one nonblocking transfer attempt.
enum class IoResult : std::uint8_t {
    Ok,          ///< made progress (`n` bytes)
    WouldBlock,  ///< EAGAIN/EWOULDBLOCK — park until the poller fires
    Closed,      ///< orderly peer shutdown (recv == 0) or EPIPE/ECONNRESET
    Error,       ///< anything else; errno holds the cause
};

/// One recv() attempt with EINTR retry. `n` receives the byte count on Ok.
[[nodiscard]] IoResult recv_some(int fd, unsigned char* buf, std::size_t cap,
                                 std::size_t& n) noexcept;

/// One send() attempt (MSG_NOSIGNAL) with EINTR retry; partial sends
/// return Ok with the short count. A zero return from send() on a nonempty
/// buffer is reported as Error with errno latched (ENOSPC-style refusal to
/// spin), mirroring the WAL's write_all fix.
[[nodiscard]] IoResult send_some(int fd, const unsigned char* buf,
                                 std::size_t len, std::size_t& n) noexcept;

/// Blocking full-buffer send for the client side: loops send_some until
/// done, polling for writability when a bounded deadline is set. Closed
/// peers surface as IoError with an EPIPE message; deadline expiry as
/// TimedOut (the peer may have received a prefix — the connection is no
/// longer frame-aligned and must be closed).
[[nodiscard]] Status send_all(int fd, std::span<const unsigned char> buf,
                              Deadline deadline = {}) noexcept;

/// Blocking full-buffer receive for the client side; an early EOF is an
/// IoError ("connection closed mid-frame"), matching read_exact's Short.
/// A bounded deadline turns a stalled peer into TimedOut.
[[nodiscard]] Status recv_exact(int fd, unsigned char* buf, std::size_t len,
                                Deadline deadline = {}) noexcept;

/// Polls `fd` for readability until data arrives, EOF, or the deadline.
/// Ok = readable now (recv will not block), TimedOut = deadline expired.
/// The frame readers use it to bound the wait *before* committing to a
/// recv_exact of a whole header.
[[nodiscard]] Status wait_readable(int fd, Deadline deadline) noexcept;

/// accept(2) with EINTR retry. Returns the fd, or -1 with errno set
/// (EAGAIN when the nonblocking backlog is empty).
[[nodiscard]] int accept_retry(int listen_fd) noexcept;

[[nodiscard]] Status set_nonblocking(int fd) noexcept;

/// Binds + listens on host:port (TCP, SO_REUSEADDR). `port` 0 picks an
/// ephemeral port; `bound_port` receives the actual one.
[[nodiscard]] Status tcp_listen(const std::string& host, std::uint16_t port,
                                Fd& out, std::uint16_t& bound_port);

/// TCP connect (TCP_NODELAY — the protocol is request/response with small
/// frames, Nagle only adds latency). With a bounded deadline the connect
/// runs nonblocking + poll + SO_ERROR, so an unresponsive host costs the
/// deadline, not the kernel's SYN-retry minutes; the returned fd is back
/// in blocking mode either way.
[[nodiscard]] Status tcp_connect(const std::string& host, std::uint16_t port,
                                 Fd& out, Deadline deadline = {});

/// Nonblocking close-on-exec self-pipe: the event loop's wake/stop channel.
[[nodiscard]] Status make_wake_pipe(Fd& read_end, Fd& write_end);

/// Best-effort single-byte write to the pipe. Async-signal-safe — this is
/// what a SIGINT handler calls; a full pipe already means a wake is
/// pending, so the dropped byte is harmless.
void wake(int write_fd) noexcept;

/// Drains all pending wake bytes (nonblocking read end).
void drain_wake(int read_fd) noexcept;

}  // namespace gt::net
