// Socket plumbing for gt::net — the only files in the tree allowed to call
// the raw socket syscalls (::send/::recv/::read/::write on fds that may be
// sockets); tools/gt_lint.py's raw-socket-io rule enforces that boundary.
// Everything here encodes the loop disciplines the rest of the server must
// not re-derive per call site:
//
//   - EINTR retries on every syscall (accept included),
//   - MSG_NOSIGNAL on sends so a vanished peer raises EPIPE instead of
//     delivering SIGPIPE and killing the daemon,
//   - a zero return from a *send* treated as an error, never progress
//     (the write_all spin bug from wal.cpp, fixed once, stays fixed here),
//   - EAGAIN surfaced as WouldBlock so nonblocking event loops can park.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.hpp"

namespace gt::net {

/// Owning fd handle (close-on-destroy, move-only).
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) noexcept : fd_(fd) {}
    ~Fd() { reset(); }
    Fd(Fd&& other) noexcept : fd_(other.release()) {}
    Fd& operator=(Fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int release() noexcept {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// Outcome of one nonblocking transfer attempt.
enum class IoResult : std::uint8_t {
    Ok,          ///< made progress (`n` bytes)
    WouldBlock,  ///< EAGAIN/EWOULDBLOCK — park until the poller fires
    Closed,      ///< orderly peer shutdown (recv == 0) or EPIPE/ECONNRESET
    Error,       ///< anything else; errno holds the cause
};

/// One recv() attempt with EINTR retry. `n` receives the byte count on Ok.
[[nodiscard]] IoResult recv_some(int fd, unsigned char* buf, std::size_t cap,
                                 std::size_t& n) noexcept;

/// One send() attempt (MSG_NOSIGNAL) with EINTR retry; partial sends
/// return Ok with the short count. A zero return from send() on a nonempty
/// buffer is reported as Error with errno latched (ENOSPC-style refusal to
/// spin), mirroring the WAL's write_all fix.
[[nodiscard]] IoResult send_some(int fd, const unsigned char* buf,
                                 std::size_t len, std::size_t& n) noexcept;

/// Blocking full-buffer send for the client side: loops send_some until
/// done. Closed peers surface as IoError with an EPIPE message.
[[nodiscard]] Status send_all(int fd,
                              std::span<const unsigned char> buf) noexcept;

/// Blocking full-buffer receive for the client side; an early EOF is an
/// IoError ("connection closed mid-frame"), matching read_exact's Short.
[[nodiscard]] Status recv_exact(int fd, unsigned char* buf,
                                std::size_t len) noexcept;

/// accept(2) with EINTR retry. Returns the fd, or -1 with errno set
/// (EAGAIN when the nonblocking backlog is empty).
[[nodiscard]] int accept_retry(int listen_fd) noexcept;

[[nodiscard]] Status set_nonblocking(int fd) noexcept;

/// Binds + listens on host:port (TCP, SO_REUSEADDR). `port` 0 picks an
/// ephemeral port; `bound_port` receives the actual one.
[[nodiscard]] Status tcp_listen(const std::string& host, std::uint16_t port,
                                Fd& out, std::uint16_t& bound_port);

/// Blocking TCP connect (TCP_NODELAY — the protocol is request/response
/// with small frames, Nagle only adds latency).
[[nodiscard]] Status tcp_connect(const std::string& host, std::uint16_t port,
                                 Fd& out);

/// Nonblocking close-on-exec self-pipe: the event loop's wake/stop channel.
[[nodiscard]] Status make_wake_pipe(Fd& read_end, Fd& write_end);

/// Best-effort single-byte write to the pipe. Async-signal-safe — this is
/// what a SIGINT handler calls; a full pipe already means a wake is
/// pending, so the dropped byte is harmless.
void wake(int write_fd) noexcept;

/// Drains all pending wake bytes (nonblocking read end).
void drain_wake(int read_fd) noexcept;

}  // namespace gt::net
