#include "net/protocol.hpp"

#include <cstring>

#include "util/crc32c.hpp"

namespace gt::net {

namespace {

/// crc32c over (len, version, type, flags, request_id, payload) — the WAL's
/// init/final-xor convention so the two formats share one checksum idiom.
std::uint32_t frame_crc(std::uint32_t len, std::uint8_t version,
                        std::uint8_t type, std::uint16_t flags,
                        std::uint64_t request_id, const void* payload) {
    std::uint32_t crc = 0xFFFFFFFFU;
    crc = util::crc32c_extend(crc, &len, sizeof(len));
    crc = util::crc32c_extend(crc, &version, sizeof(version));
    crc = util::crc32c_extend(crc, &type, sizeof(type));
    crc = util::crc32c_extend(crc, &flags, sizeof(flags));
    crc = util::crc32c_extend(crc, &request_id, sizeof(request_id));
    crc = util::crc32c_extend(crc, payload, len);
    return crc ^ 0xFFFFFFFFU;
}

}  // namespace

WireCode wire_code_of(const Status& st) noexcept {
    switch (st.code) {
        case StatusCode::Ok:
            return WireCode::Ok;
        case StatusCode::InvalidArgument:
            return WireCode::InvalidArgument;
        case StatusCode::ResourceExhausted:
            return WireCode::ResourceExhausted;
        case StatusCode::FaultInjected:
            return WireCode::FaultInjected;
        case StatusCode::IoError:
            return WireCode::IoError;
        case StatusCode::WouldDeadlock:
            return WireCode::Busy;  // transient ordering conflict: retry
        case StatusCode::WalBadMagic:
        case StatusCode::WalBadVersion:
        case StatusCode::WalTruncated:
        case StatusCode::WalChecksum:
        case StatusCode::WalBadRecord:
        case StatusCode::WalBadSequence:
        case StatusCode::WalTornBatch:
        case StatusCode::WalClosed:
            return WireCode::WalError;
        default:
            return WireCode::Internal;
    }
}

Status status_of_wire(WireCode code, std::string message) {
    const auto detail = static_cast<std::uint64_t>(code);
    switch (code) {
        case WireCode::Ok:
            return Status::success();
        case WireCode::InvalidArgument:
        case WireCode::UnknownGraph:
        case WireCode::BadGraphName:
        case WireCode::UnknownType:
        case WireCode::BadPayload:
        case WireCode::SeqUnavailable:
        case WireCode::ReadOnly:
        case WireCode::StaleTerm:
            return Status{StatusCode::InvalidArgument, std::move(message),
                          detail};
        case WireCode::Busy:
        case WireCode::ShuttingDown:
        case WireCode::ResourceExhausted:
            return Status{StatusCode::ResourceExhausted, std::move(message),
                          detail};
        case WireCode::FaultInjected:
            return Status{StatusCode::FaultInjected, std::move(message),
                          detail};
        case WireCode::WalError:
            return Status{StatusCode::WalClosed, std::move(message), detail};
        default:
            return Status{StatusCode::IoError, std::move(message), detail};
    }
}

void encode_frame(std::vector<unsigned char>& out, std::uint8_t type,
                  std::uint64_t request_id,
                  std::span<const unsigned char> payload,
                  std::uint16_t flags) {
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = frame_crc(len, kProtoVersion, type, flags,
                                        request_id, payload.data());
    const auto append = [&out](const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        out.insert(out.end(), b, b + n);
    };
    out.reserve(out.size() + kFrameHeaderBytes + payload.size());
    append(&crc, sizeof(crc));
    append(&len, sizeof(len));
    append(&kProtoVersion, sizeof(kProtoVersion));
    append(&type, sizeof(type));
    append(&flags, sizeof(flags));
    append(&request_id, sizeof(request_id));
    append(payload.data(), payload.size());
}

DecodeResult decode_frame(std::span<const unsigned char> buf, Frame& out,
                          std::size_t& consumed, DecodeError& err) {
    consumed = 0;
    if (buf.size() < kFrameHeaderBytes) {
        return DecodeResult::NeedMore;
    }
    std::uint32_t crc = 0;
    std::uint32_t len = 0;
    std::memcpy(&crc, buf.data(), sizeof(crc));
    std::memcpy(&len, buf.data() + 4, sizeof(len));
    std::memcpy(&out.version, buf.data() + 8, sizeof(out.version));
    std::memcpy(&out.type, buf.data() + 9, sizeof(out.type));
    std::memcpy(&out.flags, buf.data() + 10, sizeof(out.flags));
    std::memcpy(&out.request_id, buf.data() + 12, sizeof(out.request_id));

    // Bound the length *before* waiting for the payload: a hostile prefix
    // must not make the reader buffer gigabytes hoping the frame completes.
    if (len > kMaxFramePayload) {
        err = DecodeError{WireCode::TooLarge,
                          "frame payload of " + std::to_string(len) +
                              " bytes exceeds the " +
                              std::to_string(kMaxFramePayload) + " cap"};
        return DecodeResult::Bad;
    }
    if (buf.size() < kFrameHeaderBytes + len) {
        return DecodeResult::NeedMore;
    }
    const unsigned char* payload = buf.data() + kFrameHeaderBytes;
    if (crc != frame_crc(len, out.version, out.type, out.flags,
                         out.request_id, payload)) {
        // After a checksum failure the stream has no trustworthy record
        // boundary left — resynchronizing would mean guessing. Close.
        err = DecodeError{WireCode::BadFrame, "frame checksum mismatch"};
        return DecodeResult::Bad;
    }
    if (out.version != kProtoVersion) {
        err = DecodeError{WireCode::UnsupportedVersion,
                          "protocol version " +
                              std::to_string(out.version) +
                              " (speaking " +
                              std::to_string(kProtoVersion) + ")"};
        return DecodeResult::Bad;
    }
    out.payload.assign(payload, payload + len);
    consumed = kFrameHeaderBytes + len;
    return DecodeResult::Ok;
}

bool validate_graph_name(std::string_view name) noexcept {
    if (name.empty() || name.size() > kMaxGraphName) {
        return false;
    }
    const auto alnum = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9');
    };
    if (!alnum(name.front())) {
        return false;
    }
    for (const char c : name) {
        if (!alnum(c) && c != '_' && c != '-') {
            return false;
        }
    }
    return true;
}

}  // namespace gt::net
