#include "net/replica.hpp"

#include <algorithm>
#include <cstring>

#include "core/graphtinker.hpp"
#include "recover/durable.hpp"
#include "recover/term.hpp"
#include "util/mutex.hpp"

namespace gt::net {

Status Replicator::start(const ReplicatorOptions& opts,
                         Server::LocalGraph local) {
    if (started_) {
        return Status{StatusCode::InvalidArgument, "replicator already started"};
    }
    if (local.store == nullptr || local.lock == nullptr ||
        !local.store->is_open()) {
        return Status{StatusCode::InvalidArgument,
                      "replicator needs an open local store"};
    }
    if (!local.store->wal().is_open() ||
        local.store->wal().mode() == recover::DurabilityMode::Off) {
        return Status{StatusCode::InvalidArgument,
                      "replication requires a durable local WAL (the shipped "
                      "records are mirrored into it)"};
    }
    local_ = local;
    report_to_ = opts.server;
    graph_ = opts.graph;
    lag_gauge_ = &local_.store->graph().obs().gauge("replication.lag_seqs");

    // The local sidecar term fences the subscription: a primary whose term
    // is below ours (we outlived a promotion it missed) answers StaleTerm
    // instead of feeding us a forked history.
    if (Status st = recover::load_term(local_.store->dir(), term_);
        !st.ok()) {
        return st;
    }
    client_.observe_term(term_);
    // Resume/failover logic lives up here, not in the client: one attempt
    // per call, so a dead primary surfaces immediately.
    client_.config().max_attempts = 1;

    const std::uint64_t base = local_.store->wal().durable_seq();
    applier_ = std::make_unique<recover::WalApplier>(local_.store->graph(),
                                                     base);
    // The apply path must not tee back into the WAL we mirror into — the
    // follower's log would re-frame (and re-number) the primary's batches.
    local_.store->graph().attach_update_log(nullptr);
    started_ = true;  // from here on, close() must undo the detach

    Status st = client_.connect(opts.host, opts.port);
    if (st.ok()) {
        st = client_.open(opts.graph, remote_, opts.durability);
    }
    if (st.ok()) {
        st = remote_.subscribe(base, sub_);
    }
    if (!st.ok()) {
        close();
        return st;
    }
    if (sub_.term > term_) {
        // Adopt the upstream's newer history marker durably before
        // applying anything shipped under it.
        if (Status ts = recover::store_term(local_.store->dir(), sub_.term);
            !ts.ok()) {
            close();
            return ts;
        }
        term_ = sub_.term;
    }
    primary_seq_ = std::max(sub_.primary_seq, base);
    lag_gauge_->set(static_cast<double>(lag_seqs()));
    return Status::success();
}

Status Replicator::apply_frame(const Frame& f) {
    // Ship payload: u64 term | u64 primary_seq | u32 count | count x
    // (u64 seq | u8 type | u32 len | len bytes). PayloadReader has no
    // skip/raw-bytes cursor, so parse by hand.
    const unsigned char* p = f.payload.data();
    std::size_t left = f.payload.size();
    const auto take = [&](void* out, std::size_t n) {
        if (left < n) {
            return false;
        }
        std::memcpy(out, p, n);
        p += n;
        left -= n;
        return true;
    };
    std::uint64_t ship_term = 0;
    std::uint64_t primary_seq = 0;
    std::uint32_t count = 0;
    if (!take(&ship_term, sizeof(ship_term)) ||
        !take(&primary_seq, sizeof(primary_seq)) ||
        !take(&count, sizeof(count))) {
        return Status{StatusCode::IoError, "malformed ship frame header"};
    }
    if (ship_term < term_) {
        // An upstream from an older history (a resurrected primary this
        // replica has already outlived) must never feed us: abort the
        // stream instead of forking the log.
        return status_of_wire(
            WireCode::StaleTerm,
            "ship frame carries term " + std::to_string(ship_term) +
                " but this replica is at term " + std::to_string(term_));
    }
    if (ship_term > term_) {
        // The chain above us promoted: adopt the new term durably before
        // appending anything recorded under it.
        if (Status st = recover::store_term(local_.store->dir(), ship_term);
            !st.ok()) {
            return st;
        }
        term_ = ship_term;
        client_.observe_term(ship_term);
    }
    recover::WalWriter& wal = local_.store->wal();
    for (std::uint32_t i = 0; i < count; ++i) {
        recover::WalRecord rec;
        std::uint8_t type8 = 0;
        std::uint32_t len = 0;
        if (!take(&rec.seq, sizeof(rec.seq)) || !take(&type8, sizeof(type8)) ||
            !take(&len, sizeof(len)) || left < len) {
            return Status{StatusCode::IoError, "malformed ship frame record"};
        }
        rec.type = static_cast<recover::WalRecordType>(type8);
        rec.payload.assign(p, p + len);
        p += len;
        left -= len;
        if (rec.seq <= wal.durable_seq()) {
            continue;  // re-shipped prefix after a re-subscribe overlap
        }
        const bool closes_frame =
            rec.type == recover::WalRecordType::BatchCommit ||
            rec.type == recover::WalRecordType::SoloInsert ||
            rec.type == recover::WalRecordType::SoloDelete;
        if (rec.type == recover::WalRecordType::BatchBegin) {
            frame_buf_.clear();
        }
        frame_buf_.push_back(std::move(rec));
        if (!closes_frame) {
            continue;
        }
        // Durable first, then applied: a crash between the two replays the
        // frame from our own WAL on restart, which is idempotent; the
        // reverse order could ack state we'd lose. Both run under the
        // exclusive state lock — the serving side tails this WAL under the
        // shared lock (Subscribe/pump on a chained replica), so appends
        // must never interleave with its reads.
        {
            gt::LockGuard<gt::SharedMutex> lk(*local_.lock);
            Status st = wal.append_frame(frame_buf_);
            if (!st.ok()) {
                return st;
            }
            for (const recover::WalRecord& r : frame_buf_) {
                st = applier_->apply(r);
                if (!st.ok()) {
                    return st;
                }
            }
        }
        frame_buf_.clear();
    }
    if (left != 0) {
        return Status{StatusCode::IoError, "trailing bytes in ship frame"};
    }
    primary_seq_ = std::max(primary_seq_, primary_seq);
    lag_gauge_->set(static_cast<double>(lag_seqs()));
    if (report_to_ != nullptr) {
        report_to_->set_replication_lag(lag_seqs());
        // Chain link: records we just mirrored arrived outside the serving
        // side's request path, so its subscribers only see them if we kick
        // the owner-loop pump ourselves.
        report_to_->pump_graph(graph_);
    }
    return remote_.send_ack(applied_seq());
}

Status Replicator::pump_once(std::int64_t timeout_ms) {
    if (!started_) {
        return Status{StatusCode::InvalidArgument, "replicator not started"};
    }
    Frame f;
    Status st = client_.recv_shipment(sub_.id, f, timeout_ms);
    if (!st.ok()) {
        return st;
    }
    return apply_frame(f);
}

Status Replicator::pump_until_current() {
    while (lag_seqs() > 0) {
        Status st = pump_once();
        if (!st.ok()) {
            return st;
        }
    }
    return Status::success();
}

Status Replicator::run(std::int64_t heartbeat_ms) {
    for (;;) {
        Status st = pump_once(heartbeat_ms > 0 ? heartbeat_ms : -1);
        if (st.ok()) {
            continue;
        }
        if (heartbeat_ms > 0 && st.code == StatusCode::TimedOut) {
            // Quiet stream: an idle primary and a dead one look identical
            // from here, so probe with a ping on the same connection —
            // replies interleave with stream frames via client buffering.
            const std::uint32_t saved = client_.config().op_timeout_ms;
            client_.config().op_timeout_ms =
                static_cast<std::uint32_t>(heartbeat_ms);
            const Status alive = client_.ping();
            client_.config().op_timeout_ms = saved;
            if (alive.ok()) {
                continue;
            }
            return alive;  // the failover trigger
        }
        return st;
    }
}

void Replicator::close() noexcept {
    if (!started_) {
        return;
    }
    started_ = false;
    local_.store->graph().attach_update_log(&local_.store->wal());
    applier_.reset();
    frame_buf_.clear();
    client_.close();
    remote_ = RemoteGraph{};
    sub_ = Subscription{};
}

std::uint64_t Replicator::applied_seq() const noexcept {
    return started_ ? local_.store->wal().durable_seq() : 0;
}

std::uint64_t Replicator::lag_seqs() const noexcept {
    const std::uint64_t applied = applied_seq();
    return primary_seq_ > applied ? primary_seq_ - applied : 0;
}

}  // namespace gt::net
