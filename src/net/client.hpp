// Blocking client for the gt.net.v1 protocol — what the CLI's `remote-*`
// subcommands, the tests, and bench/ext_server_echo talk through.
//
// Two layers:
//   - raw pipelining: send_request() stamps a fresh request id and writes
//     one frame; recv_reply() blocks for the next response frame and pairs
//     it by id. Callers may stack N send_request()s before draining — that
//     is the protocol's throughput lever.
//   - typed wrappers (ping/open_graph/insert_batch/.../stats_json): one
//     request, one reply, wire errors mapped back into Status via
//     status_of_wire (the original WireCode rides in Status::detail).
//
// Not thread-safe: one Client per thread, like a file handle.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/io.hpp"
#include "net/protocol.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace gt::net {

class Client {
public:
    Client() = default;

    [[nodiscard]] Status connect(const std::string& host,
                                 std::uint16_t port);
    void close() noexcept { fd_.reset(); }
    [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

    // ---- raw pipelining layer ---------------------------------------------

    /// Encodes and writes one request frame; returns the request id to pair
    /// the eventual reply with.
    [[nodiscard]] Status send_request(MsgType type,
                                      std::span<const unsigned char> payload,
                                      std::uint64_t& request_id);

    /// Blocks for the next response frame (any id). Transport failures and
    /// frames that fail to decode are IoError; a wire error frame is
    /// surfaced as its mapped Status, with the reply's request_id still
    /// reported so pipelined callers know which request failed.
    [[nodiscard]] Status recv_reply(Frame& out);

    // ---- typed wrappers ---------------------------------------------------

    [[nodiscard]] Status ping(std::span<const unsigned char> echo = {});
    /// `durability`: 0 off, 1 buffered, 2 fsync_batch, 255 server default.
    /// On success `recovery_source` (if non-null) receives the
    /// RecoveryInfo::Source the server saw when it first opened the graph.
    [[nodiscard]] Status open_graph(const std::string& name,
                                    std::uint8_t durability = 255,
                                    std::uint8_t* recovery_source = nullptr);
    [[nodiscard]] Status insert_batch(const std::string& name,
                                      std::span<const Edge> edges,
                                      std::uint64_t* edge_count = nullptr);
    [[nodiscard]] Status delete_batch(const std::string& name,
                                      std::span<const Edge> edges,
                                      std::uint64_t* edge_count = nullptr);
    [[nodiscard]] Status degree(const std::string& name, VertexId v,
                                std::uint64_t& out);
    [[nodiscard]] Status neighbors(
        const std::string& name, VertexId v,
        std::vector<std::pair<VertexId, Weight>>& out,
        std::uint32_t max = 0);
    /// Distances (kInfDistance = unreachable), one per target, in order.
    [[nodiscard]] Status bfs(const std::string& name, VertexId root,
                             std::span<const VertexId> targets,
                             std::vector<std::uint32_t>& out);
    [[nodiscard]] Status sssp(const std::string& name, VertexId root,
                              std::span<const VertexId> targets,
                              std::vector<std::uint32_t>& out);
    /// Component labels, one per target.
    [[nodiscard]] Status cc(const std::string& name,
                            std::span<const VertexId> targets,
                            std::vector<std::uint32_t>& out);
    [[nodiscard]] Status edge_count(const std::string& name,
                                    std::uint64_t& edges,
                                    std::uint64_t& vertices);
    [[nodiscard]] Status checkpoint(const std::string& name);
    [[nodiscard]] Status sync(const std::string& name);
    [[nodiscard]] Status stats_json(const std::string& name,
                                    std::string& json);

private:
    /// One request, one reply; fails if the reply id or type mismatches.
    [[nodiscard]] Status round_trip(MsgType type,
                                    std::span<const unsigned char> payload,
                                    Frame& reply);

    Fd fd_;
    std::uint64_t next_id_ = 1;
    std::vector<unsigned char> frame_buf_;
    std::vector<unsigned char> recv_buf_;
};

}  // namespace gt::net
