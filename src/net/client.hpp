// Blocking client for the gt.net.v1 protocol — what the CLI's `remote-*`
// subcommands, the tests, bench/ext_server_echo and the replication feeder
// talk through.
//
// Three layers:
//   - raw pipelining: send_request() stamps a fresh request id, registers
//     it as pending, and writes one frame; recv_reply() blocks for the next
//     response belonging to *some* pending request. Callers may stack N
//     send_request()s before draining — that is the protocol's throughput
//     lever.
//   - session handles: Client::open(name, graph) binds a RemoteGraph to one
//     named graph; its verbs (insert_edges/bfs_distances/degree_of/...)
//     carry the name on the wire so the caller never repeats it. RemoteGraph
//     implements gt::GraphService, so local-store and over-the-wire callers
//     share one code path.
//   - subscriptions: RemoteGraph::subscribe() registers a WAL-shipping
//     stream; Client::recv_shipment() drains its frames (replies to other
//     in-flight requests are buffered, not lost).
//
// Reply pairing is deterministic: every reply frame must match a pending
// request id (or a live subscription id). Out-of-order replies — possible
// now that the server runs reads on a pool — are buffered until their
// requester asks; a reply with an id this client never sent (or already
// consumed) closes the connection with an explicit "stale reply" error
// instead of being silently matched to the wrong request.
//
// Failover: connect() also takes an *endpoint list*. Session verbs (every
// RemoteGraph call, open, ping — anything routed through round_trip) then
// retry on retryable failures: transport loss and timeouts reconnect to the
// next live endpoint with jittered exponential backoff, Busy/ShuttingDown
// back off in place, and ReadOnly/StaleTerm rotate endpoints hunting for
// the current primary. Resends are id-guarded: a retried request is always
// re-encoded under a fresh request id, so a late reply to the original can
// never be matched to the retry (and a reconnect empties the pending set
// wholesale). All gt.net.v1 mutations are idempotent (insert is upsert,
// delete of a missing edge is a no-op), which is what makes blind resend
// after an ambiguous failure safe. Reconnects replay the session: every
// graph this client opened is re-opened, then greeted with Hello carrying
// the highest term the client has observed — a resurrected stale primary
// answers StaleTerm and is skipped.
//
// Every socket operation is deadline-bounded by ClientConfig (a stalled or
// half-open peer surfaces StatusCode::TimedOut instead of hanging forever).
//
// Not thread-safe: one Client per thread, like a file handle.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/graph_service.hpp"
#include "net/io.hpp"
#include "net/protocol.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace gt::net {

class Client;

/// One server address. connect() takes a list of these; the client hunts
/// through them for the current primary on every reconnect.
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
};

/// Deadlines and retry policy for one Client. The defaults suit tests and
/// CLI use: every socket op is bounded (nothing hangs on a half-open peer)
/// and a handful of retries with jittered exponential backoff rides out a
/// promotion. A timeout of 0 means unbounded (legacy blocking behavior).
struct ClientConfig {
    std::uint32_t op_timeout_ms = 30'000;       ///< per send/recv deadline
    std::uint32_t connect_timeout_ms = 5'000;   ///< per tcp_connect deadline
    std::uint32_t max_attempts = 8;             ///< per logical request
    std::uint32_t backoff_base_ms = 25;         ///< first retry delay
    std::uint32_t backoff_max_ms = 1'000;       ///< exponential cap
};

/// What Hello reports: who answers writes here, under which term, and how
/// far behind the upstream this server is (0 on a primary).
struct HelloInfo {
    std::uint8_t role = kRolePrimary;
    std::uint64_t term = 0;
    std::uint64_t durable_seq = 0;
    std::uint64_t lag_seqs = 0;
};

/// What Subscribe negotiated: the stream id (frames carry it), the lowest
/// seq the primary can still serve, its committed seq at ack time, and the
/// term its history belongs to.
struct Subscription {
    std::uint64_t id = 0;
    std::uint64_t wal_floor = 0;
    std::uint64_t primary_seq = 0;
    std::uint64_t term = 0;
};

/// Session handle bound to one named graph on one Client connection.
/// Obtained from Client::open(); copyable (it is a name plus a connection
/// pointer) and valid for as long as the Client outlives it. All verbs are
/// one request / one reply over the owning client.
class RemoteGraph final : public GraphService {
public:
    RemoteGraph() = default;

    [[nodiscard]] bool valid() const noexcept { return client_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    /// RecoveryInfo::Source the server reported when this open first
    /// materialized the graph.
    [[nodiscard]] std::uint8_t recovery_source() const noexcept {
        return recovery_source_;
    }

    // ---- GraphService -----------------------------------------------------
    [[nodiscard]] Status insert_edges(std::span<const Edge> edges,
                                      std::uint64_t* edge_count) override;
    [[nodiscard]] Status delete_edges(std::span<const Edge> edges,
                                      std::uint64_t* edge_count) override;
    [[nodiscard]] Status degree_of(VertexId v, std::uint64_t& out) override;
    [[nodiscard]] Status bfs_distances(
        VertexId root, std::span<const VertexId> targets,
        std::vector<std::uint32_t>& out) override;
    [[nodiscard]] Status count(std::uint64_t& edges,
                               std::uint64_t& vertices) override;
    [[nodiscard]] Status checkpoint_now() override;

    // ---- wire-only verbs --------------------------------------------------
    [[nodiscard]] Status neighbors(
        VertexId v, std::vector<std::pair<VertexId, Weight>>& out,
        std::uint32_t max = 0);
    [[nodiscard]] Status sssp(VertexId root,
                              std::span<const VertexId> targets,
                              std::vector<std::uint32_t>& out);
    [[nodiscard]] Status cc(std::span<const VertexId> targets,
                            std::vector<std::uint32_t>& out);
    /// Forces the server-side WAL to disk (the Sync verb).
    [[nodiscard]] Status sync_wal();
    [[nodiscard]] Status stats_json(std::string& json);

    /// Asks who serves this graph (role/term/lag), carrying the highest
    /// term this client has observed. A server whose term is lower fences
    /// itself and answers StaleTerm — the split-brain check. On success the
    /// client adopts the reported term if it is higher.
    [[nodiscard]] Status hello(HelloInfo& out);

    /// Starts a WAL-shipping subscription from `from_seq` (records with
    /// seq > from_seq will be streamed), announcing the subscriber's term.
    /// On success the stream is live: drain it with
    /// Client::recv_shipment(out.id). Fails SeqUnavailable (in
    /// Status::detail) when the primary pruned past from_seq, StaleTerm
    /// when the server's history is older than the subscriber's.
    [[nodiscard]] Status subscribe(std::uint64_t from_seq, Subscription& out);
    /// Reports the follower's applied low-water seq (feeds the primary's
    /// checkpoint/prune fence).
    [[nodiscard]] Status send_ack(std::uint64_t acked_seq);

private:
    friend class Client;
    RemoteGraph(Client* client, std::string name, std::uint8_t source)
        : client_(client), name_(std::move(name)),
          recovery_source_(source) {}

    [[nodiscard]] Status mutate(MsgType type, std::span<const Edge> edges,
                                std::uint64_t* edge_count);
    [[nodiscard]] Status props(MsgType type, const char* what, bool with_root,
                               VertexId root,
                               std::span<const VertexId> targets,
                               std::vector<std::uint32_t>& out);

    Client* client_ = nullptr;
    std::string name_;
    std::uint8_t recovery_source_ = 0;
};

class Client {
public:
    Client() = default;
    explicit Client(ClientConfig cfg) : cfg_(cfg) {}

    [[nodiscard]] Status connect(const std::string& host,
                                 std::uint16_t port);
    /// Failover form: remembers the whole list and connects to the first
    /// endpoint that answers. Session verbs reconnect through the list on
    /// retryable failures (see the header comment).
    [[nodiscard]] Status connect(std::vector<Endpoint> endpoints);
    void close() noexcept {
        fd_.reset();
        pending_.clear();
        buffered_.clear();
        stream_ids_.clear();
        stream_q_.clear();
        recv_buf_.clear();
    }
    [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
    /// Raw socket fd (-1 when closed) — lets a signal handler ::shutdown()
    /// a blocking recv from outside (gt replicate's clean-exit path).
    [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

    /// Deadline/retry policy. Mutable so tests and tools can tighten
    /// timeouts after construction; takes effect on the next operation.
    [[nodiscard]] ClientConfig& config() noexcept { return cfg_; }
    [[nodiscard]] const ClientConfig& config() const noexcept { return cfg_; }

    /// Highest primary term observed on this client (Hello and Subscribe
    /// replies, shipped frames). Reconnects announce it, which is what
    /// fences a resurrected stale primary off a client that saw the
    /// promotion.
    [[nodiscard]] std::uint64_t highest_term() const noexcept {
        return highest_term_;
    }
    /// Adopt `term` if it is higher than anything seen so far (shipped
    /// frames are parsed by the replication layer, which feeds terms back
    /// through here).
    void observe_term(std::uint64_t term) noexcept {
        if (term > highest_term_) {
            highest_term_ = term;
        }
    }

    // ---- session handles --------------------------------------------------

    /// Opens (creating/recovering server-side if needed) graph `name` and
    /// binds `out` to it. `durability`: 0 off, 1 buffered, 2 fsync_batch,
    /// 255 server default.
    [[nodiscard]] Status open(const std::string& name, RemoteGraph& out,
                              std::uint8_t durability = 255);

    [[nodiscard]] Status ping(std::span<const unsigned char> echo = {});

    // ---- raw pipelining layer ---------------------------------------------

    /// Encodes and writes one request frame; returns the request id (now
    /// pending) to pair the eventual reply with.
    [[nodiscard]] Status send_request(MsgType type,
                                      std::span<const unsigned char> payload,
                                      std::uint64_t& request_id);

    /// Blocks for the next reply belonging to any pending request (arrival
    /// order; buffered replies first). Transport failures and undecodable
    /// frames are IoError; a wire error frame is surfaced as its mapped
    /// Status, with the reply's request_id still reported so pipelined
    /// callers know which request failed. A reply that matches no pending
    /// request closes the connection ("stale reply").
    [[nodiscard]] Status recv_reply(Frame& out);

    /// Blocks for the next shipped frame of subscription `sub_id`
    /// (Subscribe|kResponseBit, kFlagShipData). Replies to other pending
    /// requests encountered on the way are buffered for their callers. An
    /// error frame on the subscription ends it (the id is retired) and
    /// surfaces as the mapped Status. `timeout_ms` overrides the config op
    /// deadline (-1: use config; 0: unbounded); on TimedOut the connection
    /// and subscription stay live — a partial frame is kept and the next
    /// call resumes it. That is the replica's heartbeat primitive.
    [[nodiscard]] Status recv_shipment(std::uint64_t sub_id, Frame& out,
                                       std::int64_t timeout_ms = -1);

    // ---- deprecated per-name wrappers (PR 8 surface) ----------------------
    // Thin shims over a transient RemoteGraph; migrate to
    // Client::open() + handle verbs.

    [[deprecated("use Client::open + RemoteGraph")]] [[nodiscard]] Status
    open_graph(const std::string& name, std::uint8_t durability = 255,
               std::uint8_t* recovery_source = nullptr);
    [[deprecated("use RemoteGraph::insert_edges")]] [[nodiscard]] Status
    insert_batch(const std::string& name, std::span<const Edge> edges,
                 std::uint64_t* edge_count = nullptr);
    [[deprecated("use RemoteGraph::delete_edges")]] [[nodiscard]] Status
    delete_batch(const std::string& name, std::span<const Edge> edges,
                 std::uint64_t* edge_count = nullptr);
    [[deprecated("use RemoteGraph::degree_of")]] [[nodiscard]] Status degree(
        const std::string& name, VertexId v, std::uint64_t& out);
    [[deprecated("use RemoteGraph::neighbors")]] [[nodiscard]] Status
    neighbors(const std::string& name, VertexId v,
              std::vector<std::pair<VertexId, Weight>>& out,
              std::uint32_t max = 0);
    [[deprecated("use RemoteGraph::bfs_distances")]] [[nodiscard]] Status bfs(
        const std::string& name, VertexId root,
        std::span<const VertexId> targets, std::vector<std::uint32_t>& out);
    [[deprecated("use RemoteGraph::sssp")]] [[nodiscard]] Status sssp(
        const std::string& name, VertexId root,
        std::span<const VertexId> targets, std::vector<std::uint32_t>& out);
    [[deprecated("use RemoteGraph::cc")]] [[nodiscard]] Status cc(
        const std::string& name, std::span<const VertexId> targets,
        std::vector<std::uint32_t>& out);
    [[deprecated("use RemoteGraph::count")]] [[nodiscard]] Status edge_count(
        const std::string& name, std::uint64_t& edges,
        std::uint64_t& vertices);
    [[deprecated("use RemoteGraph::checkpoint_now")]] [[nodiscard]] Status
    checkpoint(const std::string& name);
    [[deprecated("use RemoteGraph::sync_wal")]] [[nodiscard]] Status sync(
        const std::string& name);
    [[deprecated("use RemoteGraph::stats_json")]] [[nodiscard]] Status
    stats_json(const std::string& name, std::string& json);

private:
    friend class RemoteGraph;

    /// One request, one reply; fails if the reply id or type mismatches.
    /// With an endpoint list, this is also the retry/failover point: see
    /// the header comment for the policy.
    [[nodiscard]] Status round_trip(MsgType type,
                                    std::span<const unsigned char> payload,
                                    Frame& reply);
    /// One attempt of round_trip, no retries.
    [[nodiscard]] Status round_trip_once(
        MsgType type, std::span<const unsigned char> payload, Frame& reply);
    /// Blocks for the reply to pending request `id`, buffering replies to
    /// other pending requests encountered first.
    [[nodiscard]] Status recv_matching(std::uint64_t id, Frame& out);
    /// Reads exactly one frame off the socket (decoding from recv_buf_).
    /// TimedOut keeps the connection (and any partial frame) intact; every
    /// other failure closes it.
    [[nodiscard]] Status read_frame(Frame& out, Deadline deadline);
    /// Maps a consumed reply frame to a Status (error payloads decoded).
    [[nodiscard]] Status finish_reply(const Frame& f);

    /// Per-operation deadline from cfg_ (unbounded when op_timeout_ms==0).
    [[nodiscard]] Deadline op_deadline() const noexcept {
        return cfg_.op_timeout_ms == 0
                   ? Deadline{}
                   : Deadline::after(
                         std::chrono::milliseconds(cfg_.op_timeout_ms));
    }
    /// True if round_trip should retry after `st` (possibly on another
    /// endpoint). Transport loss / timeouts always; wire Busy/ShuttingDown
    /// always; ReadOnly/StaleTerm only when there is another endpoint to
    /// rotate to.
    [[nodiscard]] bool retryable_failure(const Status& st) const noexcept;
    /// Reconnects to the first endpoint (starting at ep_index_) that
    /// accepts, then replays the session: re-open every remembered graph
    /// and Hello it with highest_term_. An endpoint that answers StaleTerm
    /// is skipped.
    [[nodiscard]] Status reconnect();
    /// Sleeps the jittered exponential backoff for retry `attempt`.
    void backoff(std::uint32_t attempt);

    Fd fd_;
    ClientConfig cfg_;
    std::uint64_t next_id_ = 1;
    std::set<std::uint64_t> pending_;     // sent, reply not yet consumed
    std::deque<Frame> buffered_;          // replies awaiting their caller
    std::set<std::uint64_t> stream_ids_;  // live subscription ids
    std::deque<Frame> stream_q_;          // shipped frames awaiting drain
    std::vector<unsigned char> frame_buf_;
    std::vector<unsigned char> recv_buf_;

    // ---- failover state ----
    struct OpenedGraph {
        std::string name;
        std::uint8_t durability = 255;
    };
    std::vector<Endpoint> endpoints_;     // empty: single-endpoint client
    std::size_t ep_index_ = 0;            // endpoint currently connected
    std::vector<OpenedGraph> graphs_;     // session to replay on reconnect
    std::uint64_t highest_term_ = 0;
    std::uint64_t rng_state_ = 0;         // backoff jitter (lazily seeded)
    bool in_reconnect_ = false;           // reconnect() replays via
                                          // round_trip; no nested retries
};

}  // namespace gt::net
