// Blocking client for the gt.net.v1 protocol — what the CLI's `remote-*`
// subcommands, the tests, bench/ext_server_echo and the replication feeder
// talk through.
//
// Three layers:
//   - raw pipelining: send_request() stamps a fresh request id, registers
//     it as pending, and writes one frame; recv_reply() blocks for the next
//     response belonging to *some* pending request. Callers may stack N
//     send_request()s before draining — that is the protocol's throughput
//     lever.
//   - session handles: Client::open(name, graph) binds a RemoteGraph to one
//     named graph; its verbs (insert_edges/bfs_distances/degree_of/...)
//     carry the name on the wire so the caller never repeats it. RemoteGraph
//     implements gt::GraphService, so local-store and over-the-wire callers
//     share one code path.
//   - subscriptions: RemoteGraph::subscribe() registers a WAL-shipping
//     stream; Client::recv_shipment() drains its frames (replies to other
//     in-flight requests are buffered, not lost).
//
// Reply pairing is deterministic: every reply frame must match a pending
// request id (or a live subscription id). Out-of-order replies — possible
// now that the server runs reads on a pool — are buffered until their
// requester asks; a reply with an id this client never sent (or already
// consumed) closes the connection with an explicit "stale reply" error
// instead of being silently matched to the wrong request.
//
// Not thread-safe: one Client per thread, like a file handle.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/graph_service.hpp"
#include "net/io.hpp"
#include "net/protocol.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace gt::net {

class Client;

/// What Subscribe negotiated: the stream id (frames carry it), the lowest
/// seq the primary can still serve, and its committed seq at ack time.
struct Subscription {
    std::uint64_t id = 0;
    std::uint64_t wal_floor = 0;
    std::uint64_t primary_seq = 0;
};

/// Session handle bound to one named graph on one Client connection.
/// Obtained from Client::open(); copyable (it is a name plus a connection
/// pointer) and valid for as long as the Client outlives it. All verbs are
/// one request / one reply over the owning client.
class RemoteGraph final : public GraphService {
public:
    RemoteGraph() = default;

    [[nodiscard]] bool valid() const noexcept { return client_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    /// RecoveryInfo::Source the server reported when this open first
    /// materialized the graph.
    [[nodiscard]] std::uint8_t recovery_source() const noexcept {
        return recovery_source_;
    }

    // ---- GraphService -----------------------------------------------------
    [[nodiscard]] Status insert_edges(std::span<const Edge> edges,
                                      std::uint64_t* edge_count) override;
    [[nodiscard]] Status delete_edges(std::span<const Edge> edges,
                                      std::uint64_t* edge_count) override;
    [[nodiscard]] Status degree_of(VertexId v, std::uint64_t& out) override;
    [[nodiscard]] Status bfs_distances(
        VertexId root, std::span<const VertexId> targets,
        std::vector<std::uint32_t>& out) override;
    [[nodiscard]] Status count(std::uint64_t& edges,
                               std::uint64_t& vertices) override;
    [[nodiscard]] Status checkpoint_now() override;

    // ---- wire-only verbs --------------------------------------------------
    [[nodiscard]] Status neighbors(
        VertexId v, std::vector<std::pair<VertexId, Weight>>& out,
        std::uint32_t max = 0);
    [[nodiscard]] Status sssp(VertexId root,
                              std::span<const VertexId> targets,
                              std::vector<std::uint32_t>& out);
    [[nodiscard]] Status cc(std::span<const VertexId> targets,
                            std::vector<std::uint32_t>& out);
    /// Forces the server-side WAL to disk (the Sync verb).
    [[nodiscard]] Status sync_wal();
    [[nodiscard]] Status stats_json(std::string& json);

    /// Starts a WAL-shipping subscription from `from_seq` (records with
    /// seq > from_seq will be streamed). On success the stream is live:
    /// drain it with Client::recv_shipment(out.id). Fails SeqUnavailable
    /// (in Status::detail) when the primary pruned past from_seq.
    [[nodiscard]] Status subscribe(std::uint64_t from_seq, Subscription& out);
    /// Reports the follower's applied low-water seq (feeds the primary's
    /// checkpoint/prune fence).
    [[nodiscard]] Status send_ack(std::uint64_t acked_seq);

private:
    friend class Client;
    RemoteGraph(Client* client, std::string name, std::uint8_t source)
        : client_(client), name_(std::move(name)),
          recovery_source_(source) {}

    [[nodiscard]] Status mutate(MsgType type, std::span<const Edge> edges,
                                std::uint64_t* edge_count);
    [[nodiscard]] Status props(MsgType type, const char* what, bool with_root,
                               VertexId root,
                               std::span<const VertexId> targets,
                               std::vector<std::uint32_t>& out);

    Client* client_ = nullptr;
    std::string name_;
    std::uint8_t recovery_source_ = 0;
};

class Client {
public:
    Client() = default;

    [[nodiscard]] Status connect(const std::string& host,
                                 std::uint16_t port);
    void close() noexcept {
        fd_.reset();
        pending_.clear();
        buffered_.clear();
        stream_ids_.clear();
        stream_q_.clear();
        recv_buf_.clear();
    }
    [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
    /// Raw socket fd (-1 when closed) — lets a signal handler ::shutdown()
    /// a blocking recv from outside (gt replicate's clean-exit path).
    [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

    // ---- session handles --------------------------------------------------

    /// Opens (creating/recovering server-side if needed) graph `name` and
    /// binds `out` to it. `durability`: 0 off, 1 buffered, 2 fsync_batch,
    /// 255 server default.
    [[nodiscard]] Status open(const std::string& name, RemoteGraph& out,
                              std::uint8_t durability = 255);

    [[nodiscard]] Status ping(std::span<const unsigned char> echo = {});

    // ---- raw pipelining layer ---------------------------------------------

    /// Encodes and writes one request frame; returns the request id (now
    /// pending) to pair the eventual reply with.
    [[nodiscard]] Status send_request(MsgType type,
                                      std::span<const unsigned char> payload,
                                      std::uint64_t& request_id);

    /// Blocks for the next reply belonging to any pending request (arrival
    /// order; buffered replies first). Transport failures and undecodable
    /// frames are IoError; a wire error frame is surfaced as its mapped
    /// Status, with the reply's request_id still reported so pipelined
    /// callers know which request failed. A reply that matches no pending
    /// request closes the connection ("stale reply").
    [[nodiscard]] Status recv_reply(Frame& out);

    /// Blocks for the next shipped frame of subscription `sub_id`
    /// (Subscribe|kResponseBit, kFlagShipData). Replies to other pending
    /// requests encountered on the way are buffered for their callers. An
    /// error frame on the subscription ends it (the id is retired) and
    /// surfaces as the mapped Status.
    [[nodiscard]] Status recv_shipment(std::uint64_t sub_id, Frame& out);

    // ---- deprecated per-name wrappers (PR 8 surface) ----------------------
    // Thin shims over a transient RemoteGraph; migrate to
    // Client::open() + handle verbs.

    [[deprecated("use Client::open + RemoteGraph")]] [[nodiscard]] Status
    open_graph(const std::string& name, std::uint8_t durability = 255,
               std::uint8_t* recovery_source = nullptr);
    [[deprecated("use RemoteGraph::insert_edges")]] [[nodiscard]] Status
    insert_batch(const std::string& name, std::span<const Edge> edges,
                 std::uint64_t* edge_count = nullptr);
    [[deprecated("use RemoteGraph::delete_edges")]] [[nodiscard]] Status
    delete_batch(const std::string& name, std::span<const Edge> edges,
                 std::uint64_t* edge_count = nullptr);
    [[deprecated("use RemoteGraph::degree_of")]] [[nodiscard]] Status degree(
        const std::string& name, VertexId v, std::uint64_t& out);
    [[deprecated("use RemoteGraph::neighbors")]] [[nodiscard]] Status
    neighbors(const std::string& name, VertexId v,
              std::vector<std::pair<VertexId, Weight>>& out,
              std::uint32_t max = 0);
    [[deprecated("use RemoteGraph::bfs_distances")]] [[nodiscard]] Status bfs(
        const std::string& name, VertexId root,
        std::span<const VertexId> targets, std::vector<std::uint32_t>& out);
    [[deprecated("use RemoteGraph::sssp")]] [[nodiscard]] Status sssp(
        const std::string& name, VertexId root,
        std::span<const VertexId> targets, std::vector<std::uint32_t>& out);
    [[deprecated("use RemoteGraph::cc")]] [[nodiscard]] Status cc(
        const std::string& name, std::span<const VertexId> targets,
        std::vector<std::uint32_t>& out);
    [[deprecated("use RemoteGraph::count")]] [[nodiscard]] Status edge_count(
        const std::string& name, std::uint64_t& edges,
        std::uint64_t& vertices);
    [[deprecated("use RemoteGraph::checkpoint_now")]] [[nodiscard]] Status
    checkpoint(const std::string& name);
    [[deprecated("use RemoteGraph::sync_wal")]] [[nodiscard]] Status sync(
        const std::string& name);
    [[deprecated("use RemoteGraph::stats_json")]] [[nodiscard]] Status
    stats_json(const std::string& name, std::string& json);

private:
    friend class RemoteGraph;

    /// One request, one reply; fails if the reply id or type mismatches.
    [[nodiscard]] Status round_trip(MsgType type,
                                    std::span<const unsigned char> payload,
                                    Frame& reply);
    /// Blocks for the reply to pending request `id`, buffering replies to
    /// other pending requests encountered first.
    [[nodiscard]] Status recv_matching(std::uint64_t id, Frame& out);
    /// Reads exactly one frame off the socket (decoding from recv_buf_).
    [[nodiscard]] Status read_frame(Frame& out);
    /// Maps a consumed reply frame to a Status (error payloads decoded).
    [[nodiscard]] Status finish_reply(const Frame& f);

    Fd fd_;
    std::uint64_t next_id_ = 1;
    std::set<std::uint64_t> pending_;     // sent, reply not yet consumed
    std::deque<Frame> buffered_;          // replies awaiting their caller
    std::set<std::uint64_t> stream_ids_;  // live subscription ids
    std::deque<Frame> stream_q_;          // shipped frames awaiting drain
    std::vector<unsigned char> frame_buf_;
    std::vector<unsigned char> recv_buf_;
};

}  // namespace gt::net
