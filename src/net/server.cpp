#include "net/server.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "obs/export.hpp"
#include "recover/term.hpp"

#if defined(__linux__) && !defined(GT_NET_FORCE_POLL)
#define GT_NET_USE_EPOLL 1
#include <sys/epoll.h>
#else
#define GT_NET_USE_EPOLL 0
#include <poll.h>
#endif

namespace gt::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact the parsed prefix of a read buffer once it crosses this size —
/// below it, the memmove costs more than the memory it reclaims.
constexpr std::size_t kCompactThreshold = 64 * 1024;
/// Error messages are operator-facing, not a transport for bulk data.
constexpr std::size_t kMaxErrorMessage = 512;
/// Target size of one shipped-WAL frame: large enough to amortize framing,
/// small enough that a follower never waits long behind one frame.
constexpr std::size_t kShipChunkBytes = 256 * 1024;
/// Per-record overhead inside a ship frame: u64 seq | u8 type | u32 len.
constexpr std::size_t kShipRecordOverhead = 13;
/// Hard ceiling for the records section of one ship frame (the outer
/// u64 term | u64 primary_seq | u32 count and the frame header need the
/// rest).
constexpr std::size_t kShipBudget = kMaxFramePayload - 64;

[[nodiscard]] std::uint64_t now_us() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// mkdir -p, two levels deep at most (<root> and <root>/<name>).
[[nodiscard]] Status ensure_dir(const std::string& path) {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
        return Status::success();
    }
    return Status{StatusCode::IoError,
                  "mkdir('" + path + "') failed: " + std::strerror(errno)};
}

/// Owner verbs that mutate store state and therefore need the exclusive
/// state lock. Subscribe/SubAck only touch owner-loop-private follower
/// bookkeeping, so they run lock-free on the owner loop.
[[nodiscard]] bool needs_exclusive_lock(std::uint8_t type) noexcept {
    return type == static_cast<std::uint8_t>(MsgType::InsertBatch) ||
           type == static_cast<std::uint8_t>(MsgType::DeleteBatch) ||
           type == static_cast<std::uint8_t>(MsgType::Checkpoint) ||
           type == static_cast<std::uint8_t>(MsgType::Sync);
}

[[nodiscard]] bool is_owner_verb(std::uint8_t type) noexcept {
    return needs_exclusive_lock(type) ||
           type == static_cast<std::uint8_t>(MsgType::Subscribe) ||
           type == static_cast<std::uint8_t>(MsgType::SubAck) ||
           type == static_cast<std::uint8_t>(MsgType::Hello);
}

[[nodiscard]] bool is_read_verb(std::uint8_t type) noexcept {
    return type == static_cast<std::uint8_t>(MsgType::Degree) ||
           type == static_cast<std::uint8_t>(MsgType::Neighbors) ||
           type == static_cast<std::uint8_t>(MsgType::Bfs) ||
           type == static_cast<std::uint8_t>(MsgType::Sssp) ||
           type == static_cast<std::uint8_t>(MsgType::Cc) ||
           type == static_cast<std::uint8_t>(MsgType::EdgeCount) ||
           type == static_cast<std::uint8_t>(MsgType::StatsJson);
}

}  // namespace

// ---------------------------------------------------------------------------
// Poller — epoll on Linux, poll(2) everywhere else. Level-triggered in both
// backends: the loop re-arms nothing, it just leaves unread bytes in the
// kernel buffer and gets woken again.

class Server::Poller {
public:
    struct Event {
        int fd = -1;
        bool readable = false;
        bool writable = false;
        bool error = false;
    };

    [[nodiscard]] Status init() {
#if GT_NET_USE_EPOLL
        ep_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
        if (!ep_.valid()) {
            return Status{StatusCode::IoError,
                          std::string{"epoll_create1 failed: "} +
                              std::strerror(errno)};
        }
#endif
        return Status::success();
    }

    void add(int fd, bool want_write) {
#if GT_NET_USE_EPOLL
        epoll_event ev{};
        ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0U);
        ev.data.fd = fd;
        (void)::epoll_ctl(ep_.get(), EPOLL_CTL_ADD, fd, &ev);
#else
        want_write_[fd] = want_write;
#endif
    }

    void mod(int fd, bool want_write) {
#if GT_NET_USE_EPOLL
        epoll_event ev{};
        ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0U);
        ev.data.fd = fd;
        (void)::epoll_ctl(ep_.get(), EPOLL_CTL_MOD, fd, &ev);
#else
        want_write_[fd] = want_write;
#endif
    }

    void del(int fd) {
#if GT_NET_USE_EPOLL
        (void)::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, nullptr);
#else
        want_write_.erase(fd);
#endif
    }

    /// Blocks until at least one event; EINTR retries (the accept/event
    /// loop discipline — a signal must wake stop(), not kill the wait).
    [[nodiscard]] Status wait(std::vector<Event>& out) {
        out.clear();
#if GT_NET_USE_EPOLL
        epoll_event evs[64];
        int n = 0;
        for (;;) {
            n = ::epoll_wait(ep_.get(), evs, 64, -1);
            if (n >= 0) {
                break;
            }
            if (errno == EINTR) {
                continue;
            }
            return Status{StatusCode::IoError,
                          std::string{"epoll_wait failed: "} +
                              std::strerror(errno)};
        }
        for (int i = 0; i < n; ++i) {
            Event e;
            e.fd = evs[i].data.fd;
            e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
            e.writable = (evs[i].events & EPOLLOUT) != 0;
            e.error = (evs[i].events & EPOLLERR) != 0;
            out.push_back(e);
        }
#else
        std::vector<pollfd> pfds;
        pfds.reserve(want_write_.size());
        for (const auto& [fd, ww] : want_write_) {
            pollfd p{};
            p.fd = fd;
            p.events = static_cast<short>(POLLIN | (ww ? POLLOUT : 0));
            pfds.push_back(p);
        }
        int n = 0;
        for (;;) {
            n = ::poll(pfds.data(), pfds.size(), -1);
            if (n >= 0) {
                break;
            }
            if (errno == EINTR) {
                continue;
            }
            return Status{StatusCode::IoError,
                          std::string{"poll failed: "} +
                              std::strerror(errno)};
        }
        for (const pollfd& p : pfds) {
            if (p.revents == 0) {
                continue;
            }
            Event e;
            e.fd = p.fd;
            e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
            e.writable = (p.revents & POLLOUT) != 0;
            e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
            out.push_back(e);
        }
#endif
        return Status::success();
    }

private:
#if GT_NET_USE_EPOLL
    Fd ep_;
#else
    std::map<int, bool> want_write_;
#endif
};

// ---------------------------------------------------------------------------
// Loop — one event-loop thread's world: its poller, the connections it owns
// (keyed by fd, and by process-unique conn id for async completions), and a
// wake-pipe-signalled inbox other threads post LoopMsgs into.

struct Server::Loop {
    std::uint32_t index = 0;
    Fd wake_r;
    Fd wake_w;
    std::unique_ptr<Poller> poller;
    std::map<int, std::unique_ptr<Conn>> conns;
    std::unordered_map<std::uint64_t, Conn*> by_id;
    gt::Mutex inbox_mu;
    std::vector<LoopMsg> inbox GT_GUARDED_BY(inbox_mu);
    std::thread thread;
};

// ---------------------------------------------------------------------------
// ReaderPool — the shared-lock analytics pool. Workers pull read tasks,
// take the graph's state lock shared, and run the verb; results ride a Done
// message back to the connection's loop. A task against a graph with
// deferred mutations parks (same mu_ hold as the dequeue — the unpark in
// drain_deferred cannot miss it), which is what stops readers from starving
// writers through glibc's reader-preferring shared_mutex.

class Server::ReaderPool {
public:
    ReaderPool(Server& server, std::size_t threads)
        : server_(server), count_(threads) {}

    void start() {
        threads_.reserve(count_);
        for (std::size_t i = 0; i < count_; ++i) {
            threads_.emplace_back([this] { worker(); });
        }
    }

    void submit(GraphEntry* graph, std::uint64_t conn_id,
                std::uint32_t origin_loop, const Frame& req) {
        {
            gt::LockGuard lk(mu_);
            queue_.push_back(Task{graph, conn_id, origin_loop, req});
        }
        cv_.notify_one();
    }

    /// Re-queues tasks parked on `graph` (called after its deferred
    /// mutations drained).
    void unpark(GraphEntry* graph) {
        bool moved = false;
        {
            gt::LockGuard lk(mu_);
            auto it = parked_.begin();
            while (it != parked_.end()) {
                if (it->graph == graph) {
                    queue_.push_back(std::move(*it));
                    it = parked_.erase(it);
                    moved = true;
                } else {
                    ++it;
                }
            }
        }
        if (moved) {
            cv_.notify_all();
        }
    }

    void stop_and_join() {
        {
            gt::LockGuard lk(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread& t : threads_) {
            if (t.joinable()) {
                t.join();
            }
        }
        threads_.clear();
    }

private:
    struct Task {
        GraphEntry* graph = nullptr;
        std::uint64_t conn_id = 0;
        std::uint32_t origin_loop = 0;
        Frame req;
    };

    void worker() {
        for (;;) {
            Task t;
            bool have = false;
            {
                gt::UniqueLock lk(mu_);
                while (queue_.empty() && !stopping_) {
                    cv_.wait(lk);
                }
                if (queue_.empty()) {
                    return;  // stopping, drained
                }
                t = std::move(queue_.front());
                queue_.pop_front();
                if (t.graph->has_deferred.load()) {
                    parked_.push_back(std::move(t));
                } else {
                    have = true;
                }
            }
            if (!have) {
                continue;
            }
            Sink sink;
            {
                gt::SharedLockGuard g(t.graph->state_lock);
                server_.execute_read(t.graph, t.req, sink);
            }
            if (t.graph->has_deferred.load()) {
                // We may have been the hold blocking a deferred mutation —
                // tell the owner loop the lock is droppable now.
                LoopMsg m;
                m.kind = LoopMsg::Kind::Retry;
                m.graph = t.graph;
                server_.post(t.graph->owner_loop, std::move(m));
            }
            server_.deliver(nullptr, t.origin_loop, t.conn_id,
                            std::move(sink), 1);
        }
    }

    Server& server_;
    std::size_t count_ = 0;
    gt::Mutex mu_;
    gt::CondVar cv_;
    std::deque<Task> queue_ GT_GUARDED_BY(mu_);
    std::vector<Task> parked_ GT_GUARDED_BY(mu_);
    bool stopping_ GT_GUARDED_BY(mu_) = false;
    std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Lifecycle

Server::Server() = default;
Server::~Server() = default;

void Server::bind_metrics() {
    obs::Registry& r = *registry_;
    accepted_m_ = &r.counter("net.conns_accepted");
    closed_m_ = &r.counter("net.conns_closed");
    frames_rx_m_ = &r.counter("net.frames_rx");
    frames_tx_m_ = &r.counter("net.frames_tx");
    bytes_rx_m_ = &r.counter("net.bytes_rx");
    bytes_tx_m_ = &r.counter("net.bytes_tx");
    busy_shed_m_ = &r.counter("net.busy_shed");
    bad_frames_m_ = &r.counter("net.bad_frames");
    errors_tx_m_ = &r.counter("net.errors_tx");
    cross_loop_m_ = &r.counter("net.cross_loop_hops");
    deferred_m_ = &r.counter("net.deferred_ops");
    shipped_m_ = &r.counter("net.wal_frames_shipped");
    request_us_m_ = &r.histogram("net.request_us");
    conns_gauge_ = &r.gauge("net.open_conns");
    wbuf_gauge_ = &r.gauge("net.wbuf_bytes");
    graphs_gauge_ = &r.gauge("net.open_graphs");
    subs_gauge_ = &r.gauge("net.subscribers");
    role_gauge_ = &r.gauge("net.role");
    term_gauge_ = &r.gauge("net.term");
}

void Server::update_gauges() {
    conns_gauge_->set(static_cast<double>(num_conns_.load()));
    wbuf_gauge_->set(static_cast<double>(
        std::max<long long>(0, wbuf_total_.load())));
    subs_gauge_->set(static_cast<double>(
        std::max<long long>(0, num_subs_.load())));
    role_gauge_->set(read_only_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
    gt::LockGuard lk(graphs_mu_);
    graphs_gauge_->set(static_cast<double>(graphs_.size()));
    std::uint64_t max_term = 0;
    for (const auto& [name, g] : graphs_) {
        max_term = std::max(
            max_term, g->term.load(std::memory_order_relaxed));
    }
    term_gauge_->set(static_cast<double>(max_term));
}

Status Server::start(const ServerOptions& options) {
    opts_ = options;
    if (opts_.root.empty()) {
        return Status{StatusCode::InvalidArgument,
                      "ServerOptions.root is required"};
    }
    opts_.max_inflight = std::max<std::size_t>(opts_.max_inflight, 1);
    opts_.parse_budget = std::max<std::size_t>(opts_.parse_budget, 1);
    opts_.loop_threads = std::max<std::size_t>(opts_.loop_threads, 1);
    read_only_.store(opts_.read_only, std::memory_order_relaxed);
    registry_ = opts_.registry;
    if (registry_ == nullptr) {
        owned_registry_ = std::make_unique<obs::Registry>();
        registry_ = owned_registry_.get();
    }
    bind_metrics();
    if (Status st = ensure_dir(opts_.root); !st.ok()) {
        return st;
    }
    if (Status st = make_wake_pipe(wake_r_, wake_w_); !st.ok()) {
        return st;
    }
    if (Status st = tcp_listen(opts_.host, opts_.port, listen_fd_, port_);
        !st.ok()) {
        return st;
    }
    if (Status st = set_nonblocking(listen_fd_.get()); !st.ok()) {
        return st;
    }
    loops_.clear();
    for (std::size_t i = 0; i < opts_.loop_threads; ++i) {
        auto loop = std::make_unique<Loop>();
        loop->index = static_cast<std::uint32_t>(i);
        if (Status st = make_wake_pipe(loop->wake_r, loop->wake_w);
            !st.ok()) {
            return st;
        }
        loop->poller = std::make_unique<Poller>();
        if (Status st = loop->poller->init(); !st.ok()) {
            return st;
        }
        loop->poller->add(loop->wake_r.get(), false);
        loops_.push_back(std::move(loop));
    }
    if (opts_.reader_threads > 0) {
        readers_ = std::make_unique<ReaderPool>(*this, opts_.reader_threads);
    }
    return Status::success();
}

void Server::stop() noexcept {
    if (wake_w_.valid()) {
        wake(wake_w_.get());
    }
}

Status Server::run() {
    if (loops_.empty()) {
        return Status{StatusCode::InvalidArgument, "start() first"};
    }
    for (auto& loop : loops_) {
        loop->thread = std::thread([this, lp = loop.get()] { run_loop(*lp); });
    }
    if (readers_ != nullptr) {
        readers_->start();
    }
    Poller acceptor;
    Status result = acceptor.init();
    if (result.ok()) {
        acceptor.add(listen_fd_.get(), false);
        acceptor.add(wake_r_.get(), false);
        std::vector<Poller::Event> events;
        while (!stopping_.load()) {
            if (Status st = acceptor.wait(events); !st.ok()) {
                result = st;
                break;
            }
            for (const Poller::Event& ev : events) {
                if (ev.fd == wake_r_.get()) {
                    drain_wake(wake_r_.get());
                    stopping_.store(true);
                    continue;
                }
                if (ev.fd == listen_fd_.get()) {
                    accept_new(acceptor);
                }
            }
            update_gauges();
        }
    }
    // Graceful teardown: stop the loops (each drops its connections), the
    // readers, then close every store (the DurableStore close flushes
    // buffered WAL bytes; FsyncBatch syncs).
    stopping_.store(true);
    for (auto& loop : loops_) {
        wake(loop->wake_w.get());
    }
    for (auto& loop : loops_) {
        if (loop->thread.joinable()) {
            loop->thread.join();
        }
    }
    if (readers_ != nullptr) {
        readers_->stop_and_join();
    }
    {
        gt::LockGuard lk(graphs_mu_);
        for (auto& [name, entry] : graphs_) {
            entry->store.close();
        }
        graphs_.clear();
    }
    update_gauges();
    return result;
}

// ---------------------------------------------------------------------------
// Acceptor

void Server::accept_new(Poller& poller) {
    (void)poller;
    for (;;) {
        const int fd = accept_retry(listen_fd_.get());
        if (fd < 0) {
            return;  // EAGAIN (drained) or transient accept failure
        }
        accepted_m_->inc();
        if (num_conns_.load() >= opts_.max_conns) {
            // Over the connection cap: one best-effort Busy frame so a
            // well-behaved client backs off, then close.
            busy_shed_m_->inc();
            PayloadWriter w;
            w.u16(static_cast<std::uint16_t>(WireCode::Busy));
            w.str("connection limit reached; retry later");
            std::vector<unsigned char> frame;
            encode_frame(frame, kErrorType, 0, w.span());
            std::size_t sent = 0;
            (void)send_some(fd, frame.data(), frame.size(), sent);
            Fd(fd).reset();
            closed_m_->inc();
            continue;
        }
        num_conns_.fetch_add(1);
        LoopMsg m;
        m.kind = LoopMsg::Kind::AdoptFd;
        m.fd = fd;
        post(next_loop_, std::move(m));
        next_loop_ = (next_loop_ + 1) % static_cast<std::uint32_t>(
                                            loops_.size());
    }
}

// ---------------------------------------------------------------------------
// Loop threads

void Server::post(std::uint32_t loop_index, LoopMsg&& msg) {
    Loop& loop = *loops_[loop_index];
    {
        gt::LockGuard lk(loop.inbox_mu);
        loop.inbox.push_back(std::move(msg));
    }
    wake(loop.wake_w.get());
}

void Server::run_loop(Loop& loop) {
    std::vector<Poller::Event> events;
    for (;;) {
        if (!loop.poller->wait(events).ok()) {
            break;  // fatal poller failure; the loop retires
        }
        bool woke = false;
        for (const Poller::Event& ev : events) {
            if (ev.fd == loop.wake_r.get()) {
                drain_wake(loop.wake_r.get());
                woke = true;
                continue;
            }
            // The connection may already have been torn down by an earlier
            // event in this batch.
            if (loop.conns.find(ev.fd) == loop.conns.end()) {
                continue;
            }
            if (ev.error) {
                teardown(loop, ev.fd);
                continue;
            }
            if (ev.writable) {
                handle_writable(loop, ev.fd);
            }
            if (loop.conns.find(ev.fd) != loop.conns.end() && ev.readable) {
                handle_readable(loop, ev.fd);
            }
        }
        if (woke) {
            process_inbox(loop);
        }
        drain_pending(loop);
        flush_all(loop);
        update_gauges();
        if (stopping_.load()) {
            break;
        }
    }
    // Final inbox sweep: sockets handed over but never adopted must not
    // leak. Everything else (replies, retries) has nowhere to go.
    {
        std::vector<LoopMsg> msgs;
        {
            gt::LockGuard lk(loop.inbox_mu);
            msgs.swap(loop.inbox);
        }
        for (LoopMsg& m : msgs) {
            if (m.kind == LoopMsg::Kind::AdoptFd) {
                Fd(m.fd).reset();
                num_conns_.fetch_sub(1);
                closed_m_->inc();
            }
        }
    }
    while (!loop.conns.empty()) {
        teardown(loop, loop.conns.begin()->first);
    }
}

void Server::process_inbox(Loop& loop) {
    std::vector<LoopMsg> msgs;
    {
        gt::LockGuard lk(loop.inbox_mu);
        msgs.swap(loop.inbox);
    }
    for (LoopMsg& m : msgs) {
        switch (m.kind) {
            case LoopMsg::Kind::AdoptFd:
                adopt_fd(loop, m.fd);
                break;
            case LoopMsg::Kind::Exec:
                execute_owner(m.graph, m.conn_id, m.origin_loop, m.req);
                break;
            case LoopMsg::Kind::Done:
                apply_done(loop, m);
                break;
            case LoopMsg::Kind::Retry:
                drain_deferred(m.graph);
                break;
            case LoopMsg::Kind::Unsub:
                drop_subscriber(m.graph, m.conn_id);
                break;
            case LoopMsg::Kind::Pump:
                pump_subscribers(m.graph);
                break;
        }
    }
}

void Server::adopt_fd(Loop& loop, int fd) {
    if (stopping_.load()) {
        Fd(fd).reset();
        num_conns_.fetch_sub(1);
        closed_m_->inc();
        return;
    }
    if (!set_nonblocking(fd).ok()) {
        Fd(fd).reset();
        num_conns_.fetch_sub(1);
        closed_m_->inc();
        return;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(fd);
    conn->id = next_conn_id_.fetch_add(1);
    loop.poller->add(fd, false);
    loop.by_id.emplace(conn->id, conn.get());
    loop.conns.emplace(fd, std::move(conn));
}

void Server::apply_done(Loop& loop, LoopMsg& msg) {
    const auto it = loop.by_id.find(msg.conn_id);
    if (it == loop.by_id.end()) {
        // The connection died while the op was in flight. If this Done was
        // also carrying a fresh subscription, the teardown's Unsub cannot
        // have covered it — retire it at the owner now.
        if (msg.sub_graph != nullptr) {
            if (msg.sub_graph->owner_loop == loop.index) {
                drop_subscriber(msg.sub_graph, msg.conn_id);
            } else {
                LoopMsg m;
                m.kind = LoopMsg::Kind::Unsub;
                m.graph = msg.sub_graph;
                m.conn_id = msg.conn_id;
                post(msg.sub_graph->owner_loop, std::move(m));
            }
        }
        return;
    }
    Conn& conn = *it->second;
    conn.pending -= std::min(msg.ops_done, conn.pending);
    if (msg.sub_graph != nullptr) {
        conn.subscribed.push_back(msg.sub_graph);
    }
    if (!msg.bytes.empty()) {
        conn.wbuf.insert(conn.wbuf.end(), msg.bytes.begin(),
                         msg.bytes.end());
        conn.inflight += msg.frames;
        wbuf_total_.fetch_add(static_cast<long long>(msg.bytes.size()));
    }
}

void Server::teardown(Loop& loop, int fd) {
    const auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) {
        return;
    }
    Conn& conn = *it->second;
    for (GraphEntry* g : conn.subscribed) {
        if (g->owner_loop == loop.index) {
            drop_subscriber(g, conn.id);
        } else {
            LoopMsg m;
            m.kind = LoopMsg::Kind::Unsub;
            m.graph = g;
            m.conn_id = conn.id;
            post(g->owner_loop, std::move(m));
        }
    }
    wbuf_total_.fetch_sub(
        static_cast<long long>(conn.wbuf.size() - conn.wpos));
    loop.poller->del(fd);
    loop.by_id.erase(conn.id);
    loop.conns.erase(it);  // Fd destructor closes
    num_conns_.fetch_sub(1);
    closed_m_->inc();
}

void Server::maybe_finish(Loop& loop, Conn& conn) {
    if (conn.closing && conn.wpos == conn.wbuf.size() &&
        conn.pending == 0) {
        teardown(loop, conn.fd.get());
    }
}

void Server::handle_readable(Loop& loop, int fd) {
    Conn& conn = *loop.conns.at(fd);
    bool peer_done = false;
    for (;;) {
        const std::size_t base = conn.rbuf.size();
        // Cap the buffered request bytes: header + payload cap + one read
        // chunk of slack. A peer that streams past an unread frame this
        // large is either broken or hostile.
        if (base - conn.rpos > kFrameHeaderBytes + kMaxFramePayload) {
            teardown(loop, fd);
            return;
        }
        conn.rbuf.resize(base + kReadChunk);
        std::size_t n = 0;
        const IoResult got =
            recv_some(conn.fd.get(), conn.rbuf.data() + base, kReadChunk, n);
        conn.rbuf.resize(base + n);
        if (got == IoResult::Ok) {
            bytes_rx_m_->add(n);
            continue;
        }
        if (got == IoResult::WouldBlock) {
            break;
        }
        if (got == IoResult::Closed) {
            // Half-close: the peer may still be reading responses to the
            // requests it already pipelined — answer them, flush, close.
            peer_done = true;
            break;
        }
        teardown(loop, fd);
        return;
    }
    parse_and_execute(loop, conn);
    if (peer_done) {
        conn.closing = true;
    }
    if (!flush_conn(loop, conn)) {
        teardown(loop, fd);
        return;
    }
    maybe_finish(loop, conn);
}

void Server::handle_writable(Loop& loop, int fd) {
    Conn& conn = *loop.conns.at(fd);
    if (!flush_conn(loop, conn)) {
        teardown(loop, fd);
        return;
    }
    maybe_finish(loop, conn);
}

bool Server::flush_conn(Loop& loop, Conn& conn) {
    while (conn.wpos < conn.wbuf.size()) {
        std::size_t n = 0;
        const IoResult sent =
            send_some(conn.fd.get(), conn.wbuf.data() + conn.wpos,
                      conn.wbuf.size() - conn.wpos, n);
        if (sent == IoResult::Ok) {
            conn.wpos += n;
            bytes_tx_m_->add(n);
            wbuf_total_.fetch_sub(static_cast<long long>(n));
            continue;
        }
        if (sent == IoResult::WouldBlock) {
            if (!conn.want_write) {
                conn.want_write = true;
                loop.poller->mod(conn.fd.get(), true);
            }
            return true;
        }
        // Closed (EPIPE/ECONNRESET — the client vanished mid-reply) or a
        // real error: either way the connection is done. MSG_NOSIGNAL in
        // send_some is what turned the SIGPIPE crash into this branch.
        return false;
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    conn.inflight = 0;
    if (conn.want_write) {
        conn.want_write = false;
        loop.poller->mod(conn.fd.get(), false);
    }
    return true;
}

void Server::flush_all(Loop& loop) {
    std::vector<int> fds;
    fds.reserve(loop.conns.size());
    for (const auto& [fd, conn] : loop.conns) {
        fds.push_back(fd);
    }
    for (const int fd : fds) {
        const auto it = loop.conns.find(fd);
        if (it == loop.conns.end()) {
            continue;
        }
        Conn& conn = *it->second;
        // A subscriber that cannot keep up with the shipped stream would
        // buffer without bound — disconnect it (it can re-subscribe from
        // its applied seq). Ordinary connections are protected by the Busy
        // shed instead; what is buffered is replies they asked for.
        if (!conn.subscribed.empty() &&
            conn.wbuf.size() - conn.wpos > opts_.max_wbuf_bytes) {
            teardown(loop, fd);
            continue;
        }
        if (!flush_conn(loop, conn)) {
            teardown(loop, fd);
            continue;
        }
        maybe_finish(loop, conn);
    }
}

void Server::parse_and_execute(Loop& loop, Conn& conn) {
    for (std::size_t parsed = 0;
         parsed < opts_.parse_budget && !conn.closing; ++parsed) {
        const std::span<const unsigned char> rest(
            conn.rbuf.data() + conn.rpos, conn.rbuf.size() - conn.rpos);
        Frame req;
        std::size_t consumed = 0;
        DecodeError err;
        const DecodeResult got = decode_frame(rest, req, consumed, err);
        if (got == DecodeResult::NeedMore) {
            break;
        }
        if (got == DecodeResult::Bad) {
            // The stream cannot resynchronize after a framing violation:
            // reply once (the header's request id, when it parsed, lets
            // the client pair the failure), flush, close.
            bad_frames_m_->inc();
            conn_error(conn, req.request_id, err.code, err.message);
            conn.rpos = conn.rbuf.size();
            conn.closing = true;
            break;
        }
        conn.rpos += consumed;
        frames_rx_m_->inc();
        if (stopping_.load()) {
            conn_error(conn, req.request_id, WireCode::ShuttingDown,
                       "server is shutting down");
            continue;
        }
        // Backpressure: shed (retryable Busy) instead of queueing beyond
        // the per-connection caps. `pending` counts dispatched async ops
        // whose replies have not come back yet.
        if (conn.inflight + conn.pending >= opts_.max_inflight ||
            conn.wbuf.size() - conn.wpos > opts_.max_wbuf_bytes) {
            busy_shed_m_->inc();
            conn_error(conn, req.request_id, WireCode::Busy,
                       "connection backlog full; retry");
            continue;
        }
        execute(loop, conn, req);
    }
    // Reclaim the parsed prefix (or the whole buffer when fully consumed).
    if (conn.rpos == conn.rbuf.size()) {
        conn.rbuf.clear();
        conn.rpos = 0;
    } else if (conn.rpos > kCompactThreshold) {
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.rpos));
        conn.rpos = 0;
    }
}

void Server::drain_pending(Loop& loop) {
    // Passes repeat until no connection consumes anything: each pass gives
    // every connection at most parse_budget frames, so one deep pipeline
    // cannot starve the others within a pass.
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<int> fds;
        fds.reserve(loop.conns.size());
        for (const auto& [fd, conn] : loop.conns) {
            fds.push_back(fd);
        }
        for (const int fd : fds) {
            const auto it = loop.conns.find(fd);
            if (it == loop.conns.end()) {
                continue;  // torn down earlier in this pass
            }
            Conn& conn = *it->second;
            const std::size_t before = conn.rbuf.size() - conn.rpos;
            if (conn.closing || before < kFrameHeaderBytes) {
                continue;
            }
            parse_and_execute(loop, conn);
            if (!flush_conn(loop, conn)) {
                teardown(loop, fd);
                continue;
            }
            maybe_finish(loop, conn);
            if (loop.conns.find(fd) != loop.conns.end() &&
                conn.rbuf.size() - conn.rpos < before) {
                progress = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reply plumbing

void Server::emit_reply(Sink& sink, const Frame& req,
                        std::span<const unsigned char> payload) {
    encode_frame(sink.bytes,
                 static_cast<std::uint8_t>(req.type | kResponseBit),
                 req.request_id, payload);
    frames_tx_m_->inc();
    ++sink.frames;
}

void Server::emit_error(Sink& sink, std::uint64_t request_id, WireCode code,
                        std::string_view message) {
    PayloadWriter w;
    w.u16(static_cast<std::uint16_t>(code));
    w.str(message.substr(0, kMaxErrorMessage));
    encode_frame(sink.bytes, kErrorType, request_id, w.span());
    frames_tx_m_->inc();
    errors_tx_m_->inc();
    ++sink.frames;
}

void Server::append_sink(Conn& conn, Sink&& sink) {
    if (sink.sub_graph != nullptr) {
        conn.subscribed.push_back(sink.sub_graph);
    }
    if (sink.bytes.empty()) {
        return;
    }
    conn.wbuf.insert(conn.wbuf.end(), sink.bytes.begin(), sink.bytes.end());
    conn.inflight += sink.frames;
    wbuf_total_.fetch_add(static_cast<long long>(sink.bytes.size()));
}

void Server::conn_error(Conn& conn, std::uint64_t request_id, WireCode code,
                        std::string_view message) {
    Sink sink;
    emit_error(sink, request_id, code, message);
    append_sink(conn, std::move(sink));
}

void Server::deliver(Loop* current, std::uint32_t origin_loop,
                     std::uint64_t conn_id, Sink&& sink,
                     std::size_t ops_done) {
    if (sink.bytes.empty() && sink.sub_graph == nullptr && ops_done == 0) {
        return;
    }
    LoopMsg m;
    m.kind = LoopMsg::Kind::Done;
    m.conn_id = conn_id;
    m.bytes = std::move(sink.bytes);
    m.frames = sink.frames;
    m.ops_done = ops_done;
    m.sub_graph = sink.sub_graph;
    if (current != nullptr && current->index == origin_loop) {
        apply_done(*current, m);
    } else {
        post(origin_loop, std::move(m));
    }
}

// ---------------------------------------------------------------------------
// Graph registry

Server::GraphEntry* Server::find_graph(const std::string& name) {
    gt::LockGuard lk(graphs_mu_);
    const auto it = graphs_.find(name);
    return it == graphs_.end() ? nullptr : it->second.get();
}

void Server::pump_graph(const std::string& name) {
    if (stopping_.load(std::memory_order_relaxed)) {
        return;
    }
    GraphEntry* g = find_graph(name);
    if (g == nullptr) {
        return;
    }
    LoopMsg m;
    m.kind = LoopMsg::Kind::Pump;
    m.graph = g;
    post(g->owner_loop, std::move(m));
}

Status Server::open_entry(const std::string& name, std::uint8_t mode,
                          std::uint32_t owner_loop, GraphEntry*& out) {
    gt::LockGuard lk(graphs_mu_);
    const auto it = graphs_.find(name);
    if (it != graphs_.end()) {
        out = it->second.get();
        return Status::success();
    }
    const std::string dir = opts_.root + "/" + name;
    if (Status st = ensure_dir(dir); !st.ok()) {
        return st;
    }
    auto fresh = std::make_unique<GraphEntry>();
    recover::DurableOptions dopts;
    dopts.mode = mode == 0     ? recover::DurabilityMode::Off
                 : mode == 1   ? recover::DurabilityMode::Buffered
                 : mode == 2   ? recover::DurabilityMode::FsyncBatch
                               : opts_.durability;  // 255: server default
    recover::RecoveryInfo info;
    if (Status st = fresh->store.open(dir, dopts, &info); !st.ok()) {
        return st;
    }
    std::uint64_t term = 0;
    if (Status st = recover::load_term(dir, term); !st.ok()) {
        return st;  // a malformed fence must never silently read as 0
    }
    fresh->term.store(term, std::memory_order_relaxed);
    fresh->name = name;
    fresh->recovery_source = static_cast<std::uint8_t>(info.source);
    fresh->owner_loop = owner_loop;
    fresh->mode = dopts.mode;
    out = graphs_.emplace(name, std::move(fresh)).first->second.get();
    return Status::success();
}

Status Server::promote_local(const std::string& name,
                             std::uint64_t new_term) {
    GraphEntry* g = find_graph(name);
    if (g == nullptr) {
        return Status{StatusCode::InvalidArgument,
                      "graph '" + name + "' is not open"};
    }
    const std::uint64_t cur = g->term.load(std::memory_order_relaxed);
    if (new_term <= cur) {
        return Status{StatusCode::InvalidArgument,
                      "promotion term " + std::to_string(new_term) +
                          " does not exceed current term " +
                          std::to_string(cur),
                      cur};
    }
    // Durable before visible: if we crash here, recovery reads the bumped
    // term from the sidecar; the reverse order could serve writes under a
    // term that evaporates on power loss.
    if (Status st = recover::store_term(g->store.dir(), new_term);
        !st.ok()) {
        return st;
    }
    g->term.store(new_term, std::memory_order_relaxed);
    g->stale.store(false, std::memory_order_relaxed);
    return Status::success();
}

Status Server::open_local(const std::string& name, LocalGraph& out) {
    if (loops_.empty()) {
        return Status{StatusCode::InvalidArgument, "start() first"};
    }
    if (!validate_graph_name(name)) {
        return Status{StatusCode::InvalidArgument,
                      "graph names are [A-Za-z0-9_-]{1,64}, alnum first"};
    }
    GraphEntry* entry = nullptr;
    if (Status st = open_entry(name, 255, 0, entry); !st.ok()) {
        return st;
    }
    out.store = &entry->store;
    out.lock = &entry->state_lock;
    return Status::success();
}

void Server::handle_open_graph(Loop& loop, Conn& conn, const Frame& req) {
    PayloadReader r(req.payload);
    const std::string name = r.str();
    const std::uint8_t mode = r.u8();
    if (!r.ok() || !r.exhausted() || (mode > 2 && mode != 255)) {
        conn_error(conn, req.request_id, WireCode::BadPayload,
                   "OpenGraph payload: name | u8 durability(0..2, 255)");
        return;
    }
    if (!validate_graph_name(name)) {
        conn_error(conn, req.request_id, WireCode::BadGraphName,
                   "graph names are [A-Za-z0-9_-]{1,64}, alnum first");
        return;
    }
    GraphEntry* entry = nullptr;
    if (Status st = open_entry(name, mode, loop.index, entry); !st.ok()) {
        conn_error(conn, req.request_id, wire_code_of(st), st.to_string());
        return;
    }
    PayloadWriter w;
    w.u8(entry->recovery_source);
    Sink sink;
    emit_reply(sink, req, w.span());
    append_sink(conn, std::move(sink));
}

// ---------------------------------------------------------------------------
// Request routing

void Server::execute(Loop& loop, Conn& conn, const Frame& req) {
    const std::uint64_t begin_us = now_us();
    if (req.type == static_cast<std::uint8_t>(MsgType::Ping)) {
        Sink sink;
        emit_reply(sink, req, req.payload);
        append_sink(conn, std::move(sink));
        request_us_m_->record(now_us() - begin_us);
        return;
    }
    if (req.type == static_cast<std::uint8_t>(MsgType::OpenGraph)) {
        handle_open_graph(loop, conn, req);
        request_us_m_->record(now_us() - begin_us);
        return;
    }
    if (!is_owner_verb(req.type) && !is_read_verb(req.type)) {
        conn_error(conn, req.request_id, WireCode::UnknownType,
                   "unknown request type " + std::to_string(req.type));
        return;
    }
    // Everything from here is graph-scoped: the payload starts with the
    // name.
    PayloadReader r(req.payload);
    const std::string name = r.str();
    if (!r.ok()) {
        conn_error(conn, req.request_id, WireCode::BadPayload,
                   "graph-scoped payloads start with the graph name");
        return;
    }
    // Only the *exclusive* verbs are a primary's privilege: a read-only
    // replica still answers Subscribe/SubAck/Hello, which is what lets it
    // feed a downstream replica (chains) and report its role.
    if (needs_exclusive_lock(req.type) &&
        read_only_.load(std::memory_order_relaxed)) {
        conn_error(conn, req.request_id, WireCode::ReadOnly,
                   "read-only replica; route mutations to the primary");
        return;
    }
    GraphEntry* g = find_graph(name);
    if (g == nullptr) {
        conn_error(conn, req.request_id,
                   validate_graph_name(name) ? WireCode::UnknownGraph
                                             : WireCode::BadGraphName,
                   "graph '" + name + "' is not open (OpenGraph first)");
        return;
    }
    // A fenced graph (a higher term exists elsewhere) refuses mutations —
    // the split-brain guard. Reads stay up: stale data is labeled, not
    // hidden (Hello reports the fence).
    if (needs_exclusive_lock(req.type) &&
        g->stale.load(std::memory_order_relaxed)) {
        conn_error(conn, req.request_id, WireCode::StaleTerm,
                   "term " + std::to_string(g->term.load()) +
                       " is fenced: a higher-term primary exists; find it");
        return;
    }
    if (is_owner_verb(req.type)) {
        ++conn.pending;
        if (g->owner_loop == loop.index) {
            execute_owner(g, conn.id, loop.index, req);
        } else {
            cross_loop_m_->inc();
            LoopMsg m;
            m.kind = LoopMsg::Kind::Exec;
            m.graph = g;
            m.req = req;
            m.origin_loop = loop.index;
            m.conn_id = conn.id;
            post(g->owner_loop, std::move(m));
        }
        request_us_m_->record(now_us() - begin_us);
        return;
    }
    // Read verb.
    if (readers_ != nullptr) {
        ++conn.pending;
        readers_->submit(g, conn.id, loop.index, req);
        request_us_m_->record(now_us() - begin_us);
        return;
    }
    Sink sink;
    {
        gt::SharedLockGuard lk(g->state_lock);
        execute_read(g, req, sink);
    }
    if (g->has_deferred.load()) {
        if (g->owner_loop == loop.index) {
            drain_deferred(g);
        } else {
            LoopMsg m;
            m.kind = LoopMsg::Kind::Retry;
            m.graph = g;
            post(g->owner_loop, std::move(m));
        }
    }
    append_sink(conn, std::move(sink));
    request_us_m_->record(now_us() - begin_us);
}

// ---------------------------------------------------------------------------
// Owner-loop graph ops

void Server::execute_owner(GraphEntry* g, std::uint64_t conn_id,
                           std::uint32_t origin_loop, const Frame& req) {
    Loop* cur = loops_[g->owner_loop].get();
    DeferredOp op;
    op.conn_id = conn_id;
    op.origin_loop = origin_loop;
    op.req = req;
    if (!needs_exclusive_lock(req.type)) {
        // Subscribe/SubAck/Hello: owner-loop-private bookkeeping, but held
        // shared against the state lock — on a chained replica a Replicator
        // thread appends to the WAL these verbs read (durable_seq, tailer
        // open) under the exclusive lock.
        Sink sink;
        {
            gt::SharedLockGuard lk(g->state_lock);
            execute_owner_op(g, op, sink);
        }
        deliver(cur, origin_loop, conn_id, std::move(sink), 1);
        pump_subscribers(g);
        return;
    }
    if (g->has_deferred.load() || !g->state_lock.try_lock()) {
        // Readers hold the lock (or earlier ops already queued): keep FIFO
        // order. The flag store *before* the readers' post-release check is
        // what guarantees a Retry will arrive.
        g->deferred.push_back(std::move(op));
        g->has_deferred.store(true);
        deferred_m_->inc();
        drain_deferred(g);
        return;
    }
    Sink sink;
    execute_owner_op(g, op, sink);
    g->state_lock.unlock();
    deliver(cur, origin_loop, conn_id, std::move(sink), 1);
    pump_subscribers(g);
}

void Server::drain_deferred(GraphEntry* g) {
    Loop* cur = loops_[g->owner_loop].get();
    while (!g->deferred.empty()) {
        if (!g->state_lock.try_lock()) {
            // A reader is still in; its release posts a Retry (it observes
            // has_deferred, stored before our failed try_lock).
            return;
        }
        std::vector<std::pair<DeferredOp, Sink>> done;
        while (!g->deferred.empty()) {
            DeferredOp op = std::move(g->deferred.front());
            g->deferred.pop_front();
            Sink sink;
            execute_owner_op(g, op, sink);
            done.emplace_back(std::move(op), std::move(sink));
        }
        g->state_lock.unlock();
        for (auto& [op, sink] : done) {
            deliver(cur, op.origin_loop, op.conn_id, std::move(sink), 1);
        }
        pump_subscribers(g);
    }
    g->has_deferred.store(false);
    if (readers_ != nullptr) {
        readers_->unpark(g);
    }
}

void Server::execute_owner_op(GraphEntry* g, const DeferredOp& op,
                              Sink& sink) {
    const Frame& req = op.req;
    switch (req.type) {
        case static_cast<std::uint8_t>(MsgType::InsertBatch):
        case static_cast<std::uint8_t>(MsgType::DeleteBatch): {
            PayloadReader r(req.payload);
            (void)r.str();  // name, validated by the router
            const std::uint32_t n = r.u32();
            if (!r.ok() || r.remaining() != static_cast<std::size_t>(n) * 3 *
                                                sizeof(VertexId)) {
                emit_error(sink, req.request_id, WireCode::BadPayload,
                           "mutation payload: name | u32 n | n edges");
                return;
            }
            std::vector<Edge> edges(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                edges[i].src = r.u32();
                edges[i].dst = r.u32();
                edges[i].weight = r.u32();
            }
            core::GraphTinker& graph = g->store.graph();
            const Status st =
                req.type == static_cast<std::uint8_t>(MsgType::InsertBatch)
                    ? graph.insert_batch(edges)
                    : graph.delete_batch(edges);
            if (!st.ok()) {
                emit_error(sink, req.request_id, wire_code_of(st),
                           st.to_string());
                return;
            }
            PayloadWriter w;
            w.u64(graph.num_edges());
            emit_reply(sink, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Checkpoint):
            handle_checkpoint(g, op, sink);
            return;
        case static_cast<std::uint8_t>(MsgType::Sync): {
            PayloadReader r(req.payload);
            (void)r.str();
            if (!r.ok() || !r.exhausted()) {
                emit_error(sink, req.request_id, WireCode::BadPayload,
                           "Sync payload is just the graph name");
                return;
            }
            if (const Status st = g->store.sync(); !st.ok()) {
                emit_error(sink, req.request_id, wire_code_of(st),
                           st.to_string());
                return;
            }
            emit_reply(sink, req, {});
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Subscribe):
            handle_subscribe(g, op, sink);
            return;
        case static_cast<std::uint8_t>(MsgType::SubAck):
            handle_sub_ack(g, op, sink);
            return;
        case static_cast<std::uint8_t>(MsgType::Hello):
            handle_hello(g, op, sink);
            return;
        default:
            emit_error(sink, req.request_id, WireCode::Internal,
                       "non-owner verb routed to the owner loop");
            return;
    }
}

void Server::handle_hello(GraphEntry* g, const DeferredOp& op, Sink& sink) {
    PayloadReader r(op.req.payload);
    (void)r.str();  // name
    const std::uint64_t known_term = r.u64();
    if (!r.ok() || !r.exhausted()) {
        emit_error(sink, op.req.request_id, WireCode::BadPayload,
                   "Hello payload: name | u64 known_term");
        return;
    }
    const std::uint64_t cur = g->term.load(std::memory_order_relaxed);
    if (known_term > cur) {
        // The caller has witnessed a promotion this server missed: fence
        // the graph for good. This is exactly how a client that saw the
        // new primary protects itself from a resurrected old one.
        g->stale.store(true, std::memory_order_relaxed);
    }
    if (g->stale.load(std::memory_order_relaxed)) {
        emit_error(sink, op.req.request_id, WireCode::StaleTerm,
                   "term " + std::to_string(cur) + " is fenced (caller knows "
                       "term " + std::to_string(known_term) +
                       "); find the current primary");
        return;
    }
    const bool replica = read_only_.load(std::memory_order_relaxed);
    PayloadWriter w;
    w.u8(replica ? kRoleReplica : kRolePrimary);
    w.u64(cur);
    w.u64(g->mode == recover::DurabilityMode::Off
              ? 0
              : g->store.wal().durable_seq());
    w.u64(replica ? replication_lag_.load(std::memory_order_relaxed) : 0);
    emit_reply(sink, op.req, w.span());
}

void Server::handle_subscribe(GraphEntry* g, const DeferredOp& op,
                              Sink& sink) {
    PayloadReader r(op.req.payload);
    (void)r.str();  // name
    const std::uint64_t from_seq = r.u64();
    const std::uint64_t sub_term = r.u64();
    if (!r.ok() || !r.exhausted()) {
        emit_error(sink, op.req.request_id, WireCode::BadPayload,
                   "Subscribe payload: name | u64 from_seq | u64 term");
        return;
    }
    if (sub_term > g->term.load(std::memory_order_relaxed)) {
        // A subscriber from a newer history must never be fed ours.
        g->stale.store(true, std::memory_order_relaxed);
    }
    if (g->stale.load(std::memory_order_relaxed)) {
        emit_error(sink, op.req.request_id, WireCode::StaleTerm,
                   "term " + std::to_string(g->term.load()) +
                       " is fenced; subscribe to the current primary");
        return;
    }
    if (g->mode == recover::DurabilityMode::Off) {
        emit_error(sink, op.req.request_id, WireCode::WalError,
                   "subscribe requires a durable graph (durability off "
                   "keeps no WAL)");
        return;
    }
    auto tailer = std::make_unique<recover::WalTailer>();
    if (Status st = tailer->open(g->store.wal_path(), from_seq); !st.ok()) {
        emit_error(sink, op.req.request_id, wire_code_of(st),
                   st.to_string());
        return;
    }
    std::uint64_t floor = tailer->first_seq();
    if (floor == 0) {
        floor = g->store.wal().next_seq();  // fresh/pruned log, no records
    }
    if (from_seq + 1 < floor) {
        emit_error(sink, op.req.request_id, WireCode::SeqUnavailable,
                   "primary WAL starts at seq " + std::to_string(floor) +
                       "; from_seq " + std::to_string(from_seq) +
                       " was pruned — re-seed from a snapshot");
        return;
    }
    PayloadWriter w;
    w.u64(floor);
    w.u64(g->store.wal().durable_seq());
    w.u64(g->term.load(std::memory_order_relaxed));
    emit_reply(sink, op.req, w.span());
    sink.sub_graph = g;
    Subscriber sub;
    sub.conn_id = op.conn_id;
    sub.origin_loop = op.origin_loop;
    sub.request_id = op.req.request_id;
    sub.sent_seq = from_seq;
    sub.acked_seq = from_seq;
    sub.tailer = std::move(tailer);
    g->subscribers.push_back(std::move(sub));
    num_subs_.fetch_add(1);
}

void Server::handle_sub_ack(GraphEntry* g, const DeferredOp& op,
                            Sink& sink) {
    PayloadReader r(op.req.payload);
    (void)r.str();  // name
    const std::uint64_t acked = r.u64();
    if (!r.ok() || !r.exhausted()) {
        emit_error(sink, op.req.request_id, WireCode::BadPayload,
                   "SubAck payload: name | u64 acked_seq");
        return;
    }
    bool found = false;
    for (Subscriber& sub : g->subscribers) {
        if (sub.conn_id == op.conn_id) {
            sub.acked_seq = std::max(sub.acked_seq, acked);
            found = true;
        }
    }
    if (!found) {
        emit_error(sink, op.req.request_id, WireCode::BadPayload,
                   "no subscription on this connection");
        return;
    }
    emit_reply(sink, op.req, {});
}

void Server::handle_checkpoint(GraphEntry* g, const DeferredOp& op,
                               Sink& sink) {
    PayloadReader r(op.req.payload);
    (void)r.str();
    if (!r.ok() || !r.exhausted()) {
        emit_error(sink, op.req.request_id, WireCode::BadPayload,
                   "Checkpoint payload is just the graph name");
        return;
    }
    if (const Status st = g->store.checkpoint(); !st.ok()) {
        emit_error(sink, op.req.request_id, wire_code_of(st),
                   st.to_string());
        return;
    }
    // The checkpoint/prune fence: with followers attached, the WAL may be
    // pruned only once every follower has acked everything the snapshot
    // covers — otherwise a lagging follower's unshipped records would be
    // destroyed. Without followers the WAL is kept (the historical
    // behavior: prune stays an explicit, separate decision).
    if (!g->subscribers.empty() &&
        g->mode != recover::DurabilityMode::Off) {
        const std::uint64_t durable = g->store.wal().durable_seq();
        bool fenced = false;
        for (const Subscriber& sub : g->subscribers) {
            if (sub.acked_seq < durable) {
                fenced = true;
                break;
            }
        }
        if (!fenced) {
            if (const Status st = g->store.prune_wal(); !st.ok()) {
                emit_error(sink, op.req.request_id, wire_code_of(st),
                           st.to_string());
                return;
            }
            // The prune rewrote the log file and orphaned every tailer fd;
            // reopen each at its shipped position (== durable, thanks to
            // the fence) on the fresh log.
            Loop* cur = loops_[g->owner_loop].get();
            auto it = g->subscribers.begin();
            while (it != g->subscribers.end()) {
                it->tailer = std::make_unique<recover::WalTailer>();
                if (Status st = it->tailer->open(g->store.wal_path(),
                                                 it->sent_seq);
                    !st.ok()) {
                    Sink err;
                    emit_error(err, it->request_id, wire_code_of(st),
                               "subscription lost across WAL prune: " +
                                   st.to_string());
                    deliver(cur, it->origin_loop, it->conn_id,
                            std::move(err), 0);
                    it = g->subscribers.erase(it);
                    num_subs_.fetch_sub(1);
                    continue;
                }
                ++it;
            }
        }
    }
    emit_reply(sink, op.req, {});
}

void Server::pump_subscribers(GraphEntry* g) {
    if (g->subscribers.empty()) {
        return;
    }
    // Shared against the graph's state lock: on a chained replica the
    // Replicator thread appends to this WAL (under the exclusive lock)
    // while we tail it here — never concurrently, or the tailer could see
    // a torn record and durable_seq would be read mid-update. Callers on
    // the exclusive path release the lock before pumping.
    gt::SharedLockGuard lk(g->state_lock);
    Loop* cur = loops_[g->owner_loop].get();
    if (g->stale.load(std::memory_order_relaxed)) {
        // A fenced history must not keep feeding followers: end every
        // stream loudly so each follower re-subscribes to the new primary.
        for (Subscriber& sub : g->subscribers) {
            Sink err;
            emit_error(err, sub.request_id, WireCode::StaleTerm,
                       "upstream term " + std::to_string(g->term.load()) +
                           " is fenced; re-subscribe to the current primary");
            deliver(cur, sub.origin_loop, sub.conn_id, std::move(err), 0);
            num_subs_.fetch_sub(1);
        }
        g->subscribers.clear();
        return;
    }
    const std::uint64_t term = g->term.load(std::memory_order_relaxed);
    const std::uint64_t primary_seq = g->store.wal().durable_seq();
    auto it = g->subscribers.begin();
    while (it != g->subscribers.end()) {
        Subscriber& sub = *it;
        bool dropped = false;
        bool drained = false;
        std::optional<recover::WalRecord> carry;
        while (!drained && !dropped) {
            PayloadWriter rec_w;
            std::uint32_t count = 0;
            std::uint64_t last_shipped = sub.sent_seq;
            const auto add = [&](const recover::WalRecord& rec) {
                rec_w.u64(rec.seq);
                rec_w.u8(static_cast<std::uint8_t>(rec.type));
                rec_w.u32(static_cast<std::uint32_t>(rec.payload.size()));
                rec_w.bytes(rec.payload);
                last_shipped = rec.seq;
                ++count;
            };
            if (carry.has_value()) {
                add(*carry);
                carry.reset();
            }
            while (rec_w.span().size() < kShipChunkBytes &&
                   !carry.has_value()) {
                const std::size_t got = sub.tailer->poll(
                    [&](const recover::WalRecord& rec) {
                        const std::size_t need =
                            kShipRecordOverhead + rec.payload.size();
                        if (count > 0 &&
                            rec_w.span().size() + need > kShipBudget) {
                            carry = rec;  // next frame's first record
                            return;
                        }
                        add(rec);
                    },
                    1);
                if (got == 0) {
                    drained = true;
                    break;
                }
            }
            if (!sub.tailer->status().ok()) {
                Sink err;
                emit_error(err, sub.request_id, WireCode::WalError,
                           "WAL tail failed: " +
                               sub.tailer->status().to_string());
                deliver(cur, sub.origin_loop, sub.conn_id, std::move(err),
                        0);
                dropped = true;
                break;
            }
            if (count == 0) {
                break;  // caught up
            }
            if (rec_w.span().size() + 20 > kMaxFramePayload) {
                // A single record larger than a frame can carry cannot be
                // shipped; the follower must re-seed from a snapshot.
                Sink err;
                emit_error(err, sub.request_id, WireCode::TooLarge,
                           "WAL record exceeds the frame cap; re-seed the "
                           "replica from a snapshot");
                deliver(cur, sub.origin_loop, sub.conn_id, std::move(err),
                        0);
                dropped = true;
                break;
            }
            PayloadWriter w;
            w.u64(term);
            w.u64(primary_seq);
            w.u32(count);
            w.bytes(rec_w.span());
            Sink ship;
            encode_frame(
                ship.bytes,
                static_cast<std::uint8_t>(
                    static_cast<std::uint8_t>(MsgType::Subscribe) |
                    kResponseBit),
                sub.request_id, w.span(), kFlagShipData);
            // Shipped frames ride outside the request/response accounting:
            // frames = 0 keeps them from consuming the inflight budget.
            shipped_m_->inc();
            frames_tx_m_->inc();
            sub.sent_seq = last_shipped;
            deliver(cur, sub.origin_loop, sub.conn_id, std::move(ship), 0);
        }
        if (dropped) {
            it = g->subscribers.erase(it);
            num_subs_.fetch_sub(1);
        } else {
            ++it;
        }
    }
}

void Server::drop_subscriber(GraphEntry* g, std::uint64_t conn_id) {
    auto it = g->subscribers.begin();
    while (it != g->subscribers.end()) {
        if (it->conn_id == conn_id) {
            it = g->subscribers.erase(it);
            num_subs_.fetch_sub(1);
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------------------
// Read verbs (reader pool or inline, shared state-lock hold)

void Server::execute_read(GraphEntry* g, const Frame& req, Sink& sink) {
    PayloadReader r(req.payload);
    (void)r.str();  // name, validated by the router
    core::GraphTinker& graph = g->store.graph();
    PayloadWriter w;

    const auto finish = [&](const PayloadReader& rr) {
        if (!rr.ok() || !rr.exhausted()) {
            emit_error(sink, req.request_id, WireCode::BadPayload,
                       "malformed query payload");
            return false;
        }
        return true;
    };
    /// Shared shape of the BFS/SSSP/CC replies: k requested vertices, k
    /// property values.
    const auto run_props = [&](auto&& analysis,
                               const std::vector<VertexId>& targets) {
        analysis.run_from_scratch();
        w.u32(static_cast<std::uint32_t>(targets.size()));
        for (const VertexId v : targets) {
            w.u32(analysis.property(v));
        }
        emit_reply(sink, req, w.span());
    };
    const auto read_targets = [&](std::vector<VertexId>& out) {
        const std::uint32_t k = r.u32();
        if (!r.ok() ||
            r.remaining() != static_cast<std::size_t>(k) * sizeof(VertexId)) {
            return false;
        }
        out.resize(k);
        for (std::uint32_t i = 0; i < k; ++i) {
            out[i] = r.u32();
        }
        return true;
    };

    switch (req.type) {
        case static_cast<std::uint8_t>(MsgType::Degree): {
            const VertexId v = r.u32();
            if (!finish(r)) {
                return;
            }
            w.u64(graph.degree(v));
            emit_reply(sink, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Neighbors): {
            const VertexId v = r.u32();
            const std::uint32_t max = r.u32();
            if (!finish(r)) {
                return;
            }
            std::vector<std::pair<VertexId, Weight>> out;
            (void)graph.visit_out_edges(v, [&](VertexId dst, Weight wt) {
                out.emplace_back(dst, wt);
                return max == 0 || out.size() < max;
            });
            w.u32(static_cast<std::uint32_t>(out.size()));
            for (const auto& [dst, wt] : out) {
                w.u32(dst);
                w.u32(wt);
            }
            emit_reply(sink, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Bfs):
        case static_cast<std::uint8_t>(MsgType::Sssp): {
            const VertexId root = r.u32();
            std::vector<VertexId> targets;
            if (!read_targets(targets) || !finish(r)) {
                emit_error(sink, req.request_id, WireCode::BadPayload,
                           "payload: name | u32 root | u32 k | k targets");
                return;
            }
            if (req.type == static_cast<std::uint8_t>(MsgType::Bfs)) {
                engine::DynamicAnalysis<core::GraphTinker, engine::Bfs> a(
                    graph);
                a.set_root(root);
                run_props(a, targets);
            } else {
                engine::DynamicAnalysis<core::GraphTinker, engine::Sssp> a(
                    graph);
                a.set_root(root);
                run_props(a, targets);
            }
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Cc): {
            std::vector<VertexId> targets;
            if (!read_targets(targets) || !finish(r)) {
                emit_error(sink, req.request_id, WireCode::BadPayload,
                           "payload: name | u32 k | k targets");
                return;
            }
            engine::DynamicAnalysis<core::GraphTinker, engine::Cc> a(graph);
            run_props(a, targets);
            return;
        }
        case static_cast<std::uint8_t>(MsgType::EdgeCount): {
            if (!finish(r)) {
                return;
            }
            w.u64(graph.num_edges());
            w.u64(graph.num_vertices());
            emit_reply(sink, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::StatsJson): {
            if (!finish(r)) {
                return;
            }
            std::ostringstream os;
            obs::Exporter::write_json(os, graph.telemetry());
            const std::string json = os.str();
            if (json.size() > kMaxFramePayload - 64) {
                emit_error(sink, req.request_id, WireCode::TooLarge,
                           "stats snapshot exceeds the frame cap");
                return;
            }
            w.u32(static_cast<std::uint32_t>(json.size()));
            w.bytes(std::span<const unsigned char>(
                reinterpret_cast<const unsigned char*>(json.data()),
                json.size()));
            emit_reply(sink, req, w.span());
            return;
        }
        default:
            emit_error(sink, req.request_id, WireCode::UnknownType,
                       "unhandled query type");
            return;
    }
}

}  // namespace gt::net
