#include "net/server.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "obs/export.hpp"

#if defined(__linux__) && !defined(GT_NET_FORCE_POLL)
#define GT_NET_USE_EPOLL 1
#include <sys/epoll.h>
#else
#define GT_NET_USE_EPOLL 0
#include <poll.h>
#endif

namespace gt::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact the parsed prefix of a read buffer once it crosses this size —
/// below it, the memmove costs more than the memory it reclaims.
constexpr std::size_t kCompactThreshold = 64 * 1024;
/// Error messages are operator-facing, not a transport for bulk data.
constexpr std::size_t kMaxErrorMessage = 512;

[[nodiscard]] std::uint64_t now_us() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// mkdir -p, two levels deep at most (<root> and <root>/<name>).
[[nodiscard]] Status ensure_dir(const std::string& path) {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
        return Status::success();
    }
    return Status{StatusCode::IoError,
                  "mkdir('" + path + "') failed: " + std::strerror(errno)};
}

}  // namespace

// ---------------------------------------------------------------------------
// Poller — epoll on Linux, poll(2) everywhere else. Level-triggered in both
// backends: the loop re-arms nothing, it just leaves unread bytes in the
// kernel buffer and gets woken again.

class Server::Poller {
public:
    struct Event {
        int fd = -1;
        bool readable = false;
        bool writable = false;
        bool error = false;
    };

    [[nodiscard]] Status init() {
#if GT_NET_USE_EPOLL
        ep_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
        if (!ep_.valid()) {
            return Status{StatusCode::IoError,
                          std::string{"epoll_create1 failed: "} +
                              std::strerror(errno)};
        }
#endif
        return Status::success();
    }

    void add(int fd, bool want_write) {
#if GT_NET_USE_EPOLL
        epoll_event ev{};
        ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0U);
        ev.data.fd = fd;
        (void)::epoll_ctl(ep_.get(), EPOLL_CTL_ADD, fd, &ev);
#else
        want_write_[fd] = want_write;
#endif
    }

    void mod(int fd, bool want_write) {
#if GT_NET_USE_EPOLL
        epoll_event ev{};
        ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0U);
        ev.data.fd = fd;
        (void)::epoll_ctl(ep_.get(), EPOLL_CTL_MOD, fd, &ev);
#else
        want_write_[fd] = want_write;
#endif
    }

    void del(int fd) {
#if GT_NET_USE_EPOLL
        (void)::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, nullptr);
#else
        want_write_.erase(fd);
#endif
    }

    /// Blocks until at least one event; EINTR retries (the accept/event
    /// loop discipline — a signal must wake stop(), not kill the wait).
    [[nodiscard]] Status wait(std::vector<Event>& out) {
        out.clear();
#if GT_NET_USE_EPOLL
        epoll_event evs[64];
        int n = 0;
        for (;;) {
            n = ::epoll_wait(ep_.get(), evs, 64, -1);
            if (n >= 0) {
                break;
            }
            if (errno == EINTR) {
                continue;
            }
            return Status{StatusCode::IoError,
                          std::string{"epoll_wait failed: "} +
                              std::strerror(errno)};
        }
        for (int i = 0; i < n; ++i) {
            Event e;
            e.fd = evs[i].data.fd;
            e.readable = (evs[i].events & (EPOLLIN | EPOLLHUP)) != 0;
            e.writable = (evs[i].events & EPOLLOUT) != 0;
            e.error = (evs[i].events & EPOLLERR) != 0;
            out.push_back(e);
        }
#else
        std::vector<pollfd> pfds;
        pfds.reserve(want_write_.size());
        for (const auto& [fd, ww] : want_write_) {
            pollfd p{};
            p.fd = fd;
            p.events = static_cast<short>(POLLIN | (ww ? POLLOUT : 0));
            pfds.push_back(p);
        }
        int n = 0;
        for (;;) {
            n = ::poll(pfds.data(), pfds.size(), -1);
            if (n >= 0) {
                break;
            }
            if (errno == EINTR) {
                continue;
            }
            return Status{StatusCode::IoError,
                          std::string{"poll failed: "} +
                              std::strerror(errno)};
        }
        for (const pollfd& p : pfds) {
            if (p.revents == 0) {
                continue;
            }
            Event e;
            e.fd = p.fd;
            e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
            e.writable = (p.revents & POLLOUT) != 0;
            e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
            out.push_back(e);
        }
#endif
        return Status::success();
    }

private:
#if GT_NET_USE_EPOLL
    Fd ep_;
#else
    std::map<int, bool> want_write_;
#endif
};

// ---------------------------------------------------------------------------
// Lifecycle

Server::Server() = default;
Server::~Server() = default;

void Server::bind_metrics() {
    obs::Registry& r = *registry_;
    accepted_m_ = &r.counter("net.conns_accepted");
    closed_m_ = &r.counter("net.conns_closed");
    frames_rx_m_ = &r.counter("net.frames_rx");
    frames_tx_m_ = &r.counter("net.frames_tx");
    bytes_rx_m_ = &r.counter("net.bytes_rx");
    bytes_tx_m_ = &r.counter("net.bytes_tx");
    busy_shed_m_ = &r.counter("net.busy_shed");
    bad_frames_m_ = &r.counter("net.bad_frames");
    errors_tx_m_ = &r.counter("net.errors_tx");
    request_us_m_ = &r.histogram("net.request_us");
    conns_gauge_ = &r.gauge("net.open_conns");
    wbuf_gauge_ = &r.gauge("net.wbuf_bytes");
    graphs_gauge_ = &r.gauge("net.open_graphs");
}

void Server::update_gauges() {
    conns_gauge_->set(static_cast<double>(conns_.size()));
    graphs_gauge_->set(static_cast<double>(graphs_.size()));
    std::size_t wbuf = 0;
    for (const auto& [fd, conn] : conns_) {
        wbuf += conn->wbuf.size() - conn->wpos;
    }
    wbuf_gauge_->set(static_cast<double>(wbuf));
}

Status Server::start(const ServerOptions& options) {
    opts_ = options;
    if (opts_.root.empty()) {
        return Status{StatusCode::InvalidArgument,
                      "ServerOptions.root is required"};
    }
    opts_.max_inflight = std::max<std::size_t>(opts_.max_inflight, 1);
    opts_.parse_budget = std::max<std::size_t>(opts_.parse_budget, 1);
    registry_ = opts_.registry;
    if (registry_ == nullptr) {
        owned_registry_ = std::make_unique<obs::Registry>();
        registry_ = owned_registry_.get();
    }
    bind_metrics();
    if (Status st = ensure_dir(opts_.root); !st.ok()) {
        return st;
    }
    if (Status st = make_wake_pipe(wake_r_, wake_w_); !st.ok()) {
        return st;
    }
    if (Status st = tcp_listen(opts_.host, opts_.port, listen_fd_, port_);
        !st.ok()) {
        return st;
    }
    if (Status st = set_nonblocking(listen_fd_.get()); !st.ok()) {
        return st;
    }
    poller_ = std::make_unique<Poller>();
    if (Status st = poller_->init(); !st.ok()) {
        return st;
    }
    poller_->add(listen_fd_.get(), false);
    poller_->add(wake_r_.get(), false);
    return Status::success();
}

void Server::stop() noexcept {
    if (wake_w_.valid()) {
        wake(wake_w_.get());
    }
}

Status Server::run() {
    if (poller_ == nullptr) {
        return Status{StatusCode::InvalidArgument, "start() first"};
    }
    std::vector<Poller::Event> events;
    while (!stopping_) {
        if (Status st = poller_->wait(events); !st.ok()) {
            return st;
        }
        for (const Poller::Event& ev : events) {
            if (ev.fd == wake_r_.get()) {
                drain_wake(wake_r_.get());
                stopping_ = true;
                continue;
            }
            if (ev.fd == listen_fd_.get()) {
                accept_new();
                continue;
            }
            // The connection may already have been torn down by an earlier
            // event in this batch.
            if (conns_.find(ev.fd) == conns_.end()) {
                continue;
            }
            if (ev.error) {
                teardown(ev.fd);
                continue;
            }
            if (ev.writable) {
                handle_writable(ev.fd);
            }
            if (conns_.find(ev.fd) != conns_.end() && ev.readable) {
                handle_readable(ev.fd);
            }
        }
        drain_pending();
        update_gauges();
    }
    // Graceful teardown: drop connections, then close every store (the
    // DurableStore close flushes buffered WAL bytes; FsyncBatch syncs).
    while (!conns_.empty()) {
        teardown(conns_.begin()->first);
    }
    for (auto& [name, entry] : graphs_) {
        entry->store.close();
    }
    graphs_.clear();
    update_gauges();
    return Status::success();
}

// ---------------------------------------------------------------------------
// Connection plumbing

void Server::accept_new() {
    for (;;) {
        const int fd = accept_retry(listen_fd_.get());
        if (fd < 0) {
            return;  // EAGAIN (drained) or transient accept failure
        }
        accepted_m_->inc();
        if (conns_.size() >= opts_.max_conns) {
            // Over the connection cap: one best-effort Busy frame so a
            // well-behaved client backs off, then close.
            busy_shed_m_->inc();
            PayloadWriter w;
            w.u16(static_cast<std::uint16_t>(WireCode::Busy));
            w.str("connection limit reached; retry later");
            std::vector<unsigned char> frame;
            encode_frame(frame, kErrorType, 0, w.span());
            std::size_t sent = 0;
            (void)send_some(fd, frame.data(), frame.size(), sent);
            Fd(fd).reset();
            closed_m_->inc();
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = Fd(fd);
        if (!set_nonblocking(fd).ok()) {
            closed_m_->inc();
            continue;  // conn (and fd) dropped
        }
        poller_->add(fd, false);
        conns_.emplace(fd, std::move(conn));
    }
}

void Server::teardown(int fd) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) {
        return;
    }
    poller_->del(fd);
    conns_.erase(it);  // Fd destructor closes
    closed_m_->inc();
}

void Server::handle_readable(int fd) {
    Conn& conn = *conns_.at(fd);
    bool peer_done = false;
    for (;;) {
        const std::size_t base = conn.rbuf.size();
        // Cap the buffered request bytes: header + payload cap + one read
        // chunk of slack. A peer that streams past an unread frame this
        // large is either broken or hostile.
        if (base - conn.rpos > kFrameHeaderBytes + kMaxFramePayload) {
            teardown(fd);
            return;
        }
        conn.rbuf.resize(base + kReadChunk);
        std::size_t n = 0;
        const IoResult got =
            recv_some(conn.fd.get(), conn.rbuf.data() + base, kReadChunk, n);
        conn.rbuf.resize(base + n);
        if (got == IoResult::Ok) {
            bytes_rx_m_->add(n);
            continue;
        }
        if (got == IoResult::WouldBlock) {
            break;
        }
        if (got == IoResult::Closed) {
            // Half-close: the peer may still be reading responses to the
            // requests it already pipelined — answer them, flush, close.
            peer_done = true;
            break;
        }
        teardown(fd);
        return;
    }
    parse_and_execute(conn);
    if (peer_done) {
        conn.closing = true;
    }
    if (!flush_conn(conn)) {
        teardown(fd);
        return;
    }
    if (conn.closing && conn.wpos == conn.wbuf.size()) {
        teardown(fd);
    }
}

void Server::handle_writable(int fd) {
    Conn& conn = *conns_.at(fd);
    if (!flush_conn(conn)) {
        teardown(fd);
        return;
    }
    if (conn.closing && conn.wpos == conn.wbuf.size()) {
        teardown(fd);
    }
}

bool Server::flush_conn(Conn& conn) {
    while (conn.wpos < conn.wbuf.size()) {
        std::size_t n = 0;
        const IoResult sent =
            send_some(conn.fd.get(), conn.wbuf.data() + conn.wpos,
                      conn.wbuf.size() - conn.wpos, n);
        if (sent == IoResult::Ok) {
            conn.wpos += n;
            bytes_tx_m_->add(n);
            continue;
        }
        if (sent == IoResult::WouldBlock) {
            if (!conn.want_write) {
                conn.want_write = true;
                poller_->mod(conn.fd.get(), true);
            }
            return true;
        }
        // Closed (EPIPE/ECONNRESET — the client vanished mid-reply) or a
        // real error: either way the connection is done. MSG_NOSIGNAL in
        // send_some is what turned the SIGPIPE crash into this branch.
        return false;
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    conn.inflight = 0;
    if (conn.want_write) {
        conn.want_write = false;
        poller_->mod(conn.fd.get(), false);
    }
    return true;
}

void Server::parse_and_execute(Conn& conn) {
    for (std::size_t parsed = 0;
         parsed < opts_.parse_budget && !conn.closing; ++parsed) {
        const std::span<const unsigned char> rest(
            conn.rbuf.data() + conn.rpos, conn.rbuf.size() - conn.rpos);
        Frame req;
        std::size_t consumed = 0;
        DecodeError err;
        const DecodeResult got = decode_frame(rest, req, consumed, err);
        if (got == DecodeResult::NeedMore) {
            break;
        }
        if (got == DecodeResult::Bad) {
            // The stream cannot resynchronize after a framing violation:
            // reply once (the header's request id, when it parsed, lets
            // the client pair the failure), flush, close.
            bad_frames_m_->inc();
            reply_error(conn, req.request_id, err.code, err.message);
            conn.rpos = conn.rbuf.size();
            conn.closing = true;
            break;
        }
        conn.rpos += consumed;
        frames_rx_m_->inc();
        if (stopping_) {
            reply_error(conn, req.request_id, WireCode::ShuttingDown,
                        "server is shutting down");
            continue;
        }
        // Backpressure: shed (retryable Busy) instead of queueing beyond
        // the per-connection caps.
        if (conn.inflight >= opts_.max_inflight ||
            conn.wbuf.size() - conn.wpos > opts_.max_wbuf_bytes) {
            busy_shed_m_->inc();
            reply_error(conn, req.request_id, WireCode::Busy,
                        "connection backlog full; retry");
            continue;
        }
        execute(conn, req);
    }
    // Reclaim the parsed prefix (or the whole buffer when fully consumed).
    if (conn.rpos == conn.rbuf.size()) {
        conn.rbuf.clear();
        conn.rpos = 0;
    } else if (conn.rpos > kCompactThreshold) {
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.rpos));
        conn.rpos = 0;
    }
}

void Server::drain_pending() {
    // Passes repeat until no connection consumes anything: each pass gives
    // every connection at most parse_budget frames, so one deep pipeline
    // cannot starve the others within a pass.
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<int> fds;
        fds.reserve(conns_.size());
        for (const auto& [fd, conn] : conns_) {
            fds.push_back(fd);
        }
        for (const int fd : fds) {
            const auto it = conns_.find(fd);
            if (it == conns_.end()) {
                continue;  // torn down earlier in this pass
            }
            Conn& conn = *it->second;
            const std::size_t before = conn.rbuf.size() - conn.rpos;
            if (conn.closing || before < kFrameHeaderBytes) {
                continue;
            }
            parse_and_execute(conn);
            if (!flush_conn(conn)) {
                teardown(fd);
                continue;
            }
            if (conn.closing && conn.wpos == conn.wbuf.size()) {
                teardown(fd);
                continue;
            }
            if (conn.rbuf.size() - conn.rpos < before) {
                progress = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Request execution

void Server::reply(Conn& conn, const Frame& req,
                   std::span<const unsigned char> payload) {
    encode_frame(conn.wbuf,
                 static_cast<std::uint8_t>(req.type | kResponseBit),
                 req.request_id, payload);
    frames_tx_m_->inc();
    ++conn.inflight;
}

void Server::reply_error(Conn& conn, std::uint64_t request_id, WireCode code,
                         std::string_view message) {
    PayloadWriter w;
    w.u16(static_cast<std::uint16_t>(code));
    w.str(message.substr(0, kMaxErrorMessage));
    encode_frame(conn.wbuf, kErrorType, request_id, w.span());
    frames_tx_m_->inc();
    errors_tx_m_->inc();
    ++conn.inflight;
}

Server::GraphEntry* Server::find_graph(const std::string& name) {
    const auto it = graphs_.find(name);
    return it == graphs_.end() ? nullptr : it->second.get();
}

void Server::execute(Conn& conn, const Frame& req) {
    const std::uint64_t begin_us = now_us();
    switch (req.type) {
        case static_cast<std::uint8_t>(MsgType::Ping):
            reply(conn, req, req.payload);
            break;
        case static_cast<std::uint8_t>(MsgType::OpenGraph):
            handle_open_graph(conn, req);
            break;
        case static_cast<std::uint8_t>(MsgType::InsertBatch):
        case static_cast<std::uint8_t>(MsgType::DeleteBatch):
            handle_mutate(conn, req);
            break;
        case static_cast<std::uint8_t>(MsgType::Degree):
        case static_cast<std::uint8_t>(MsgType::Neighbors):
        case static_cast<std::uint8_t>(MsgType::Bfs):
        case static_cast<std::uint8_t>(MsgType::Sssp):
        case static_cast<std::uint8_t>(MsgType::Cc):
        case static_cast<std::uint8_t>(MsgType::EdgeCount):
        case static_cast<std::uint8_t>(MsgType::Checkpoint):
        case static_cast<std::uint8_t>(MsgType::StatsJson):
        case static_cast<std::uint8_t>(MsgType::Sync):
            handle_query(conn, req);
            break;
        default:
            reply_error(conn, req.request_id, WireCode::UnknownType,
                        "unknown request type " +
                            std::to_string(req.type));
            break;
    }
    request_us_m_->record(now_us() - begin_us);
}

void Server::handle_open_graph(Conn& conn, const Frame& req) {
    PayloadReader r(req.payload);
    const std::string name = r.str();
    const std::uint8_t mode = r.u8();
    if (!r.ok() || !r.exhausted() || (mode > 2 && mode != 255)) {
        reply_error(conn, req.request_id, WireCode::BadPayload,
                    "OpenGraph payload: name | u8 durability(0..2, 255)");
        return;
    }
    if (!validate_graph_name(name)) {
        reply_error(conn, req.request_id, WireCode::BadGraphName,
                    "graph names are [A-Za-z0-9_-]{1,64}, alnum first");
        return;
    }
    GraphEntry* entry = find_graph(name);
    if (entry == nullptr) {
        const std::string dir = opts_.root + "/" + name;
        if (const Status st = ensure_dir(dir); !st.ok()) {
            reply_error(conn, req.request_id, wire_code_of(st),
                        st.to_string());
            return;
        }
        auto fresh = std::make_unique<GraphEntry>();
        recover::DurableOptions dopts;
        dopts.mode = mode == 0     ? recover::DurabilityMode::Off
                     : mode == 1   ? recover::DurabilityMode::Buffered
                     : mode == 2   ? recover::DurabilityMode::FsyncBatch
                                   : opts_.durability;  // 255: server default
        recover::RecoveryInfo info;
        if (const Status st = fresh->store.open(dir, dopts, &info);
            !st.ok()) {
            reply_error(conn, req.request_id, wire_code_of(st),
                        st.to_string());
            return;
        }
        fresh->recovery_source = static_cast<std::uint8_t>(info.source);
        entry = fresh.get();
        graphs_.emplace(name, std::move(fresh));
    }
    PayloadWriter w;
    w.u8(entry->recovery_source);
    reply(conn, req, w.span());
}

void Server::handle_mutate(Conn& conn, const Frame& req) {
    PayloadReader r(req.payload);
    const std::string name = r.str();
    const std::uint32_t n = r.u32();
    if (!r.ok() ||
        r.remaining() != static_cast<std::size_t>(n) * 3 * sizeof(VertexId)) {
        reply_error(conn, req.request_id, WireCode::BadPayload,
                    "mutation payload: name | u32 n | n edges");
        return;
    }
    GraphEntry* entry = find_graph(name);
    if (entry == nullptr) {
        reply_error(conn, req.request_id, WireCode::UnknownGraph,
                    "graph '" + name + "' is not open (OpenGraph first)");
        return;
    }
    std::vector<Edge> edges(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        edges[i].src = r.u32();
        edges[i].dst = r.u32();
        edges[i].weight = r.u32();
    }
    core::GraphTinker& g = entry->store.graph();
    const Status st =
        req.type == static_cast<std::uint8_t>(MsgType::InsertBatch)
            ? g.insert_batch(edges)
            : g.delete_batch(edges);
    if (!st.ok()) {
        reply_error(conn, req.request_id, wire_code_of(st), st.to_string());
        return;
    }
    PayloadWriter w;
    w.u64(g.num_edges());
    reply(conn, req, w.span());
}

void Server::handle_query(Conn& conn, const Frame& req) {
    PayloadReader r(req.payload);
    const std::string name = r.str();
    if (!r.ok()) {
        reply_error(conn, req.request_id, WireCode::BadPayload,
                    "query payload starts with the graph name");
        return;
    }
    GraphEntry* entry = find_graph(name);
    if (entry == nullptr) {
        reply_error(conn, req.request_id,
                    validate_graph_name(name) ? WireCode::UnknownGraph
                                              : WireCode::BadGraphName,
                    "graph '" + name + "' is not open (OpenGraph first)");
        return;
    }
    core::GraphTinker& g = entry->store.graph();
    PayloadWriter w;

    const auto finish = [&](const PayloadReader& rr) {
        if (!rr.ok() || !rr.exhausted()) {
            reply_error(conn, req.request_id, WireCode::BadPayload,
                        "malformed query payload");
            return false;
        }
        return true;
    };
    /// Shared shape of the BFS/SSSP/CC replies: k requested vertices, k
    /// property values.
    const auto run_props = [&](auto&& analysis,
                               const std::vector<VertexId>& targets) {
        analysis.run_from_scratch();
        w.u32(static_cast<std::uint32_t>(targets.size()));
        for (const VertexId v : targets) {
            w.u32(analysis.property(v));
        }
        reply(conn, req, w.span());
    };
    const auto read_targets = [&](std::vector<VertexId>& out) {
        const std::uint32_t k = r.u32();
        if (!r.ok() ||
            r.remaining() != static_cast<std::size_t>(k) * sizeof(VertexId)) {
            return false;
        }
        out.resize(k);
        for (std::uint32_t i = 0; i < k; ++i) {
            out[i] = r.u32();
        }
        return true;
    };

    switch (req.type) {
        case static_cast<std::uint8_t>(MsgType::Degree): {
            const VertexId v = r.u32();
            if (!finish(r)) {
                return;
            }
            w.u64(g.degree(v));
            reply(conn, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Neighbors): {
            const VertexId v = r.u32();
            const std::uint32_t max = r.u32();
            if (!finish(r)) {
                return;
            }
            std::vector<std::pair<VertexId, Weight>> out;
            (void)g.visit_out_edges(v, [&](VertexId dst, Weight wt) {
                out.emplace_back(dst, wt);
                return max == 0 || out.size() < max;
            });
            w.u32(static_cast<std::uint32_t>(out.size()));
            for (const auto& [dst, wt] : out) {
                w.u32(dst);
                w.u32(wt);
            }
            reply(conn, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Bfs):
        case static_cast<std::uint8_t>(MsgType::Sssp): {
            const VertexId root = r.u32();
            std::vector<VertexId> targets;
            if (!read_targets(targets) || !finish(r)) {
                reply_error(conn, req.request_id, WireCode::BadPayload,
                            "payload: name | u32 root | u32 k | k targets");
                return;
            }
            if (req.type == static_cast<std::uint8_t>(MsgType::Bfs)) {
                engine::DynamicAnalysis<core::GraphTinker, engine::Bfs> a(g);
                a.set_root(root);
                run_props(a, targets);
            } else {
                engine::DynamicAnalysis<core::GraphTinker, engine::Sssp> a(
                    g);
                a.set_root(root);
                run_props(a, targets);
            }
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Cc): {
            std::vector<VertexId> targets;
            if (!read_targets(targets) || !finish(r)) {
                reply_error(conn, req.request_id, WireCode::BadPayload,
                            "payload: name | u32 k | k targets");
                return;
            }
            engine::DynamicAnalysis<core::GraphTinker, engine::Cc> a(g);
            run_props(a, targets);
            return;
        }
        case static_cast<std::uint8_t>(MsgType::EdgeCount): {
            if (!finish(r)) {
                return;
            }
            w.u64(g.num_edges());
            w.u64(g.num_vertices());
            reply(conn, req, w.span());
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Checkpoint): {
            if (!finish(r)) {
                return;
            }
            if (const Status st = entry->store.checkpoint(); !st.ok()) {
                reply_error(conn, req.request_id, wire_code_of(st),
                            st.to_string());
                return;
            }
            reply(conn, req, {});
            return;
        }
        case static_cast<std::uint8_t>(MsgType::Sync): {
            if (!finish(r)) {
                return;
            }
            if (const Status st = entry->store.sync(); !st.ok()) {
                reply_error(conn, req.request_id, wire_code_of(st),
                            st.to_string());
                return;
            }
            reply(conn, req, {});
            return;
        }
        case static_cast<std::uint8_t>(MsgType::StatsJson): {
            if (!finish(r)) {
                return;
            }
            std::ostringstream os;
            obs::Exporter::write_json(os, g.telemetry());
            const std::string json = os.str();
            if (json.size() > kMaxFramePayload - 64) {
                reply_error(conn, req.request_id, WireCode::TooLarge,
                            "stats snapshot exceeds the frame cap");
                return;
            }
            w.u32(static_cast<std::uint32_t>(json.size()));
            w.bytes(std::span<const unsigned char>(
                reinterpret_cast<const unsigned char*>(json.data()),
                json.size()));
            reply(conn, req, w.span());
            return;
        }
        default:
            reply_error(conn, req.request_id, WireCode::UnknownType,
                        "unhandled query type");
            return;
    }
}

}  // namespace gt::net
