// gt.net.v1 — the length-prefixed binary wire protocol `gt serve` speaks.
//
// Frame layout (all integers little-endian, the only byte order the
// codebase targets — same stance as the WAL and snapshot formats):
//
//   u32 crc32c   over everything after this field (len..payload)
//   u32 len      payload length in bytes (<= kMaxFramePayload)
//   u8  version  kProtoVersion; anything else is UnsupportedVersion
//   u8  type     MsgType; responses set kResponseBit, errors are kErrorType
//   u16 flags    per-type modifier bits; zero everywhere except Subscribe
//                responses, where kFlagShipData marks streamed WAL frames
//   u64 request_id  chosen by the client, echoed verbatim in the response —
//                   this is what makes pipelining work: N requests may be
//                   in flight and responses pair up by id (the server
//                   answers in order, but clients must not rely on that)
//   payload[len]
//
// The crc mirrors the WAL's discipline (crc32c, 0xFFFFFFFF init + final
// xor): a flipped bit anywhere after the crc field is detected, and a
// truncated frame is simply "need more bytes" until the connection closes.
// decode_frame never trusts `len` before bounding it, so a hostile header
// can cost at most kMaxFramePayload of buffering, never an unbounded
// allocation — the scan_wal torn-frame stance applied to sockets.
//
// Request payload conventions (composed with PayloadWriter/PayloadReader):
//
//   graph-scoped requests start with  u16 name_len | name bytes
//
//   Ping         opaque bytes, echoed verbatim
//   OpenGraph    name | u8 durability (0 off, 1 buffered, 2 fsync_batch,
//                255 server default)
//   InsertBatch  name | u32 n | n × (u32 src, u32 dst, u32 weight)
//   DeleteBatch  name | u32 n | n × (u32 src, u32 dst, u32 weight)
//   Degree       name | u32 v
//   Neighbors    name | u32 v | u32 max
//   Bfs / Sssp   name | u32 root | u32 k | k × u32 target
//   Cc           name | u32 k | k × u32 target
//   EdgeCount    name
//   Checkpoint   name
//   Sync         name
//   StatsJson    name
//   Subscribe    name | u64 from_seq | u64 term — stream committed WAL
//                records with seq > from_seq; `term` is the subscriber's
//                current primary term (fencing: a server whose term is
//                older than the subscriber's answers StaleTerm and fences
//                itself — it has been superseded by a promotion)
//   SubAck       name | u64 acked_seq — follower's applied low-water mark;
//                feeds the primary's checkpoint/prune fence
//   Hello        name | u64 known_term — role/term probe and fence. A
//                server whose term for the graph is older than known_term
//                answers StaleTerm and fences the graph (a promotion
//                elsewhere outranks it); otherwise it reports its role and
//                term so clients can find the current primary
//
// Response payloads:
//
//   Ping         the request payload, echoed
//   OpenGraph    u8 recovery source (RecoveryInfo::Source)
//   Hello        u8 role (0 primary/read-write, 1 replica/read-only) |
//                u64 term | u64 durable_seq | u64 lag_seqs
//   Insert/DeleteBatch  u64 store edge count after the batch committed
//   Degree       u64 degree
//   Neighbors    u32 n | n × (u32 dst, u32 weight)
//   Bfs/Sssp/Cc  u32 k | k × u32 property (kInfDistance = unreachable)
//   EdgeCount    u64 edges | u64 vertices
//   Checkpoint / Sync   empty
//   StatsJson    u32 len | len bytes of gt.obs.v1 JSON
//   SubAck       empty
//   Subscribe    a *stream* of frames, every one carrying the Subscribe
//                request_id and type Subscribe|kResponseBit:
//                  flags == 0 (exactly one, first): subscription ack —
//                    u64 wal_floor | u64 primary_seq | u64 term
//                    (wal_floor = lowest seq the primary can still serve;
//                     from_seq < wal_floor - 1 is refused SeqUnavailable;
//                     term is the server's current primary term — a
//                     subscriber adopts it when higher than its own)
//                  flags & kFlagShipData: shipped WAL records —
//                    u64 term | u64 primary_seq | u32 count |
//                    count × (u64 seq | u8 type | u32 len | len bytes)
//                    — records verbatim from the primary's WAL, replayable
//                    through the recover:: frame accumulator; a ship term
//                    below the subscriber's own is a stale primary and
//                    aborts the stream (StaleTerm)
//   error (kErrorType)  u16 WireCode | u16 msg_len | msg bytes
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace gt::net {

inline constexpr std::uint8_t kProtoVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Largest payload a peer may send or receive. Bounds the per-connection
/// buffer a hostile length prefix can demand; batches larger than this
/// must be split client-side (the CLI does).
inline constexpr std::uint32_t kMaxFramePayload = 1U << 24;  // 16 MiB
inline constexpr std::size_t kMaxGraphName = 64;

/// Request types. A response carries the request's type with kResponseBit
/// set; failures come back as kErrorType regardless of request type.
enum class MsgType : std::uint8_t {
    Ping = 1,
    OpenGraph = 2,
    InsertBatch = 3,
    DeleteBatch = 4,
    Degree = 5,
    Neighbors = 6,
    Bfs = 7,
    Sssp = 8,
    Cc = 9,
    EdgeCount = 10,
    Checkpoint = 11,
    StatsJson = 12,
    Sync = 13,
    Subscribe = 14,
    SubAck = 15,
    Hello = 16,
};

/// Hello's role byte: who answers writes here.
inline constexpr std::uint8_t kRolePrimary = 0;
inline constexpr std::uint8_t kRoleReplica = 1;

inline constexpr std::uint8_t kResponseBit = 0x80;
inline constexpr std::uint8_t kErrorType = 0xFF;
/// Set on Subscribe response frames that carry shipped WAL records (the
/// first, flag-less response is the subscription ack).
inline constexpr std::uint16_t kFlagShipData = 0x1;

[[nodiscard]] constexpr bool valid_request_type(std::uint8_t t) noexcept {
    return t >= static_cast<std::uint8_t>(MsgType::Ping) &&
           t <= static_cast<std::uint8_t>(MsgType::Hello);
}

/// Wire-level error classes. Client-visible and stable: codes are appended,
/// never renumbered (same contract as StatusCode).
enum class WireCode : std::uint16_t {
    Ok = 0,
    BadFrame = 1,            // header/crc/len violation; connection closes
    UnsupportedVersion = 2,  // frame version != kProtoVersion
    UnknownType = 3,         // type outside the MsgType range
    BadPayload = 4,          // payload too short / malformed for its type
    UnknownGraph = 5,        // graph-scoped op before OpenGraph
    BadGraphName = 6,        // name fails validate_graph_name
    TooLarge = 7,            // len > kMaxFramePayload; connection closes
    Busy = 8,                // shed by backpressure — retryable
    ShuttingDown = 9,        // server is draining; retryable elsewhere
    InvalidArgument = 10,
    ResourceExhausted = 11,
    IoError = 12,
    WalError = 13,
    FaultInjected = 14,
    Internal = 15,
    SeqUnavailable = 16,  // Subscribe from_seq older than the WAL retains
    ReadOnly = 17,        // replica serving reads; mutations go upstream
    StaleTerm = 18,       // sender/receiver term outranked by a promotion;
                          // never retry here — find the current primary
};

[[nodiscard]] constexpr std::string_view to_string(WireCode c) noexcept {
    switch (c) {
        case WireCode::Ok: return "ok";
        case WireCode::BadFrame: return "bad_frame";
        case WireCode::UnsupportedVersion: return "unsupported_version";
        case WireCode::UnknownType: return "unknown_type";
        case WireCode::BadPayload: return "bad_payload";
        case WireCode::UnknownGraph: return "unknown_graph";
        case WireCode::BadGraphName: return "bad_graph_name";
        case WireCode::TooLarge: return "too_large";
        case WireCode::Busy: return "busy";
        case WireCode::ShuttingDown: return "shutting_down";
        case WireCode::InvalidArgument: return "invalid_argument";
        case WireCode::ResourceExhausted: return "resource_exhausted";
        case WireCode::IoError: return "io_error";
        case WireCode::WalError: return "wal_error";
        case WireCode::FaultInjected: return "fault_injected";
        case WireCode::Internal: return "internal";
        case WireCode::SeqUnavailable: return "seq_unavailable";
        case WireCode::ReadOnly: return "read_only";
        case WireCode::StaleTerm: return "stale_term";
    }
    return "unknown";
}

/// Whether a client should retry the same request (possibly after backoff).
[[nodiscard]] constexpr bool retryable(WireCode c) noexcept {
    return c == WireCode::Busy || c == WireCode::ShuttingDown;
}

/// Maps a store/durability Status onto the wire. Lossy by design — the
/// message string carries the detail.
[[nodiscard]] WireCode wire_code_of(const Status& st) noexcept;

/// Maps a wire error back into a local Status for client callers. The
/// original WireCode rides in Status::detail so tests and retry loops can
/// recover it exactly.
[[nodiscard]] Status status_of_wire(WireCode code, std::string message);

/// One decoded frame.
struct Frame {
    std::uint8_t version = kProtoVersion;
    std::uint8_t type = 0;
    std::uint16_t flags = 0;
    std::uint64_t request_id = 0;
    std::vector<unsigned char> payload;
};

/// Appends one encoded frame (header + crc + payload) to `out`.
void encode_frame(std::vector<unsigned char>& out, std::uint8_t type,
                  std::uint64_t request_id,
                  std::span<const unsigned char> payload,
                  std::uint16_t flags = 0);

enum class DecodeResult : std::uint8_t {
    Ok,        ///< one frame decoded; `consumed` bytes may be dropped
    NeedMore,  ///< prefix of a valid frame; read more bytes
    Bad,       ///< unrecoverable framing violation; close the connection
};

struct DecodeError {
    WireCode code = WireCode::Ok;
    std::string message;
};

/// Decodes the first frame in `buf`. On Ok, `out` holds the frame and
/// `consumed` the bytes to discard. On Bad, `err` says why — oversized
/// length and crc mismatches are Bad (the stream can never resynchronize),
/// truncation is NeedMore. Never reads past `buf`, never allocates more
/// than the bounded payload.
[[nodiscard]] DecodeResult decode_frame(std::span<const unsigned char> buf,
                                        Frame& out, std::size_t& consumed,
                                        DecodeError& err);

/// Graph names become directory names under the server root, so they are
/// locked to a conservative charset: [A-Za-z0-9_-]{1,64}, first char
/// alphanumeric. Rejects path traversal by construction.
[[nodiscard]] bool validate_graph_name(std::string_view name) noexcept;

// ---- payload composition --------------------------------------------------

/// Little-endian append-only payload builder.
class PayloadWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { append(&v, sizeof(v)); }
    void u32(std::uint32_t v) { append(&v, sizeof(v)); }
    void u64(std::uint64_t v) { append(&v, sizeof(v)); }
    void bytes(std::span<const unsigned char> b) {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }
    /// u16 length prefix + bytes (graph names, error messages).
    void str(std::string_view s) {
        u16(static_cast<std::uint16_t>(s.size()));
        const auto* p = reinterpret_cast<const unsigned char*>(s.data());
        buf_.insert(buf_.end(), p, p + s.size());
    }
    void edges(std::span<const Edge> es) {
        u32(static_cast<std::uint32_t>(es.size()));
        for (const Edge& e : es) {
            u32(e.src);
            u32(e.dst);
            u32(e.weight);
        }
    }

    [[nodiscard]] const std::vector<unsigned char>& data() const noexcept {
        return buf_;
    }
    [[nodiscard]] std::span<const unsigned char> span() const noexcept {
        return buf_;
    }

private:
    void append(const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    std::vector<unsigned char> buf_;
};

/// Bounds-checked little-endian payload cursor. Overruns latch `ok() ==
/// false` and every later read returns zero — callers validate once at the
/// end instead of after every field, and a malformed payload can never read
/// out of bounds.
class PayloadReader {
public:
    explicit PayloadReader(std::span<const unsigned char> buf) noexcept
        : buf_(buf) {}

    [[nodiscard]] std::uint8_t u8() noexcept {
        std::uint8_t v = 0;
        read(&v, sizeof(v));
        return v;
    }
    [[nodiscard]] std::uint16_t u16() noexcept {
        std::uint16_t v = 0;
        read(&v, sizeof(v));
        return v;
    }
    [[nodiscard]] std::uint32_t u32() noexcept {
        std::uint32_t v = 0;
        read(&v, sizeof(v));
        return v;
    }
    [[nodiscard]] std::uint64_t u64() noexcept {
        std::uint64_t v = 0;
        read(&v, sizeof(v));
        return v;
    }
    /// Reads a u16-length-prefixed string.
    [[nodiscard]] std::string str() {
        const std::uint16_t len = u16();
        if (pos_ + len > buf_.size()) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                      len);
        pos_ += len;
        return s;
    }

    [[nodiscard]] bool ok() const noexcept { return ok_; }
    [[nodiscard]] bool exhausted() const noexcept {
        return ok_ && pos_ == buf_.size();
    }
    [[nodiscard]] std::size_t remaining() const noexcept {
        return buf_.size() - pos_;
    }
    [[nodiscard]] std::span<const unsigned char> rest() const noexcept {
        return buf_.subspan(pos_);
    }

private:
    void read(void* out, std::size_t n) noexcept {
        if (!ok_ || pos_ + n > buf_.size()) {
            ok_ = false;
            return;
        }
        std::memcpy(out, buf_.data() + pos_, n);
        pos_ += n;
    }

    std::span<const unsigned char> buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace gt::net
