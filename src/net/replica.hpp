// Warm-replica feeder: the consuming half of the WAL-shipping pipeline.
//
// A Replicator sits between a blocking net::Client subscription and a local
// DurableStore that a read_only Server is serving. Each shipped frame's
// records are (1) appended VERBATIM to the replica's own WAL via
// WalWriter::append_frame — carrying the primary's sequence numbers, so the
// two logs stay byte-compatible and re-subscribing after a crash resumes at
// exactly durable_seq() — and (2) fed through a WalApplier into the graph
// while holding the graph's state lock exclusively (the server's reads take
// it shared). The graph's update log is detached for the Replicator's
// lifetime: the apply path must not tee back into the WAL it is mirroring,
// or the follower's log would diverge from the primary's frame boundaries.
//
// Crash consistency: records of a still-open frame are buffered in memory
// and hit the WAL only when the frame's commit/solo record arrives, so the
// replica's durable_seq() always equals its last *applied committed* seq —
// there is never a torn frame to reconcile on restart.
//
// Lag accounting: every ship frame carries the primary's committed seq at
// send time; `replication.lag_seqs` (a gauge on the store's registry) is
// primary_seq - durable_seq, clamped at 0. After each applied frame the
// Replicator acks durable_seq upstream, feeding the primary's
// checkpoint/prune fence.
//
// Single-threaded like the Client it wraps: run() (or pump_once()) must be
// driven from one thread. The serving Server threads only read.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "recover/wal.hpp"
#include "util/status.hpp"

namespace gt::net {

struct ReplicatorOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Graph name on the primary (and locally; they must match so seqs
    /// mean the same store).
    std::string graph;
    /// Durability requested for the remote OpenGraph (255 = server
    /// default). The *local* store's mode comes from its own open.
    std::uint8_t durability = 255;
    /// When set, the Replicator reports its lag there after every applied
    /// frame so the serving side's Hello replies carry it.
    Server* server = nullptr;
};

class Replicator {
public:
    Replicator() = default;
    ~Replicator() { close(); }

    Replicator(const Replicator&) = delete;
    Replicator& operator=(const Replicator&) = delete;

    /// Connects, opens the remote graph, and subscribes from the local
    /// store's durable_seq(). `local` must come from Server::open_local()
    /// on a read_only server whose store has a durable WAL (the mirror
    /// path needs somewhere to append). Detaches the graph's update log
    /// until close().
    [[nodiscard]] Status start(const ReplicatorOptions& opts,
                               Server::LocalGraph local);

    /// Blocks for one shipped frame and applies it. IoError with the
    /// primary gone; any apply/append violation is returned and the stream
    /// should be considered dead. A positive `timeout_ms` bounds the wait:
    /// TimedOut means "stream quiet", not "stream dead" — the subscription
    /// stays live and the next pump resumes (even mid-frame).
    [[nodiscard]] Status pump_once(std::int64_t timeout_ms = -1);

    /// Pumps until the last ship frame reports no outstanding seqs
    /// (lag_seqs() == 0). Returns the first error.
    [[nodiscard]] Status pump_until_current();

    /// Pumps until the stream dies (primary exit/kill surfaces as
    /// IoError, which is returned). A positive `heartbeat_ms` turns quiet
    /// periods into liveness probes: after `heartbeat_ms` without a ship
    /// frame the primary is pinged on the same connection (replies
    /// interleave safely with stream frames); a failed probe returns its
    /// error — that is the failover trigger.
    [[nodiscard]] Status run(std::int64_t heartbeat_ms = 0);

    /// Ends the subscription, reattaches the store's WAL as the graph's
    /// update log, and drops the connection. Idempotent.
    void close() noexcept;

    /// Raw socket fd of the upstream connection (-1 before start) — lets a
    /// signal handler ::shutdown() a blocking pump from outside.
    [[nodiscard]] int client_native_handle() const noexcept {
        return client_.native_handle();
    }

    /// Seq of the last committed record applied (== local durable_seq).
    [[nodiscard]] std::uint64_t applied_seq() const noexcept;
    /// primary committed seq (from the newest ship frame) minus
    /// applied_seq, clamped at 0.
    [[nodiscard]] std::uint64_t lag_seqs() const noexcept;
    /// Highest term witnessed on this stream (local sidecar at start, then
    /// Subscribe ack and ship frames). A promotion must exceed it.
    [[nodiscard]] std::uint64_t term() const noexcept { return term_; }

private:
    [[nodiscard]] Status apply_frame(const Frame& f);

    Client client_;
    RemoteGraph remote_;
    Subscription sub_;
    Server::LocalGraph local_{};
    Server* report_to_ = nullptr;
    std::string graph_;  // name on the serving side, for pump_graph
    std::unique_ptr<recover::WalApplier> applier_;
    std::vector<recover::WalRecord> frame_buf_;  // open frame, not yet durable
    std::uint64_t primary_seq_ = 0;
    std::uint64_t term_ = 0;
    obs::Gauge* lag_gauge_ = nullptr;
    bool started_ = false;
};

}  // namespace gt::net
