#include "net/client.hpp"

#include <cstring>

namespace gt::net {

namespace {

[[nodiscard]] Status decode_error_payload(const Frame& f) {
    PayloadReader r(f.payload);
    const auto code = static_cast<WireCode>(r.u16());
    const std::string msg = r.str();
    if (!r.ok()) {
        return Status{StatusCode::IoError,
                      "malformed error frame from server"};
    }
    return status_of_wire(code, "server: " + msg);
}

}  // namespace

Status Client::connect(const std::string& host, std::uint16_t port) {
    return tcp_connect(host, port, fd_);
}

Status Client::send_request(MsgType type,
                            std::span<const unsigned char> payload,
                            std::uint64_t& request_id) {
    if (!fd_.valid()) {
        return Status{StatusCode::InvalidArgument, "client not connected"};
    }
    if (payload.size() > kMaxFramePayload) {
        return Status{StatusCode::InvalidArgument,
                      "request payload exceeds kMaxFramePayload; split the "
                      "batch"};
    }
    request_id = next_id_++;
    frame_buf_.clear();
    encode_frame(frame_buf_, static_cast<std::uint8_t>(type), request_id,
                 payload);
    return send_all(fd_.get(), frame_buf_);
}

Status Client::recv_reply(Frame& out) {
    if (!fd_.valid()) {
        return Status{StatusCode::InvalidArgument, "client not connected"};
    }
    // Frames arrive back-to-back when the server pipelines responses, so
    // recv_buf_ may already hold the next one (or a prefix of it).
    for (;;) {
        std::size_t consumed = 0;
        DecodeError err;
        switch (decode_frame(recv_buf_, out, consumed, err)) {
            case DecodeResult::Ok:
                recv_buf_.erase(recv_buf_.begin(),
                                recv_buf_.begin() +
                                    static_cast<std::ptrdiff_t>(consumed));
                if (out.type == kErrorType) {
                    return decode_error_payload(out);
                }
                if ((out.type & kResponseBit) == 0) {
                    return Status{StatusCode::IoError,
                                  "server sent a non-response frame"};
                }
                return Status::success();
            case DecodeResult::Bad:
                close();
                return Status{StatusCode::IoError,
                              "undecodable reply frame (" +
                                  std::string(to_string(err.code)) +
                                  "): " + err.message};
            case DecodeResult::NeedMore:
                break;
        }
        const std::size_t base = recv_buf_.size();
        recv_buf_.resize(base + 64 * 1024);
        std::size_t n = 0;
        const IoResult got =
            recv_some(fd_.get(), recv_buf_.data() + base, 64 * 1024, n);
        recv_buf_.resize(base + n);
        if (got == IoResult::Ok) {
            continue;
        }
        close();
        if (got == IoResult::Closed) {
            return Status{StatusCode::IoError,
                          base == 0 ? "server closed the connection"
                                    : "server closed mid-frame"};
        }
        return Status{StatusCode::IoError,
                      std::string{"recv failed: "} + std::strerror(errno)};
    }
}

Status Client::round_trip(MsgType type,
                          std::span<const unsigned char> payload,
                          Frame& reply) {
    std::uint64_t id = 0;
    if (Status st = send_request(type, payload, id); !st.ok()) {
        return st;
    }
    if (Status st = recv_reply(reply); !st.ok()) {
        return st;
    }
    if (reply.request_id != id) {
        close();
        return Status{StatusCode::IoError,
                      "reply id mismatch (protocol desync)"};
    }
    if (reply.type !=
        (static_cast<std::uint8_t>(type) | kResponseBit)) {
        close();
        return Status{StatusCode::IoError, "reply type mismatch"};
    }
    return Status::success();
}

// ---- typed wrappers -------------------------------------------------------

Status Client::ping(std::span<const unsigned char> echo) {
    Frame reply;
    if (Status st = round_trip(MsgType::Ping, echo, reply); !st.ok()) {
        return st;
    }
    if (reply.payload.size() != echo.size() ||
        (!echo.empty() &&
         std::memcmp(reply.payload.data(), echo.data(), echo.size()) != 0)) {
        return Status{StatusCode::IoError, "ping echo mismatch"};
    }
    return Status::success();
}

Status Client::open_graph(const std::string& name, std::uint8_t durability,
                          std::uint8_t* recovery_source) {
    PayloadWriter w;
    w.str(name);
    w.u8(durability);
    Frame reply;
    if (Status st = round_trip(MsgType::OpenGraph, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint8_t source = r.u8();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed OpenGraph reply"};
    }
    if (recovery_source != nullptr) {
        *recovery_source = source;
    }
    return Status::success();
}

Status Client::insert_batch(const std::string& name,
                            std::span<const Edge> edges,
                            std::uint64_t* edge_count) {
    PayloadWriter w;
    w.str(name);
    w.edges(edges);
    Frame reply;
    if (Status st = round_trip(MsgType::InsertBatch, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint64_t count = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed InsertBatch reply"};
    }
    if (edge_count != nullptr) {
        *edge_count = count;
    }
    return Status::success();
}

Status Client::delete_batch(const std::string& name,
                            std::span<const Edge> edges,
                            std::uint64_t* edge_count) {
    PayloadWriter w;
    w.str(name);
    w.edges(edges);
    Frame reply;
    if (Status st = round_trip(MsgType::DeleteBatch, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint64_t count = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed DeleteBatch reply"};
    }
    if (edge_count != nullptr) {
        *edge_count = count;
    }
    return Status::success();
}

Status Client::degree(const std::string& name, VertexId v,
                      std::uint64_t& out) {
    PayloadWriter w;
    w.str(name);
    w.u32(v);
    Frame reply;
    if (Status st = round_trip(MsgType::Degree, w.span(), reply); !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    out = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed Degree reply"};
    }
    return Status::success();
}

Status Client::neighbors(const std::string& name, VertexId v,
                         std::vector<std::pair<VertexId, Weight>>& out,
                         std::uint32_t max) {
    PayloadWriter w;
    w.str(name);
    w.u32(v);
    w.u32(max);
    Frame reply;
    if (Status st = round_trip(MsgType::Neighbors, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint32_t n = r.u32();
    out.clear();
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const VertexId dst = r.u32();
        const Weight wt = r.u32();
        out.emplace_back(dst, wt);
    }
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed Neighbors reply"};
    }
    return Status::success();
}

namespace {

[[nodiscard]] Status parse_props(const Frame& reply, std::size_t expect,
                                 std::vector<std::uint32_t>& out,
                                 const char* what) {
    PayloadReader r(reply.payload);
    const std::uint32_t k = r.u32();
    if (k != expect) {
        return Status{StatusCode::IoError,
                      std::string{"short "} + what + " reply"};
    }
    out.resize(k);
    for (std::uint32_t i = 0; i < k; ++i) {
        out[i] = r.u32();
    }
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError,
                      std::string{"malformed "} + what + " reply"};
    }
    return Status::success();
}

}  // namespace

Status Client::bfs(const std::string& name, VertexId root,
                   std::span<const VertexId> targets,
                   std::vector<std::uint32_t>& out) {
    PayloadWriter w;
    w.str(name);
    w.u32(root);
    w.u32(static_cast<std::uint32_t>(targets.size()));
    for (const VertexId t : targets) {
        w.u32(t);
    }
    Frame reply;
    if (Status st = round_trip(MsgType::Bfs, w.span(), reply); !st.ok()) {
        return st;
    }
    return parse_props(reply, targets.size(), out, "Bfs");
}

Status Client::sssp(const std::string& name, VertexId root,
                    std::span<const VertexId> targets,
                    std::vector<std::uint32_t>& out) {
    PayloadWriter w;
    w.str(name);
    w.u32(root);
    w.u32(static_cast<std::uint32_t>(targets.size()));
    for (const VertexId t : targets) {
        w.u32(t);
    }
    Frame reply;
    if (Status st = round_trip(MsgType::Sssp, w.span(), reply); !st.ok()) {
        return st;
    }
    return parse_props(reply, targets.size(), out, "Sssp");
}

Status Client::cc(const std::string& name, std::span<const VertexId> targets,
                  std::vector<std::uint32_t>& out) {
    PayloadWriter w;
    w.str(name);
    w.u32(static_cast<std::uint32_t>(targets.size()));
    for (const VertexId t : targets) {
        w.u32(t);
    }
    Frame reply;
    if (Status st = round_trip(MsgType::Cc, w.span(), reply); !st.ok()) {
        return st;
    }
    return parse_props(reply, targets.size(), out, "Cc");
}

Status Client::edge_count(const std::string& name, std::uint64_t& edges,
                          std::uint64_t& vertices) {
    PayloadWriter w;
    w.str(name);
    Frame reply;
    if (Status st = round_trip(MsgType::EdgeCount, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    edges = r.u64();
    vertices = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed EdgeCount reply"};
    }
    return Status::success();
}

Status Client::checkpoint(const std::string& name) {
    PayloadWriter w;
    w.str(name);
    Frame reply;
    return round_trip(MsgType::Checkpoint, w.span(), reply);
}

Status Client::sync(const std::string& name) {
    PayloadWriter w;
    w.str(name);
    Frame reply;
    return round_trip(MsgType::Sync, w.span(), reply);
}

Status Client::stats_json(const std::string& name, std::string& json) {
    PayloadWriter w;
    w.str(name);
    Frame reply;
    if (Status st = round_trip(MsgType::StatsJson, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint32_t len = r.u32();
    if (!r.ok() || r.remaining() != len) {
        return Status{StatusCode::IoError, "malformed StatsJson reply"};
    }
    const auto rest = r.rest();
    json.assign(reinterpret_cast<const char*>(rest.data()), rest.size());
    return Status::success();
}

}  // namespace gt::net
