#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/failpoint.hpp"

namespace gt::net {

namespace {

[[nodiscard]] Status decode_error_payload(const Frame& f) {
    PayloadReader r(f.payload);
    const auto code = static_cast<WireCode>(r.u16());
    const std::string msg = r.str();
    if (!r.ok()) {
        return Status{StatusCode::IoError,
                      "malformed error frame from server"};
    }
    return status_of_wire(code, "server: " + msg);
}

[[nodiscard]] Status parse_props(const Frame& reply, std::size_t expect,
                                 std::vector<std::uint32_t>& out,
                                 const char* what) {
    PayloadReader r(reply.payload);
    const std::uint32_t k = r.u32();
    if (k != expect) {
        return Status{StatusCode::IoError,
                      std::string{"short "} + what + " reply"};
    }
    out.resize(k);
    for (std::uint32_t i = 0; i < k; ++i) {
        out[i] = r.u32();
    }
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError,
                      std::string{"malformed "} + what + " reply"};
    }
    return Status::success();
}

}  // namespace

// ---- Client: transport ----------------------------------------------------

Status Client::connect(const std::string& host, std::uint16_t port) {
    return connect(std::vector<Endpoint>{{host, port}});
}

Status Client::connect(std::vector<Endpoint> endpoints) {
    if (endpoints.empty()) {
        return Status{StatusCode::InvalidArgument, "endpoint list is empty"};
    }
    close();
    endpoints_ = std::move(endpoints);
    ep_index_ = 0;
    graphs_.clear();
    // highest_term_ survives a re-connect on purpose: a term, once seen,
    // must keep fencing for the lifetime of this client.
    return reconnect();
}

Status Client::reconnect() {
    close();
    Status last{StatusCode::InvalidArgument, "client has no endpoints"};
    const std::size_t n = endpoints_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = (ep_index_ + i) % n;
        const Endpoint& ep = endpoints_[idx];
        const Deadline deadline =
            cfg_.connect_timeout_ms == 0
                ? Deadline{}
                : Deadline::after(
                      std::chrono::milliseconds(cfg_.connect_timeout_ms));
        Fd fd;
        if (Status st = tcp_connect(ep.host, ep.port, fd, deadline);
            !st.ok()) {
            last = st;
            continue;
        }
        fd_ = std::move(fd);
        ep_index_ = idx;
        // Replay the session: every graph this client opened gets re-opened
        // (restoring its durability choice) and greeted under the highest
        // term we have witnessed — the greeting is what keeps a resurrected
        // stale primary from quietly accepting our writes.
        in_reconnect_ = true;
        Status replay = Status::success();
        for (const OpenedGraph& g : graphs_) {
            RemoteGraph handle;
            replay = open(g.name, handle, g.durability);
            if (replay.ok()) {
                HelloInfo info;
                replay = handle.hello(info);
            }
            if (!replay.ok()) {
                break;
            }
        }
        in_reconnect_ = false;
        if (replay.ok()) {
            return Status::success();
        }
        last = replay;
        close();
    }
    return last;
}

bool Client::retryable_failure(const Status& st) const noexcept {
    if (st.ok()) {
        return false;
    }
    // Transport-level loss and deadline expiry: the server (or this
    // endpoint) is gone or wedged — reconnect and resend under a fresh id.
    if (st.code == StatusCode::TimedOut || st.code == StatusCode::IoError) {
        return true;
    }
    // Wire errors carry their WireCode in Status::detail.
    const auto wire = static_cast<WireCode>(st.detail);
    if (wire == WireCode::Busy || wire == WireCode::ShuttingDown) {
        return true;
    }
    // "You are talking to the wrong server": a replica that has not
    // promoted yet (ReadOnly) or a fenced stale primary (StaleTerm). Only
    // retryable when there is another endpoint to hunt through.
    if ((wire == WireCode::ReadOnly || wire == WireCode::StaleTerm) &&
        endpoints_.size() > 1) {
        return true;
    }
    return false;
}

void Client::backoff(std::uint32_t attempt) {
    if (cfg_.backoff_base_ms == 0) {
        return;
    }
    if (rng_state_ == 0) {
        rng_state_ =
            static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count()) ^
            reinterpret_cast<std::uintptr_t>(this);
        rng_state_ |= 1;  // xorshift must never see zero
    }
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const std::uint32_t shift = attempt > 10 ? 10U : attempt;
    std::uint64_t ms = std::uint64_t{cfg_.backoff_base_ms} << (shift - 1);
    ms = std::min<std::uint64_t>(ms, cfg_.backoff_max_ms);
    // Jitter to [ms/2, ms): concurrent clients must not retry in lockstep.
    const double u =
        static_cast<double>(rng_state_ >> 11) / 9007199254740992.0;
    ms = static_cast<std::uint64_t>(static_cast<double>(ms) * (0.5 + u / 2));
    if (ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
}

Status Client::send_request(MsgType type,
                            std::span<const unsigned char> payload,
                            std::uint64_t& request_id) {
    if (!fd_.valid()) {
        return Status{StatusCode::InvalidArgument, "client not connected"};
    }
    if (payload.size() > kMaxFramePayload) {
        return Status{StatusCode::InvalidArgument,
                      "request payload exceeds kMaxFramePayload; split the "
                      "batch"};
    }
    request_id = next_id_++;
    frame_buf_.clear();
    encode_frame(frame_buf_, static_cast<std::uint8_t>(type), request_id,
                 payload);
    if (Status st = send_all(fd_.get(), frame_buf_, op_deadline());
        !st.ok()) {
        // A failed (or timed-out) send may have left a partial frame on the
        // wire; the connection's framing is unknowable. Drop it.
        close();
        return st;
    }
    pending_.insert(request_id);
    return Status::success();
}

Status Client::read_frame(Frame& out, Deadline deadline) {
    if (!fd_.valid()) {
        return Status{StatusCode::InvalidArgument, "client not connected"};
    }
    // Frames arrive back-to-back when the server pipelines responses, so
    // recv_buf_ may already hold the next one (or a prefix of it).
    for (;;) {
        std::size_t consumed = 0;
        DecodeError err;
        switch (decode_frame(recv_buf_, out, consumed, err)) {
            case DecodeResult::Ok:
                recv_buf_.erase(recv_buf_.begin(),
                                recv_buf_.begin() +
                                    static_cast<std::ptrdiff_t>(consumed));
                if (GT_FAILPOINT_HIT("net.client.drop_frame")) {
                    // The decoded frame evaporates, as if the network ate
                    // the response: the caller's deadline now governs.
                    continue;
                }
                return Status::success();
            case DecodeResult::Bad:
                close();
                return Status{StatusCode::IoError,
                              "undecodable reply frame (" +
                                  std::string(to_string(err.code)) +
                                  "): " + err.message};
            case DecodeResult::NeedMore:
                break;
        }
        if (Status st = wait_readable(fd_.get(), deadline); !st.ok()) {
            if (st.code != StatusCode::TimedOut) {
                close();
            }
            // TimedOut keeps the connection and any partial frame in
            // recv_buf_: the next read resumes exactly where this left off
            // (recv_shipment's heartbeat relies on that).
            return st;
        }
        const std::size_t base = recv_buf_.size();
        recv_buf_.resize(base + 64 * 1024);
        std::size_t n = 0;
        const IoResult got =
            recv_some(fd_.get(), recv_buf_.data() + base, 64 * 1024, n);
        recv_buf_.resize(base + n);
        if (got == IoResult::Ok) {
            continue;
        }
        close();
        if (got == IoResult::Closed) {
            return Status{StatusCode::IoError,
                          base == 0 ? "server closed the connection"
                                    : "server closed mid-frame"};
        }
        return Status{StatusCode::IoError,
                      std::string{"recv failed: "} + std::strerror(errno)};
    }
}

Status Client::finish_reply(const Frame& f) {
    if (f.type == kErrorType) {
        return decode_error_payload(f);
    }
    if ((f.type & kResponseBit) == 0) {
        close();
        return Status{StatusCode::IoError,
                      "server sent a non-response frame"};
    }
    return Status::success();
}

Status Client::recv_reply(Frame& out) {
    if (!buffered_.empty()) {
        out = std::move(buffered_.front());
        buffered_.pop_front();
        pending_.erase(out.request_id);
        return finish_reply(out);
    }
    const Deadline deadline = op_deadline();
    for (;;) {
        Frame f;
        if (Status st = read_frame(f, deadline); !st.ok()) {
            return st;
        }
        if (stream_ids_.count(f.request_id) != 0) {
            stream_q_.push_back(std::move(f));
            continue;
        }
        if (pending_.erase(f.request_id) == 0) {
            close();
            return Status{StatusCode::IoError,
                          "stale reply: id " + std::to_string(f.request_id) +
                              " matches no pending request"};
        }
        out = std::move(f);
        return finish_reply(out);
    }
}

Status Client::recv_matching(std::uint64_t id, Frame& out) {
    const auto hit = std::find_if(
        buffered_.begin(), buffered_.end(),
        [id](const Frame& f) { return f.request_id == id; });
    if (hit != buffered_.end()) {
        out = std::move(*hit);
        buffered_.erase(hit);
        pending_.erase(id);
        return finish_reply(out);
    }
    const Deadline deadline = op_deadline();
    for (;;) {
        Frame f;
        if (Status st = read_frame(f, deadline); !st.ok()) {
            return st;
        }
        if (stream_ids_.count(f.request_id) != 0) {
            stream_q_.push_back(std::move(f));
            continue;
        }
        if (pending_.count(f.request_id) == 0) {
            close();
            return Status{StatusCode::IoError,
                          "stale reply: id " + std::to_string(f.request_id) +
                              " matches no pending request"};
        }
        if (f.request_id == id) {
            pending_.erase(id);
            out = std::move(f);
            return finish_reply(out);
        }
        buffered_.push_back(std::move(f));
    }
}

Status Client::recv_shipment(std::uint64_t sub_id, Frame& out,
                             std::int64_t timeout_ms) {
    if (stream_ids_.count(sub_id) == 0) {
        return Status{StatusCode::InvalidArgument,
                      "no live subscription with id " +
                          std::to_string(sub_id)};
    }
    const Deadline deadline =
        timeout_ms < 0
            ? op_deadline()
            : (timeout_ms == 0
                   ? Deadline{}
                   : Deadline::after(std::chrono::milliseconds(timeout_ms)));
    const auto deliver = [&](Frame&& f) {
        out = std::move(f);
        if (out.type == kErrorType) {
            // The primary tore this subscriber down (slow consumer, pruned
            // past its cursor, shutdown): the stream id is dead.
            stream_ids_.erase(sub_id);
            return decode_error_payload(out);
        }
        return Status::success();
    };
    const auto hit = std::find_if(
        stream_q_.begin(), stream_q_.end(),
        [sub_id](const Frame& f) { return f.request_id == sub_id; });
    if (hit != stream_q_.end()) {
        Frame f = std::move(*hit);
        stream_q_.erase(hit);
        return deliver(std::move(f));
    }
    for (;;) {
        Frame f;
        if (Status st = read_frame(f, deadline); !st.ok()) {
            return st;
        }
        if (f.request_id == sub_id) {
            return deliver(std::move(f));
        }
        if (stream_ids_.count(f.request_id) != 0) {
            stream_q_.push_back(std::move(f));
            continue;
        }
        if (pending_.count(f.request_id) != 0) {
            buffered_.push_back(std::move(f));
            continue;
        }
        close();
        return Status{StatusCode::IoError,
                      "stale reply: id " + std::to_string(f.request_id) +
                          " matches no pending request"};
    }
}

Status Client::round_trip_once(MsgType type,
                               std::span<const unsigned char> payload,
                               Frame& reply) {
    std::uint64_t id = 0;
    if (Status st = send_request(type, payload, id); !st.ok()) {
        return st;
    }
    if (Status st = recv_matching(id, reply); !st.ok()) {
        return st;
    }
    if (reply.type !=
        (static_cast<std::uint8_t>(type) | kResponseBit)) {
        close();
        return Status{StatusCode::IoError, "reply type mismatch"};
    }
    return Status::success();
}

Status Client::round_trip(MsgType type,
                          std::span<const unsigned char> payload,
                          Frame& reply) {
    if (in_reconnect_) {
        return round_trip_once(type, payload, reply);
    }
    Status st = round_trip_once(type, payload, reply);
    for (std::uint32_t attempt = 1;
         !st.ok() && attempt < cfg_.max_attempts && retryable_failure(st);
         ++attempt) {
        const auto wire = static_cast<WireCode>(st.detail);
        if (wire == WireCode::ReadOnly || wire == WireCode::StaleTerm) {
            // Wrong server: hunt from the next endpoint onward.
            close();
            if (!endpoints_.empty()) {
                ep_index_ = (ep_index_ + 1) % endpoints_.size();
            }
        } else if (wire != WireCode::Busy) {
            // Transport loss, timeout, or a shutting-down server: this
            // connection (if any survives) can no longer be trusted to be
            // frame-aligned or to answer. Busy alone keeps the connection —
            // the server shed load but the session is healthy.
            close();
        }
        backoff(attempt);
        if (!connected()) {
            if (Status rc = reconnect(); !rc.ok()) {
                st = rc;
                continue;
            }
        }
        // Resend under a fresh request id (send_request always stamps one):
        // if the original reply ever surfaces on a surviving connection it
        // can only match as "stale" and fail loudly, never pair with the
        // retry. Safe because every gt.net.v1 mutation is idempotent.
        st = round_trip_once(type, payload, reply);
    }
    return st;
}

// ---- Client: sessions -----------------------------------------------------

Status Client::ping(std::span<const unsigned char> echo) {
    Frame reply;
    if (Status st = round_trip(MsgType::Ping, echo, reply); !st.ok()) {
        return st;
    }
    if (reply.payload.size() != echo.size() ||
        (!echo.empty() &&
         std::memcmp(reply.payload.data(), echo.data(), echo.size()) != 0)) {
        return Status{StatusCode::IoError, "ping echo mismatch"};
    }
    return Status::success();
}

Status Client::open(const std::string& name, RemoteGraph& out,
                    std::uint8_t durability) {
    PayloadWriter w;
    w.str(name);
    w.u8(durability);
    Frame reply;
    if (Status st = round_trip(MsgType::OpenGraph, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint8_t source = r.u8();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed OpenGraph reply"};
    }
    out = RemoteGraph(this, name, source);
    // Remember the open so a reconnect can replay the session (idempotent:
    // a re-open just refreshes the durability choice).
    const auto known = std::find_if(
        graphs_.begin(), graphs_.end(),
        [&name](const OpenedGraph& g) { return g.name == name; });
    if (known == graphs_.end()) {
        graphs_.push_back(OpenedGraph{name, durability});
    } else {
        known->durability = durability;
    }
    return Status::success();
}

// ---- RemoteGraph ----------------------------------------------------------

namespace {

[[nodiscard]] Status require_bound(const Client* client) {
    if (client == nullptr) {
        return Status{StatusCode::InvalidArgument,
                      "RemoteGraph not bound (use Client::open)"};
    }
    return Status::success();
}

}  // namespace

Status RemoteGraph::mutate(MsgType type, std::span<const Edge> edges,
                           std::uint64_t* edge_count) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    w.edges(edges);
    Frame reply;
    if (Status st = client_->round_trip(type, w.span(), reply); !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint64_t count = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed mutation reply"};
    }
    if (edge_count != nullptr) {
        *edge_count = count;
    }
    return Status::success();
}

Status RemoteGraph::insert_edges(std::span<const Edge> edges,
                                 std::uint64_t* edge_count) {
    return mutate(MsgType::InsertBatch, edges, edge_count);
}

Status RemoteGraph::delete_edges(std::span<const Edge> edges,
                                 std::uint64_t* edge_count) {
    return mutate(MsgType::DeleteBatch, edges, edge_count);
}

Status RemoteGraph::degree_of(VertexId v, std::uint64_t& out) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    w.u32(v);
    Frame reply;
    if (Status st = client_->round_trip(MsgType::Degree, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    out = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed Degree reply"};
    }
    return Status::success();
}

Status RemoteGraph::neighbors(VertexId v,
                              std::vector<std::pair<VertexId, Weight>>& out,
                              std::uint32_t max) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    w.u32(v);
    w.u32(max);
    Frame reply;
    if (Status st = client_->round_trip(MsgType::Neighbors, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint32_t n = r.u32();
    out.clear();
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const VertexId dst = r.u32();
        const Weight wt = r.u32();
        out.emplace_back(dst, wt);
    }
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed Neighbors reply"};
    }
    return Status::success();
}

Status RemoteGraph::props(MsgType type, const char* what, bool with_root,
                          VertexId root, std::span<const VertexId> targets,
                          std::vector<std::uint32_t>& out) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    if (with_root) {
        w.u32(root);
    }
    w.u32(static_cast<std::uint32_t>(targets.size()));
    for (const VertexId t : targets) {
        w.u32(t);
    }
    Frame reply;
    if (Status st = client_->round_trip(type, w.span(), reply); !st.ok()) {
        return st;
    }
    return parse_props(reply, targets.size(), out, what);
}

Status RemoteGraph::bfs_distances(VertexId root,
                                  std::span<const VertexId> targets,
                                  std::vector<std::uint32_t>& out) {
    return props(MsgType::Bfs, "Bfs", /*with_root=*/true, root, targets,
                 out);
}

Status RemoteGraph::sssp(VertexId root, std::span<const VertexId> targets,
                         std::vector<std::uint32_t>& out) {
    return props(MsgType::Sssp, "Sssp", /*with_root=*/true, root, targets,
                 out);
}

Status RemoteGraph::cc(std::span<const VertexId> targets,
                       std::vector<std::uint32_t>& out) {
    return props(MsgType::Cc, "Cc", /*with_root=*/false, 0, targets, out);
}

Status RemoteGraph::count(std::uint64_t& edges, std::uint64_t& vertices) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    Frame reply;
    if (Status st = client_->round_trip(MsgType::EdgeCount, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    edges = r.u64();
    vertices = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed EdgeCount reply"};
    }
    return Status::success();
}

Status RemoteGraph::checkpoint_now() {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    Frame reply;
    return client_->round_trip(MsgType::Checkpoint, w.span(), reply);
}

Status RemoteGraph::sync_wal() {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    Frame reply;
    return client_->round_trip(MsgType::Sync, w.span(), reply);
}

Status RemoteGraph::stats_json(std::string& json) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    Frame reply;
    if (Status st = client_->round_trip(MsgType::StatsJson, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    const std::uint32_t len = r.u32();
    if (!r.ok() || r.remaining() != len) {
        return Status{StatusCode::IoError, "malformed StatsJson reply"};
    }
    const auto rest = r.rest();
    json.assign(reinterpret_cast<const char*>(rest.data()), rest.size());
    return Status::success();
}

Status RemoteGraph::hello(HelloInfo& out) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    w.u64(client_->highest_term());
    Frame reply;
    if (Status st = client_->round_trip(MsgType::Hello, w.span(), reply);
        !st.ok()) {
        return st;
    }
    PayloadReader r(reply.payload);
    out.role = r.u8();
    out.term = r.u64();
    out.durable_seq = r.u64();
    out.lag_seqs = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed Hello reply"};
    }
    client_->observe_term(out.term);
    return Status::success();
}

Status RemoteGraph::subscribe(std::uint64_t from_seq, Subscription& out) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    w.u64(from_seq);
    w.u64(client_->highest_term());
    std::uint64_t id = 0;
    if (Status st = client_->send_request(MsgType::Subscribe, w.span(), id);
        !st.ok()) {
        return st;
    }
    Frame ack;
    if (Status st = client_->recv_matching(id, ack); !st.ok()) {
        return st;
    }
    if (ack.type !=
            (static_cast<std::uint8_t>(MsgType::Subscribe) | kResponseBit) ||
        ack.flags != 0) {
        client_->close();
        return Status{StatusCode::IoError, "subscribe ack mismatch"};
    }
    PayloadReader r(ack.payload);
    out.wal_floor = r.u64();
    out.primary_seq = r.u64();
    out.term = r.u64();
    if (!r.ok() || !r.exhausted()) {
        return Status{StatusCode::IoError, "malformed Subscribe ack"};
    }
    out.id = id;
    client_->observe_term(out.term);
    // The id lives on: every shipped frame from here carries it. Route
    // those to the stream queue instead of treating them as stale replies.
    client_->stream_ids_.insert(id);
    return Status::success();
}

Status RemoteGraph::send_ack(std::uint64_t acked_seq) {
    if (Status st = require_bound(client_); !st.ok()) {
        return st;
    }
    PayloadWriter w;
    w.str(name_);
    w.u64(acked_seq);
    Frame reply;
    return client_->round_trip(MsgType::SubAck, w.span(), reply);
}

// ---- deprecated per-name shims --------------------------------------------
// Each one wraps a transient RemoteGraph so the wire behavior is byte-for-
// byte identical to the handle API; they only survive to keep PR 8 call
// sites compiling during migration.

Status Client::open_graph(const std::string& name, std::uint8_t durability,
                          std::uint8_t* recovery_source) {
    RemoteGraph g;
    if (Status st = open(name, g, durability); !st.ok()) {
        return st;
    }
    if (recovery_source != nullptr) {
        *recovery_source = g.recovery_source();
    }
    return Status::success();
}

Status Client::insert_batch(const std::string& name,
                            std::span<const Edge> edges,
                            std::uint64_t* edge_count) {
    RemoteGraph g(this, name, 0);
    return g.insert_edges(edges, edge_count);
}

Status Client::delete_batch(const std::string& name,
                            std::span<const Edge> edges,
                            std::uint64_t* edge_count) {
    RemoteGraph g(this, name, 0);
    return g.delete_edges(edges, edge_count);
}

Status Client::degree(const std::string& name, VertexId v,
                      std::uint64_t& out) {
    RemoteGraph g(this, name, 0);
    return g.degree_of(v, out);
}

Status Client::neighbors(const std::string& name, VertexId v,
                         std::vector<std::pair<VertexId, Weight>>& out,
                         std::uint32_t max) {
    RemoteGraph g(this, name, 0);
    return g.neighbors(v, out, max);
}

Status Client::bfs(const std::string& name, VertexId root,
                   std::span<const VertexId> targets,
                   std::vector<std::uint32_t>& out) {
    RemoteGraph g(this, name, 0);
    return g.bfs_distances(root, targets, out);
}

Status Client::sssp(const std::string& name, VertexId root,
                    std::span<const VertexId> targets,
                    std::vector<std::uint32_t>& out) {
    RemoteGraph g(this, name, 0);
    return g.sssp(root, targets, out);
}

Status Client::cc(const std::string& name, std::span<const VertexId> targets,
                  std::vector<std::uint32_t>& out) {
    RemoteGraph g(this, name, 0);
    return g.cc(targets, out);
}

Status Client::edge_count(const std::string& name, std::uint64_t& edges,
                          std::uint64_t& vertices) {
    RemoteGraph g(this, name, 0);
    return g.count(edges, vertices);
}

Status Client::checkpoint(const std::string& name) {
    RemoteGraph g(this, name, 0);
    return g.checkpoint_now();
}

Status Client::sync(const std::string& name) {
    RemoteGraph g(this, name, 0);
    return g.sync_wal();
}

Status Client::stats_json(const std::string& name, std::string& json) {
    RemoteGraph g(this, name, 0);
    return g.stats_json(json);
}

}  // namespace gt::net
