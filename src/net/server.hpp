// gt serve — the networked front end over DurableStore (DESIGN.md §14).
//
// Threading model: ONE thread owns everything. run() is the event loop
// (epoll on Linux, poll elsewhere); it accepts, reads, parses, executes
// and writes. Mutations ride the store's transactional insert_batch/
// delete_batch (WAL-teed, all-or-nothing), queries run engine analytics
// in-line. Single-threaded on purpose: the durable store's mutation API is
// externally serialized anyway, and one thread means zero locks on the
// request path — the pipelining win comes from *clients* batching many
// requests per round trip, not from server-side parallelism. A long query
// therefore delays later requests on every connection; that is the
// documented tradeoff, bounded by kMaxFramePayload-sized batches.
//
// Backpressure (admission control): two caps, both surfaced as retryable
// Busy errors rather than silent queueing —
//   - per-connection in-flight cap: at most `max_inflight` responses may
//     sit unflushed in a connection's write buffer; further requests on
//     that connection are shed,
//   - per-connection write-buffer byte cap (`max_wbuf_bytes`): a client
//     that stops reading cannot make the server buffer unboundedly.
// Both feed the `net.*` gauges so operators watch the same numbers the
// shedding logic acts on. Connections over `max_conns` receive a single
// best-effort Busy frame and are closed.
//
// Robustness: malformed, truncated, fuzzed, or oversized frames produce a
// clean error reply (or connection close for unsynchronizable streams) —
// never a crash, never a hang; a mid-batch kill is exactly the WAL crash
// contract (recovery replays the committed prefix).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/io.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "recover/durable.hpp"
#include "util/status.hpp"

namespace gt::net {

struct ServerOptions {
    /// Directory the named graphs live under (<root>/<name>/...); created
    /// if absent. Required.
    std::string root;
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; Server::port() reports the bound one.
    std::uint16_t port = 0;
    /// Default durability for graphs a client opens without a mode.
    recover::DurabilityMode durability = recover::DurabilityMode::Buffered;
    std::size_t max_conns = 64;
    /// Per-connection unflushed-response cap (requests past it shed Busy).
    std::size_t max_inflight = 64;
    /// Per-connection write-buffer byte cap (requests past it shed Busy).
    std::size_t max_wbuf_bytes = std::size_t{8} << 20;
    /// Frames parsed+executed per connection per loop wake — fairness
    /// bound so one pipelining client cannot starve the rest.
    std::size_t parse_budget = 64;
    /// Server metrics ("net.*") land here; null keeps a private registry.
    obs::Registry* registry = nullptr;
};

class Server {
public:
    Server();
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds and listens (no thread is spawned — call run() to serve).
    [[nodiscard]] Status start(const ServerOptions& options);

    /// Event loop: blocks until stop(), then tears down connections and
    /// closes every open graph (flushing WALs). Returns the first fatal
    /// loop error, Ok on a requested shutdown.
    [[nodiscard]] Status run();

    /// Requests shutdown. Async-signal-safe and callable from any thread:
    /// writes one byte to the loop's self-pipe.
    void stop() noexcept;

    /// Port actually bound (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// The registry receiving the "net.*" series (the options-supplied one
    /// or the private fallback).
    [[nodiscard]] obs::Registry& obs() noexcept { return *registry_; }

private:
    struct Conn {
        Fd fd;
        std::vector<unsigned char> rbuf;
        std::size_t rpos = 0;  // parsed prefix of rbuf
        std::vector<unsigned char> wbuf;
        std::size_t wpos = 0;  // flushed prefix of wbuf
        std::size_t inflight = 0;  // responses in wbuf, not yet flushed
        bool want_write = false;
        bool closing = false;  // flush wbuf, then close
    };

    struct GraphEntry {
        recover::DurableStore store;
        std::uint8_t recovery_source = 0;
    };

    class Poller;

    // Event-loop steps (all single-threaded).
    void accept_new();
    void handle_readable(int fd);
    void handle_writable(int fd);
    [[nodiscard]] bool flush_conn(Conn& conn);  // false = tear down
    void parse_and_execute(Conn& conn);
    /// Re-parses connections whose buffers still hold complete frames after
    /// the event pass — a pipelined burst larger than parse_budget arrives
    /// in one readable event, and level-triggered polling will not fire
    /// again for bytes already read.
    void drain_pending();
    void execute(Conn& conn, const Frame& req);
    void teardown(int fd);

    // Request handlers append exactly one response frame to conn.wbuf.
    void reply(Conn& conn, const Frame& req,
               std::span<const unsigned char> payload);
    void reply_error(Conn& conn, std::uint64_t request_id, WireCode code,
                     std::string_view message);
    [[nodiscard]] GraphEntry* find_graph(const std::string& name);
    void handle_open_graph(Conn& conn, const Frame& req);
    void handle_mutate(Conn& conn, const Frame& req);
    void handle_query(Conn& conn, const Frame& req);

    void bind_metrics();
    void update_gauges();

    ServerOptions opts_;
    obs::Registry* registry_ = nullptr;
    std::unique_ptr<obs::Registry> owned_registry_;
    Fd listen_fd_;
    Fd wake_r_;
    Fd wake_w_;
    std::uint16_t port_ = 0;
    bool stopping_ = false;
    std::unique_ptr<Poller> poller_;
    std::map<int, std::unique_ptr<Conn>> conns_;
    std::map<std::string, std::unique_ptr<GraphEntry>> graphs_;

    // Handles bound once in start() (obs hot-path discipline).
    obs::Counter* accepted_m_ = nullptr;
    obs::Counter* closed_m_ = nullptr;
    obs::Counter* frames_rx_m_ = nullptr;
    obs::Counter* frames_tx_m_ = nullptr;
    obs::Counter* bytes_rx_m_ = nullptr;
    obs::Counter* bytes_tx_m_ = nullptr;
    obs::Counter* busy_shed_m_ = nullptr;
    obs::Counter* bad_frames_m_ = nullptr;
    obs::Counter* errors_tx_m_ = nullptr;
    obs::Histogram* request_us_m_ = nullptr;
    obs::Gauge* conns_gauge_ = nullptr;
    obs::Gauge* wbuf_gauge_ = nullptr;
    obs::Gauge* graphs_gauge_ = nullptr;
};

}  // namespace gt::net
