// gt serve — the networked front end over DurableStore (DESIGN.md §14/§15).
//
// Threading model (DESIGN.md §15): an acceptor thread plus N event loops
// plus an optional reader pool.
//
//   - run() is the acceptor: it owns the listen socket and hands each new
//     connection to a loop round-robin. With loop_threads == 1 and
//     reader_threads == 0 the server behaves exactly like the historical
//     single-threaded build: one loop, zero locks on the request path.
//   - Each Loop is one epoll/poll event loop owning a disjoint set of
//     connections: it reads, parses, and executes. Loops exchange work
//     through per-loop inboxes (mutex-guarded vectors) woken by self-pipes.
//   - Every graph is *pinned* to the loop that first opened it. Mutation
//     verbs (Insert/Delete/Checkpoint/Sync/Subscribe/SubAck) execute only
//     on the owner loop — cross-loop requests hop via the owner's inbox and
//     the reply rides back to the connection's loop. One writer per graph,
//     by construction.
//   - Read-only verbs (Degree/Neighbors/Bfs/Sssp/Cc/EdgeCount/StatsJson)
//     run on the reader pool under a shared (reader) hold of the graph's
//     state lock, so long analytics overlap ingest on other graphs *and*
//     other reads of the same graph. With reader_threads == 0 they run
//     inline on the connection's loop (shared hold, may briefly block).
//
// Writer/reader coordination per graph: the owner loop never blocks its
// event loop behind readers. A mutation that cannot take the state lock
// immediately (try_lock fails, or earlier ops are already queued) joins the
// graph's deferred FIFO; the last reader out posts a Retry to the owner's
// inbox, which drains the FIFO under one exclusive hold. Queued reads for a
// graph with deferred mutations park until the drain finishes — writers
// cannot starve behind glibc's reader-preferring shared_mutex. Ordering
// contract: mutations from one connection apply in send order; a *read*
// pipelined behind an unacknowledged mutation may observe the pre-mutation
// state (wait for the mutation's reply when read-your-writes matters).
//
// WAL shipping: Subscribe registers the connection as a replication
// follower of one graph. The owner loop tails the graph's WAL file and
// streams committed records (kFlagShipData frames, the Subscribe request id)
// after every commit; SubAck reports the follower's applied low-water mark,
// and Checkpoint only prunes the WAL once every follower has acked what the
// snapshot covers (the checkpoint/prune fence). read_only mode turns the
// server into a serving replica: mutation verbs are refused with ReadOnly
// while an external feeder (net::Replicator via open_local()) applies the
// shipped stream.
//
// Backpressure (admission control): per-connection in-flight cap now counts
// unflushed responses *plus* dispatched-but-unanswered async ops; the write
// buffer byte cap and the max_conns shed are unchanged from the
// single-threaded design. All caps surface as retryable Busy errors.
//
// Robustness: malformed, truncated, fuzzed, or oversized frames produce a
// clean error reply (or connection close for unsynchronizable streams) —
// never a crash, never a hang; a mid-batch kill is exactly the WAL crash
// contract (recovery replays the committed prefix).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/io.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "recover/durable.hpp"
#include "recover/wal.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"

namespace gt::net {

struct ServerOptions {
    /// Directory the named graphs live under (<root>/<name>/...); created
    /// if absent. Required.
    std::string root;
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; Server::port() reports the bound one.
    std::uint16_t port = 0;
    /// Default durability for graphs a client opens without a mode.
    recover::DurabilityMode durability = recover::DurabilityMode::Buffered;
    /// Event-loop threads; each graph is pinned to the loop that first
    /// opened it, each connection to the loop that accepted it.
    std::size_t loop_threads = 1;
    /// Reader-pool threads for the read-only verbs; 0 runs reads inline on
    /// the connection's loop.
    std::size_t reader_threads = 0;
    /// Refuse exclusive mutation verbs (Insert/Delete/Checkpoint/Sync) with
    /// ReadOnly (warm-replica mode: an external feeder owns the store's
    /// write side via open_local()). Subscribe/SubAck/Hello still serve, so
    /// a replica can feed downstream replicas (replica chains). Runtime-
    /// flippable via Server::set_read_only() — that is the promotion path.
    bool read_only = false;
    std::size_t max_conns = 64;
    /// Per-connection cap on unflushed responses + in-flight async ops
    /// (requests past it shed Busy).
    std::size_t max_inflight = 64;
    /// Per-connection write-buffer byte cap (requests past it shed Busy; a
    /// subscriber that falls this far behind is disconnected).
    std::size_t max_wbuf_bytes = std::size_t{8} << 20;
    /// Frames parsed+executed per connection per loop wake — fairness
    /// bound so one pipelining client cannot starve the rest.
    std::size_t parse_budget = 64;
    /// Server metrics ("net.*") land here; null keeps a private registry.
    obs::Registry* registry = nullptr;
};

class Server {
public:
    Server();
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds and listens (no thread is spawned — call run() to serve).
    [[nodiscard]] Status start(const ServerOptions& options);

    /// Spawns the loop/reader threads and runs the acceptor until stop(),
    /// then joins everything, tears down connections and closes every open
    /// graph (flushing WALs). Returns the first fatal acceptor error, Ok on
    /// a requested shutdown.
    [[nodiscard]] Status run();

    /// Requests shutdown. Async-signal-safe and callable from any thread:
    /// writes one byte to the acceptor's self-pipe.
    void stop() noexcept;

    /// Port actually bound (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// The registry receiving the "net.*" series (the options-supplied one
    /// or the private fallback).
    [[nodiscard]] obs::Registry& obs() noexcept { return *registry_; }

    /// In-process handle to a served graph — the replica feeder's doorway.
    /// `lock` is the graph's state lock: hold it exclusively while mutating
    /// through `store` (sound only with read_only == true, which keeps the
    /// owner loop from ever writing). Lifetime: the pointers dangle once
    /// run() returns — its teardown closes and frees every store — so a
    /// feeder must be detached (Replicator::close()) before the server is
    /// stopped.
    struct LocalGraph {
        recover::DurableStore* store = nullptr;
        gt::SharedMutex* lock = nullptr;
    };

    /// Opens (creating/recovering if needed) graph `name` exactly as an
    /// OpenGraph request would, and returns the in-process handle. Callable
    /// from any thread once start() succeeded.
    [[nodiscard]] Status open_local(const std::string& name, LocalGraph& out);

    /// Runtime read-only flip. Promotion clears it so a warm replica starts
    /// answering mutations; callable from any thread.
    void set_read_only(bool read_only) noexcept {
        read_only_.store(read_only, std::memory_order_relaxed);
    }
    [[nodiscard]] bool read_only() const noexcept {
        return read_only_.load(std::memory_order_relaxed);
    }

    /// Promotes a served graph to primary under `new_term`: durably records
    /// the term (sidecar, ratchet-only), adopts it on the entry and clears
    /// any stale fence. Refuses a term that does not exceed the current
    /// one. Callable from any thread (the replication watcher's thread in
    /// practice); pair with set_read_only(false) to start taking writes.
    [[nodiscard]] Status promote_local(const std::string& name,
                                       std::uint64_t new_term);

    /// Replication lag (primary durable seq minus locally applied seq) as
    /// reported by the external feeder; surfaces in Hello replies while the
    /// server is a replica.
    void set_replication_lag(std::uint64_t lag) noexcept {
        replication_lag_.store(lag, std::memory_order_relaxed);
    }

    /// Ships WAL records appended *outside* the request path (a Replicator
    /// mirroring an upstream) to this graph's subscribers — the link that
    /// keeps replica chains flowing live. Safe from any thread: posts to
    /// the graph's owner loop. No-op for unknown graphs or while stopping.
    void pump_graph(const std::string& name);

private:
    struct GraphEntry;
    struct Loop;
    class Poller;
    class ReaderPool;

    struct Conn {
        Fd fd;
        std::uint64_t id = 0;  // process-unique; async results route by it
        std::vector<unsigned char> rbuf;
        std::size_t rpos = 0;  // parsed prefix of rbuf
        std::vector<unsigned char> wbuf;
        std::size_t wpos = 0;      // flushed prefix of wbuf
        std::size_t inflight = 0;  // responses in wbuf, not yet flushed
        std::size_t pending = 0;   // dispatched async ops, reply not back
        bool want_write = false;
        bool closing = false;  // flush wbuf + drain pending, then close
        /// Graphs this connection subscribed to (teardown unsubscribes).
        std::vector<GraphEntry*> subscribed;
    };

    /// A mutation/owner op waiting for the graph's exclusive lock.
    struct DeferredOp {
        std::uint64_t conn_id = 0;
        std::uint32_t origin_loop = 0;
        Frame req;
    };

    /// One attached WAL-shipping follower (owner-loop state).
    struct Subscriber {
        std::uint64_t conn_id = 0;
        std::uint32_t origin_loop = 0;
        std::uint64_t request_id = 0;  // stream frames carry it
        std::uint64_t sent_seq = 0;    // last record shipped
        std::uint64_t acked_seq = 0;   // follower's applied low-water mark
        std::unique_ptr<recover::WalTailer> tailer;
    };

    struct GraphEntry {
        std::string name;
        recover::DurableStore store;
        std::uint8_t recovery_source = 0;
        std::uint32_t owner_loop = 0;
        recover::DurabilityMode mode{};
        /// Readers (pool / inline) hold shared; the owner loop (or the
        /// read_only feeder) holds exclusive around mutations.
        gt::SharedMutex state_lock;
        /// True while `deferred` is non-empty — readers check it to park
        /// (writer gate) and to post a Retry when they release the lock.
        std::atomic<bool> has_deferred{false};
        /// Owner-loop-private FIFO of ops awaiting the exclusive lock.
        std::deque<DeferredOp> deferred;
        /// Owner-loop-private follower list.
        std::vector<Subscriber> subscribers;
        /// Primary term this graph's history belongs to (term.gtt sidecar;
        /// adopted at open, bumped by promote_local).
        std::atomic<std::uint64_t> term{0};
        /// Fenced: a Hello/Subscribe proved a higher term exists elsewhere.
        /// Mutations, new subscriptions and shipping refuse with StaleTerm
        /// until a promotion (promote_local) clears the fence.
        std::atomic<bool> stale{false};
    };

    /// Cross-thread message into a loop's inbox.
    struct LoopMsg {
        enum class Kind : std::uint8_t {
            AdoptFd,  // acceptor -> loop: take ownership of a socket
            Exec,     // conn loop -> owner loop: run an owner op
            Done,     // owner loop / pool -> conn loop: deliver reply bytes
            Retry,    // pool -> owner loop: lock released, drain deferred
            Unsub,    // conn loop -> owner loop: connection went away
            Pump,     // feeder thread -> owner loop: ship fresh WAL records
        };
        Kind kind = Kind::AdoptFd;
        int fd = -1;                       // AdoptFd
        GraphEntry* graph = nullptr;       // Exec / Retry / Unsub / Pump
        Frame req;                         // Exec
        std::uint32_t origin_loop = 0;     // Exec
        std::uint64_t conn_id = 0;         // Exec / Done / Unsub
        std::vector<unsigned char> bytes;  // Done: encoded reply frames
        std::size_t frames = 0;            // Done: responses in `bytes`
        std::size_t ops_done = 0;          // Done: pending ops to retire
        GraphEntry* sub_graph = nullptr;   // Done: record a subscription
    };

    /// Reply frames accumulated off the connection's thread, plus routing
    /// side-effects to apply on delivery.
    struct Sink {
        std::vector<unsigned char> bytes;
        std::size_t frames = 0;
        GraphEntry* sub_graph = nullptr;
    };

    // ---- acceptor ---------------------------------------------------------
    void accept_new(Poller& poller);

    // ---- loop thread ------------------------------------------------------
    void run_loop(Loop& loop);
    void process_inbox(Loop& loop);
    void adopt_fd(Loop& loop, int fd);
    void apply_done(Loop& loop, LoopMsg& msg);
    void handle_readable(Loop& loop, int fd);
    void handle_writable(Loop& loop, int fd);
    [[nodiscard]] bool flush_conn(Loop& loop, Conn& conn);
    /// Flush every connection on the loop, disconnect subscribers whose
    /// backlog overflowed, finish closing connections — the per-wake sweep.
    void flush_all(Loop& loop);
    void parse_and_execute(Loop& loop, Conn& conn);
    void drain_pending(Loop& loop);
    void execute(Loop& loop, Conn& conn, const Frame& req);
    void teardown(Loop& loop, int fd);
    void maybe_finish(Loop& loop, Conn& conn);
    void post(std::uint32_t loop_index, LoopMsg&& msg);

    // ---- owner-loop graph ops --------------------------------------------
    /// Entry point for owner ops on the owner loop: respects the deferred
    /// FIFO, executes inline when the exclusive lock is free.
    void execute_owner(GraphEntry* g, std::uint64_t conn_id,
                       std::uint32_t origin_loop, const Frame& req);
    void drain_deferred(GraphEntry* g);
    /// Runs one owner op (state lock held for mutations). Appends replies
    /// to `sink`.
    void execute_owner_op(GraphEntry* g, const DeferredOp& op, Sink& sink);
    void handle_hello(GraphEntry* g, const DeferredOp& op, Sink& sink);
    void handle_subscribe(GraphEntry* g, const DeferredOp& op, Sink& sink);
    void handle_sub_ack(GraphEntry* g, const DeferredOp& op, Sink& sink);
    void handle_checkpoint(GraphEntry* g, const DeferredOp& op, Sink& sink);
    /// Ships newly committed WAL records to every subscriber (owner loop,
    /// after commits and on subscribe catch-up).
    void pump_subscribers(GraphEntry* g);
    void drop_subscriber(GraphEntry* g, std::uint64_t conn_id);

    // ---- read verbs (pool or inline) -------------------------------------
    /// Runs one read verb under a shared hold of g->state_lock.
    void execute_read(GraphEntry* g, const Frame& req, Sink& sink);

    // ---- shared helpers ---------------------------------------------------
    void emit_reply(Sink& sink, const Frame& req,
                    std::span<const unsigned char> payload);
    void emit_error(Sink& sink, std::uint64_t request_id, WireCode code,
                    std::string_view message);
    /// Applies a sink to its connection: inline when the caller *is* the
    /// origin loop (pass it), via a Done inbox message otherwise (null).
    void deliver(Loop* current, std::uint32_t origin_loop,
                 std::uint64_t conn_id, Sink&& sink, std::size_t ops_done);
    /// Appends a sink's frames to the connection's write buffer (the
    /// loop-local fast path of deliver()).
    void append_sink(Conn& conn, Sink&& sink);
    void conn_error(Conn& conn, std::uint64_t request_id, WireCode code,
                    std::string_view message);
    [[nodiscard]] GraphEntry* find_graph(const std::string& name);
    /// Find-or-create under graphs_mu_; a fresh graph is pinned to
    /// `owner_loop`. `mode`: 0..2 explicit, 255 the server default.
    [[nodiscard]] Status open_entry(const std::string& name,
                                    std::uint8_t mode,
                                    std::uint32_t owner_loop,
                                    GraphEntry*& out);
    void handle_open_graph(Loop& loop, Conn& conn, const Frame& req);

    void bind_metrics();
    void update_gauges();

    ServerOptions opts_;
    obs::Registry* registry_ = nullptr;
    std::unique_ptr<obs::Registry> owned_registry_;
    Fd listen_fd_;
    Fd wake_r_;
    Fd wake_w_;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> read_only_{false};  // seeded from opts_, flipped by
                                          // promotion
    std::atomic<std::uint64_t> replication_lag_{0};
    std::vector<std::unique_ptr<Loop>> loops_;
    std::unique_ptr<ReaderPool> readers_;
    std::uint32_t next_loop_ = 0;  // acceptor round-robin cursor
    std::atomic<std::uint64_t> next_conn_id_{1};
    std::atomic<std::size_t> num_conns_{0};
    std::atomic<long long> wbuf_total_{0};
    std::atomic<long long> num_subs_{0};

    gt::Mutex graphs_mu_;
    /// Entries are never erased while the server lives: GraphEntry* is
    /// stable and safe to pass between threads.
    std::map<std::string, std::unique_ptr<GraphEntry>> graphs_
        GT_GUARDED_BY(graphs_mu_);

    // Handles bound once in start() (obs hot-path discipline; counters and
    // gauges are atomics, safe from every thread).
    obs::Counter* accepted_m_ = nullptr;
    obs::Counter* closed_m_ = nullptr;
    obs::Counter* frames_rx_m_ = nullptr;
    obs::Counter* frames_tx_m_ = nullptr;
    obs::Counter* bytes_rx_m_ = nullptr;
    obs::Counter* bytes_tx_m_ = nullptr;
    obs::Counter* busy_shed_m_ = nullptr;
    obs::Counter* bad_frames_m_ = nullptr;
    obs::Counter* errors_tx_m_ = nullptr;
    obs::Counter* cross_loop_m_ = nullptr;
    obs::Counter* deferred_m_ = nullptr;
    obs::Counter* shipped_m_ = nullptr;
    obs::Histogram* request_us_m_ = nullptr;
    obs::Gauge* conns_gauge_ = nullptr;
    obs::Gauge* wbuf_gauge_ = nullptr;
    obs::Gauge* graphs_gauge_ = nullptr;
    obs::Gauge* subs_gauge_ = nullptr;
    obs::Gauge* role_gauge_ = nullptr;  // 0 primary, 1 replica
    obs::Gauge* term_gauge_ = nullptr;  // max term across open graphs
};

}  // namespace gt::net
