#include "net/io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gt::net {

namespace {

Status errno_status(const std::string& what) {
    return Status{StatusCode::IoError, what + ": " + std::strerror(errno)};
}

}  // namespace

void Fd::reset() noexcept {
    if (fd_ >= 0) {
        // EINTR after close is unrecoverable by retry (the fd state is
        // unspecified); POSIX says don't loop here.
        ::close(fd_);
        fd_ = -1;
    }
}

IoResult recv_some(int fd, unsigned char* buf, std::size_t cap,
                   std::size_t& n) noexcept {
    n = 0;
    for (;;) {
        const ssize_t got = ::recv(fd, buf, cap, 0);
        if (got > 0) {
            n = static_cast<std::size_t>(got);
            return IoResult::Ok;
        }
        if (got == 0) {
            return IoResult::Closed;  // orderly shutdown
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return IoResult::WouldBlock;
        }
        if (errno == ECONNRESET) {
            return IoResult::Closed;
        }
        return IoResult::Error;
    }
}

IoResult send_some(int fd, const unsigned char* buf, std::size_t len,
                   std::size_t& n) noexcept {
    n = 0;
    for (;;) {
        const ssize_t sent = ::send(fd, buf, len, MSG_NOSIGNAL);
        if (sent > 0) {
            n = static_cast<std::size_t>(sent);
            return IoResult::Ok;
        }
        if (sent == 0) {
            // Zero progress on a nonempty buffer: retrying would spin
            // (the write_all lesson). Latch an errno and fail.
            if (len == 0) {
                return IoResult::Ok;
            }
            if (errno == 0) {
                errno = ENOSPC;
            }
            return IoResult::Error;
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return IoResult::WouldBlock;
        }
        if (errno == EPIPE || errno == ECONNRESET) {
            return IoResult::Closed;
        }
        return IoResult::Error;
    }
}

Status send_all(int fd, std::span<const unsigned char> buf) noexcept {
    std::size_t off = 0;
    while (off < buf.size()) {
        std::size_t n = 0;
        switch (send_some(fd, buf.data() + off, buf.size() - off, n)) {
            case IoResult::Ok:
                off += n;
                break;
            case IoResult::WouldBlock:
                // Blocking socket: EAGAIN only fires with SO_SNDTIMEO,
                // which the client does not set — treat as an error rather
                // than busy-loop.
                return Status{StatusCode::IoError,
                              "send timed out (would block)"};
            case IoResult::Closed:
                return Status{StatusCode::IoError,
                              "peer closed the connection mid-send"};
            case IoResult::Error:
                return errno_status("send");
        }
    }
    return Status::success();
}

Status recv_exact(int fd, unsigned char* buf, std::size_t len) noexcept {
    std::size_t off = 0;
    while (off < len) {
        std::size_t n = 0;
        switch (recv_some(fd, buf + off, len - off, n)) {
            case IoResult::Ok:
                off += n;
                break;
            case IoResult::WouldBlock:
                return Status{StatusCode::IoError,
                              "recv timed out (would block)"};
            case IoResult::Closed:
                return Status{StatusCode::IoError,
                              off == 0
                                  ? "connection closed"
                                  : "connection closed mid-frame"};
            case IoResult::Error:
                return errno_status("recv");
        }
    }
    return Status::success();
}

int accept_retry(int listen_fd) noexcept {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0 || errno != EINTR) {
            return fd;
        }
    }
}

Status set_nonblocking(int fd) noexcept {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        return errno_status("fcntl(O_NONBLOCK)");
    }
    return Status::success();
}

Status tcp_listen(const std::string& host, std::uint16_t port, Fd& out,
                  std::uint16_t& bound_port) {
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        return errno_status("socket");
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status{StatusCode::InvalidArgument,
                      "not an IPv4 address: " + host};
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        return errno_status("bind " + host + ":" + std::to_string(port));
    }
    if (::listen(fd.get(), SOMAXCONN) != 0) {
        return errno_status("listen");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
        return errno_status("getsockname");
    }
    bound_port = ntohs(bound.sin_port);
    out = std::move(fd);
    return Status::success();
}

Status tcp_connect(const std::string& host, std::uint16_t port, Fd& out) {
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        return errno_status("socket");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status{StatusCode::InvalidArgument,
                      "not an IPv4 address: " + host};
    }
    for (;;) {
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            break;
        }
        if (errno == EINTR) {
            continue;
        }
        return errno_status("connect " + host + ":" +
                            std::to_string(port));
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    out = std::move(fd);
    return Status::success();
}

Status make_wake_pipe(Fd& read_end, Fd& write_end) {
    int fds[2];
    if (::pipe(fds) != 0) {
        return errno_status("pipe");
    }
    read_end = Fd(fds[0]);
    write_end = Fd(fds[1]);
    for (const int fd : fds) {
        (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
        if (const Status st = set_nonblocking(fd); !st.ok()) {
            return st;
        }
    }
    return Status::success();
}

void wake(int write_fd) noexcept {
    const unsigned char byte = 1;
    // Single attempt, no EINTR loop: signal handlers must not spin, and a
    // full pipe means the loop is already waking.
    (void)::write(write_fd, &byte, 1);
}

void drain_wake(int read_fd) noexcept {
    unsigned char sink[64];
    for (;;) {
        const ssize_t n = ::read(read_fd, sink, sizeof(sink));
        if (n > 0) {
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return;  // EAGAIN (drained), EOF, or a real error — all terminal
    }
}

}  // namespace gt::net
