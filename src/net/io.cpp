#include "net/io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.hpp"

namespace gt::net {

namespace {

Status errno_status(const std::string& what) {
    return Status{StatusCode::IoError, what + ": " + std::strerror(errno)};
}

Status timeout_status(const char* what) {
    return Status{StatusCode::TimedOut,
                  std::string(what) + " deadline expired"};
}

/// Waits until `fd` is ready for `events` or the deadline passes.
/// Ok = ready; TimedOut = deadline; IoError = poll failure. Unbounded
/// deadlines skip the poll entirely (the subsequent blocking syscall is
/// the wait).
Status poll_ready(int fd, short events, Deadline deadline,
                  const char* what) noexcept {
    if (!deadline.bounded()) {
        return Status::success();
    }
    for (;;) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        const int timeout = deadline.poll_timeout_ms();
        if (timeout == 0) {
            return timeout_status(what);
        }
        const int n = ::poll(&pfd, 1, timeout);
        if (n > 0) {
            return Status::success();  // ready, or HUP/ERR — syscall tells
        }
        if (n == 0) {
            return timeout_status(what);
        }
        if (errno == EINTR) {
            continue;  // re-derive the remaining timeout and re-poll
        }
        return errno_status("poll");
    }
}

/// Burns the remaining deadline, then reports TimedOut — the simulated
/// behaviour of a peer that accepted the connection and went silent. An
/// unbounded deadline reports TimedOut immediately instead of hanging the
/// test binary forever.
Status stall_until(Deadline deadline, const char* what) noexcept {
    if (!deadline.bounded()) {
        return timeout_status(what);
    }
    for (;;) {
        const int timeout = deadline.poll_timeout_ms();
        if (timeout == 0) {
            return timeout_status(what);
        }
        // Poll on no fds: a pure bounded sleep that stays EINTR-correct.
        if (::poll(nullptr, 0, timeout) == 0) {
            return timeout_status(what);
        }
    }
}

}  // namespace

void Fd::reset() noexcept {
    if (fd_ >= 0) {
        // EINTR after close is unrecoverable by retry (the fd state is
        // unspecified); POSIX says don't loop here.
        ::close(fd_);
        fd_ = -1;
    }
}

IoResult recv_some(int fd, unsigned char* buf, std::size_t cap,
                   std::size_t& n) noexcept {
    n = 0;
    if (GT_FAILPOINT_HIT("net.recv.reset")) {
        errno = ECONNRESET;
        return IoResult::Closed;
    }
    for (;;) {
        // Injected EINTR storm: take the retry branch exactly as a real
        // signal interruption would (arm with countdown N for N spins).
        if (GT_FAILPOINT_HIT("net.recv.eintr")) {
            errno = EINTR;
            continue;
        }
        const ssize_t got = ::recv(fd, buf, cap, 0);
        if (got > 0) {
            n = static_cast<std::size_t>(got);
            return IoResult::Ok;
        }
        if (got == 0) {
            return IoResult::Closed;  // orderly shutdown
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return IoResult::WouldBlock;
        }
        if (errno == ECONNRESET) {
            return IoResult::Closed;
        }
        return IoResult::Error;
    }
}

IoResult send_some(int fd, const unsigned char* buf, std::size_t len,
                   std::size_t& n) noexcept {
    n = 0;
    if (GT_FAILPOINT_HIT("net.send.reset")) {
        errno = ECONNRESET;
        return IoResult::Closed;
    }
    // Injected short write: hand the kernel one byte so callers' partial-
    // send reassembly is exercised on loopback, where sends rarely split.
    if (len > 1 && GT_FAILPOINT_HIT("net.send.short")) {
        len = 1;
    }
    for (;;) {
        if (GT_FAILPOINT_HIT("net.send.eintr")) {
            errno = EINTR;
            continue;
        }
        const ssize_t sent = ::send(fd, buf, len, MSG_NOSIGNAL);
        if (sent > 0) {
            n = static_cast<std::size_t>(sent);
            return IoResult::Ok;
        }
        if (sent == 0) {
            // Zero progress on a nonempty buffer: retrying would spin
            // (the write_all lesson). Latch an errno and fail.
            if (len == 0) {
                return IoResult::Ok;
            }
            if (errno == 0) {
                errno = ENOSPC;
            }
            return IoResult::Error;
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return IoResult::WouldBlock;
        }
        if (errno == EPIPE || errno == ECONNRESET) {
            return IoResult::Closed;
        }
        return IoResult::Error;
    }
}

Status send_all(int fd, std::span<const unsigned char> buf,
                Deadline deadline) noexcept {
    std::size_t off = 0;
    while (off < buf.size()) {
        if (const Status ready = poll_ready(fd, POLLOUT, deadline, "send");
            !ready.ok()) {
            return ready;
        }
        std::size_t n = 0;
        switch (send_some(fd, buf.data() + off, buf.size() - off, n)) {
            case IoResult::Ok:
                off += n;
                break;
            case IoResult::WouldBlock:
                if (deadline.bounded()) {
                    continue;  // nonblocking fd raced; re-poll
                }
                // Blocking socket: EAGAIN only fires with SO_SNDTIMEO,
                // which the client does not set — treat as an error rather
                // than busy-loop.
                return Status{StatusCode::IoError,
                              "send timed out (would block)"};
            case IoResult::Closed:
                return Status{StatusCode::IoError,
                              "peer closed the connection mid-send"};
            case IoResult::Error:
                return errno_status("send");
        }
    }
    return Status::success();
}

Status recv_exact(int fd, unsigned char* buf, std::size_t len,
                  Deadline deadline) noexcept {
    if (len > 0 && GT_FAILPOINT_HIT("net.recv.stall")) {
        return stall_until(deadline, "recv");
    }
    std::size_t off = 0;
    while (off < len) {
        if (const Status ready = poll_ready(fd, POLLIN, deadline, "recv");
            !ready.ok()) {
            return ready;
        }
        std::size_t n = 0;
        switch (recv_some(fd, buf + off, len - off, n)) {
            case IoResult::Ok:
                off += n;
                break;
            case IoResult::WouldBlock:
                if (deadline.bounded()) {
                    continue;  // spurious wakeup on a nonblocking fd
                }
                return Status{StatusCode::IoError,
                              "recv timed out (would block)"};
            case IoResult::Closed:
                return Status{StatusCode::IoError,
                              off == 0
                                  ? "connection closed"
                                  : "connection closed mid-frame"};
            case IoResult::Error:
                return errno_status("recv");
        }
    }
    return Status::success();
}

Status wait_readable(int fd, Deadline deadline) noexcept {
    if (GT_FAILPOINT_HIT("net.recv.stall")) {
        return stall_until(deadline, "recv");
    }
    return poll_ready(fd, POLLIN, deadline, "recv");
}

int accept_retry(int listen_fd) noexcept {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0 || errno != EINTR) {
            return fd;
        }
    }
}

Status set_nonblocking(int fd) noexcept {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        return errno_status("fcntl(O_NONBLOCK)");
    }
    return Status::success();
}

Status tcp_listen(const std::string& host, std::uint16_t port, Fd& out,
                  std::uint16_t& bound_port) {
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        return errno_status("socket");
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status{StatusCode::InvalidArgument,
                      "not an IPv4 address: " + host};
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        return errno_status("bind " + host + ":" + std::to_string(port));
    }
    if (::listen(fd.get(), SOMAXCONN) != 0) {
        return errno_status("listen");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
        return errno_status("getsockname");
    }
    bound_port = ntohs(bound.sin_port);
    out = std::move(fd);
    return Status::success();
}

Status tcp_connect(const std::string& host, std::uint16_t port, Fd& out,
                   Deadline deadline) {
    if (GT_FAILPOINT_HIT("net.connect.stall")) {
        return stall_until(deadline, "connect");
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        return errno_status("socket");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status{StatusCode::InvalidArgument,
                      "not an IPv4 address: " + host};
    }
    const std::string where = host + ":" + std::to_string(port);
    if (deadline.bounded()) {
        // Nonblocking connect + poll + SO_ERROR: an unreachable host costs
        // the deadline, not the kernel's SYN-retransmit minutes.
        if (const Status st = set_nonblocking(fd.get()); !st.ok()) {
            return st;
        }
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            if (errno != EINPROGRESS && errno != EINTR) {
                return errno_status("connect " + where);
            }
            if (const Status ready =
                    poll_ready(fd.get(), POLLOUT, deadline, "connect");
                !ready.ok()) {
                return ready;
            }
            int err = 0;
            socklen_t len = sizeof(err);
            if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) !=
                    0 ||
                err != 0) {
                errno = err != 0 ? err : errno;
                return errno_status("connect " + where);
            }
        }
        // Back to blocking: callers get the classic semantics, deadlines
        // come from poll_ready in send_all/recv_exact.
        const int flags = ::fcntl(fd.get(), F_GETFL, 0);
        if (flags < 0 ||
            ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
            return errno_status("fcntl(~O_NONBLOCK)");
        }
    } else {
        for (;;) {
            if (::connect(fd.get(),
                          reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0) {
                break;
            }
            if (errno == EINTR) {
                continue;
            }
            return errno_status("connect " + where);
        }
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    out = std::move(fd);
    return Status::success();
}

Status make_wake_pipe(Fd& read_end, Fd& write_end) {
    int fds[2];
    if (::pipe(fds) != 0) {
        return errno_status("pipe");
    }
    read_end = Fd(fds[0]);
    write_end = Fd(fds[1]);
    for (const int fd : fds) {
        (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
        if (const Status st = set_nonblocking(fd); !st.ok()) {
            return st;
        }
    }
    return Status::success();
}

void wake(int write_fd) noexcept {
    const unsigned char byte = 1;
    // Single attempt, no EINTR loop: signal handlers must not spin, and a
    // full pipe means the loop is already waking.
    (void)::write(write_fd, &byte, 1);
}

void drain_wake(int read_fd) noexcept {
    unsigned char sink[64];
    for (;;) {
        const ssize_t n = ::read(read_fd, sink, sizeof(sink));
        if (n > 0) {
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return;  // EAGAIN (drained), EOF, or a real error — all terminal
    }
}

}  // namespace gt::net
