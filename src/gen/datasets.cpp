#include "gen/datasets.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace gt {

DatasetSpec DatasetSpec::scaled(double scale) const {
    if (scale >= 1.0) {
        return *this;
    }
    DatasetSpec out = *this;
    out.num_vertices = static_cast<VertexId>(std::max<double>(
        1024.0, static_cast<double>(num_vertices) * scale));
    out.num_edges = static_cast<EdgeCount>(std::max<double>(
        4096.0, static_cast<double>(num_edges) * scale));
    return out;
}

std::vector<Edge> DatasetSpec::generate() const {
    return rmat_edges(num_vertices, num_edges, seed, rmat);
}

const std::vector<DatasetSpec>& table1_datasets() {
    static const std::vector<DatasetSpec> kDatasets = [] {
        std::vector<DatasetSpec> specs;
        auto add = [&](std::string name, std::string kind, VertexId v,
                       EdgeCount e, std::uint64_t seed, RmatParams p = {}) {
            specs.push_back(DatasetSpec{std::move(name), std::move(kind), v, e,
                                        p, seed});
        };
        add("RMAT_1M_10M", "synthetic", 1'000'192, 10'000'000, 11);
        add("RMAT_500K_8M", "synthetic", 524'288, 8'380'000, 12);
        add("RMAT_1M_16M", "synthetic", 1'048'576, 15'700'000, 13);
        add("RMAT_2M_32M", "synthetic", 2'097'152, 31'770'000, 14);
        // hollywood-2009 stand-in: avg degree ~100; slightly flatter RMAT
        // (bigger A) gives the dense-collaboration hub structure.
        add("hollywood_sim", "real-world (simulated)", 1'139'906, 113'891'327,
            15, RmatParams{.a = 0.55, .b = 0.15, .c = 0.15, .noise = 0.1});
        // kron_g500-logn21 stand-in: Graph500 Kronecker at logn21 scale —
        // the original is itself a Graph500 Kronecker sample.
        add("kron21_sim", "real-world (simulated)", 2'097'153, 182'082'942, 16);
        return specs;
    }();
    return kDatasets;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
    for (const DatasetSpec& spec : table1_datasets()) {
        if (spec.name == name) {
            return spec;
        }
    }
    throw std::out_of_range("unknown dataset: " + name);
}

std::vector<Edge> deletion_stream(std::vector<Edge> inserted,
                                  std::uint64_t seed) {
    Rng rng(seed);
    // Fisher-Yates with our deterministic RNG (std::shuffle's output is
    // implementation-defined, which would break cross-platform repro).
    for (std::size_t i = inserted.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
        std::swap(inserted[i - 1], inserted[j]);
    }
    return inserted;
}

}  // namespace gt
