#include "gen/rmat.hpp"

#include <bit>
#include <cassert>

namespace gt {

namespace {

/// Smallest power-of-two exponent covering n ids.
[[nodiscard]] unsigned log2_ceil(std::uint64_t n) {
    unsigned bits = 0;
    while ((1ULL << bits) < n) {
        ++bits;
    }
    return bits;
}

}  // namespace

std::vector<Edge> rmat_edges(VertexId num_vertices, EdgeCount num_edges,
                             std::uint64_t seed, const RmatParams& params) {
    assert(num_vertices > 0);
    const unsigned levels = log2_ceil(num_vertices);
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    const double d = 1.0 - params.a - params.b - params.c;
    for (EdgeCount i = 0; i < num_edges; ++i) {
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        for (unsigned level = 0; level < levels; ++level) {
            // Per-level multiplicative noise keeps hub degrees realistic.
            const double na = params.a * (1.0 + params.noise * (rng.next_double() - 0.5));
            const double nb = params.b * (1.0 + params.noise * (rng.next_double() - 0.5));
            const double nc = params.c * (1.0 + params.noise * (rng.next_double() - 0.5));
            const double nd = d * (1.0 + params.noise * (rng.next_double() - 0.5));
            const double norm = na + nb + nc + nd;
            const double r = rng.next_double() * norm;
            src <<= 1;
            dst <<= 1;
            if (r < na) {
                // top-left quadrant: no bits set
            } else if (r < na + nb) {
                dst |= 1;
            } else if (r < na + nb + nc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        Edge e;
        e.src = static_cast<VertexId>(src % num_vertices);
        e.dst = static_cast<VertexId>(dst % num_vertices);
        e.weight = static_cast<Weight>(1 + rng.next_below(255));
        edges.push_back(e);
    }
    return edges;
}

std::vector<Edge> uniform_edges(VertexId num_vertices, EdgeCount num_edges,
                                std::uint64_t seed) {
    assert(num_vertices > 0);
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    for (EdgeCount i = 0; i < num_edges; ++i) {
        Edge e;
        e.src = static_cast<VertexId>(rng.next_below(num_vertices));
        e.dst = static_cast<VertexId>(rng.next_below(num_vertices));
        e.weight = static_cast<Weight>(1 + rng.next_below(255));
        edges.push_back(e);
    }
    return edges;
}

}  // namespace gt
