// Batch iteration over an edge stream.
//
// All paper experiments feed updates in discrete batches (1M edges per batch,
// §V.A); this helper slices a materialized stream into such batches without
// copying.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace gt {

class EdgeBatcher {
public:
    EdgeBatcher(std::span<const Edge> edges, std::size_t batch_size)
        : edges_(edges), batch_size_(batch_size == 0 ? 1 : batch_size) {}

    [[nodiscard]] std::size_t num_batches() const noexcept {
        return (edges_.size() + batch_size_ - 1) / batch_size_;
    }

    /// The i-th batch; the last batch may be short.
    [[nodiscard]] std::span<const Edge> batch(std::size_t i) const noexcept {
        const std::size_t begin = i * batch_size_;
        const std::size_t len = std::min(batch_size_, edges_.size() - begin);
        return edges_.subspan(begin, len);
    }

    [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }

private:
    std::span<const Edge> edges_;
    std::size_t batch_size_;
};

/// Default batch size used throughout the evaluation (paper §V.A), scaled
/// down proportionally when benches run below paper scale so the *number* of
/// batches (the x-axis of Figs 8/14/15) stays comparable.
[[nodiscard]] inline std::size_t scaled_batch_size(double scale) {
    const double scaled = 1'000'000.0 * scale;
    return scaled < 1.0 ? 1 : static_cast<std::size_t>(scaled);
}

}  // namespace gt
