#include "gen/io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace gt {

namespace {

[[nodiscard]] bool is_comment_or_blank(const std::string& line) {
    for (char c : line) {
        if (c == '#' || c == '%') {
            return true;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) {
            return false;
        }
    }
    return true;  // blank
}

void note_vertex(ParsedGraph& graph, VertexId v) {
    if (v >= graph.num_vertices) {
        graph.num_vertices = v + 1;
    }
}

}  // namespace

ParsedGraph read_edge_list(std::istream& in) {
    ParsedGraph graph;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (is_comment_or_blank(line)) {
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        std::uint64_t weight = 1;
        if (!(fields >> src >> dst)) {
            graph.error = "line " + std::to_string(line_no) +
                          ": expected `src dst [weight]`";
            return graph;
        }
        fields >> weight;  // optional
        if (src > kInvalidVertex - 1 || dst > kInvalidVertex - 1) {
            graph.error = "line " + std::to_string(line_no) +
                          ": vertex id out of 32-bit range";
            return graph;
        }
        Edge e{static_cast<VertexId>(src), static_cast<VertexId>(dst),
               static_cast<Weight>(std::max<std::uint64_t>(weight, 1))};
        note_vertex(graph, e.src);
        note_vertex(graph, e.dst);
        graph.edges.push_back(e);
    }
    return graph;
}

ParsedGraph read_matrix_market(std::istream& in) {
    ParsedGraph graph;
    std::string line;
    if (!std::getline(in, line) ||
        line.rfind("%%MatrixMarket", 0) != 0) {
        graph.error = "missing %%MatrixMarket banner";
        return graph;
    }
    // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    std::istringstream banner(line);
    std::string tag;
    std::string object;
    std::string format;
    std::string field;
    std::string symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    if (object != "matrix" || format != "coordinate") {
        graph.error = "only coordinate matrices are supported";
        return graph;
    }
    const bool pattern = field == "pattern";
    const bool symmetric = symmetry == "symmetric" ||
                           symmetry == "skew-symmetric";
    if (field != "pattern" && field != "integer" && field != "real") {
        graph.error = "unsupported field type: " + field;
        return graph;
    }

    // Skip comments; then the size line: rows cols nonzeros.
    std::size_t line_no = 1;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t nonzeros = 0;
    for (;;) {
        if (!std::getline(in, line)) {
            graph.error = "missing size line";
            return graph;
        }
        ++line_no;
        if (is_comment_or_blank(line)) {
            continue;
        }
        std::istringstream size_line(line);
        if (!(size_line >> rows >> cols >> nonzeros)) {
            graph.error = "malformed size line";
            return graph;
        }
        break;
    }
    graph.num_vertices = static_cast<VertexId>(std::max(rows, cols));
    graph.edges.reserve(symmetric ? nonzeros * 2 : nonzeros);

    std::uint64_t parsed = 0;
    while (parsed < nonzeros && std::getline(in, line)) {
        ++line_no;
        if (is_comment_or_blank(line)) {
            continue;
        }
        std::istringstream entry(line);
        std::uint64_t row = 0;
        std::uint64_t col = 0;
        if (!(entry >> row >> col) || row == 0 || col == 0 || row > rows ||
            col > cols) {
            graph.error = "line " + std::to_string(line_no) +
                          ": malformed coordinate entry";
            return graph;
        }
        Weight weight = 1;
        if (!pattern) {
            double value = 1.0;
            if (!(entry >> value)) {
                graph.error = "line " + std::to_string(line_no) +
                              ": missing value";
                return graph;
            }
            weight = static_cast<Weight>(
                std::max<long long>(1, std::llround(std::abs(value))));
        }
        const Edge e{static_cast<VertexId>(row - 1),
                     static_cast<VertexId>(col - 1), weight};
        graph.edges.push_back(e);
        if (symmetric && e.src != e.dst) {
            graph.edges.push_back(Edge{e.dst, e.src, e.weight});
        }
        ++parsed;
    }
    if (parsed < nonzeros) {
        graph.error = "truncated file: expected " + std::to_string(nonzeros) +
                      " entries, found " + std::to_string(parsed);
    }
    return graph;
}

void write_edge_list(std::ostream& out, std::span<const Edge> edges) {
    for (const Edge& e : edges) {
        out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
    }
}

}  // namespace gt
