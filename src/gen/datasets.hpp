// Dataset registry reproducing Table 1 of the paper.
//
// The four RMAT_* datasets are regenerated exactly as the paper does (Graph500
// RMAT at the listed scales). The two University-of-Florida graphs are not
// redistributable in this offline workspace and are replaced by same-scale
// synthetic stand-ins (hollywood-2009 -> dense RMAT with matched V/E and high
// average degree; kron_g500-logn21 -> Graph500 Kronecker sample at logn21
// scale, which is in fact how the original graph was made). DESIGN.md §5
// records the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "gen/rmat.hpp"
#include "util/types.hpp"

namespace gt {

struct DatasetSpec {
    std::string name;
    std::string kind;  // "synthetic" or "real-world (simulated)"
    VertexId num_vertices = 0;
    EdgeCount num_edges = 0;
    RmatParams rmat{};
    std::uint64_t seed = 0;

    /// Returns a copy scaled to `scale` (0 < scale <= 1]: both vertex and
    /// edge counts shrink linearly so the average degree — the property the
    /// probe-distance experiments depend on — is preserved.
    [[nodiscard]] DatasetSpec scaled(double scale) const;

    /// Materializes the edge stream for this spec.
    [[nodiscard]] std::vector<Edge> generate() const;
};

/// All six datasets of Table 1, in paper order.
[[nodiscard]] const std::vector<DatasetSpec>& table1_datasets();

/// Lookup by name; throws std::out_of_range on unknown names.
[[nodiscard]] const DatasetSpec& dataset_by_name(const std::string& name);

/// Derives a deletion stream: a deterministic shuffle of the insert stream,
/// as the paper's Fig 14-16 experiments delete the loaded graph batch by
/// batch until empty.
[[nodiscard]] std::vector<Edge> deletion_stream(std::vector<Edge> inserted,
                                                std::uint64_t seed);

}  // namespace gt
