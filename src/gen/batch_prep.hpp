// Batch preprocessing (extension): deduplicate and cancel updates within a
// batch before applying it to a store.
//
// Streaming frameworks (STINGER's batch server included) pre-combine each
// update batch: for every (src, dst) pair only the *final* operation in the
// batch matters, so earlier ones fold away. Optionally, when the caller
// knows the batch only touches edges that did not exist beforehand (a pure
// growth stream), an insert-then-delete pair cancels outright.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace gt {

struct PreparedBatch {
    std::vector<Update> updates;    // compacted; survivors keep stream order
    std::size_t duplicates = 0;     // updates folded into their survivor
    std::size_t cancellations = 0;  // insert+delete pairs removed outright
};

/// Compacts `raw` so each (src, dst) appears at most once, keeping the
/// *final* operation for the pair (weight of the last insert wins — the
/// stores' own overwrite semantics).
///
/// `assume_new_edges`: set only when every pair in the batch is known to be
/// absent from the store beforehand; then a pair whose first op is an insert
/// and whose last op is a delete nets to nothing and is dropped. Without the
/// flag such pairs survive as the trailing delete (sound for any prior
/// state; a no-op when the edge never existed).
[[nodiscard]] inline PreparedBatch prepare_batch(std::span<const Update> raw,
                                                 bool assume_new_edges =
                                                     false) {
    PreparedBatch out;
    auto key = [](const Edge& e) {
        return (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    };
    struct PairInfo {
        std::size_t last_index = 0;
        bool first_is_insert = false;
    };
    std::unordered_map<std::uint64_t, PairInfo> pairs;
    pairs.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const std::uint64_t k = key(raw[i].edge);
        auto [it, fresh] = pairs.try_emplace(
            k, PairInfo{i, raw[i].kind == UpdateKind::Insert});
        if (!fresh) {
            it->second.last_index = i;
        }
    }
    out.updates.reserve(pairs.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const PairInfo& info = pairs.at(key(raw[i].edge));
        if (info.last_index != i) {
            ++out.duplicates;
            continue;
        }
        if (assume_new_edges && info.first_is_insert &&
            raw[i].kind == UpdateKind::Delete) {
            ++out.cancellations;
            continue;
        }
        out.updates.push_back(raw[i]);
    }
    return out;
}

/// Convenience: wraps plain inserts as updates.
[[nodiscard]] inline std::vector<Update> as_inserts(
    std::span<const Edge> edges) {
    std::vector<Update> out;
    out.reserve(edges.size());
    for (const Edge& e : edges) {
        out.push_back(Update{e, UpdateKind::Insert});
    }
    return out;
}

/// Applies a prepared batch to any store with insert_edge/delete_edge.
template <typename Store>
void apply_batch(Store& store, const PreparedBatch& batch) {
    for (const Update& u : batch.updates) {
        if (u.kind == UpdateKind::Insert) {
            (void)store.insert_edge(u.edge.src, u.edge.dst, u.edge.weight);
        } else {
            (void)store.delete_edge(u.edge.src, u.edge.dst);
        }
    }
}

}  // namespace gt
