// Graph500-style RMAT (recursive-matrix) edge generator.
//
// The paper's synthetic datasets come from the Graph500 RMAT generator [2];
// the two "real-world" graphs (hollywood-2009, kron_g500-logn21) are replaced
// here by same-scale Kronecker samples — see DESIGN.md §5. RMAT recursively
// partitions the adjacency matrix into quadrants with probabilities
// (A, B, C, D) and descends `log2(N)` levels to pick each endpoint pair,
// which yields the heavy-tailed degree distributions these experiments
// depend on.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace gt {

struct RmatParams {
    double a = 0.57;  // Graph500 defaults
    double b = 0.19;
    double c = 0.19;
    // d = 1 - a - b - c
    /// Perturbs quadrant probabilities per level (Graph500 "noise") so the
    /// degree sequence is not perfectly self-similar.
    double noise = 0.1;
};

/// Generates `num_edges` directed edges over vertex ids [0, num_vertices).
/// Vertex ids are produced in a power-of-two space and folded into the target
/// range, so non-power-of-two dataset sizes (e.g. hollywood-2009's 1,139,906
/// vertices) work. Weights are uniform in [1, 255] for SSSP.
[[nodiscard]] std::vector<Edge> rmat_edges(VertexId num_vertices,
                                           EdgeCount num_edges,
                                           std::uint64_t seed,
                                           const RmatParams& params = {});

/// Uniform (Erdős–Rényi style) edge stream over [0, num_vertices).
[[nodiscard]] std::vector<Edge> uniform_edges(VertexId num_vertices,
                                              EdgeCount num_edges,
                                              std::uint64_t seed);

}  // namespace gt
