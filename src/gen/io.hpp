// Graph file I/O: whitespace edge lists and Matrix Market coordinate files.
//
// The paper's real-world inputs come from the University of Florida Sparse
// Matrix Collection, which distributes Matrix Market (.mtx) files; this
// module reads that format (pattern/integer/real coordinate matrices) plus
// plain "src dst [weight]" edge lists, so users can run the library on their
// own graphs.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace gt {

struct ParsedGraph {
    std::vector<Edge> edges;
    VertexId num_vertices = 0;  // declared (mtx) or max-id+1 (edge list)
    std::string error;          // non-empty on parse failure

    [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Parses a plain edge list: one `src dst [weight]` triple per line;
/// `#` and `%` start comments; blank lines ignored. Missing weights
/// default to 1.
[[nodiscard]] ParsedGraph read_edge_list(std::istream& in);

/// Parses a Matrix Market coordinate file (general or symmetric;
/// pattern / integer / real fields — real weights are rounded to the
/// nearest positive integer). Symmetric matrices are expanded to both
/// directions. 1-based indices are converted to 0-based vertex ids.
[[nodiscard]] ParsedGraph read_matrix_market(std::istream& in);

/// Writes a `src dst weight` edge list.
void write_edge_list(std::ostream& out, std::span<const Edge> edges);

}  // namespace gt
