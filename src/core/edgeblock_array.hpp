// The EdgeblockArray: Robin Hood + Tree-Based hashed edge storage
// (paper §III.B).
//
// Geometry: an *edgeblock* is PAGEWIDTH edge-cells; it is divided into
// Subblocks (branch-out granularity, default 8 cells) which are divided into
// Workblocks (retrieval granularity, default 4 cells). Every vertex that
// owns edges has a *top-parent* edgeblock; when a subblock congests, the
// Tree-Based Hashing scheme "branches out" a child edgeblock in the overflow
// pool and the insert continues in the child at the next hash level. Probe
// distance when following a vertex's edges is therefore O(log degree) rather
// than the O(degree) of adjacency-list chains.
//
// Within a subblock, insertion runs the Robin Hood Hashing algorithm: the
// destination id hashes to a home cell; on collision the probe distances of
// the incoming and resident edges compete and the "richer" edge is displaced
// and continues probing (wrapping within the subblock). In delete-and-
// compact mode RHH swapping is disabled (paper §III.C) and deletion holes
// are refilled by pulling the deepest descendant edge on the same hash path
// back up, freeing emptied edgeblocks.
//
// Blocks live in one pooled arena: callers (GraphTinker) hold a top-block
// handle per dense source vertex. The structure never stores source ids —
// ownership is implied by the handle, exactly as the paper's main-region
// indexing implies it.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/cal.hpp"
#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "util/hash.hpp"
#include "util/types.hpp"
#include "util/visit.hpp"

namespace gt::core {

/// Typed obs handles the EdgeblockArray records through — resolved once at
/// construction from the owning registry, so hot paths never touch the
/// registry's name map. Counter names: "eba.<field>"; the two histograms
/// ("eba.find_probe_cells", "eba.insert_probe_cells") sample per-operation
/// probe distance in cells.
struct EbaMetrics {
    obs::Counter* cells_probed = nullptr;
    obs::Counter* workblocks_fetched = nullptr;
    obs::Counter* rhh_swaps = nullptr;
    obs::Counter* branch_outs = nullptr;
    obs::Counter* compaction_moves = nullptr;
    obs::Counter* blocks_freed = nullptr;
    obs::Counter* trees_rebuilt = nullptr;
    obs::Counter* tombstones_purged = nullptr;
    obs::Counter* unbranch_moves = nullptr;
    obs::Histogram* find_probe_cells = nullptr;
    obs::Histogram* insert_probe_cells = nullptr;
};

enum class CellState : std::uint8_t { Empty, Occupied, Tombstone };

/// The most primitive unit of the EdgeblockArray (one edge-cell).
struct EdgeCell {
    VertexId dst = kInvalidVertex;
    Weight weight = 0;
    std::uint32_t cal_pos = kNoCalPos;
    std::uint16_t probe = 0;  // Robin Hood displacement from the home cell
    CellState state = CellState::Empty;
};

class EdgeblockArray {
public:
    static constexpr std::uint32_t kNoBlock = 0xffffffffU;

    /// `cal` may be null (CAL feature disabled); when set, the array keeps
    /// CAL-pointers consistent whenever cells move. `registry` names where
    /// telemetry lands; null constructs a private registry (standalone /
    /// test use) so recording sites never branch on its presence.
    EdgeblockArray(const Config& config, CoarseAdjacencyList* cal,
                   obs::Registry* registry = nullptr);

    struct InsertResult {
        bool inserted = false;  // false: edge existed, weight updated
        std::uint32_t existing_cal_pos = kNoCalPos;  // when !inserted
    };

    /// FIND mode then INSERT mode (paper §III.C). `top` is the vertex's
    /// top-parent block handle; kNoBlock allocates one.
    ///
    /// `new_cal_pos` is the CAL position of the edge's freshly inserted CAL
    /// copy (kNoCalPos when CAL is off). The new edge *carries* this pointer
    /// through the Robin Hood cascade, so the CAL owner backreference is
    /// re-bound at every displacement — including displacements of the new
    /// edge itself later in the same cascade.
    InsertResult insert(std::uint32_t& top, VertexId dst, Weight weight,
                        std::uint32_t new_cal_pos = kNoCalPos);

    /// INSERT mode only — precondition: (…, dst) is absent under `top`
    /// (i.e. find_ref returned nothing). Used by callers that already ran
    /// the FIND stage themselves.
    /// `start_block`/`start_level` (optional) resume the cascade below the
    /// tree's top: probe_insert proves that every level above its Absent
    /// resume point is a full window with no tombstone and no Robin Hood
    /// swap opportunity, so the cascade would walk through them verbatim —
    /// starting at the resume point skips that re-walk.
    void insert_new(std::uint32_t& top, VertexId dst, Weight weight,
                    std::uint32_t new_cal_pos,
                    std::uint32_t start_block = kNoBlock,
                    std::uint32_t start_level = 0);

    /// Fused FIND/INSERT probe (the hot path). One walk of the hash path
    /// that either updates an existing edge in place (Duplicate), proves the
    /// key absent *and* pins a directly writable cell (PlaceAt — the first
    /// EMPTY on the probe path with no earlier reusable slot or Robin Hood
    /// swap point, which by the delete-only invariant also proves nothing
    /// lives deeper), or proves it absent but needs the full INSERT-mode
    /// cascade (Absent). Callers follow up with place_at or insert_new.
    struct ProbeResult {
        enum class Kind : std::uint8_t { Duplicate, PlaceAt, Absent };
        Kind kind = Kind::Absent;
        std::uint32_t cal_pos = kNoCalPos;  // Duplicate: the edge's CAL copy
        CellRef where{};                    // PlaceAt: the free cell
        std::uint16_t probe = 0;            // PlaceAt: its displacement
        // Absent: where the INSERT cascade must begin — the first level with
        // a tombstone or Robin Hood swap point (or the deepest block when
        // the walk fell off the tree). Levels above are full windows the
        // cascade would cross without effect, so insert_new skips them.
        std::uint32_t resume_block = kNoBlock;
        std::uint32_t resume_level = 0;
        // Duplicate: the weight the cell held before this probe overwrote
        // it — the transactional batch undo journal restores it on rollback.
        // Kept last: the Absent returns aggregate-initialize through
        // resume_level positionally.
        Weight prev_weight = 0;
    };
    ProbeResult probe_insert(std::uint32_t& top, VertexId dst, Weight weight);

    /// Growth pre-flight for the insert path: guarantees that at least one
    /// block can be allocated without the arena having to grow, so the
    /// probe/cascade that follows cannot hit an allocation failure after it
    /// has started mutating cells (one insert allocates at most one block —
    /// a branch-out's fresh child absorbs the carried edge immediately).
    /// All throwing work (the "eba.grow" fail point and the backing-vector
    /// resizes) happens here, before any structural mutation, which is what
    /// makes a mid-batch allocation failure cleanly roll-backable.
    void ensure_block_available();

    /// Erase-path counterpart: keeps the block free-list able to absorb
    /// every block that exists, so the (possibly several) free_block calls
    /// a compacting erase performs can never throw mid-mutation.
    void ensure_erase_headroom() {
        if (free_blocks_.capacity() < block_count_) {
            free_blocks_.reserve(block_count_);
        }
    }

    /// Writes a new edge into the cell pinned by probe_insert (PlaceAt).
    void place_at(CellRef ref, VertexId dst, Weight weight,
                  std::uint16_t probe, std::uint32_t cal_pos) {
        EdgeCell& c = cell(ref.block, ref.slot);
        c = EdgeCell{dst, weight, cal_pos, probe, CellState::Occupied};
        ++occupied_[ref.block];
        set_occupancy(ref.block, ref.slot, true);
        set_tombstone(ref.block, ref.slot, false);
    }

    /// Software-prefetches the state a FIND/INSERT probe of (`top`, `dst`)
    /// will touch first: the level-0 subblock's cells and the block's
    /// occupancy masks. The batched ingest path calls this for the *next*
    /// source run while the current one drains, hiding the arena miss.
    void prefetch_probe(std::uint32_t top, VertexId dst) const noexcept;

    /// Second prefetch stage: once prefetch_probe's lines have landed, the
    /// level-0 masks are cheap to read, so this peeks at them — if the
    /// level-0 subblock is full (the probe will descend) it prefetches the
    /// level-1 child's window too. Call it at a *shorter* lookahead distance
    /// than prefetch_probe so the stage-1 lines have arrived.
    void prefetch_probe_child(std::uint32_t top, VertexId dst) const noexcept;

    /// FIND mode, returning the cell location instead of the weight.
    [[nodiscard]] std::optional<CellRef> find_ref(std::uint32_t top,
                                                  VertexId dst) const {
        if (const auto loc = locate(top, dst)) {
            return CellRef{loc->block, loc->slot};
        }
        return std::nullopt;
    }

    [[nodiscard]] const EdgeCell& cell_at(CellRef ref) const {
        return cell(ref.block, ref.slot);
    }
    void set_weight(CellRef ref, Weight weight) {
        cell(ref.block, ref.slot).weight = weight;
    }

    struct EraseResult {
        bool found = false;
        std::uint32_t cal_pos = kNoCalPos;  // CAL copy to invalidate
        Weight weight = 0;  // the erased edge's weight (undo-journal redo)
    };

    /// Deletes (…, dst) under the configured deletion mode. In
    /// delete-and-compact mode, `top` may be reset to kNoBlock when the
    /// vertex's whole subtree empties.
    EraseResult erase(std::uint32_t& top, VertexId dst);

    // ---- maintenance primitives (policy lives in core/maintenance.hpp) ---

    /// Cell census of the tree under `top` (drives the purge policy).
    struct TreeLoad {
        std::uint32_t live = 0;
        std::uint32_t tombstones = 0;
        std::uint32_t blocks = 0;
    };
    [[nodiscard]] TreeLoad tree_load(std::uint32_t top) const;

    /// Tombstone purge: collects the live cells under `top`, frees the whole
    /// subtree and reinserts them into a fresh tree. Tombstones vanish, the
    /// Robin Hood placement returns to fresh-build probe distance, depth
    /// shrinks, and surplus blocks land on the free list. CAL pointers of
    /// moved cells are re-bound through the usual insert path. Returns the
    /// number of live cells reinserted; `top` is rewritten (kNoBlock when
    /// the tree held no live cells).
    std::uint32_t rebuild_tree(std::uint32_t& top);

    /// TBH un-branching: bottom-up, merges every child subtree whose live
    /// cells all fit into the free slots of the parent subblock window that
    /// branched to it, then frees the child's blocks. Any edge in the
    /// subtree hashes to that window at the parent's level, so the pull-up
    /// is placement-legal. Only valid when Robin Hood swapping is off
    /// (compact-delete or no-RHH mode): moved edges land out of probe order,
    /// which the full-window FIND tolerates but the RHH early-exit does not.
    /// Returns the number of edges pulled up; no-op (returns 0) in RHH mode.
    std::uint32_t unbranch(std::uint32_t& top);

    /// FIND mode only.
    [[nodiscard]] std::optional<Weight> find(std::uint32_t top,
                                             VertexId dst) const;

    /// Rewrites a cell's CAL pointer (used right after a CAL insert, and by
    /// CAL compaction when a CAL edge moves).
    void set_cal_pos(CellRef ref, std::uint32_t pos) {
        cell(ref.block, ref.slot).cal_pos = pos;
    }

    /// Visits every live out-edge under `top`: fn(dst, weight), where fn may
    /// return void (visit everything) or bool (false stops the traversal).
    /// Returns false when iteration was cut short. Iteration is driven by
    /// per-block occupancy bitmasks, so cost is proportional to live edges
    /// plus blocks — not to the arena's slack. Safe to call from concurrent
    /// readers and from inside another visit: the thread-local traversal
    /// scratch is segmented per nesting level.
    template <typename Fn>
    bool visit_edges_of(std::uint32_t top, Fn&& fn) const {
        if (top == kNoBlock) {
            return true;
        }
        static thread_local std::vector<std::uint32_t> visit_stack_;
        const std::size_t sbase = visit_stack_.size();
        visit_stack_.push_back(top);
        while (visit_stack_.size() > sbase) {
            const std::uint32_t block = visit_stack_.back();
            visit_stack_.pop_back();
            const std::size_t base =
                static_cast<std::size_t>(block) * pagewidth_;
            const std::size_t mbase =
                static_cast<std::size_t>(block) * words_per_block_;
            for (std::uint32_t w = 0; w < words_per_block_; ++w) {
                std::uint64_t bits = masks_[mbase + w];
                while (bits != 0) {
                    const auto i = static_cast<std::uint32_t>(
                        std::countr_zero(bits));
                    bits &= bits - 1;
                    const EdgeCell& c = cells_[base + w * 64 + i];
                    if (!visit_step(fn, c.dst, c.weight)) {
                        visit_stack_.resize(sbase);
                        return false;
                    }
                }
            }
            const std::size_t cbase = static_cast<std::size_t>(block) * spb_;
            for (std::uint32_t s = 0; s < spb_; ++s) {
                if (children_[cbase + s] != kNoBlock) {
                    visit_stack_.push_back(children_[cbase + s]);
                }
            }
        }
        return true;
    }

    /// Visits every live cell under `top` with its location:
    /// fn(CellRef, const EdgeCell&). Diagnostics/validation hook.
    template <typename Fn>
    void for_each_cell_of(std::uint32_t top, Fn&& fn) const {
        if (top == kNoBlock) {
            return;
        }
        std::vector<std::uint32_t> stack{top};
        while (!stack.empty()) {
            const std::uint32_t block = stack.back();
            stack.pop_back();
            for (std::uint32_t i = 0; i < pagewidth_; ++i) {
                const EdgeCell& c = cell(block, i);
                if (c.state == CellState::Occupied) {
                    fn(CellRef{block, i}, c);
                }
            }
            for (std::uint32_t s = 0; s < spb_; ++s) {
                if (child(block, s) != kNoBlock) {
                    stack.push_back(child(block, s));
                }
            }
        }
    }

    // ---- diagnostics / test hooks -------------------------------------

    [[nodiscard]] std::size_t blocks_in_use() const noexcept {
        return block_count_ - free_blocks_.size();
    }
    [[nodiscard]] std::size_t blocks_allocated() const noexcept {
        return block_count_;
    }
    /// Bytes held by in-use blocks (cells + child pointers + occupancy and
    /// tombstone masks). Free-listed blocks are excluded — this is the
    /// footprint reclamation shrinks, not the arena's high-water mark.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return blocks_in_use() * bytes_per_block();
    }
    /// Bytes of arena storage actually allocated (the capacity high-water
    /// mark): in-use blocks plus free-listed blocks plus growth slack.
    [[nodiscard]] std::size_t memory_capacity_bytes() const noexcept {
        return static_cast<std::size_t>(storage_blocks_) * bytes_per_block();
    }
    /// \deprecated Compatibility shim (PR 4): assembles the legacy Stats
    /// struct from the obs registry counters. New code should resolve
    /// counters from registry() (names "eba.<field>") or read a
    /// registry().snapshot() instead.
    [[nodiscard]] Stats stats() const noexcept;
    /// The registry this array records into (owned fallback when none was
    /// supplied at construction).
    [[nodiscard]] obs::Registry& registry() const noexcept {
        return *registry_;
    }
    /// Tombstone cells across the whole arena (popcount of the tombstone
    /// masks). Free-listed blocks are scrubbed on free, so they contribute
    /// zero — this is the live tombstone census the auditor cross-checks.
    [[nodiscard]] std::uint64_t tombstones_in_arena() const noexcept;
    /// Opens / closes a thread-local stats-deferral scope: while open, this
    /// array's probe counters accumulate in plain thread-local integers and
    /// land in the shared relaxed atomics once at close. Batched ingest
    /// wraps its apply loop in one scope so the counter RMWs are paid per
    /// batch instead of per edge (2–4 atomic adds per insert otherwise).
    /// Scopes nest; concurrent readers on other threads simply observe the
    /// counters a batch late, which relaxed counters already permit.
    void begin_stats_batch() const noexcept;
    void end_stats_batch() const noexcept;
    /// RAII wrapper for begin/end_stats_batch.
    class [[nodiscard]] StatsBatchScope {
    public:
        explicit StatsBatchScope(const EdgeblockArray& eba) noexcept
            : eba_(eba) {
            eba_.begin_stats_batch();
        }
        ~StatsBatchScope() { eba_.end_stats_batch(); }
        StatsBatchScope(const StatsBatchScope&) = delete;
        StatsBatchScope& operator=(const StatsBatchScope&) = delete;

    private:
        const EdgeblockArray& eba_;
    };
    /// Depth (generations) of the block tree under `top`; 0 for kNoBlock.
    [[nodiscard]] std::uint32_t subtree_depth(std::uint32_t top) const;
    /// Live cells in one block.
    [[nodiscard]] std::uint32_t occupied_in(std::uint32_t block) const {
        return occupied_[block];
    }
    [[nodiscard]] std::uint32_t pagewidth() const noexcept { return pagewidth_; }

private:
    [[nodiscard]] EdgeCell& cell(std::uint32_t block, std::uint32_t slot) {
        return cells_[static_cast<std::size_t>(block) * pagewidth_ + slot];
    }
    [[nodiscard]] const EdgeCell& cell(std::uint32_t block,
                                       std::uint32_t slot) const {
        return cells_[static_cast<std::size_t>(block) * pagewidth_ + slot];
    }
    [[nodiscard]] std::uint32_t& child(std::uint32_t block, std::uint32_t sb) {
        return children_[static_cast<std::size_t>(block) * spb_ + sb];
    }
    [[nodiscard]] std::uint32_t child(std::uint32_t block,
                                      std::uint32_t sb) const {
        return children_[static_cast<std::size_t>(block) * spb_ + sb];
    }

    /// Tree-Based Hashing: one mixed hash per (dst, level) supplies both the
    /// subblock index (low bits) and the Robin Hood home offset within the
    /// subblock (high bits) — the two are independent because subblocks per
    /// block never exceed 2^16.
    [[nodiscard]] std::uint32_t sb_of(VertexId dst,
                                      std::uint32_t level) const noexcept {
        return static_cast<std::uint32_t>(level_hash(dst, level)) & (spb_ - 1);
    }
    /// Robin Hood home offset of `dst` within its subblock at `level`.
    [[nodiscard]] std::uint32_t home_of(VertexId dst,
                                        std::uint32_t level) const noexcept {
        return static_cast<std::uint32_t>(level_hash(dst, level) >> 32) &
               (subblock_ - 1);
    }

    struct Located {
        std::uint32_t block;
        std::uint32_t sb;    // subblock index within the block
        std::uint32_t slot;  // cell index within the block
        std::uint32_t level;
    };
    [[nodiscard]] std::optional<Located> locate(std::uint32_t top,
                                                VertexId dst) const;

    [[nodiscard]] std::size_t bytes_per_block() const noexcept {
        return static_cast<std::size_t>(pagewidth_) * sizeof(EdgeCell) +
               spb_ * sizeof(std::uint32_t) +
               2 * words_per_block_ * sizeof(std::uint64_t) +
               sizeof(std::uint32_t);
    }

    std::uint32_t allocate_block();
    /// Grows the backing vectors to `target` blocks of storage. The only
    /// place the arena's vectors reallocate; may throw std::bad_alloc, in
    /// which case no arena state has changed (sizes only ever grow, and
    /// block_count_ is untouched).
    void grow_storage(std::uint32_t target);
    void free_block(std::uint32_t block);
    void free_subtree(std::uint32_t block);
    /// Total live cells under `block`'s subtree.
    [[nodiscard]] std::uint32_t subtree_live(std::uint32_t block) const;
    /// Bottom-up un-branch of one block's children at tree level `level`.
    std::uint32_t unbranch_block(std::uint32_t block, std::uint32_t level);
    [[nodiscard]] bool subtree_is_empty(std::uint32_t block) const;
    /// Removes and returns the deepest edge in `block`'s subtree; false when
    /// the subtree holds no edges. Prunes empty descendants as it unwinds.
    bool extract_deepest(std::uint32_t block, EdgeCell& out);
    void refill_hole(std::uint32_t block, std::uint32_t sb, std::uint32_t slot,
                     std::uint32_t level);
    void prune_path(std::uint32_t top, VertexId dst);

    /// Descent paths deeper than this are never pruned (bounded stack use);
    /// real trees stay far shallower than 64 generations.
    static constexpr std::size_t kMaxPruneDepth = 64;

    std::uint32_t pagewidth_;
    std::uint32_t subblock_;
    std::uint32_t workblock_;
    std::uint32_t spb_;  // subblocks per block
    bool rhh_;
    bool compact_delete_;
    bool kernel_ok_;  // subblock fits one mask word: bit-parallel probing
    std::uint32_t words_per_block_;  // occupancy-mask words per block
    CoarseAdjacencyList* cal_;

    void set_occupancy(std::uint32_t block, std::uint32_t slot, bool on) {
        std::uint64_t& word =
            masks_[static_cast<std::size_t>(block) * words_per_block_ +
                   slot / 64];
        if (on) {
            word |= 1ULL << (slot % 64);
        } else {
            word &= ~(1ULL << (slot % 64));
        }
    }

    void set_tombstone(std::uint32_t block, std::uint32_t slot, bool on) {
        std::uint64_t& word =
            tomb_masks_[static_cast<std::size_t>(block) * words_per_block_ +
                        slot / 64];
        if (on) {
            word |= 1ULL << (slot % 64);
        } else {
            word &= ~(1ULL << (slot % 64));
        }
    }

    /// Occupancy/tombstone bits of the subblock starting at cell `sb_base`.
    /// Precondition: kernel_ok_ (the window never straddles a mask word,
    /// because subblock_ is a power of two <= 64 and sb_base is a multiple
    /// of it).
    struct WindowBits {
        std::uint64_t occ;
        std::uint64_t tomb;
    };
    [[nodiscard]] WindowBits window_bits(std::uint32_t block,
                                         std::uint32_t sb_base) const {
        const std::size_t word =
            static_cast<std::size_t>(block) * words_per_block_ + sb_base / 64;
        const std::uint32_t shift = sb_base % 64;
        const std::uint64_t wmask =
            subblock_ >= 64 ? ~0ULL : (1ULL << subblock_) - 1;
        return WindowBits{(masks_[word] >> shift) & wmask,
                          (tomb_masks_[word] >> shift) & wmask};
    }

    std::vector<EdgeCell> cells_;
    std::vector<std::uint32_t> children_;
    std::vector<std::uint32_t> occupied_;
    std::vector<std::uint64_t> masks_;
    std::vector<std::uint64_t> tomb_masks_;  // bit set = Tombstone cell
    std::vector<std::uint32_t> free_blocks_;
    std::uint32_t block_count_ = 0;
    /// Blocks the backing vectors currently have storage for
    /// (>= block_count_; the arena grows in chunks, not per block).
    std::uint32_t storage_blocks_ = 0;
    // Telemetry: counters/histograms live in the registry (relaxed atomics,
    // so const FIND paths may be shared by concurrent readers); metrics_
    // caches the typed handles resolved once at construction.
    obs::Registry* registry_ = nullptr;
    std::unique_ptr<obs::Registry> owned_registry_;
    EbaMetrics metrics_{};

    // The structural auditor (src/core/audit.hpp) reads the raw arena, and
    // its test-only corruption hook writes it.
    friend class Auditor;
    friend class CorruptionInjector;
};

}  // namespace gt::core
