#include "core/maintenance.hpp"

#include "core/graphtinker.hpp"

namespace gt::core {

/// Stateful single-run maintenance walk. Nested in Maintainer so it shares
/// the friend access GraphTinker grants.
class Maintainer::Run {
public:
    Run(GraphTinker& g, std::uint64_t budget, bool bounded)
        : g_(g), budget_(budget), bounded_(bounded) {}

    MaintenanceReport run() {
        // Purge rebuilds go through the regular INSERT cascade; defer their
        // probe-counter flushes to one batch like the ingest paths do.
        const EdgeblockArray::StatsBatchScope stats_scope{g_.eba_};
        sweep_trees();
        compact_cal();
        // One record per sweep: how much work this run touched (cells
        // examined + moved) and whether it finished its walk. The handles
        // were resolved when the store was built — maintain_some() rides on
        // every batch boundary, so no registry lookups here.
        g_.maintenance_runs_->inc();
        if (report_.complete) {
            g_.maintenance_complete_runs_->inc();
        }
        g_.maintenance_cells_touched_->record(cost_);
        return report_;
    }

private:
    void sweep_trees() {
        const std::size_t n = g_.top_.size();
        if (n == 0) {
            report_.complete = true;
            return;
        }
        const std::size_t start = bounded_ ? g_.maintain_cursor_ % n : 0;
        std::size_t step = 0;
        for (; step < n; ++step) {
            if (bounded_ && cost_ >= budget_) {
                break;
            }
            maintain_tree(static_cast<VertexId>((start + step) % n));
        }
        report_.complete = step == n;
        if (bounded_) {
            g_.maintain_cursor_ =
                static_cast<VertexId>((start + step) % n);
        }
    }

    void maintain_tree(VertexId dense) {
        std::uint32_t& top = g_.top_[dense];
        if (top == EdgeblockArray::kNoBlock) {
            ++cost_;
            return;
        }
        ++report_.trees_examined;
        const EdgeblockArray::TreeLoad load = g_.eba_.tree_load(top);
        cost_ += static_cast<std::uint64_t>(load.live) + load.tombstones +
                 load.blocks;
        const Config& cfg = g_.config_;
        const std::size_t blocks_before = g_.eba_.blocks_in_use();
        if (cfg.deletion_mode == DeletionMode::DeleteOnly &&
            load.tombstones > 0 &&
            static_cast<double>(load.tombstones) >
                cfg.purge_tombstone_threshold *
                    static_cast<double>(load.live + load.tombstones)) {
            const std::uint32_t moved = g_.eba_.rebuild_tree(top);
            cost_ += 2ULL * moved;  // collect + reinsert
            ++report_.trees_purged;
            report_.cells_moved += moved;
            report_.tombstones_purged += load.tombstones;
        } else if (!cfg.rhh_active() && load.blocks > 1) {
            const std::uint32_t moved = g_.eba_.unbranch(top);
            cost_ += 2ULL * moved;
            if (moved > 0 || g_.eba_.blocks_in_use() < blocks_before) {
                ++report_.trees_unbranched;
                report_.cells_moved += moved;
            }
        }
        const std::size_t blocks_after = g_.eba_.blocks_in_use();
        if (blocks_after < blocks_before) {
            report_.eba_blocks_reclaimed += blocks_before - blocks_after;
        }
    }

    void compact_cal() {
        if (!g_.config_.enable_cal) {
            return;
        }
        const EdgeCount scanned = g_.cal_.scanned_slots();
        const EdgeCount holes = scanned - g_.cal_.live_edges();
        if (holes == 0 ||
            static_cast<double>(holes) <=
                g_.config_.cal_compact_threshold *
                    static_cast<double>(scanned)) {
            return;
        }
        const std::size_t blocks_before = g_.cal_.blocks_in_use();
        report_.cal_holes_reclaimed += g_.cal_.compact_chains(
            [this](CellRef owner, std::uint32_t pos) {
                g_.eba_.set_cal_pos(owner, pos);
            });
        const std::size_t blocks_after = g_.cal_.blocks_in_use();
        if (blocks_after < blocks_before) {
            report_.cal_blocks_reclaimed += blocks_before - blocks_after;
        }
        cost_ += scanned;
    }

    GraphTinker& g_;
    MaintenanceReport report_;
    std::uint64_t budget_ = 0;
    std::uint64_t cost_ = 0;
    bool bounded_ = false;
};

MaintenanceReport Maintainer::run(GraphTinker& graph) {
    return Run(graph, 0, /*bounded=*/false).run();
}

MaintenanceReport Maintainer::run_budget(GraphTinker& graph,
                                         std::uint32_t budget_cells) {
    return Run(graph, budget_cells, /*bounded=*/true).run();
}

MaintenanceReport GraphTinker::maintain() { return Maintainer::run(*this); }

MaintenanceReport GraphTinker::maintain_some(std::uint32_t budget_cells) {
    return Maintainer::run_budget(*this, budget_cells);
}

}  // namespace gt::core
