// Coarse Adjacency List EdgeblockArray (paper §III.B).
//
// A secondary, highly compact copy of every edge, kept in sync in O(1) per
// update via per-edge CAL-pointers. Source vertices are partitioned into
// groups of `group_size` consecutive dense ids; each group owns a doubly
// linked chain of fixed-size blocks whose slots are bump-allocated, so edges
// of *different* vertices in the group share blocks ("several source vertices
// share an entry") and full-graph streaming is block-contiguous.
//
// Each CAL edge carries a backreference to the EdgeblockArray cell that owns
// it so that (a) delete-and-compact can relocate the group's last edge into a
// freshly created hole and fix the owner's CAL-pointer, and (b) the
// EdgeblockArray can re-bind the pointer when Robin Hood swaps or compaction
// move a cell.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "util/types.hpp"
#include "util/visit.hpp"

namespace gt::core {

/// Location of an edge-cell inside the EdgeblockArray pool.
struct CellRef {
    std::uint32_t block = 0;
    std::uint32_t slot = 0;
};

/// Sentinel CAL position for "no CAL copy" (CAL disabled).
inline constexpr std::uint32_t kNoCalPos = 0xffffffffU;

class CoarseAdjacencyList {
public:
    /// `registry` receives the CAL's telemetry ("cal.*" counters plus the
    /// chain-length histogram); null constructs a private registry so
    /// standalone (test) instances keep recording.
    CoarseAdjacencyList(std::uint32_t group_size, std::uint32_t block_edges,
                        obs::Registry* registry = nullptr);

    /// Reserves pool capacity for the expected edge count.
    void reserve(EdgeCount expected_edges) {
        pool_.reserve(expected_edges + block_edges_);
        blocks_.reserve(expected_edges / block_edges_ + 2);
    }

    /// Appends a copy of (raw_src, dst, weight) to the chain of the group of
    /// `dense_src`, growing it by one block if the tail is full. Returns the
    /// CAL position to store in the owning edge-cell.
    std::uint32_t insert(VertexId dense_src, VertexId raw_src, VertexId dst,
                         Weight weight, CellRef owner);

    /// Growth pre-flight for one append to `dense_src`'s chain: creates the
    /// group slot and reserves enough pool/metadata/free-list capacity that
    /// the append itself cannot hit an allocating (throwing) operation. All
    /// throwing work — including the "cal.grow" fail point — happens here,
    /// before the caller mutates anything, so a mid-batch allocation failure
    /// rolls back cleanly.
    void prepare_append(VertexId dense_src);

    /// Pre-flight for one erase: the "cal.grow" fail point plus free-list
    /// headroom, so a compacting erase that frees an emptied tail block
    /// cannot throw out of free_tail_block.
    void prepare_erase();

    /// Amortized append handle for a run of inserts that all target the same
    /// dense source: the group resolution (a division plus a bounds-checked
    /// resize) runs once at construction instead of per edge. Valid only
    /// while no interleaved erase/compaction runs on the list.
    class Appender {
    public:
        std::uint32_t append(VertexId raw_src, VertexId dst, Weight weight,
                             CellRef owner) {
            return cal_->insert_in_group(group_, raw_src, dst, weight, owner);
        }

        /// prepare_append for the already-resolved group (skips the group
        /// division on the batch hot path).
        void prepare() { cal_->prepare_append_group(group_); }

    private:
        friend class CoarseAdjacencyList;
        Appender(CoarseAdjacencyList* cal, std::uint32_t group)
            : cal_(cal), group_(group) {}
        CoarseAdjacencyList* cal_;
        std::uint32_t group_;
    };

    /// Appender for `dense_src`'s group (creates the group when new).
    [[nodiscard]] Appender appender(VertexId dense_src) {
        const std::uint32_t group = dense_src / group_size_;
        if (group >= groups_.size()) {
            groups_.resize(static_cast<std::size_t>(group) + 1);
        }
        return Appender{this, group};
    }

    /// Result of a compacting erase: the group's last edge was moved into the
    /// hole, so its owning edge-cell must have its CAL-pointer rewritten.
    struct Moved {
        CellRef owner;          // edge-cell that owns the moved CAL edge
        std::uint32_t new_pos;  // its new CAL position
    };

    /// Removes the edge at `pos`. With `compact` the group's tail edge is
    /// relocated into the hole (keeping every chain dense) and emptied tail
    /// blocks are returned to the free list; without it the slot is flagged
    /// invalid and the chain does not shrink until the next compact_chains
    /// sweep (delete-only semantics).
    std::optional<Moved> erase(std::uint32_t pos, bool compact);

    /// Maintenance sweep: rewrites every group chain dense — live slots
    /// slide toward the chain head in streaming order, delete-only holes
    /// vanish, and emptied tail blocks return to the free list, shrinking
    /// memory_bytes(). `rebind(owner, new_pos)` fires for every relocated
    /// edge so the owning edge-cells' CAL pointers stay bound. Returns the
    /// number of holes reclaimed.
    std::size_t compact_chains(
        const std::function<void(CellRef, std::uint32_t)>& rebind);

    void update_weight(std::uint32_t pos, Weight weight);

    /// Rewrites the owner backreference (called when the owning edge-cell
    /// moves inside the EdgeblockArray).
    void rebind(std::uint32_t pos, CellRef owner);

    /// Streams every live edge, group chain by group chain: fn(src, dst, w),
    /// where fn may return void (stream everything) or bool (false stops the
    /// scan; returns false when cut short). Sources are *raw* vertex ids.
    template <typename Fn>
    bool visit_edges(Fn&& fn) const {
        for (const GroupMeta& group : groups_) {
            for (std::uint32_t b = group.head; b != kNone; b = blocks_[b].next) {
                const std::size_t base =
                    static_cast<std::size_t>(b) * block_edges_;
                const std::uint32_t used = blocks_[b].used;
                for (std::uint32_t i = 0; i < used; ++i) {
                    const CalEdgeSlot& slot = pool_[base + i];
                    if (slot.src != kInvalidVertex) {
                        if (!visit_step(fn, slot.src, slot.dst, slot.weight)) {
                            return false;
                        }
                    }
                }
            }
        }
        return true;
    }

    [[nodiscard]] EdgeCount live_edges() const noexcept { return live_; }
    /// Slots handed out and still scanned during streaming (live + holes).
    [[nodiscard]] EdgeCount scanned_slots() const noexcept { return used_; }
    [[nodiscard]] std::size_t blocks_in_use() const noexcept {
        return blocks_.size() - free_.size();
    }

    /// Bytes held by in-use blocks (pool slots plus chain metadata).
    /// Free-listed blocks are excluded so chain compaction is observable.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return blocks_in_use() * bytes_per_block() +
               groups_.size() * sizeof(GroupMeta);
    }
    /// Bytes of pool storage actually allocated (in-use + free-listed).
    [[nodiscard]] std::size_t memory_capacity_bytes() const noexcept {
        return blocks_.size() * bytes_per_block() +
               groups_.size() * sizeof(GroupMeta);
    }

    /// Test hook: the raw slot at a CAL position.
    struct SlotView {
        VertexId src;
        VertexId dst;
        Weight weight;
        CellRef owner;
        bool valid;
    };
    [[nodiscard]] SlotView slot_at(std::uint32_t pos) const;

private:
    struct CalEdgeSlot {
        VertexId src = kInvalidVertex;  // raw source id; kInvalidVertex = hole
        VertexId dst = kInvalidVertex;
        Weight weight = 0;
        CellRef owner{};
    };

    struct BlockMeta {
        std::uint32_t next = kNone;
        std::uint32_t prev = kNone;
        std::uint32_t group = 0;
        std::uint32_t used = 0;  // bump-allocated slots
    };

    struct GroupMeta {
        std::uint32_t head = kNone;
        std::uint32_t tail = kNone;
    };

    static constexpr std::uint32_t kNone = 0xffffffffU;

    [[nodiscard]] std::size_t bytes_per_block() const noexcept {
        return static_cast<std::size_t>(block_edges_) * sizeof(CalEdgeSlot) +
               sizeof(BlockMeta);
    }

    /// Append into an already-resolved (and existing) group.
    std::uint32_t insert_in_group(std::uint32_t group, VertexId raw_src,
                                  VertexId dst, Weight weight, CellRef owner);
    /// prepare_append once the group slot is known to exist.
    void prepare_append_group(std::uint32_t group);

    std::uint32_t allocate_block(std::uint32_t group);
    void free_tail_block(GroupMeta& group_meta);
    /// Reserves capacity so the next block allocation and any number of
    /// tail-block frees are nothrow (free_ is kept able to hold every block).
    void reserve_headroom();

    std::uint32_t group_size_;
    std::uint32_t block_edges_;
    // Telemetry handles, resolved once at construction (names "cal.*").
    // Only rare structural events record here — block churn, hole
    // accounting, compaction — never the per-edge append path.
    obs::Registry* registry_ = nullptr;
    std::unique_ptr<obs::Registry> owned_registry_;
    obs::Counter* blocks_allocated_m_ = nullptr;
    obs::Counter* blocks_freed_m_ = nullptr;
    obs::Counter* holes_created_m_ = nullptr;
    obs::Counter* holes_reclaimed_m_ = nullptr;
    obs::Counter* compact_moves_m_ = nullptr;
    obs::Histogram* chain_blocks_m_ = nullptr;
    std::vector<CalEdgeSlot> pool_;
    std::vector<BlockMeta> blocks_;
    std::vector<GroupMeta> groups_;
    std::vector<std::uint32_t> free_;
    EdgeCount live_ = 0;
    EdgeCount used_ = 0;

    // Structural auditor + test-only corruption hook (core/audit.hpp).
    friend class Auditor;
    friend class CorruptionInjector;
};

}  // namespace gt::core
