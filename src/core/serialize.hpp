// GraphTinker persistence (extension): save/load a store to a binary stream.
//
// The on-disk format is *logical*: the configuration plus the live edge
// triples streamed from the compact CAL. Loading reconstructs the hash
// structures by replaying the edges, so a round trip yields a semantically
// identical graph (same edge set, weights, degrees) rather than a
// byte-identical arena — which also means snapshots written by one geometry
// (e.g. PAGEWIDTH=64) load fine into another.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/graphtinker.hpp"

namespace gt::core {

/// Magic + version header guarding against foreign/corrupt input.
inline constexpr std::uint32_t kSnapshotMagic = 0x47545342;  // "GTSB"
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Writes the store's configuration and live edges. Returns false on stream
/// failure.
bool save_snapshot(const GraphTinker& graph, std::ostream& out);

/// Reads a snapshot written by save_snapshot into a fresh store constructed
/// with the *serialized* configuration. Returns nullptr on malformed input.
/// (unique_ptr because GraphTinker is intentionally non-movable.)
std::unique_ptr<GraphTinker> load_snapshot(std::istream& in);

}  // namespace gt::core
