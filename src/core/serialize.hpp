// GraphTinker persistence: save/load a store to a binary stream.
//
// The on-disk format is *logical*: the configuration plus the live edge
// triples streamed from the compact CAL. Loading reconstructs the hash
// structures by replaying the edges, so a round trip yields a semantically
// identical graph (same edge set, weights, degrees) rather than a
// byte-identical arena — which also means snapshots written by one geometry
// (e.g. PAGEWIDTH=64) load fine into another.
//
// Format v2 (little-endian):
//
//   u32 magic   "GTSB"
//   u32 version  2
//   u64 wal_seq             highest WAL sequence number folded into this
//                           snapshot (0 = standalone); recovery replays the
//                           WAL strictly after it
//   -- config section -------------------------------------------------
//   fixed-width Config fields (full struct, see serialize.cpp)
//   u32 crc32c over the section bytes
//   -- edge section ---------------------------------------------------
//   u64 edge_count
//   edge_count x { u32 src, u32 dst, Weight weight }
//   u32 crc32c over edge_count and every record
//   -- footer ---------------------------------------------------------
//   u32 end marker "GTSE"
//
// Every decode failure maps to a distinct StatusCode (see util/status.hpp)
// so recovery can tell a torn write (fall back to the previous snapshot)
// from active corruption and from plain version skew.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "core/graphtinker.hpp"
#include "util/status.hpp"

namespace gt::core {

/// Magic + version header guarding against foreign/corrupt input.
inline constexpr std::uint32_t kSnapshotMagic = 0x47545342;   // "GTSB"
inline constexpr std::uint32_t kSnapshotFooter = 0x47545345;  // "GTSE"
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Writes the store's configuration and live edges; `wal_seq` records the
/// WAL position this snapshot covers (recovery replays strictly newer
/// records on top). The stream is flushed; fsync is the caller's job
/// (recover::DurableStore::checkpoint does tmp+fsync+rename).
[[nodiscard]] Status write_snapshot(const GraphTinker& graph,
                                    std::ostream& out,
                                    std::uint64_t wal_seq = 0);

/// A decoded snapshot: the reconstructed store plus the WAL sequence it
/// covers.
struct LoadedSnapshot {
    std::unique_ptr<GraphTinker> graph;
    std::uint64_t wal_seq = 0;
};

/// Reads a snapshot written by write_snapshot into `out`. On failure `out`
/// is untouched and the Status code pins down the failing section; `detail`
/// carries the edge index for per-record failures.
[[nodiscard]] Status read_snapshot(std::istream& in, LoadedSnapshot& out);

/// \deprecated Bool-returning shim over write_snapshot (pre-durability
/// API). The Status overload says *why* a save failed; use it.
[[deprecated("use write_snapshot (returns gt::Status)")]] [[nodiscard]]
bool save_snapshot(const GraphTinker& graph, std::ostream& out);

/// \deprecated nullptr-on-failure shim over read_snapshot. The Status
/// overload distinguishes truncation from corruption from version skew —
/// recovery fallback logic needs that; use it.
[[deprecated("use read_snapshot (returns gt::Status)")]]
std::unique_ptr<GraphTinker> load_snapshot(std::istream& in);

}  // namespace gt::core
