// Scatter-Gather Hashing unit (paper §III.B).
//
// Maps raw source-vertex ids, in arrival order, onto a dense id space
// [0, #non-empty vertices). The dense id is the index of the vertex's
// top-parent edgeblock, so full scans of the structure touch only vertices
// that actually own edges — the first of GraphTinker's two compaction levels.
#pragma once

#include <optional>
#include <vector>

#include "rhh/robin_hood_map.hpp"
#include "util/types.hpp"

namespace gt::core {

class ScatterGatherHash {
public:
    explicit ScatterGatherHash(std::size_t expected_vertices = 16)
        : map_(expected_vertices * 2) {
        dense_to_raw_.reserve(expected_vertices);
    }

    /// Returns the dense id for `raw`, assigning the next unused index when
    /// the id has not been hashed before.
    VertexId get_or_assign(VertexId raw) {
        if (const VertexId* dense = map_.find(raw)) {
            return *dense;
        }
        const auto dense = static_cast<VertexId>(dense_to_raw_.size());
        // find() above just proved the key absent, so this always creates.
        (void)map_.insert(raw, dense);
        dense_to_raw_.push_back(raw);
        return dense;
    }

    /// Warms the map bucket `raw` hashes to, ahead of get_or_assign/lookup.
    void prefetch(VertexId raw) const noexcept { map_.prefetch(raw); }

    /// Lookup without assignment; empty when the vertex never owned an edge.
    [[nodiscard]] std::optional<VertexId> lookup(VertexId raw) const {
        if (const VertexId* dense = map_.find(raw)) {
            return *dense;
        }
        return std::nullopt;
    }

    /// Reverse mapping (dense -> raw). Precondition: dense < size().
    [[nodiscard]] VertexId raw_of(VertexId dense) const {
        return dense_to_raw_[dense];
    }

    /// Number of non-empty (streamed) source vertices.
    [[nodiscard]] std::size_t size() const noexcept {
        return dense_to_raw_.size();
    }

    /// Bytes held by the forward map and the reverse table.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return map_.memory_bytes() + dense_to_raw_.capacity() * sizeof(VertexId);
    }

private:
    RobinHoodMap<VertexId, VertexId> map_;
    std::vector<VertexId> dense_to_raw_;

    // Structural auditor + test-only corruption hook (core/audit.hpp).
    friend class Auditor;
    friend class CorruptionInjector;
};

}  // namespace gt::core
