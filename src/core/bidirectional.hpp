// Bidirectional GraphTinker: a forward store plus a reverse-edge mirror.
//
// The paper's engine is edge-centric and push-only (out-edges). Its stated
// future work is the vertex-centric model, whose pull-style Gather phase
// needs *in*-edges. This wrapper maintains two GraphTinker instances — one
// per direction — under a single update API, giving O(log degree) access to
// both adjacency directions at twice the update cost.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/graphtinker.hpp"

namespace gt::core {

class BidirectionalGraphTinker {
public:
    explicit BidirectionalGraphTinker(Config config = {})
        : forward_(config), reverse_(config) {}

    BidirectionalGraphTinker(const BidirectionalGraphTinker&) = delete;
    BidirectionalGraphTinker& operator=(const BidirectionalGraphTinker&) =
        delete;

    /// Inserts (src, dst, weight) and its reverse mirror.
    [[nodiscard]] bool insert_edge(VertexId src, VertexId dst,
                                   Weight weight = 1) {
        const bool fresh = forward_.insert_edge(src, dst, weight);
        // The mirror repeats the forward outcome; nothing new to learn.
        (void)reverse_.insert_edge(dst, src, weight);
        return fresh;
    }

    [[nodiscard]] bool delete_edge(VertexId src, VertexId dst) {
        const bool existed = forward_.delete_edge(src, dst);
        (void)reverse_.delete_edge(dst, src);
        return existed;
    }

    void insert_batch(std::span<const Edge> batch) {
        for (const Edge& e : batch) {
            (void)insert_edge(e.src, e.dst, e.weight);
        }
    }

    void delete_batch(std::span<const Edge> batch) {
        for (const Edge& e : batch) {
            (void)delete_edge(e.src, e.dst);
        }
    }

    // ---- store concept (forward direction) -----------------------------

    [[nodiscard]] std::optional<Weight> find_edge(VertexId src,
                                                  VertexId dst) const {
        return forward_.find_edge(src, dst);
    }
    [[nodiscard]] EdgeCount num_edges() const noexcept {
        return forward_.num_edges();
    }
    [[nodiscard]] VertexId num_vertices() const noexcept {
        return forward_.num_vertices();
    }
    [[nodiscard]] std::uint32_t degree(VertexId v) const {
        return forward_.degree(v);
    }
    /// In-degree comes from the mirror for free.
    [[nodiscard]] std::uint32_t in_degree(VertexId v) const {
        return reverse_.degree(v);
    }

    template <typename Fn>
    bool visit_out_edges(VertexId src, Fn&& fn) const {
        return forward_.visit_out_edges(src, fn);
    }
    /// Visits every in-edge of `dst`: fn(src, weight); void- or
    /// bool-returning as everywhere in the visit_* API.
    template <typename Fn>
    bool visit_in_edges(VertexId dst, Fn&& fn) const {
        return reverse_.visit_out_edges(dst, fn);
    }
    template <typename Fn>
    bool visit_edges(Fn&& fn) const {
        return forward_.visit_edges(fn);
    }

    [[nodiscard]] const GraphTinker& forward() const noexcept {
        return forward_;
    }
    [[nodiscard]] const GraphTinker& reverse() const noexcept {
        return reverse_;
    }

    /// Cross-validates both directions: every forward edge must have its
    /// mirror and vice versa. Empty string when consistent.
    [[nodiscard]] std::string validate() const {
        if (auto err = forward_.validate(); !err.empty()) {
            return "forward: " + err;
        }
        if (auto err = reverse_.validate(); !err.empty()) {
            return "reverse: " + err;
        }
        if (forward_.num_edges() != reverse_.num_edges()) {
            return "direction edge counts diverge";
        }
        std::string error;
        forward_.visit_edges([&](VertexId s, VertexId d, Weight w) {
            if (!error.empty()) {
                return;
            }
            const auto mirrored = reverse_.find_edge(d, s);
            if (!mirrored || *mirrored != w) {
                error = "missing mirror for (" + std::to_string(s) + "," +
                        std::to_string(d) + ")";
            }
        });
        return error;
    }

private:
    GraphTinker forward_;
    GraphTinker reverse_;
};

}  // namespace gt::core
