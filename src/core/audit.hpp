// Deep structural auditor for GraphTinker (correctness-tooling layer).
//
// GraphTinker's performance story rests on invariants that ordinary unit
// tests cannot see from the public API: Robin Hood probe-distance bookkeeping
// inside every subblock, the Tree-Based Hashing parent/child links that make
// probe cost O(log degree), the per-edge CAL back-pointers that keep the
// compact secondary copy in sync in O(1), and the SGH dense-index bijection
// that keeps scans proportional to non-empty vertices. The auditor walks the
// raw arenas of all four components and cross-checks every one of those
// invariants, returning a *typed* report of violations rather than a single
// string — so tests can assert that a deliberately seeded corruption is
// detected as exactly the violation class it belongs to.
//
// Invariant classes checked (one AuditCheck per class):
//   TBH structure     every reachable block handle is a live arena block,
//                     reached through exactly one parent link (no cycles, no
//                     shared children), and free-listed blocks are detached
//   TBH orphans       every allocated, non-free block is reachable from some
//                     vertex's top-parent handle (no leaked subtrees)
//   occupancy         per-block occupied counters and the occupancy bitmasks
//                     agree with the cell states they summarize
//   RHH placement     every occupied cell sits in the subblock its (dst,
//                     level) hash selects, and its stored probe distance is
//                     exactly its displacement from the Robin Hood home slot
//   RHH probe path    in delete-only (RHH) mode no EMPTY cell interrupts the
//                     probe window before a stored edge — the invariant that
//                     makes the FIND early-exit sound
//   FIND              every stored cell is reachable through the public FIND
//                     walk (end-to-end retrieval check)
//   CAL forward       every occupied edge-cell points at a live CAL slot
//                     carrying the same (src, dst, weight) and owner
//   CAL reverse       every live CAL slot's owner back-pointer leads to the
//                     edge-cell that points back at it (the round-trip)
//   CAL chains        group chains are well-linked doubly linked lists and
//                     chained + free blocks account for the whole pool
//   SGH bijection     dense->raw->dense round-trips for every dense id, and
//                     table sizes agree (the mapping is a bijection)
//   degree accounting per-vertex degree counters equal the live cells stored
//                     under the vertex's tree
//   edge accounting   the global edge counter, the per-vertex sum and the
//                     CAL live count all agree
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace gt::core {

class GraphTinker;
struct EdgeCell;

/// Invariant class an AuditViolation belongs to.
enum class AuditCheck : std::uint8_t {
    TbhStructure,      // bad handle, cycle, shared child, free-list overlap
    TbhOrphan,         // allocated block unreachable from every top parent
    Occupancy,         // occupied counter / occupancy bitmask drift
    RhhPlacement,      // cell outside its hashed subblock or wrong probe
    RhhProbePath,      // EMPTY cell inside a live cell's probe window
    FindReachability,  // stored cell not retrievable via FIND
    CalForward,        // edge-cell -> CAL slot mismatch
    CalReverse,        // CAL slot -> edge-cell back-pointer mismatch
    CalChain,          // group chain linkage broken or pool unaccounted
    SghBijection,      // dense<->raw mapping fails to round-trip
    DegreeAccounting,  // per-vertex degree counter drift
    EdgeAccounting,    // global edge counters disagree
};

[[nodiscard]] std::string_view to_string(AuditCheck check) noexcept;

/// One detected invariant violation.
struct AuditViolation {
    AuditCheck check;
    VertexId src = kInvalidVertex;  // raw source id when applicable
    VertexId dst = kInvalidVertex;  // destination id when applicable
    std::string detail;             // human-readable specifics

    [[nodiscard]] std::string to_string() const;
};

/// Result of a full structural audit.
struct AuditReport {
    /// Reporting stops (and `truncated` is set) after this many violations;
    /// a corrupted structure tends to trip thousands of downstream checks.
    static constexpr std::size_t kMaxViolations = 64;

    std::vector<AuditViolation> violations;
    bool truncated = false;

    // Coverage counters: what the audit actually inspected.
    std::size_t vertices_audited = 0;
    std::size_t blocks_audited = 0;
    std::size_t cells_audited = 0;
    std::size_t cal_slots_audited = 0;

    // Independent census from the walk itself — the ground truth the
    // telemetry parity test compares gt.obs gauges against. Counted cell by
    // cell during the sweep, never read from the structures' own counters.
    EdgeCount live_edges = 0;    // occupied cells across reachable trees
    EdgeCount tombstones = 0;    // tombstone cells across reachable trees
    std::size_t cal_blocks = 0;  // CAL blocks reached via group chains

    [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
    /// True when the report contains at least one violation of `check`.
    [[nodiscard]] bool has(AuditCheck check) const noexcept;
    /// Multi-line human-readable rendering (empty string when ok()).
    [[nodiscard]] std::string to_string() const;
};

/// Runs the full invariant sweep over a GraphTinker instance. Read-only:
/// safe to run concurrently with other readers of the same instance.
class Auditor {
public:
    [[nodiscard]] static AuditReport run(const GraphTinker& graph);

private:
    class Run;  // stateful single-run walk (audit.cpp)
};

/// TEST-ONLY: deliberately corrupts a live GraphTinker so the test suite can
/// prove audit() detects each violation class. Every injector returns true
/// when the corruption was applied (false when the targeted structure does
/// not exist, e.g. no overflow child to orphan). Never use outside tests —
/// the corrupted instance is unusable afterwards.
class CorruptionInjector {
public:
    /// Clears the CAL pointer of the (src, dst) edge-cell -> CalForward (and
    /// the stranded CAL slot additionally trips CalReverse).
    static bool break_cal_pointer(GraphTinker& graph, VertexId src,
                                  VertexId dst);
    /// Rewrites the stored Robin Hood probe distance of (src, dst)
    /// -> RhhPlacement.
    static bool corrupt_probe(GraphTinker& graph, VertexId src, VertexId dst);
    /// Detaches the first parent->child edgeblock link under `src`'s tree,
    /// stranding the child subtree -> TbhOrphan (+ accounting drift).
    static bool orphan_child(GraphTinker& graph, VertexId src);
    /// Points an unused child slot of `src`'s top block back at the top
    /// block itself, creating a cycle -> TbhStructure.
    static bool link_cycle(GraphTinker& graph, VertexId src);
    /// Bumps the stored degree counter of `src` -> DegreeAccounting.
    static bool corrupt_degree(GraphTinker& graph, VertexId src);
    /// Swaps the first two dense->raw entries of the SGH without updating
    /// the forward map -> SghBijection.
    static bool corrupt_sgh(GraphTinker& graph);
    /// Blanks an occupied cell without updating the occupancy bookkeeping
    /// -> Occupancy (+ accounting drift).
    static bool vanish_cell(GraphTinker& graph, VertexId src, VertexId dst);

private:
    /// Locates the mutable edge-cell of (src, dst); nullptr when absent.
    static EdgeCell* locate_cell(GraphTinker& graph, VertexId src,
                                 VertexId dst);
};

}  // namespace gt::core
