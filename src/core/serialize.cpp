#include "core/serialize.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "util/crc32c.hpp"

namespace gt::core {

namespace {

template <typename T>
void put(std::ostream& out, T value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] bool get(std::istream& in, T& value) {
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return static_cast<bool>(in);
}

/// Fixed-width append into the config section's staging buffer (the whole
/// section is CRC'd and written as one blob).
template <typename T>
void put_buf(std::vector<unsigned char>& buf, T value) {
    const auto* p = reinterpret_cast<const unsigned char*>(&value);
    buf.insert(buf.end(), p, p + sizeof(value));
}

template <typename T>
[[nodiscard]] bool get_buf(const std::vector<unsigned char>& buf,
                           std::size_t& off, T& value) {
    if (off + sizeof(value) > buf.size()) {
        return false;
    }
    std::memcpy(&value, buf.data() + off, sizeof(value));
    off += sizeof(value);
    return true;
}

/// The config section serializes the *full* Config so a reloaded store
/// behaves identically (geometry, feature toggles, maintenance thresholds).
std::vector<unsigned char> encode_config(const Config& cfg) {
    std::vector<unsigned char> buf;
    buf.reserve(64);
    put_buf(buf, cfg.pagewidth);
    put_buf(buf, cfg.subblock);
    put_buf(buf, cfg.workblock);
    put_buf(buf, static_cast<std::uint8_t>(cfg.enable_sgh));
    put_buf(buf, static_cast<std::uint8_t>(cfg.enable_cal));
    put_buf(buf, static_cast<std::uint8_t>(cfg.enable_rhh));
    put_buf(buf, static_cast<std::uint8_t>(cfg.deletion_mode));
    put_buf(buf, cfg.cal_group_size);
    put_buf(buf, cfg.cal_block_edges);
    put_buf(buf, cfg.initial_vertices);
    put_buf(buf, cfg.reserve_edges);
    put_buf(buf, cfg.purge_tombstone_threshold);
    put_buf(buf, cfg.cal_compact_threshold);
    put_buf(buf, cfg.maintenance_budget_cells);
    return buf;
}

[[nodiscard]] bool decode_config(const std::vector<unsigned char>& buf,
                                 Config& cfg) {
    std::size_t off = 0;
    std::uint8_t sgh = 0;
    std::uint8_t cal = 0;
    std::uint8_t rhh = 0;
    std::uint8_t mode = 0;
    const bool ok =
        get_buf(buf, off, cfg.pagewidth) && get_buf(buf, off, cfg.subblock) &&
        get_buf(buf, off, cfg.workblock) && get_buf(buf, off, sgh) &&
        get_buf(buf, off, cal) && get_buf(buf, off, rhh) &&
        get_buf(buf, off, mode) && get_buf(buf, off, cfg.cal_group_size) &&
        get_buf(buf, off, cfg.cal_block_edges) &&
        get_buf(buf, off, cfg.initial_vertices) &&
        get_buf(buf, off, cfg.reserve_edges) &&
        get_buf(buf, off, cfg.purge_tombstone_threshold) &&
        get_buf(buf, off, cfg.cal_compact_threshold) &&
        get_buf(buf, off, cfg.maintenance_budget_cells);
    if (!ok || off != buf.size()) {
        return false;
    }
    cfg.enable_sgh = sgh != 0;
    cfg.enable_cal = cal != 0;
    cfg.enable_rhh = rhh != 0;
    cfg.deletion_mode = static_cast<DeletionMode>(mode);
    return true;
}

/// Bytes between the stream's current position and its end, or nullopt for
/// non-seekable streams. Used to reject implausible edge counts before any
/// proportional allocation happens.
std::optional<std::uint64_t> bytes_remaining(std::istream& in) {
    const std::istream::pos_type here = in.tellg();
    if (here == std::istream::pos_type(-1)) {
        return std::nullopt;
    }
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (end == std::istream::pos_type(-1) || !in) {
        in.clear();
        in.seekg(here);
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(end - here);
}

constexpr std::size_t kEdgeRecordBytes =
    sizeof(VertexId) * 2 + sizeof(Weight);

}  // namespace

Status write_snapshot(const GraphTinker& graph, std::ostream& out,
                      std::uint64_t wal_seq) {
    put(out, kSnapshotMagic);
    put(out, kSnapshotVersion);
    put(out, wal_seq);

    const std::vector<unsigned char> cfg_buf = encode_config(graph.config());
    out.write(reinterpret_cast<const char*>(cfg_buf.data()),
              static_cast<std::streamsize>(cfg_buf.size()));
    put(out, util::crc32c(cfg_buf.data(), cfg_buf.size()));

    const EdgeCount count = graph.num_edges();
    std::uint32_t crc = 0xFFFFFFFFU;
    put(out, count);
    crc = util::crc32c_extend(crc, &count, sizeof(count));
    EdgeCount written = 0;
    graph.visit_edges([&](VertexId s, VertexId d, Weight w) {
        put(out, s);
        put(out, d);
        put(out, w);
        crc = util::crc32c_extend(crc, &s, sizeof(s));
        crc = util::crc32c_extend(crc, &d, sizeof(d));
        crc = util::crc32c_extend(crc, &w, sizeof(w));
        ++written;
    });
    put(out, crc ^ 0xFFFFFFFFU);
    put(out, kSnapshotFooter);
    out.flush();
    if (!out) {
        return Status{StatusCode::IoError, "snapshot stream write failed"};
    }
    if (written != count) {
        // Would indicate live-edge accounting skew; the snapshot just
        // written declares `count` but carries `written` records.
        return Status{StatusCode::SnapshotEdgeCountMismatch,
                      "streamed edge count disagrees with num_edges()",
                      written};
    }
    return Status::success();
}

Status read_snapshot(std::istream& in, LoadedSnapshot& out) {
    std::uint32_t magic = 0;
    if (!get(in, magic)) {
        return Status{StatusCode::SnapshotTruncatedHeader,
                      "EOF before the snapshot magic"};
    }
    if (magic != kSnapshotMagic) {
        return Status{StatusCode::SnapshotBadMagic,
                      "not a GraphTinker snapshot", magic};
    }
    std::uint32_t version = 0;
    if (!get(in, version)) {
        return Status{StatusCode::SnapshotTruncatedHeader,
                      "EOF inside the snapshot header"};
    }
    if (version != kSnapshotVersion) {
        return Status{StatusCode::SnapshotBadVersion,
                      "unsupported snapshot version", version};
    }
    std::uint64_t wal_seq = 0;
    if (!get(in, wal_seq)) {
        return Status{StatusCode::SnapshotTruncatedHeader,
                      "EOF inside the snapshot header"};
    }

    // Config section: fixed width, CRC-guarded, then semantic validation —
    // an attacker-controlled (or bit-rotted) geometry must not reach the
    // constructor's allocations.
    std::vector<unsigned char> cfg_buf(encode_config(Config{}).size());
    in.read(reinterpret_cast<char*>(cfg_buf.data()),
            static_cast<std::streamsize>(cfg_buf.size()));
    if (!in) {
        return Status{StatusCode::SnapshotTruncatedConfig,
                      "EOF inside the config section"};
    }
    std::uint32_t cfg_crc = 0;
    if (!get(in, cfg_crc)) {
        return Status{StatusCode::SnapshotTruncatedConfig,
                      "EOF where the config checksum belongs"};
    }
    if (cfg_crc != util::crc32c(cfg_buf.data(), cfg_buf.size())) {
        return Status{StatusCode::SnapshotConfigChecksum,
                      "config section checksum mismatch"};
    }
    Config cfg;
    if (!decode_config(cfg_buf, cfg)) {
        return Status{StatusCode::SnapshotBadConfig,
                      "config section does not decode"};
    }
    if (const Status st = cfg.check(); !st.ok()) {
        return Status{StatusCode::SnapshotBadConfig,
                      "config fails validation: " + st.message};
    }

    EdgeCount count = 0;
    std::uint32_t crc = 0xFFFFFFFFU;
    if (!get(in, count)) {
        return Status{StatusCode::SnapshotTruncatedEdgeCount,
                      "EOF where the edge count belongs"};
    }
    crc = util::crc32c_extend(crc, &count, sizeof(count));
    // Plausibility gate before any count-proportional allocation: a
    // corrupted count must not drive reserve_edges (or the read loop) to
    // OOM. Non-seekable streams skip the gate but also skip the reserve —
    // the loop below only allocates for records actually read.
    if (const auto remaining = bytes_remaining(in)) {
        if (count > *remaining / kEdgeRecordBytes) {
            return Status{StatusCode::SnapshotImplausibleCount,
                          "declared edge count exceeds the stream size",
                          count};
        }
        cfg.reserve_edges = count;
    } else {
        cfg.reserve_edges = 0;
    }

    auto graph = std::make_unique<GraphTinker>(cfg);
    for (EdgeCount i = 0; i < count; ++i) {
        VertexId s = 0;
        VertexId d = 0;
        Weight w{};
        if (!get(in, s) || !get(in, d) || !get(in, w)) {
            return Status{StatusCode::SnapshotTruncatedEdges,
                          "EOF inside the edge records", i};
        }
        crc = util::crc32c_extend(crc, &s, sizeof(s));
        crc = util::crc32c_extend(crc, &d, sizeof(d));
        crc = util::crc32c_extend(crc, &w, sizeof(w));
        // The sentinel can only appear through corruption; skip the apply
        // (inserting it would poison the store) and let the checksum
        // verdict below reject the file.
        if (s != kInvalidVertex && d != kInvalidVertex) {
            // Replay into a fresh un-logged store: duplicate edges in the
            // stream legitimately return false (weight overwrite).
            (void)graph->insert_edge(s, d, w);
        }
    }
    std::uint32_t edge_crc = 0;
    if (!get(in, edge_crc)) {
        return Status{StatusCode::SnapshotTruncatedEdges,
                      "EOF where the edge checksum belongs", count};
    }
    if (edge_crc != (crc ^ 0xFFFFFFFFU)) {
        return Status{StatusCode::SnapshotEdgeChecksum,
                      "edge section checksum mismatch"};
    }
    if (graph->num_edges() != count) {
        // Checksum passed but the records collapsed (duplicate pairs):
        // cannot happen for a well-formed writer, so flag it.
        return Status{StatusCode::SnapshotEdgeCountMismatch,
                      "decoded edges disagree with the declared count",
                      graph->num_edges()};
    }
    std::uint32_t footer = 0;
    if (!get(in, footer)) {
        return Status{StatusCode::SnapshotTruncatedFooter,
                      "EOF where the end marker belongs"};
    }
    if (footer != kSnapshotFooter) {
        return Status{StatusCode::SnapshotBadFooter,
                      "end marker is not GTSE", footer};
    }
    out.graph = std::move(graph);
    out.wal_seq = wal_seq;
    return Status::success();
}

// Deprecated shims — thin adapters over the Status API so pre-durability
// callers keep compiling while they migrate.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
bool save_snapshot(const GraphTinker& graph, std::ostream& out) {
    return write_snapshot(graph, out).ok();
}

std::unique_ptr<GraphTinker> load_snapshot(std::istream& in) {
    LoadedSnapshot loaded;
    if (!read_snapshot(in, loaded).ok()) {
        return nullptr;
    }
    return std::move(loaded.graph);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace gt::core
