#include "core/serialize.hpp"

#include <istream>
#include <memory>
#include <ostream>

namespace gt::core {

namespace {

template <typename T>
void put(std::ostream& out, T value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] bool get(std::istream& in, T& value) {
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return static_cast<bool>(in);
}

}  // namespace

bool save_snapshot(const GraphTinker& graph, std::ostream& out) {
    put(out, kSnapshotMagic);
    put(out, kSnapshotVersion);
    const Config& cfg = graph.config();
    put(out, cfg.pagewidth);
    put(out, cfg.subblock);
    put(out, cfg.workblock);
    put(out, static_cast<std::uint8_t>(cfg.enable_sgh));
    put(out, static_cast<std::uint8_t>(cfg.enable_cal));
    put(out, static_cast<std::uint8_t>(cfg.enable_rhh));
    put(out, static_cast<std::uint8_t>(cfg.deletion_mode));
    put(out, cfg.cal_group_size);
    put(out, cfg.cal_block_edges);
    put(out, graph.num_edges());
    EdgeCount written = 0;
    graph.visit_edges([&](VertexId s, VertexId d, Weight w) {
        put(out, s);
        put(out, d);
        put(out, w);
        ++written;
    });
    return static_cast<bool>(out) && written == graph.num_edges();
}

std::unique_ptr<GraphTinker> load_snapshot(std::istream& in) {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    if (!get(in, magic) || magic != kSnapshotMagic || !get(in, version) ||
        version != kSnapshotVersion) {
        return nullptr;
    }
    Config cfg;
    std::uint8_t sgh = 0;
    std::uint8_t cal = 0;
    std::uint8_t rhh = 0;
    std::uint8_t mode = 0;
    if (!get(in, cfg.pagewidth) || !get(in, cfg.subblock) ||
        !get(in, cfg.workblock) || !get(in, sgh) || !get(in, cal) ||
        !get(in, rhh) || !get(in, mode) || !get(in, cfg.cal_group_size) ||
        !get(in, cfg.cal_block_edges)) {
        return nullptr;
    }
    cfg.enable_sgh = sgh != 0;
    cfg.enable_cal = cal != 0;
    cfg.enable_rhh = rhh != 0;
    cfg.deletion_mode = static_cast<DeletionMode>(mode);
    EdgeCount edges = 0;
    if (!get(in, edges)) {
        return nullptr;
    }
    cfg.reserve_edges = edges;
    try {
        cfg.validate();
    } catch (const std::invalid_argument&) {
        return nullptr;
    }
    auto graph = std::make_unique<GraphTinker>(cfg);
    for (EdgeCount i = 0; i < edges; ++i) {
        VertexId s = 0;
        VertexId d = 0;
        Weight w = 0;
        if (!get(in, s) || !get(in, d) || !get(in, w)) {
            return nullptr;
        }
        graph->insert_edge(s, d, w);
    }
    return graph;
}

}  // namespace gt::core
