// GraphTinker: the public façade tying together the Scatter-Gather Hashing
// unit, the EdgeblockArray, the VertexPropertyArray and the Coarse Adjacency
// List (paper Fig. 2/3).
//
// The interface units of the paper map onto this class as follows: the
// load / find-edge / insert-edge / inference / interval / writeback units are
// the FIND/INSERT walks of the EdgeblockArray (workblock-granular retrieval
// with control flow per subblock); the SGH unit is `ScatterGatherHash`; the
// CAL EdgeblockArray is `CoarseAdjacencyList`.
//
// All public APIs speak *raw* vertex ids; dense (hashed) ids are an internal
// detail of the compaction machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cal.hpp"
#include "core/config.hpp"
#include "core/edgeblock_array.hpp"
#include "core/maintenance.hpp"
#include "core/sgh.hpp"
#include "core/update_log.hpp"
#include "core/vertex_props.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"
#include "util/types.hpp"
#include "util/visit.hpp"

namespace gt::core {

struct AuditReport;  // core/audit.hpp

class GraphTinker {
public:
    explicit GraphTinker(Config config = {});

    // The EdgeblockArray holds an internal pointer to the CAL member, so
    // instances must never be moved or copied.
    GraphTinker(const GraphTinker&) = delete;
    GraphTinker& operator=(const GraphTinker&) = delete;

    // ---- updates -------------------------------------------------------

    /// Inserts (src, dst, weight); overwrites the weight when the edge
    /// exists. Returns true when a new edge was created.
    ///
    /// With an update log attached (and outside a batch) the call is its
    /// own all-or-nothing commit unit: when the log cannot stage or commit
    /// the frame the in-memory mutation is refused or rolled back and the
    /// call returns false, matching insert_batch semantics — memory never
    /// diverges from what post-crash replay rebuilds. The cause stays
    /// latched in the log's status() (recover::WalWriter::status()).
    ///
    /// [[nodiscard]]: with durability attached a dropped false conflates
    /// "already present" with "refused commit" — callers that genuinely
    /// don't care cast to void at the call site, visibly.
    [[nodiscard]] bool insert_edge(VertexId src, VertexId dst,
                                   Weight weight = 1);

    /// Deletes (src, dst) under the configured deletion mode. Returns true
    /// when the edge existed. Under an attached update log the same
    /// all-or-nothing solo-frame policy as insert_edge applies: a failed
    /// stage/commit leaves the edge in place and returns false.
    [[nodiscard]] bool delete_edge(VertexId src, VertexId dst);

    /// Batched insert. Large batches take the source-grouped fast path:
    /// the batch is radix-sorted by source (stable, so last-wins weight
    /// semantics for duplicate pairs are preserved), the SGH mapping and
    /// top-block handle resolve once per source run, the next run's
    /// edgeblock is software-prefetched while the current one drains, and
    /// CAL group resolution is amortized per run. The resulting store is
    /// equivalent to per-edge application (same edges, weights, degrees and
    /// audit invariants); only internal block/CAL layout may differ.
    ///
    /// Transactional: the batch applies all-or-nothing. Edges carrying
    /// kInvalidVertex endpoints are rejected up front (InvalidArgument,
    /// `detail` = the first failing batch index) before anything mutates,
    /// and a mid-batch failure (allocation, injected fault) rolls every
    /// already-applied update back through the undo journal before the
    /// typed error returns. An attached UpdateLog sees the batch staged
    /// before application and committed only after it fully applied, so a
    /// crash mid-batch replays to the rolled-back (batch-never-happened)
    /// state. [[nodiscard]]: a dropped error leaves the store exactly as it
    /// was before the batch — silently losing the whole batch — so every
    /// caller must either handle the Status or discard it explicitly.
    [[nodiscard]] Status insert_batch(std::span<const Edge> batch);
    /// Batched delete with the same source-grouped fast path and the same
    /// transactional all-or-nothing semantics (rolled-back deletes are
    /// re-inserted with their original weights). Duplicate (src, dst) pairs
    /// within a batch delete the edge once: later occurrences are no-ops,
    /// exactly as per-edge application behaves.
    [[nodiscard]] Status delete_batch(std::span<const Edge> batch);

    // ---- durability (src/recover) ----------------------------------------

    /// Attaches the durability tee: every subsequent insert/delete (single
    /// or batch) is framed and staged through `log` before it applies and
    /// committed after it applies (see core/update_log.hpp for the crash
    /// contract). Pass nullptr to detach. The log must outlive the
    /// attachment. Typically wired by recover::DurableStore rather than
    /// called directly.
    void attach_update_log(UpdateLog* log) noexcept { log_ = log; }
    [[nodiscard]] UpdateLog* update_log() const noexcept { return log_; }

    // ---- maintenance (core/maintenance.hpp) ------------------------------

    /// Full maintenance sweep: purges tombstone-laden trees, un-branches
    /// sparse subtrees, compacts the CAL chains. Edges, weights and degrees
    /// are untouched; probe distance and memory_footprint() shrink back
    /// toward fresh-build levels.
    MaintenanceReport maintain();
    /// Bounded maintenance slice (~`budget_cells` edge-cells of work),
    /// resuming round-robin across vertices. insert_batch/delete_batch call
    /// this automatically when Config::maintenance_budget_cells > 0.
    MaintenanceReport maintain_some(std::uint32_t budget_cells);

    // ---- queries ---------------------------------------------------------

    [[nodiscard]] std::optional<Weight> find_edge(VertexId src,
                                                  VertexId dst) const;

    [[nodiscard]] EdgeCount num_edges() const noexcept { return num_edges_; }
    /// Monotonic mutation epoch: advances (release) after every committed
    /// mutating call — solo edge ops and transactional batches. A reader
    /// that loads (acquire) the same value twice around a read brackets a
    /// quiescent window without locking; the sharded pipeline's per-shard
    /// completion epochs extend the same discipline across workers.
    [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
        return mutation_epoch_.load(std::memory_order_acquire);
    }
    /// One past the largest raw vertex id seen (src or dst side).
    [[nodiscard]] VertexId num_vertices() const noexcept {
        return raw_bound_;
    }
    /// Vertices that own at least one edge slot (streamed sources).
    [[nodiscard]] std::size_t num_nonempty_vertices() const noexcept {
        return top_.size();
    }
    [[nodiscard]] std::uint32_t degree(VertexId raw_src) const;

    // ---- traversal -------------------------------------------------------

    /// Visits every live out-edge of raw vertex `src`: fn(dst, weight),
    /// where fn may return void (visit everything) or bool (false stops —
    /// pull-style gathers that only need one witness). Returns false when
    /// iteration was cut short. Loads from the EdgeblockArray (the
    /// incremental-processing path).
    template <typename Fn>
    bool visit_out_edges(VertexId src, Fn&& fn) const {
        const auto dense = dense_of(src);
        if (!dense) {
            return true;
        }
        return eba_.visit_edges_of(top_[*dense], fn);
    }

    /// Streams every live edge: fn(src, dst, weight), void- or
    /// bool-returning as in visit_out_edges. Loads from the CAL
    /// EdgeblockArray when the feature is enabled (the full-processing
    /// path); otherwise falls back to sweeping the EdgeblockArray.
    template <typename Fn>
    bool visit_edges(Fn&& fn) const {
        if (config_.enable_cal) {
            return cal_.visit_edges(fn);
        }
        return visit_edges_via_eba(fn);
    }

    /// Streams every live edge from the EdgeblockArray regardless of CAL
    /// (exposed for the CAL ablation experiments).
    template <typename Fn>
    bool visit_edges_via_eba(Fn&& fn) const {
        for (VertexId dense = 0; dense < top_.size(); ++dense) {
            const VertexId raw = raw_of(dense);
            const bool complete = eba_.visit_edges_of(
                top_[dense], [&](VertexId dst, Weight w) {
                    return visit_step(fn, raw, dst, w);
                });
            if (!complete) {
                return false;
            }
        }
        return true;
    }

    // ---- diagnostics -----------------------------------------------------

    [[nodiscard]] const Config& config() const noexcept { return config_; }
    /// \deprecated Compatibility shim (PR 4): snapshots the legacy Stats
    /// struct from the obs registry. Prefer obs() / telemetry() — e.g.
    /// obs().counter("eba.cells_probed") or telemetry().counter_value().
    [[nodiscard]] Stats stats() const noexcept { return eba_.stats(); }
    /// The store's metrics registry. Every component (EBA probe counters
    /// and histograms, CAL chain telemetry, maintenance sweeps, batch
    /// ingest latency) records here under dotted names — see the README
    /// metric table.
    [[nodiscard]] obs::Registry& obs() const noexcept { return *obs_; }
    /// Snapshot of the registry with the structural gauges (live edges,
    /// tombstones, blocks in use, byte footprints) refreshed first.
    [[nodiscard]] obs::Snapshot telemetry() const;
    [[nodiscard]] const EdgeblockArray& edgeblock_array() const noexcept {
        return eba_;
    }
    [[nodiscard]] const CoarseAdjacencyList& cal() const noexcept {
        return cal_;
    }
    /// Tree depth (generations of edgeblocks) for raw vertex `src`.
    [[nodiscard]] std::uint32_t tree_depth(VertexId src) const;

    /// Byte-level footprint of each component (the compaction story in
    /// numbers: bytes per live edge falls as SGH/CAL keep the arena dense).
    struct MemoryFootprint {
        std::size_t edgeblock_bytes = 0;  // cells + children + masks + meta
        std::size_t cal_bytes = 0;        // CAL pool + chain metadata
        std::size_t sgh_bytes = 0;        // id-mapping tables
        std::size_t props_bytes = 0;      // vertex property array
        /// Arena capacity high-water marks (in-use + free-listed + growth
        /// slack). The in-use figures above shrink as maintenance reclaims
        /// blocks; these do not — storage is recycled, never unmapped.
        std::size_t edgeblock_capacity_bytes = 0;
        std::size_t cal_capacity_bytes = 0;
        [[nodiscard]] std::size_t total() const noexcept {
            return edgeblock_bytes + cal_bytes + sgh_bytes + props_bytes;
        }
        /// Total bytes per live edge (0 when empty).
        [[nodiscard]] double bytes_per_edge(EdgeCount edges) const noexcept {
            return edges == 0 ? 0.0
                              : static_cast<double>(total()) /
                                    static_cast<double>(edges);
        }
    };
    [[nodiscard]] MemoryFootprint memory_footprint() const;

    /// Deep structural audit (see core/audit.hpp): verifies Robin Hood probe
    /// invariants per subblock, TBH tree well-formedness, the CAL <->
    /// EdgeblockArray pointer round-trip for every live edge, the SGH
    /// dense-index bijection, and edge/degree accounting. Returns a typed
    /// report listing every violation found.
    [[nodiscard]] AuditReport audit() const;

    /// Legacy validation hook: runs audit() and renders the first violation.
    /// Returns an empty string when consistent, else a failure description.
    [[nodiscard]] std::string validate() const;

private:
    /// Batches below this size skip the sort and apply per edge.
    static constexpr std::size_t kBatchFastPathMin = 33;
    /// Sorted-batch lookahead: the probe target this many edges ahead is
    /// software-prefetched so its DRAM miss overlaps the current inserts.
    static constexpr std::size_t kPrefetchDistance = 32;
    /// Shorter second-stage lookahead: by the time an edge is this close,
    /// the first stage's level-0 lines have landed, so the peek-and-chase
    /// child prefetch (EdgeblockArray::prefetch_probe_child) can run.
    static constexpr std::size_t kPrefetchChildDistance = 16;

    /// Maps a raw source id to its dense index, assigning one when new.
    VertexId map_source(VertexId raw);
    /// insert_edge body after source resolution; `app` (optional) amortizes
    /// the CAL group lookup across a source run. Returns true when a new
    /// edge was created — the caller owns the degree / num_edges_ updates,
    /// so the batch path can accumulate them once per source run.
    bool insert_resolved(VertexId dense, VertexId raw_src, VertexId dst,
                         Weight weight, CoarseAdjacencyList::Appender* app);
    /// delete_edge body after source resolution (`raw_src` only feeds the
    /// undo journal).
    bool delete_resolved(VertexId dense, VertexId raw_src, VertexId dst);

    // ---- transactional batch machinery -----------------------------------

    /// One rollback step, journaled per applied update while a batch is in
    /// Applying state and replayed in reverse order when it fails.
    struct UndoEntry {
        enum class Kind : std::uint8_t {
            EraseInsert,    // insert created an edge -> delete it
            RestoreWeight,  // insert overwrote a weight -> write prev back
            Reinsert,       // delete removed an edge -> re-insert prev
        };
        Kind kind;
        VertexId src;  // raw ids: rollback re-enters the public-id paths
        VertexId dst;
        Weight prev;
    };
    enum class TxnState : std::uint8_t { Idle, Applying, RollingBack };

    /// Pre-application screen: finds the first edge with a kInvalidVertex
    /// endpoint (InvalidArgument, detail = its index), or Ok.
    [[nodiscard]] static Status validate_batch(std::span<const Edge> batch);
    /// Replays journal_ newest-first, restoring the pre-batch store.
    /// Returns false if a rollback step itself failed (allocation failure
    /// during re-insertion) — the store may then be missing rolled-back
    /// edges and the caller's Status says so.
    [[nodiscard]] bool rollback_journal() noexcept;
    /// Shared begin/commit/abort framing around both batch bodies.
    template <typename ApplyFn>
    [[nodiscard]] Status run_transaction(std::span<const Edge> batch,
                                         bool deletes, ApplyFn&& apply);
    /// Materializes `batch` into ingest_sorted_ grouped by source, stable
    /// in batch order within a source, so the apply loop streams
    /// sequentially. Small source spans take a single-pass counting sort
    /// that scatters edges directly; wide spans fall back to an LSD radix
    /// sort over (src << 32 | index) keys followed by one gather pass.
    /// Scratch capacity is reused across batches.
    void sort_batch_by_source(std::span<const Edge> batch);
    /// Gathers `batch` into ingest_sorted_ in ingest_keys_ order (the
    /// radix-sort fallback's final pass).
    void materialize_sorted(std::span<const Edge> batch);
    /// One source run of a sorted batch: positions [begin, end) of
    /// ingest_sorted_ share `src`, resolved to `dense` before application.
    /// `top` snapshots top_[dense] at resolve time — a prefetch hint only
    /// (kNoBlock for fresh vertices, and the apply loop may re-root the
    /// tree), but it spares the lookahead a second random top_ read.
    struct SourceRun {
        VertexId src;
        VertexId dense;
        std::uint32_t top;
        std::uint32_t begin;
        std::uint32_t end;
    };
    /// Scans ingest_sorted_ into ingest_runs_, resolving each source once
    /// (`assign` = map_source for inserts, dense_of for deletes — runs with
    /// unknown sources are dropped there). Returns the runs.
    std::span<const SourceRun> resolve_runs(std::size_t n, bool assign);
    /// Prefetches the probe target of sorted-batch position `pos`, walking
    /// `cursor` forward through ingest_runs_ to find its run (amortized
    /// O(1): both advance monotonically). `deep` selects the second stage
    /// (child chase) instead of the level-0 warm-up.
    void prefetch_ahead(std::span<const SourceRun> runs, std::size_t& cursor,
                        std::size_t pos, bool deep) const;
    /// Read-only dense lookup; empty when the source never streamed.
    [[nodiscard]] std::optional<VertexId> dense_of(VertexId raw) const;
    [[nodiscard]] VertexId raw_of(VertexId dense) const {
        return config_.enable_sgh ? sgh_.raw_of(dense) : dense;
    }
    void note_raw(VertexId raw) {
        if (raw >= raw_bound_) {
            raw_bound_ = raw + 1;
        }
    }

    Config config_;
    // The registry outlives (and is constructed before) every component
    // that resolves handles from it — declaration order is load-bearing.
    std::unique_ptr<obs::Registry> obs_;
    ScatterGatherHash sgh_;
    CoarseAdjacencyList cal_;
    EdgeblockArray eba_;
    VertexPropertyArray props_;
    std::vector<std::uint32_t> top_;  // dense id -> top-parent block handle
    EdgeCount num_edges_ = 0;
    VertexId raw_bound_ = 0;
    /// See mutation_epoch(). Release on bump / acquire on read so an epoch
    /// observation publishes the mutations it counts.
    std::atomic<std::uint64_t> mutation_epoch_{0};
    /// Resume point of the amortized maintenance slices (dense id).
    VertexId maintain_cursor_ = 0;

    /// Durability tee (non-owning; nullptr = durability off).
    UpdateLog* log_ = nullptr;
    TxnState txn_ = TxnState::Idle;
    /// Undo journal of the in-flight batch. Reserved to the batch size up
    /// front so the per-update pushes on the apply path cannot throw.
    std::vector<UndoEntry> journal_;

    // Batch-ingest and maintenance telemetry handles (resolved once at
    // construction; recording through them is lock-free).
    obs::Histogram* ingest_batch_us_ = nullptr;
    obs::Histogram* delete_batch_us_ = nullptr;
    obs::Counter* batches_ingested_ = nullptr;
    obs::Counter* updates_applied_ = nullptr;
    obs::Counter* maintenance_runs_ = nullptr;
    obs::Counter* maintenance_complete_runs_ = nullptr;
    obs::Histogram* maintenance_cells_touched_ = nullptr;

    // Batched-ingest scratch (capacity reused across batches; holds keys and
    // radix histograms, never edge copies).
    std::vector<std::uint64_t> ingest_keys_;
    std::vector<std::uint64_t> ingest_tmp_;
    std::vector<std::uint32_t> ingest_hist_;
    std::vector<SourceRun> ingest_runs_;
    std::vector<Edge> ingest_sorted_;

    // The structural auditor reads the private cross-component state, and
    // its test-only corruption hook mutates it to prove audit() detects
    // every violation class. The maintainer drives the reclamation
    // primitives over the same state.
    friend class Auditor;
    friend class CorruptionInjector;
    friend class Maintainer;
};

}  // namespace gt::core
