// GraphTinker: the public façade tying together the Scatter-Gather Hashing
// unit, the EdgeblockArray, the VertexPropertyArray and the Coarse Adjacency
// List (paper Fig. 2/3).
//
// The interface units of the paper map onto this class as follows: the
// load / find-edge / insert-edge / inference / interval / writeback units are
// the FIND/INSERT walks of the EdgeblockArray (workblock-granular retrieval
// with control flow per subblock); the SGH unit is `ScatterGatherHash`; the
// CAL EdgeblockArray is `CoarseAdjacencyList`.
//
// All public APIs speak *raw* vertex ids; dense (hashed) ids are an internal
// detail of the compaction machinery.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cal.hpp"
#include "core/config.hpp"
#include "core/edgeblock_array.hpp"
#include "core/sgh.hpp"
#include "core/vertex_props.hpp"
#include "util/types.hpp"

namespace gt::core {

struct AuditReport;  // core/audit.hpp

class GraphTinker {
public:
    explicit GraphTinker(Config config = {});

    // The EdgeblockArray holds an internal pointer to the CAL member, so
    // instances must never be moved or copied.
    GraphTinker(const GraphTinker&) = delete;
    GraphTinker& operator=(const GraphTinker&) = delete;

    // ---- updates -------------------------------------------------------

    /// Inserts (src, dst, weight); overwrites the weight when the edge
    /// exists. Returns true when a new edge was created.
    bool insert_edge(VertexId src, VertexId dst, Weight weight = 1);

    /// Deletes (src, dst) under the configured deletion mode. Returns true
    /// when the edge existed.
    bool delete_edge(VertexId src, VertexId dst);

    void insert_batch(std::span<const Edge> batch);
    void delete_batch(std::span<const Edge> batch);

    // ---- queries ---------------------------------------------------------

    [[nodiscard]] std::optional<Weight> find_edge(VertexId src,
                                                  VertexId dst) const;

    [[nodiscard]] EdgeCount num_edges() const noexcept { return num_edges_; }
    /// One past the largest raw vertex id seen (src or dst side).
    [[nodiscard]] VertexId num_vertices() const noexcept {
        return raw_bound_;
    }
    /// Vertices that own at least one edge slot (streamed sources).
    [[nodiscard]] std::size_t num_nonempty_vertices() const noexcept {
        return top_.size();
    }
    [[nodiscard]] std::uint32_t degree(VertexId raw_src) const;

    // ---- traversal -------------------------------------------------------

    /// Visits every live out-edge of raw vertex `src`: fn(dst, weight).
    /// Loads from the EdgeblockArray (the incremental-processing path).
    template <typename Fn>
    void for_each_out_edge(VertexId src, Fn&& fn) const {
        const auto dense = dense_of(src);
        if (!dense) {
            return;
        }
        eba_.for_each_edge_of(top_[*dense], fn);
    }

    /// Early-terminating out-edge visit: fn(dst, weight) returns false to
    /// stop (used by pull-style gathers that only need one witness).
    /// Returns false when iteration was cut short.
    template <typename Fn>
    bool for_each_out_edge_until(VertexId src, Fn&& fn) const {
        const auto dense = dense_of(src);
        if (!dense) {
            return true;
        }
        return eba_.for_each_edge_of_until(top_[*dense], fn);
    }

    /// Streams every live edge: fn(src, dst, weight). Loads from the CAL
    /// EdgeblockArray when the feature is enabled (the full-processing
    /// path); otherwise falls back to sweeping the EdgeblockArray.
    template <typename Fn>
    void for_each_edge(Fn&& fn) const {
        if (config_.enable_cal) {
            cal_.for_each_edge(fn);
            return;
        }
        for_each_edge_via_eba(fn);
    }

    /// Streams every live edge from the EdgeblockArray regardless of CAL
    /// (exposed for the CAL ablation experiments).
    template <typename Fn>
    void for_each_edge_via_eba(Fn&& fn) const {
        for (VertexId dense = 0; dense < top_.size(); ++dense) {
            const VertexId raw = raw_of(dense);
            eba_.for_each_edge_of(top_[dense], [&](VertexId dst, Weight w) {
                fn(raw, dst, w);
            });
        }
    }

    // ---- diagnostics -----------------------------------------------------

    [[nodiscard]] const Config& config() const noexcept { return config_; }
    [[nodiscard]] const Stats& stats() const noexcept { return eba_.stats(); }
    [[nodiscard]] const EdgeblockArray& edgeblock_array() const noexcept {
        return eba_;
    }
    [[nodiscard]] const CoarseAdjacencyList& cal() const noexcept {
        return cal_;
    }
    /// Tree depth (generations of edgeblocks) for raw vertex `src`.
    [[nodiscard]] std::uint32_t tree_depth(VertexId src) const;

    /// Byte-level footprint of each component (the compaction story in
    /// numbers: bytes per live edge falls as SGH/CAL keep the arena dense).
    struct MemoryFootprint {
        std::size_t edgeblock_bytes = 0;  // cells + children + masks + meta
        std::size_t cal_bytes = 0;        // CAL pool + chain metadata
        std::size_t sgh_bytes = 0;        // id-mapping tables
        std::size_t props_bytes = 0;      // vertex property array
        [[nodiscard]] std::size_t total() const noexcept {
            return edgeblock_bytes + cal_bytes + sgh_bytes + props_bytes;
        }
        /// Total bytes per live edge (0 when empty).
        [[nodiscard]] double bytes_per_edge(EdgeCount edges) const noexcept {
            return edges == 0 ? 0.0
                              : static_cast<double>(total()) /
                                    static_cast<double>(edges);
        }
    };
    [[nodiscard]] MemoryFootprint memory_footprint() const;

    /// Deep structural audit (see core/audit.hpp): verifies Robin Hood probe
    /// invariants per subblock, TBH tree well-formedness, the CAL <->
    /// EdgeblockArray pointer round-trip for every live edge, the SGH
    /// dense-index bijection, and edge/degree accounting. Returns a typed
    /// report listing every violation found.
    [[nodiscard]] AuditReport audit() const;

    /// Legacy validation hook: runs audit() and renders the first violation.
    /// Returns an empty string when consistent, else a failure description.
    [[nodiscard]] std::string validate() const;

private:
    /// Maps a raw source id to its dense index, assigning one when new.
    VertexId map_source(VertexId raw);
    /// Read-only dense lookup; empty when the source never streamed.
    [[nodiscard]] std::optional<VertexId> dense_of(VertexId raw) const;
    [[nodiscard]] VertexId raw_of(VertexId dense) const {
        return config_.enable_sgh ? sgh_.raw_of(dense) : dense;
    }
    void note_raw(VertexId raw) {
        if (raw >= raw_bound_) {
            raw_bound_ = raw + 1;
        }
    }

    Config config_;
    ScatterGatherHash sgh_;
    CoarseAdjacencyList cal_;
    EdgeblockArray eba_;
    VertexPropertyArray props_;
    std::vector<std::uint32_t> top_;  // dense id -> top-parent block handle
    EdgeCount num_edges_ = 0;
    VertexId raw_bound_ = 0;

    // The structural auditor reads the private cross-component state, and
    // its test-only corruption hook mutates it to prove audit() detects
    // every violation class.
    friend class Auditor;
    friend class CorruptionInjector;
};

}  // namespace gt::core
