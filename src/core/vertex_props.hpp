// VertexPropertyArray (paper §III.B): per-vertex metadata indexed by the
// dense (hashed) source id — degree, an application value slot and flags.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace gt::core {

struct VertexProperty {
    VertexId raw_id = kInvalidVertex;  // the pre-SGH id of this vertex
    std::uint32_t degree = 0;          // live out-edges
    std::uint32_t value = 0;           // application-defined property slot
    std::uint32_t flags = 0;           // application-defined flag bits
};

class VertexPropertyArray {
public:
    /// Grows to cover `dense` and returns the entry.
    VertexProperty& ensure(VertexId dense) {
        if (dense >= props_.size()) {
            props_.resize(static_cast<std::size_t>(dense) + 1);
        }
        return props_[dense];
    }

    [[nodiscard]] const VertexProperty& operator[](VertexId dense) const {
        return props_[dense];
    }
    [[nodiscard]] VertexProperty& operator[](VertexId dense) {
        return props_[dense];
    }

    [[nodiscard]] std::size_t size() const noexcept { return props_.size(); }

    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return props_.size() * sizeof(VertexProperty);
    }

private:
    std::vector<VertexProperty> props_;
};

}  // namespace gt::core
