#include "core/audit.hpp"

#include <algorithm>
#include <utility>

#include "core/graphtinker.hpp"

namespace gt::core {

std::string_view to_string(AuditCheck check) noexcept {
    switch (check) {
        case AuditCheck::TbhStructure:
            return "tbh-structure";
        case AuditCheck::TbhOrphan:
            return "tbh-orphan";
        case AuditCheck::Occupancy:
            return "occupancy";
        case AuditCheck::RhhPlacement:
            return "rhh-placement";
        case AuditCheck::RhhProbePath:
            return "rhh-probe-path";
        case AuditCheck::FindReachability:
            return "find-reachability";
        case AuditCheck::CalForward:
            return "cal-forward";
        case AuditCheck::CalReverse:
            return "cal-reverse";
        case AuditCheck::CalChain:
            return "cal-chain";
        case AuditCheck::SghBijection:
            return "sgh-bijection";
        case AuditCheck::DegreeAccounting:
            return "degree-accounting";
        case AuditCheck::EdgeAccounting:
            return "edge-accounting";
    }
    return "unknown";
}

std::string AuditViolation::to_string() const {
    std::string out{gt::core::to_string(check)};
    if (src != kInvalidVertex) {
        out += " src=" + std::to_string(src);
    }
    if (dst != kInvalidVertex) {
        out += " dst=" + std::to_string(dst);
    }
    out += ": " + detail;
    return out;
}

bool AuditReport::has(AuditCheck check) const noexcept {
    for (const AuditViolation& v : violations) {
        if (v.check == check) {
            return true;
        }
    }
    return false;
}

std::string AuditReport::to_string() const {
    if (ok()) {
        return {};
    }
    std::string out = "audit found " + std::to_string(violations.size()) +
                      " violation(s)";
    if (truncated) {
        out += " (truncated)";
    }
    out += ":\n";
    for (const AuditViolation& v : violations) {
        out += "  " + v.to_string() + "\n";
    }
    return out;
}

/// Stateful single-run audit walk. Every check appends typed violations and
/// keeps going (up to the report cap), so one run reports every broken
/// invariant class at once. Nested in Auditor so it shares the friend
/// access the core classes grant.
class Auditor::Run {
public:
    explicit Run(const GraphTinker& g) : g_(g), eba_(g.eba_) {}

    AuditReport run() {
        audit_tree_and_cells();
        if (g_.config_.enable_cal) {
            audit_cal();
        }
        if (g_.config_.enable_sgh) {
            audit_sgh();
        }
        audit_edge_totals();
        return std::move(report_);
    }

private:
    void add(AuditCheck check, VertexId src, VertexId dst,
             std::string detail) {
        if (report_.violations.size() >= AuditReport::kMaxViolations) {
            report_.truncated = true;
            return;
        }
        report_.violations.push_back(
            AuditViolation{check, src, dst, std::move(detail)});
    }

    [[nodiscard]] bool mask_bit(std::uint32_t block,
                                std::uint32_t slot) const {
        const std::uint64_t word =
            eba_.masks_[static_cast<std::size_t>(block) *
                            eba_.words_per_block_ +
                        slot / 64];
        return ((word >> (slot % 64)) & 1U) != 0;
    }

    [[nodiscard]] bool tomb_bit(std::uint32_t block, std::uint32_t slot) const {
        const std::uint64_t word =
            eba_.tomb_masks_[static_cast<std::size_t>(block) *
                                 eba_.words_per_block_ +
                             slot / 64];
        return ((word >> (slot % 64)) & 1U) != 0;
    }

    // ---- pass 1: TBH tree walk + per-cell RHH / CAL-forward checks -------

    void audit_tree_and_cells() {
        const std::size_t blocks = eba_.block_count_;
        std::vector<std::uint8_t> reached(blocks, 0);
        std::vector<std::uint8_t> free_flag(blocks, 0);
        for (const std::uint32_t b : eba_.free_blocks_) {
            if (b >= blocks) {
                add(AuditCheck::TbhStructure, kInvalidVertex, kInvalidVertex,
                    "free list holds out-of-range block " + std::to_string(b));
                continue;
            }
            if (free_flag[b]) {
                add(AuditCheck::TbhStructure, kInvalidVertex, kInvalidVertex,
                    "block " + std::to_string(b) + " free-listed twice");
            }
            free_flag[b] = 1;
            for (std::uint32_t s = 0; s < eba_.spb_; ++s) {
                if (eba_.child(b, s) != EdgeblockArray::kNoBlock) {
                    add(AuditCheck::TbhStructure, kInvalidVertex,
                        kInvalidVertex,
                        "free block " + std::to_string(b) +
                            " still links child at subblock " +
                            std::to_string(s));
                }
            }
            audit_free_block(b);
        }

        for (VertexId dense = 0; dense < g_.top_.size(); ++dense) {
            ++report_.vertices_audited;
            const VertexId raw = g_.raw_of(dense);
            const EdgeCount cells = walk_vertex(dense, raw, reached,
                                                free_flag);
            total_cells_ += cells;
            const std::uint32_t degree =
                dense < g_.props_.size() ? g_.props_[dense].degree : 0;
            if (degree != cells) {
                add(AuditCheck::DegreeAccounting, raw, kInvalidVertex,
                    "stored degree " + std::to_string(degree) + " but " +
                        std::to_string(cells) + " live cells");
            }
        }

        for (std::uint32_t b = 0; b < blocks; ++b) {
            if (!free_flag[b] && reached[b] == 0) {
                add(AuditCheck::TbhOrphan, kInvalidVertex, kInvalidVertex,
                    "allocated block " + std::to_string(b) +
                        " unreachable from every top parent");
            }
        }
    }

    /// Reclaimed blocks must be scrubbed clean: free_block clears the cells
    /// and both mask planes, and allocate_block recycles them without
    /// re-clearing — a dirty free block would leak stale edges (or
    /// tombstones) straight into the next tree built on top of it.
    void audit_free_block(std::uint32_t b) {
        if (eba_.occupied_[b] != 0) {
            add(AuditCheck::TbhStructure, kInvalidVertex, kInvalidVertex,
                "free block " + std::to_string(b) + " counts " +
                    std::to_string(eba_.occupied_[b]) + " occupied cells");
        }
        const std::size_t mbase =
            static_cast<std::size_t>(b) * eba_.words_per_block_;
        for (std::uint32_t w = 0; w < eba_.words_per_block_; ++w) {
            if (eba_.masks_[mbase + w] != 0 ||
                eba_.tomb_masks_[mbase + w] != 0) {
                add(AuditCheck::TbhStructure, kInvalidVertex, kInvalidVertex,
                    "free block " + std::to_string(b) +
                        " has non-empty occupancy/tombstone masks");
                break;
            }
        }
        for (std::uint32_t slot = 0; slot < eba_.pagewidth_; ++slot) {
            if (eba_.cell(b, slot).state != CellState::Empty) {
                add(AuditCheck::TbhStructure, kInvalidVertex, kInvalidVertex,
                    "free block " + std::to_string(b) +
                        " holds a non-EMPTY cell at slot " +
                        std::to_string(slot));
                break;
            }
        }
    }

    /// Depth-first walk of one vertex's edgeblock tree. Returns the number
    /// of live cells seen under the tree.
    EdgeCount walk_vertex(VertexId dense, VertexId raw,
                          std::vector<std::uint8_t>& reached,
                          const std::vector<std::uint8_t>& free_flag) {
        const std::uint32_t top = g_.top_[dense];
        if (top == EdgeblockArray::kNoBlock) {
            return 0;
        }
        EdgeCount cells = 0;
        struct Frame {
            std::uint32_t block;
            std::uint32_t level;
        };
        std::vector<Frame> stack{{top, 0}};
        while (!stack.empty()) {
            const auto [block, level] = stack.back();
            stack.pop_back();
            if (block >= eba_.block_count_) {
                add(AuditCheck::TbhStructure, raw, kInvalidVertex,
                    "handle " + std::to_string(block) +
                        " outside the arena (level " + std::to_string(level) +
                        ")");
                continue;
            }
            if (free_flag[block]) {
                add(AuditCheck::TbhStructure, raw, kInvalidVertex,
                    "reachable block " + std::to_string(block) +
                        " is on the free list");
                continue;
            }
            if (reached[block]++ != 0) {
                add(AuditCheck::TbhStructure, raw, kInvalidVertex,
                    "block " + std::to_string(block) +
                        " reached twice (cycle or shared child)");
                continue;  // do not descend again
            }
            ++report_.blocks_audited;
            cells += audit_block(raw, top, block, level);
            for (std::uint32_t s = 0; s < eba_.spb_; ++s) {
                const std::uint32_t down = eba_.child(block, s);
                if (down != EdgeblockArray::kNoBlock) {
                    stack.push_back(Frame{down, level + 1});
                }
            }
        }
        return cells;
    }

    /// Per-cell checks of one reachable block at its tree level. Returns the
    /// number of occupied cells.
    EdgeCount audit_block(VertexId raw, std::uint32_t top,
                          std::uint32_t block, std::uint32_t level) {
        EdgeCount occupied = 0;
        for (std::uint32_t slot = 0; slot < eba_.pagewidth_; ++slot) {
            const EdgeCell& c = eba_.cell(block, slot);
            const bool is_occupied = c.state == CellState::Occupied;
            if (mask_bit(block, slot) != is_occupied) {
                add(AuditCheck::Occupancy, raw, c.dst,
                    "occupancy bit disagrees with cell state (block " +
                        std::to_string(block) + " slot " +
                        std::to_string(slot) + ")");
            }
            if (tomb_bit(block, slot) !=
                (c.state == CellState::Tombstone)) {
                add(AuditCheck::Occupancy, raw, c.dst,
                    "tombstone bit disagrees with cell state (block " +
                        std::to_string(block) + " slot " +
                        std::to_string(slot) + ")");
            }
            if (c.state == CellState::Tombstone) {
                ++report_.tombstones;
            }
            if (!is_occupied) {
                continue;
            }
            ++occupied;
            ++report_.live_edges;
            ++report_.cells_audited;
            audit_cell(raw, top, block, slot, level, c);
        }
        if (occupied != eba_.occupied_[block]) {
            add(AuditCheck::Occupancy, raw, kInvalidVertex,
                "block " + std::to_string(block) + " counter says " +
                    std::to_string(eba_.occupied_[block]) + " but " +
                    std::to_string(occupied) + " cells are occupied");
        }
        return occupied;
    }

    void audit_cell(VertexId raw, std::uint32_t top, std::uint32_t block,
                    std::uint32_t slot, std::uint32_t level,
                    const EdgeCell& c) {
        const std::uint32_t sb = slot / eba_.subblock_;
        const std::uint32_t sb_base = sb * eba_.subblock_;

        // Robin Hood placement: right subblock for the (dst, level) hash and
        // probe distance equal to the displacement from the home offset.
        if (eba_.sb_of(c.dst, level) != sb) {
            add(AuditCheck::RhhPlacement, raw, c.dst,
                "cell stored in subblock " + std::to_string(sb) +
                    " but hashes to " +
                    std::to_string(eba_.sb_of(c.dst, level)) + " at level " +
                    std::to_string(level));
        } else {
            const std::uint32_t home = eba_.home_of(c.dst, level);
            const std::uint32_t off = slot - sb_base;
            const std::uint32_t expected =
                (off + eba_.subblock_ - home) & (eba_.subblock_ - 1);
            if (c.probe != expected) {
                add(AuditCheck::RhhPlacement, raw, c.dst,
                    "stored probe " + std::to_string(c.probe) +
                        " but displacement from home is " +
                        std::to_string(expected));
            } else if (eba_.rhh_) {
                // Probe-path continuity (delete-only mode): no EMPTY cell
                // may precede the edge on its probe path, otherwise the
                // FIND early-exit would miss it.
                for (std::uint32_t d = 0; d < c.probe; ++d) {
                    const std::uint32_t on_path =
                        sb_base + ((home + d) & (eba_.subblock_ - 1));
                    if (eba_.cell(block, on_path).state == CellState::Empty) {
                        add(AuditCheck::RhhProbePath, raw, c.dst,
                            "EMPTY cell at probe distance " +
                                std::to_string(d) +
                                " precedes edge stored at distance " +
                                std::to_string(c.probe));
                        break;
                    }
                }
            }
        }

        // End-to-end FIND retrieval.
        const auto found = eba_.find(top, c.dst);
        if (!found || *found != c.weight) {
            add(AuditCheck::FindReachability, raw, c.dst,
                !found ? "stored cell not reachable via FIND"
                       : "FIND returns weight " + std::to_string(*found) +
                             " but cell stores " + std::to_string(c.weight));
        }

        // CAL forward pointer.
        if (!g_.config_.enable_cal) {
            if (c.cal_pos != kNoCalPos) {
                add(AuditCheck::CalForward, raw, c.dst,
                    "CAL disabled but cell carries CAL pointer " +
                        std::to_string(c.cal_pos));
            }
            return;
        }
        if (c.cal_pos == kNoCalPos) {
            add(AuditCheck::CalForward, raw, c.dst,
                "occupied cell without CAL pointer");
            return;
        }
        if (c.cal_pos >= g_.cal_.pool_.size()) {
            add(AuditCheck::CalForward, raw, c.dst,
                "CAL pointer " + std::to_string(c.cal_pos) +
                    " outside the pool");
            return;
        }
        const auto slot_view = g_.cal_.slot_at(c.cal_pos);
        if (!slot_view.valid || slot_view.src != raw ||
            slot_view.dst != c.dst || slot_view.weight != c.weight ||
            slot_view.owner.block != block || slot_view.owner.slot != slot) {
            add(AuditCheck::CalForward, raw, c.dst,
                "CAL slot " + std::to_string(c.cal_pos) +
                    " disagrees with its owning cell");
        }
    }

    // ---- pass 2: CAL chains + reverse pointers ---------------------------

    void audit_cal() {
        const CoarseAdjacencyList& cal = g_.cal_;
        constexpr std::uint32_t kNone = 0xffffffffU;
        std::vector<std::uint8_t> chained(cal.blocks_.size(), 0);

        for (std::size_t group = 0; group < cal.groups_.size(); ++group) {
            const auto& meta = cal.groups_[group];
            if ((meta.head == kNone) != (meta.tail == kNone)) {
                add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                    "group " + std::to_string(group) +
                        " has mismatched head/tail sentinels");
                continue;
            }
            std::uint32_t prev = kNone;
            std::uint32_t b = meta.head;
            std::size_t steps = 0;
            while (b != kNone) {
                if (b >= cal.blocks_.size() ||
                    ++steps > cal.blocks_.size()) {
                    add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                        "group " + std::to_string(group) +
                            " chain is out of range or cyclic");
                    break;
                }
                if (chained[b]++ != 0) {
                    add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                        "CAL block " + std::to_string(b) +
                            " appears in two chains");
                    break;
                }
                const auto& bm = cal.blocks_[b];
                if (bm.group != group) {
                    add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                        "CAL block " + std::to_string(b) + " tagged group " +
                            std::to_string(bm.group) + " but chained in " +
                            std::to_string(group));
                }
                if (bm.prev != prev) {
                    add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                        "CAL block " + std::to_string(b) +
                            " prev link broken");
                }
                if (bm.used > cal.block_edges_) {
                    add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                        "CAL block " + std::to_string(b) +
                            " used count exceeds capacity");
                }
                if (bm.next == kNone && meta.tail != b) {
                    add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                        "group " + std::to_string(group) +
                            " tail does not terminate its chain");
                }
                ++report_.cal_blocks;
                audit_cal_block(b);
                prev = b;
                b = bm.next;
            }
        }

        // Every pool block is either chained or free-listed, never both.
        std::vector<std::uint8_t> free_flag(cal.blocks_.size(), 0);
        for (const std::uint32_t b : cal.free_) {
            if (b < cal.blocks_.size()) {
                free_flag[b] = 1;
                audit_cal_free_block(b);
            }
        }
        for (std::size_t b = 0; b < cal.blocks_.size(); ++b) {
            if (chained[b] != 0 && free_flag[b] != 0) {
                add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                    "CAL block " + std::to_string(b) +
                        " both chained and free-listed");
            } else if (chained[b] == 0 && free_flag[b] == 0) {
                add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                    "CAL block " + std::to_string(b) +
                        " neither chained nor free-listed");
            }
        }

        if (cal_live_ != cal.live_edges()) {
            add(AuditCheck::EdgeAccounting, kInvalidVertex, kInvalidVertex,
                "CAL live counter says " + std::to_string(cal.live_edges()) +
                    " but " + std::to_string(cal_live_) +
                    " live slots exist");
        }
    }

    /// Free-listed CAL blocks must be fully drained: a stale live slot in a
    /// recycled block would resurface as a phantom edge the next time the
    /// block is appended to a chain.
    void audit_cal_free_block(std::uint32_t block) {
        const CoarseAdjacencyList& cal = g_.cal_;
        if (cal.blocks_[block].used != 0) {
            add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                "free CAL block " + std::to_string(block) + " counts " +
                    std::to_string(cal.blocks_[block].used) + " used slots");
        }
        const std::size_t base =
            static_cast<std::size_t>(block) * cal.block_edges_;
        for (std::uint32_t i = 0; i < cal.block_edges_; ++i) {
            if (cal.pool_[base + i].src != kInvalidVertex) {
                add(AuditCheck::CalChain, kInvalidVertex, kInvalidVertex,
                    "free CAL block " + std::to_string(block) +
                        " holds a live slot at offset " + std::to_string(i));
                break;
            }
        }
    }

    /// Reverse (CAL slot -> edge-cell) round-trip for one chained block.
    void audit_cal_block(std::uint32_t block) {
        const CoarseAdjacencyList& cal = g_.cal_;
        const std::size_t base =
            static_cast<std::size_t>(block) * cal.block_edges_;
        for (std::uint32_t i = 0; i < cal.blocks_[block].used; ++i) {
            ++report_.cal_slots_audited;
            const auto& slot = cal.pool_[base + i];
            if (slot.src == kInvalidVertex) {
                continue;  // delete-only hole
            }
            ++cal_live_;
            const auto pos = static_cast<std::uint32_t>(base + i);
            if (slot.owner.block >= eba_.block_count_ ||
                slot.owner.slot >= eba_.pagewidth_) {
                add(AuditCheck::CalReverse, slot.src, slot.dst,
                    "CAL slot " + std::to_string(pos) +
                        " owner reference outside the arena");
                continue;
            }
            const EdgeCell& cell =
                eba_.cell(slot.owner.block, slot.owner.slot);
            if (cell.state != CellState::Occupied ||
                cell.cal_pos != pos || cell.dst != slot.dst ||
                cell.weight != slot.weight) {
                add(AuditCheck::CalReverse, slot.src, slot.dst,
                    "CAL slot " + std::to_string(pos) +
                        " owner cell does not point back");
            }
        }
    }

    // ---- pass 3: SGH bijection ------------------------------------------

    void audit_sgh() {
        const ScatterGatherHash& sgh = g_.sgh_;
        if (sgh.size() != g_.top_.size()) {
            add(AuditCheck::SghBijection, kInvalidVertex, kInvalidVertex,
                "SGH maps " + std::to_string(sgh.size()) +
                    " vertices but the top-parent table holds " +
                    std::to_string(g_.top_.size()));
        }
        if (sgh.map_.size() != sgh.dense_to_raw_.size()) {
            add(AuditCheck::SghBijection, kInvalidVertex, kInvalidVertex,
                "forward map holds " + std::to_string(sgh.map_.size()) +
                    " entries but reverse table holds " +
                    std::to_string(sgh.dense_to_raw_.size()));
        }
        const VertexId bound =
            static_cast<VertexId>(std::min(sgh.size(), g_.top_.size()));
        for (VertexId dense = 0; dense < bound; ++dense) {
            const VertexId raw = sgh.raw_of(dense);
            const auto round_trip = sgh.lookup(raw);
            if (!round_trip || *round_trip != dense) {
                add(AuditCheck::SghBijection, raw, kInvalidVertex,
                    "dense id " + std::to_string(dense) +
                        " does not round-trip (raw " + std::to_string(raw) +
                        " maps to " +
                        (round_trip ? std::to_string(*round_trip)
                                    : std::string("nothing")) +
                        ")");
                continue;
            }
            if (dense < g_.props_.size() &&
                g_.props_[dense].raw_id != raw) {
                add(AuditCheck::SghBijection, raw, kInvalidVertex,
                    "vertex property raw_id " +
                        std::to_string(g_.props_[dense].raw_id) +
                        " disagrees with SGH raw id " + std::to_string(raw));
            }
        }
    }

    // ---- pass 4: global accounting --------------------------------------

    void audit_edge_totals() {
        if (total_cells_ != g_.num_edges_) {
            add(AuditCheck::EdgeAccounting, kInvalidVertex, kInvalidVertex,
                "edge counter says " + std::to_string(g_.num_edges_) +
                    " but " + std::to_string(total_cells_) +
                    " live cells are stored");
        }
        if (g_.config_.enable_cal && cal_live_ != g_.num_edges_) {
            add(AuditCheck::EdgeAccounting, kInvalidVertex, kInvalidVertex,
                "edge counter says " + std::to_string(g_.num_edges_) +
                    " but the CAL holds " + std::to_string(cal_live_) +
                    " live copies");
        }
    }

    const GraphTinker& g_;
    const EdgeblockArray& eba_;
    AuditReport report_;
    EdgeCount total_cells_ = 0;
    EdgeCount cal_live_ = 0;
};

AuditReport Auditor::run(const GraphTinker& graph) {
    return Run(graph).run();
}

AuditReport GraphTinker::audit() const { return Auditor::run(*this); }

std::string GraphTinker::validate() const {
    const AuditReport report = audit();
    if (report.ok()) {
        return {};
    }
    return report.violations.front().to_string();
}

// ---- test-only corruption hooks ----------------------------------------

EdgeCell* CorruptionInjector::locate_cell(GraphTinker& graph, VertexId src,
                                          VertexId dst) {
    const auto dense = graph.dense_of(src);
    if (!dense) {
        return nullptr;
    }
    const auto ref = graph.eba_.find_ref(graph.top_[*dense], dst);
    if (!ref) {
        return nullptr;
    }
    return &graph.eba_.cell(ref->block, ref->slot);
}

bool CorruptionInjector::break_cal_pointer(GraphTinker& graph, VertexId src,
                                           VertexId dst) {
    EdgeCell* cell = locate_cell(graph, src, dst);
    if (cell == nullptr || cell->cal_pos == kNoCalPos) {
        return false;
    }
    cell->cal_pos = kNoCalPos;
    return true;
}

bool CorruptionInjector::corrupt_probe(GraphTinker& graph, VertexId src,
                                       VertexId dst) {
    EdgeCell* cell = locate_cell(graph, src, dst);
    if (cell == nullptr) {
        return false;
    }
    cell->probe = static_cast<std::uint16_t>(cell->probe ^ 1U);
    return true;
}

bool CorruptionInjector::orphan_child(GraphTinker& graph, VertexId src) {
    const auto dense = graph.dense_of(src);
    if (!dense || graph.top_[*dense] == EdgeblockArray::kNoBlock) {
        return false;
    }
    EdgeblockArray& eba = graph.eba_;
    std::vector<std::uint32_t> stack{graph.top_[*dense]};
    while (!stack.empty()) {
        const std::uint32_t block = stack.back();
        stack.pop_back();
        for (std::uint32_t s = 0; s < eba.spb_; ++s) {
            std::uint32_t& down = eba.child(block, s);
            if (down != EdgeblockArray::kNoBlock) {
                down = EdgeblockArray::kNoBlock;
                return true;
            }
        }
    }
    return false;
}

bool CorruptionInjector::link_cycle(GraphTinker& graph, VertexId src) {
    const auto dense = graph.dense_of(src);
    if (!dense || graph.top_[*dense] == EdgeblockArray::kNoBlock) {
        return false;
    }
    EdgeblockArray& eba = graph.eba_;
    const std::uint32_t top = graph.top_[*dense];
    for (std::uint32_t s = 0; s < eba.spb_; ++s) {
        std::uint32_t& down = eba.child(top, s);
        if (down == EdgeblockArray::kNoBlock) {
            down = top;  // the top block becomes its own descendant
            return true;
        }
    }
    return false;
}

bool CorruptionInjector::corrupt_degree(GraphTinker& graph, VertexId src) {
    const auto dense = graph.dense_of(src);
    if (!dense || *dense >= graph.props_.size()) {
        return false;
    }
    ++graph.props_[*dense].degree;
    return true;
}

bool CorruptionInjector::corrupt_sgh(GraphTinker& graph) {
    auto& table = graph.sgh_.dense_to_raw_;
    if (table.size() < 2) {
        return false;
    }
    std::swap(table[0], table[1]);
    return true;
}

bool CorruptionInjector::vanish_cell(GraphTinker& graph, VertexId src,
                                     VertexId dst) {
    EdgeCell* cell = locate_cell(graph, src, dst);
    if (cell == nullptr) {
        return false;
    }
    *cell = EdgeCell{};  // blanked without touching counters or masks
    return true;
}

}  // namespace gt::core
