// UpdateLog: the durability tee GraphTinker writes its update stream
// through when one is attached (GraphTinker::attach_update_log).
//
// The contract mirrors the store's transactional batch semantics: every
// logical commit unit — one insert_batch/delete_batch call, or one
// single-edge insert/delete — is framed begin / stage / commit (or abort).
// The store stages the ops *before* applying them in memory and commits
// only after the in-memory apply succeeded, so:
//
//   - a crash mid-apply leaves an uncommitted frame the log's reader
//     discards (the batch never happened, matching the rolled-back memory
//     state a clean failure would have produced);
//   - a committed frame always describes a batch that fully applied, so
//     replay is exact.
//
// Methods are noexcept and report failure by returning false — the store is
// on its hot path and must not unwind through logging; implementations
// latch their first error for callers to inspect (see
// recover::WalWriter::status()). The interface lives in core (rather than
// the recover module that implements it) so the store does not depend on
// the durability layer.
#pragma once

#include <cstdint>
#include <span>

#include "util/types.hpp"

namespace gt::core {

class UpdateLog {
public:
    virtual ~UpdateLog() = default;

    /// Opens a commit frame that will stage `op_count` updates. Returns
    /// false when the log cannot accept the frame (latched failure).
    [[nodiscard]] virtual bool begin_batch(std::uint64_t op_count)
        noexcept = 0;
    /// Stages edge insertions into the open frame.
    [[nodiscard]] virtual bool stage_inserts(std::span<const Edge> edges)
        noexcept = 0;
    /// Stages edge deletions into the open frame.
    [[nodiscard]] virtual bool stage_deletes(std::span<const Edge> edges)
        noexcept = 0;
    /// Seals and persists the frame; the durability point. Returns false
    /// when the frame could not be made durable.
    [[nodiscard]] virtual bool commit_batch() noexcept = 0;
    /// Drops the open frame (the in-memory apply failed and rolled back).
    virtual void abort_batch() noexcept = 0;
};

}  // namespace gt::core
