// Parallel instances of a dynamic graph store (paper §III.D, Fig. 6).
//
// The edge stream is partitioned by where the source id hashes, and each
// partition ("interval") loads into its own store instance on its own core.
// The wrapper is generic over the store type so GraphTinker and the STINGER
// baseline parallelize identically — multicore comparisons (Fig. 10) then
// measure the data structures, not the parallelization strategy.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "util/hash.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace gt::core {

template <typename Store>
class ShardedStore {
public:
    /// Creates `shards` instances and a matching pool. `factory()` returns
    /// the *configuration* each store is constructed from (stores are built
    /// in place — GraphTinker is intentionally non-movable).
    template <typename Factory>
    ShardedStore(std::size_t shards, Factory&& factory)
        : pool_(shards == 0 ? 1 : shards) {
        const std::size_t n = shards == 0 ? 1 : shards;
        stores_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            stores_.push_back(std::make_unique<Store>(factory()));
        }
    }

    [[nodiscard]] static std::size_t shard_of(VertexId src,
                                              std::size_t shards) noexcept {
        return mix32(src) % shards;
    }

    void insert_batch(std::span<const Edge> batch) {
        partition(batch);
        pool_.parallel_for(stores_.size(), [&](std::size_t s) {
            for (const Edge& e : parts_[s]) {
                stores_[s]->insert_edge(e.src, e.dst, e.weight);
            }
        });
    }

    void delete_batch(std::span<const Edge> batch) {
        partition(batch);
        pool_.parallel_for(stores_.size(), [&](std::size_t s) {
            for (const Edge& e : parts_[s]) {
                stores_[s]->delete_edge(e.src, e.dst);
            }
        });
    }

    [[nodiscard]] EdgeCount num_edges() const {
        EdgeCount total = 0;
        for (const auto& store : stores_) {
            total += store->num_edges();
        }
        return total;
    }

    [[nodiscard]] std::size_t num_shards() const noexcept {
        return stores_.size();
    }
    [[nodiscard]] Store& shard(std::size_t i) { return *stores_[i]; }
    [[nodiscard]] const Store& shard(std::size_t i) const {
        return *stores_[i];
    }

    /// Finds the edge in its owning shard.
    [[nodiscard]] auto find_edge(VertexId src, VertexId dst) const {
        return stores_[shard_of(src, stores_.size())]->find_edge(src, dst);
    }

private:
    void partition(std::span<const Edge> batch) {
        parts_.assign(stores_.size(), {});
        const std::size_t n = stores_.size();
        for (auto& part : parts_) {
            part.reserve(batch.size() / n + 1);
        }
        for (const Edge& e : batch) {
            parts_[shard_of(e.src, n)].push_back(e);
        }
    }

    std::vector<std::unique_ptr<Store>> stores_;
    std::vector<std::vector<Edge>> parts_;
    ThreadPool pool_;
};

}  // namespace gt::core
