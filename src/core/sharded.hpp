// Parallel instances of a dynamic graph store (paper §III.D, Fig. 6).
//
// The edge stream is partitioned by where the source id hashes, and each
// partition ("interval") loads into its own store instance on its own core.
// The wrapper is generic over the store type so GraphTinker and the STINGER
// baseline parallelize identically — multicore comparisons (Fig. 10) then
// measure the data structures, not the parallelization strategy.
//
// Batches flow through a two-pass parallel radix partition: every worker
// histograms a chunk of the batch by shard, a serial prefix sum turns the
// per-(worker, shard) counts into write cursors, and the workers scatter
// their chunks into one flat arena at disjoint offsets. The arena and the
// count/offset tables are members whose capacity is reused, so steady-state
// batches allocate nothing. Stores that expose a native insert_batch /
// delete_batch (GraphTinker's source-grouped fast path) receive their shard
// slice as one span; others fall back to per-edge application.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "gen/batch_prep.hpp"
#include "util/hash.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace gt::core {

template <typename Store>
class ShardedStore {
public:
    /// Creates `shards` instances and a matching pool. `factory()` returns
    /// the *configuration* each store is constructed from (stores are built
    /// in place — GraphTinker is intentionally non-movable).
    template <typename Factory>
    ShardedStore(std::size_t shards, Factory&& factory)
        : pool_(shards == 0 ? 1 : shards) {
        const std::size_t n = shards == 0 ? 1 : shards;
        stores_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            stores_.push_back(std::make_unique<Store>(factory()));
        }
    }

    /// Owning shard of a source id. Division-free for any shard count: the
    /// mixed hash is mapped into [0, shards) with a multiply-shift (Lemire's
    /// fastmod), which preserves the hash's uniformity without requiring a
    /// power-of-two count. Safe for shards == 0 (returns 0).
    [[nodiscard]] static std::size_t shard_of(VertexId src,
                                              std::size_t shards) noexcept {
        if (shards <= 1) {
            return 0;
        }
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(mix32(src)) * shards) >> 32);
    }

    /// Inserts the batch, each shard applying its slice transactionally.
    /// Returns the first failing shard's Status (message prefixed with the
    /// shard index). Shards fail independently: a non-Ok return means the
    /// failing shards rolled their slices back while the others committed —
    /// cross-shard atomicity is not provided (ROADMAP item 1 territory).
    [[nodiscard]] Status insert_batch(std::span<const Edge> batch) {
        partition(batch, edge_arena_,
                  [](const Edge& e) { return e.src; });
        shard_status_.assign(stores_.size(), Status::success());
        pool_.parallel_for(stores_.size(), [&](std::size_t s) {
            const std::span<const Edge> part = shard_slice(edge_arena_, s);
            if constexpr (requires(Store& st) {
                              { st.insert_batch(part) } -> std::same_as<Status>;
                          }) {
                shard_status_[s] = stores_[s]->insert_batch(part);
            } else if constexpr (requires(Store& st) {
                                     st.insert_batch(part);
                                 }) {
                (void)stores_[s]->insert_batch(part);
            } else {
                for (const Edge& e : part) {
                    (void)stores_[s]->insert_edge(e.src, e.dst, e.weight);
                }
            }
        });
        return first_shard_failure();
    }

    /// Batched delete with the same per-shard transactional semantics and
    /// first-failure reporting as insert_batch.
    [[nodiscard]] Status delete_batch(std::span<const Edge> batch) {
        partition(batch, edge_arena_,
                  [](const Edge& e) { return e.src; });
        shard_status_.assign(stores_.size(), Status::success());
        pool_.parallel_for(stores_.size(), [&](std::size_t s) {
            const std::span<const Edge> part = shard_slice(edge_arena_, s);
            if constexpr (requires(Store& st) {
                              { st.delete_batch(part) } -> std::same_as<Status>;
                          }) {
                shard_status_[s] = stores_[s]->delete_batch(part);
            } else if constexpr (requires(Store& st) {
                                     st.delete_batch(part);
                                 }) {
                (void)stores_[s]->delete_batch(part);
            } else {
                for (const Edge& e : part) {
                    (void)stores_[s]->delete_edge(e.src, e.dst);
                }
            }
        });
        return first_shard_failure();
    }

    /// Outcome of apply_updates: how much of the raw batch pre-combining
    /// folded away before any shard saw it.
    struct ApplyResult {
        std::size_t applied = 0;        // updates that reached the stores
        std::size_t duplicates = 0;     // folded into their survivor
        std::size_t cancellations = 0;  // insert+delete pairs dropped
    };

    /// Applies a mixed insert/delete stream: the batch is pre-combined with
    /// prepare_batch (dedup per pair, optional insert+delete cancellation)
    /// *before* sharding, then radix-partitioned and applied per shard in
    /// stream order. See prepare_batch for `assume_new_edges`.
    ApplyResult apply_updates(std::span<const Update> raw,
                              bool assume_new_edges = false) {
        const PreparedBatch prepared = prepare_batch(raw, assume_new_edges);
        partition(std::span<const Update>(prepared.updates), update_arena_,
                  [](const Update& u) { return u.edge.src; });
        pool_.parallel_for(stores_.size(), [&](std::size_t s) {
            for (const Update& u : shard_slice(update_arena_, s)) {
                // Per-edge application: the bool is "created"/"existed",
                // which the update stream does not track.
                if (u.kind == UpdateKind::Insert) {
                    (void)stores_[s]->insert_edge(u.edge.src, u.edge.dst,
                                                  u.edge.weight);
                } else {
                    (void)stores_[s]->delete_edge(u.edge.src, u.edge.dst);
                }
            }
        });
        return ApplyResult{prepared.updates.size(), prepared.duplicates,
                           prepared.cancellations};
    }

    [[nodiscard]] EdgeCount num_edges() const {
        EdgeCount total = 0;
        for (const auto& store : stores_) {
            total += store->num_edges();
        }
        return total;
    }

    [[nodiscard]] std::size_t num_shards() const noexcept {
        return stores_.size();
    }
    [[nodiscard]] Store& shard(std::size_t i) { return *stores_[i]; }
    [[nodiscard]] const Store& shard(std::size_t i) const {
        return *stores_[i];
    }

    /// Finds the edge in its owning shard.
    [[nodiscard]] auto find_edge(VertexId src, VertexId dst) const {
        return stores_[shard_of(src, stores_.size())]->find_edge(src, dst);
    }

private:
    /// Batches below this size partition serially (two passes, one thread);
    /// the fork/join overhead would dominate otherwise.
    static constexpr std::size_t kParallelPartitionMin = 4096;

    [[nodiscard]] std::size_t chunk_begin(std::size_t chunk,
                                          std::size_t chunk_size,
                                          std::size_t total) const noexcept {
        const std::size_t begin = chunk * chunk_size;
        return begin < total ? begin : total;
    }

    /// Two-pass radix partition of `batch` by source shard into `arena`
    /// (count -> prefix -> scatter). All scratch keeps its capacity between
    /// batches, so the steady state is allocation-free.
    template <typename T, typename SrcOf>
    void partition(std::span<const T> batch, std::vector<T>& arena,
                   SrcOf&& src_of) {
        const std::size_t n = stores_.size();
        const std::size_t count = batch.size();
        arena.resize(count);
        offsets_.assign(n + 1, 0);
        if (count == 0) {
            return;
        }
        if (n == 1) {
            std::copy(batch.begin(), batch.end(), arena.begin());
            offsets_[1] = count;
            return;
        }
        const std::size_t workers =
            count < kParallelPartitionMin
                ? 1
                : std::min(pool_.size(),
                           count / (kParallelPartitionMin / 4) + 1);
        const std::size_t chunk_size = (count + workers - 1) / workers;
        cursors_.assign(workers * n, 0);

        // Pass 1: per-worker shard histograms over disjoint chunks.
        auto count_chunk = [&](std::size_t w) {
            const std::size_t begin = chunk_begin(w, chunk_size, count);
            const std::size_t end = chunk_begin(w + 1, chunk_size, count);
            std::size_t* hist = cursors_.data() + w * n;
            for (std::size_t i = begin; i < end; ++i) {
                ++hist[shard_of(src_of(batch[i]), n)];
            }
        };
        if (workers == 1) {
            count_chunk(0);
        } else {
            pool_.parallel_for(workers, count_chunk);
        }

        // Prefix sums: shard-major so each shard's slice is contiguous and
        // each (worker, shard) pair owns a disjoint cursor range.
        std::size_t run = 0;
        for (std::size_t s = 0; s < n; ++s) {
            offsets_[s] = run;
            for (std::size_t w = 0; w < workers; ++w) {
                const std::size_t c = cursors_[w * n + s];
                cursors_[w * n + s] = run;
                run += c;
            }
        }
        offsets_[n] = run;

        // Pass 2: scatter. Writes of different workers never overlap.
        auto scatter_chunk = [&](std::size_t w) {
            const std::size_t begin = chunk_begin(w, chunk_size, count);
            const std::size_t end = chunk_begin(w + 1, chunk_size, count);
            std::size_t* cursor = cursors_.data() + w * n;
            T* out = arena.data();
            for (std::size_t i = begin; i < end; ++i) {
                out[cursor[shard_of(src_of(batch[i]), n)]++] = batch[i];
            }
        };
        if (workers == 1) {
            scatter_chunk(0);
        } else {
            pool_.parallel_for(workers, scatter_chunk);
        }
    }

    template <typename T>
    [[nodiscard]] std::span<const T> shard_slice(const std::vector<T>& arena,
                                                 std::size_t s) const {
        return std::span<const T>(arena.data() + offsets_[s],
                                  offsets_[s + 1] - offsets_[s]);
    }

    /// First non-Ok entry of shard_status_, its message prefixed with the
    /// failing shard's index (Ok when every shard committed).
    [[nodiscard]] Status first_shard_failure() const {
        for (std::size_t s = 0; s < shard_status_.size(); ++s) {
            if (!shard_status_[s].ok()) {
                Status st = shard_status_[s];
                st.message =
                    "shard " + std::to_string(s) + ": " + st.message;
                return st;
            }
        }
        return Status::success();
    }

    std::vector<std::unique_ptr<Store>> stores_;
    std::vector<Edge> edge_arena_;      // flat partitioned batch, by shard
    std::vector<Update> update_arena_;  // flat partitioned update stream
    std::vector<std::size_t> offsets_;  // shard s owns [offsets_[s], [s+1])
    std::vector<std::size_t> cursors_;  // per-(worker, shard) scratch
    /// Per-shard batch outcomes; entry s is written only by shard s's task.
    std::vector<Status> shard_status_;
    ThreadPool pool_;
};

}  // namespace gt::core
