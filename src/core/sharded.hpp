// Parallel instances of a dynamic graph store (paper §III.D, Fig. 6),
// pipelined: each shard is owned by one persistent worker thread.
//
// The edge stream is partitioned by where the source id hashes, and each
// partition ("interval") loads into its own store instance on its own core.
// The wrapper is generic over the store type so GraphTinker and the STINGER
// baseline parallelize identically — multicore comparisons (Fig. 10) then
// measure the data structures, not the parallelization strategy.
//
// Execution model (DESIGN.md §13). The original ShardedStore forked a
// parallel_for per batch: every batch paid a wakeup/barrier rendezvous plus
// a barrier-synchronized partition, which erased the multicore win at
// batch=100k and collapsed ~20x at batch=1. Now each shard has a dedicated
// worker thread that runs for the store's lifetime, fed by a bounded
// per-shard HandoffQueue. The caller's role shrinks to radix-scattering the
// batch into a generation arena and enqueueing one slice task per shard —
// so partitioning batch N+1 overlaps shard application of batch N, and no
// thread ever waits at a barrier on the ingest path. Mini-batches at or
// below Config::sharded_small_batch_threshold that land wholly on one shard
// (always true for batch=1) skip the partition and hand the slice to the
// owning worker directly.
//
// Concurrency discipline: single writer per shard, many readers. Only shard
// s's worker mutates shard s's store, holding the shard's rwlock exclusively
// per task; readers either (a) call a draining accessor (num_edges, shard,
// find_edge — these wait for the shard's queue epoch to settle, preserving
// the old synchronous semantics for existing callers), or (b) take a
// read_snapshot() pin — drain one shard and hold its rwlock shared — so
// analytics on shard A proceed while shards B.. ingest. The queue's
// enqueued/completed counters are the per-shard epoch: a reader that
// observed completed == enqueued (acquire) sees every store write those
// tasks made (release on completion).
//
// Failure semantics: per-shard application stays transactional (the store's
// own insert_batch/delete_batch machinery), but outcomes are asynchronous.
// Each worker latches its first non-Ok Status; flush() drains the pipeline,
// returns the first latched failure in shard-index order ("shard N: "
// prefixed, as before) and re-arms the latches. Shards fail independently:
// a non-Ok flush means the failing shards rolled their slices back while
// the others committed — cross-shard atomicity is still not provided.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "gen/batch_prep.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace gt::core {

namespace detail {
/// Shards the calling thread currently holds ReadPins on, identified by
/// shard object address. Registration is what lets the drain/flush paths
/// detect a self-deadlock (waiting on a shard whose worker is blocked by
/// this very thread's pin) and refuse instead of hanging. A flat vector:
/// pins are scarce — at most a handful per thread — so linear scans beat
/// any set.
inline thread_local std::vector<const void*> tl_pinned_shards;
}  // namespace detail

/// Pipeline knobs. Fields left at kFromConfig resolve from the store
/// config when it carries the sharded_* members (gt::core::Config does),
/// else to the built-in defaults — so STINGER shards pick up sane values
/// without growing config fields.
struct ShardedOptions {
    static constexpr std::size_t kFromConfig = static_cast<std::size_t>(-1);

    /// Single-shard mini-batches at or below this size bypass partitioning.
    std::size_t small_batch_threshold = kFromConfig;
    /// Bounded per-shard queue depth, in hand-off tasks.
    std::size_t queue_depth = kFromConfig;
    /// Optional metrics sink: per-shard `shard.<i>.queue_depth` gauges, the
    /// `shard.handoff_us` latency histogram and the `shard.tasks_applied`
    /// counter land here.
    obs::Registry* registry = nullptr;
};

template <typename Store>
class ShardedStore {
    struct Shard;

public:
    /// Creates `shards` instances, each with a persistent worker thread.
    /// `factory()` returns the *configuration* each store is constructed
    /// from (stores are built in place — GraphTinker is intentionally
    /// non-movable).
    template <typename Factory>
    explicit ShardedStore(std::size_t shards, Factory&& factory,
                          ShardedOptions opts = {}) {
        resolve_options(opts, factory);
        const std::size_t n = shards == 0 ? 1 : shards;
        for (auto& gen : gens_) {
            gen = std::make_unique<Generation>();
        }
        shards_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            shards_.push_back(std::make_unique<Shard>(
                std::make_unique<Store>(factory()), queue_depth_));
        }
        bind_metrics(opts.registry);
        for (std::size_t i = 0; i < n; ++i) {
            shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
        }
    }

    /// Stops the queues and joins the workers. pop_some keeps returning
    /// queued tasks after stop() until the ring is empty, so destruction
    /// drains: every enqueued batch is applied before the stores die.
    ~ShardedStore() {
        for (auto& sh : shards_) {
            sh->queue.stop();
        }
        for (auto& sh : shards_) {
            if (sh->worker.joinable()) {
                sh->worker.join();
            }
        }
    }

    ShardedStore(const ShardedStore&) = delete;
    ShardedStore& operator=(const ShardedStore&) = delete;

    /// Owning shard of a source id. Division-free for any shard count: the
    /// mixed hash is mapped into [0, shards) with a multiply-shift (Lemire's
    /// fastmod), which preserves the hash's uniformity without requiring a
    /// power-of-two count. Safe for shards == 0 (returns 0).
    [[nodiscard]] static std::size_t shard_of(VertexId src,
                                              std::size_t shards) noexcept {
        if (shards <= 1) {
            return 0;
        }
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(mix32(src)) * shards) >> 32);
    }

    /// Scatters the batch and enqueues one slice per owning shard; the
    /// shard workers apply the slices transactionally, asynchronously.
    /// Always returns Ok — per-shard outcomes are latched by the workers
    /// and surfaced by flush() / first_shard_failure(). Mutating calls
    /// (insert/delete/apply/flush) must come from one thread at a time;
    /// concurrent *readers* are welcome via read_snapshot().
    [[nodiscard]] Status insert_batch(std::span<const Edge> batch) {
        enqueue_edges(batch, Op::InsertEdges);
        return Status::success();
    }

    /// Batched delete with the same pipelined application and per-shard
    /// failure latching as insert_batch.
    [[nodiscard]] Status delete_batch(std::span<const Edge> batch) {
        enqueue_edges(batch, Op::DeleteEdges);
        return Status::success();
    }

    /// Outcome of apply_updates: how much of the raw batch pre-combining
    /// folded away before any shard saw it.
    struct ApplyResult {
        std::size_t applied = 0;        // updates that reached the queues
        std::size_t duplicates = 0;     // folded into their survivor
        std::size_t cancellations = 0;  // insert+delete pairs dropped
    };

    /// Applies a mixed insert/delete stream: the batch is pre-combined with
    /// prepare_batch (dedup per pair, optional insert+delete cancellation)
    /// *before* sharding, then partitioned and applied per shard in stream
    /// order. See prepare_batch for `assume_new_edges`.
    ApplyResult apply_updates(std::span<const Update> raw,
                              bool assume_new_edges = false) {
        const PreparedBatch prepared = prepare_batch(raw, assume_new_edges);
        const std::span<const Update> ups(prepared.updates);
        if (!ups.empty()) {
            Generation& gen = acquire_generation(0, ups.size());
            const std::size_t base = gen.updates.size();
            const std::size_t single = single_shard_of(ups);
            if (single != kMixedShards) {
                gen.updates.insert(gen.updates.end(), ups.begin(), ups.end());
                submit(single, make_task(Op::ApplyUpdates, gen,
                                         gen.updates.data() + base,
                                         ups.size()));
            } else {
                partition_into(ups, gen.updates,
                               [](const Update& u) { return u.edge.src; });
                for (std::size_t s = 0; s < shards_.size(); ++s) {
                    const std::size_t len =
                        slice_offsets_[s + 1] - slice_offsets_[s];
                    if (len != 0) {
                        submit(s, make_task(Op::ApplyUpdates, gen,
                                            gen.updates.data() + base +
                                                slice_offsets_[s],
                                            len));
                    }
                }
            }
        }
        return ApplyResult{prepared.updates.size(), prepared.duplicates,
                           prepared.cancellations};
    }

    // ---- barriers & failure surfacing ---------------------------------

    /// Blocks until every enqueued task has been applied on every shard.
    /// A shard the calling thread holds a ReadPin on is *skipped* (with a
    /// debug assert): its worker cannot finish while the pin blocks it, so
    /// waiting would self-deadlock — and the pin already froze that shard
    /// at a settled epoch, so skipping keeps reads-through-the-pin
    /// consistent. Full completeness guarantees require no caller pins;
    /// flush()/first_shard_failure() enforce that with a typed error.
    void drain() const {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (pinned_by_caller(s)) {
                assert(!"ShardedStore::drain() from a thread holding a "
                        "ReadPin on that shard — would self-deadlock");
                continue;
            }
            shards_[s]->queue.wait_idle();
        }
    }

    /// True when the calling thread holds a live ReadPin on shard `s` of
    /// this store (thread-local registration by ReadPin).
    [[nodiscard]] bool pinned_by_caller(std::size_t s) const noexcept {
        const auto& pins = detail::tl_pinned_shards;
        return std::find(pins.begin(), pins.end(),
                         static_cast<const void*>(shards_[s].get())) !=
               pins.end();
    }

    /// Drains, then returns the first latched per-shard failure in
    /// shard-index order (message prefixed "shard N: ", Ok when every slice
    /// committed) and re-arms the latches for the next window of batches.
    /// Refused with WouldDeadlock (detail = shard index) when the calling
    /// thread holds a ReadPin on any shard: the pinned worker cannot drain
    /// while the pin blocks it, and a partial flush would silently re-arm
    /// latches it never read. Release the pin first.
    [[nodiscard]] Status flush() {
        if (Status st = refuse_if_caller_pinned("flush()"); !st.ok()) {
            return st;
        }
        drain();
        Status first = Status::success();
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            Shard& sh = *shards_[s];
            if (sh.failed && first.ok()) {
                first = prefixed(s, sh.failure);
            }
            sh.failed = false;
            sh.failure = Status::success();
        }
        return first;
    }

    /// Drains and reports like flush(), but leaves the latches armed —
    /// repeated calls keep returning the same first failure until flush()
    /// clears it. Refused with WouldDeadlock under a caller-held ReadPin,
    /// like flush().
    [[nodiscard]] Status first_shard_failure() const {
        if (Status st = refuse_if_caller_pinned("first_shard_failure()");
            !st.ok()) {
            return st;
        }
        drain();
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (shards_[s]->failed) {
                return prefixed(s, shards_[s]->failure);
            }
        }
        return Status::success();
    }

    // ---- reads --------------------------------------------------------

    /// Shared-lock hold on one drained shard: the single-writer/many-reader
    /// side of the discipline. While a pin is live, the pinned shard's
    /// worker blocks before its next task and every other shard ingests
    /// freely — analytics on shard A overlap writes to shards B.. .
    class ReadPin {
    public:
        ReadPin(const ReadPin&) = delete;
        ReadPin& operator=(const ReadPin&) = delete;

        ~ReadPin() {
            auto& pins = detail::tl_pinned_shards;
            const auto it = std::find(pins.rbegin(), pins.rend(), key_);
            if (it != pins.rend()) {
                pins.erase(std::next(it).base());
            }
        }

        [[nodiscard]] const Store& store() const noexcept { return store_; }
        const Store* operator->() const noexcept { return &store_; }
        const Store& operator*() const noexcept { return store_; }

    private:
        friend class ShardedStore;
        explicit ReadPin(const Shard& sh)
            : store_(*sh.store), key_(&sh), lock_(sh.rw) {
            detail::tl_pinned_shards.push_back(key_);
        }

        const Store& store_;
        const void* key_;
        SharedLockGuard lock_;
    };

    /// Drains shard `s` and pins it for reading. Returns by RVO (ReadPin is
    /// not movable); hold it only as long as the read lasts. Re-pinning a
    /// shard this thread already holds pinned skips the drain (waiting
    /// would self-deadlock) and debug-asserts — nest pins only by accident,
    /// never by design.
    [[nodiscard]] ReadPin read_snapshot(std::size_t s) const {
        if (pinned_by_caller(s)) {
            assert(!"read_snapshot() on a shard the calling thread "
                    "already pins");
        } else {
            shards_[s]->queue.wait_idle();
        }
        return ReadPin(*shards_[s]);
    }

    /// Whole-store pin: every shard drained, every rwlock held shared for
    /// the pin's lifetime. This is the consistent-cut read the service
    /// layer's query pool wants — cross-shard aggregates (counts, traversal
    /// over all intervals) see one settled epoch per shard while writers to
    /// *no* shard can slip in between the per-shard reads. Ingest resumes
    /// the moment the pin drops. Must not be taken by a thread already
    /// holding any per-shard pin (the drain would self-deadlock).
    class ReadPinAll {
    public:
        ReadPinAll(const ReadPinAll&) = delete;
        ReadPinAll& operator=(const ReadPinAll&) = delete;

        ~ReadPinAll() GT_NO_THREAD_SAFETY_ANALYSIS {
            auto& pins = detail::tl_pinned_shards;
            for (auto it = shards_->rbegin(); it != shards_->rend(); ++it) {
                (*it)->rw.unlock_shared();
                const auto p =
                    std::find(pins.rbegin(), pins.rend(), it->get());
                if (p != pins.rend()) {
                    pins.erase(std::next(p).base());
                }
            }
        }

        /// Shard `i`'s store, frozen at the pinned epoch (mirrors
        /// ReadPin::store(); the pin constructor already drained, so no
        /// further barrier is needed here).
        [[nodiscard]] const Store& store(std::size_t i) const noexcept {
            return *(*shards_)[i]->store;
        }
        [[nodiscard]] std::size_t num_shards() const noexcept {
            return shards_->size();
        }
        /// Cross-shard edge total at the pinned cut.
        [[nodiscard]] EdgeCount edge_total() const {
            EdgeCount total = 0;
            for (std::size_t i = 0; i < shards_->size(); ++i) {
                total += store(i).num_edges();
            }
            return total;
        }

    private:
        friend class ShardedStore;
        explicit ReadPinAll(
            const std::vector<std::unique_ptr<Shard>>& shards)
            GT_NO_THREAD_SAFETY_ANALYSIS : shards_(&shards) {
            for (const auto& sh : shards) {
                sh->rw.lock_shared();
                detail::tl_pinned_shards.push_back(sh.get());
            }
        }

        const std::vector<std::unique_ptr<Shard>>* shards_;
    };

    /// Drains all shards, then pins them all shared (index order; readers
    /// never block each other, so pin order only matters versus writers and
    /// those are per-shard). Returns by RVO — ReadPinAll is not movable.
    [[nodiscard]] ReadPinAll read_snapshot_all() const {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (pinned_by_caller(s)) {
                assert(!"read_snapshot_all() while this thread already "
                        "pins a shard");
                continue;
            }
            shards_[s]->queue.wait_idle();
        }
        return ReadPinAll(shards_);
    }

    /// Per-shard version counter: the number of hand-off tasks shard `s`
    /// has fully applied (acquire). Advances monotonically; equality with
    /// two reads brackets a quiescent window for that shard.
    [[nodiscard]] std::uint64_t shard_epoch(std::size_t s) const noexcept {
        return shards_[s]->queue.completed();
    }

    [[nodiscard]] EdgeCount num_edges() const {
        drain();
        EdgeCount total = 0;
        for (const auto& sh : shards_) {
            total += sh->store->num_edges();
        }
        return total;
    }

    [[nodiscard]] std::size_t num_shards() const noexcept {
        return shards_.size();
    }

    /// Drains shard `i` and returns it. The reference is safe to use until
    /// the next mutating call routes work to this shard; for reads that
    /// must overlap ingest, use read_snapshot() instead. A shard the
    /// caller already pins is returned without waiting (the pin froze it
    /// at a settled epoch; waiting would self-deadlock).
    [[nodiscard]] Store& shard(std::size_t i) {
        if (!pinned_by_caller(i)) {
            shards_[i]->queue.wait_idle();
        }
        return *shards_[i]->store;
    }
    [[nodiscard]] const Store& shard(std::size_t i) const {
        if (!pinned_by_caller(i)) {
            shards_[i]->queue.wait_idle();
        }
        return *shards_[i]->store;
    }

    /// Finds the edge in its owning shard (draining only that shard, or
    /// skipping the wait when the caller already pins it).
    [[nodiscard]] auto find_edge(VertexId src, VertexId dst) const {
        const std::size_t s = shard_of(src, shards_.size());
        if (!pinned_by_caller(s)) {
            shards_[s]->queue.wait_idle();
        }
        return shards_[s]->store->find_edge(src, dst);
    }

    /// Refreshes the pipeline gauges into the bound registry. Drains first
    /// so the per-shard stores are quiescent and the epoch gauges describe
    /// one consistent point; queue-depth gauges therefore read the
    /// post-drain backlog (zero) — their live values stream in at push
    /// time.
    void telemetry() {
        drain();
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            Shard& sh = *shards_[s];
            if (sh.depth_gauge != nullptr) {
                sh.depth_gauge->set(static_cast<double>(sh.queue.depth()));
            }
        }
    }

private:
    enum class Op : std::uint8_t { InsertEdges, DeleteEdges, ApplyUpdates };

    /// One hand-off: a contiguous slice of a generation arena plus the
    /// operation to apply it with. Carries raw pointers (stable — the
    /// arena never reallocates while referenced) so the worker never
    /// touches the producer-side vectors.
    struct Task {
        Op op = Op::InsertEdges;
        std::uint32_t gen = 0;
        std::size_t count = 0;
        const Edge* edges = nullptr;
        const Update* updates = nullptr;
        std::uint64_t enqueue_ns = 0;
    };

    /// Arena one or more partitioned batches live in while their slice
    /// tasks are in flight. `pending` counts referencing tasks; the
    /// producer appends only while it holds the generation open and only
    /// within reserved capacity, so worker-side slice reads never race a
    /// reallocation. A sealed generation with pending == 0 is recyclable.
    struct Generation {
        std::vector<Edge> edges;
        std::vector<Update> updates;
        std::atomic<std::uint64_t> pending{0};
        std::atomic<bool> sealed{true};
    };

    struct Shard {
        Shard(std::unique_ptr<Store> st, std::size_t depth)
            : store(std::move(st)), queue(depth) {}

        std::unique_ptr<Store> store;
        HandoffQueue<Task> queue;
        /// Writer: the shard worker, exclusively per task. Readers: pins.
        /// Mutable so const read paths can pin.
        mutable SharedMutex rw;
        /// First non-Ok outcome since the last flush(). Written only by the
        /// shard worker (before it publishes completion), read/cleared only
        /// after a drain — the queue's completion epoch orders the two, so
        /// no lock is needed.
        Status failure;
        bool failed = false;
        obs::Gauge* depth_gauge = nullptr;
        std::thread worker;
    };

    /// Generations in rotation. Three is the minimum that pipelines: one
    /// being applied, one being filled, one of slack so a slow shard does
    /// not stall the partitioner immediately.
    static constexpr std::size_t kGenerations = 3;
    /// Fresh generations reserve at least this many slots so tiny batches
    /// amortize: at batch=1 one generation absorbs thousands of hand-offs
    /// before it seals.
    static constexpr std::size_t kGenMinSlots = 4096;
    /// Sentinel: no generation currently open for appends.
    static constexpr std::uint32_t kNoGen = ~std::uint32_t{0};
    /// single_shard_of result when the mini-batch spans shards.
    static constexpr std::size_t kMixedShards = static_cast<std::size_t>(-1);
    /// Worker-side bulk dequeue width: amortizes the queue lock over up to
    /// this many tiny tasks per wakeup.
    static constexpr std::size_t kMaxPopBatch = 64;

    template <typename Factory>
    void resolve_options(ShardedOptions& opts, Factory& factory) {
        std::size_t small = 64;
        std::size_t depth = 1024;
        if constexpr (requires {
                          factory().sharded_small_batch_threshold;
                          factory().sharded_queue_depth;
                      }) {
            const auto cfg = factory();
            small = cfg.sharded_small_batch_threshold;
            depth = cfg.sharded_queue_depth;
        }
        small_batch_ = opts.small_batch_threshold ==
                               ShardedOptions::kFromConfig
                           ? small
                           : opts.small_batch_threshold;
        queue_depth_ = opts.queue_depth == ShardedOptions::kFromConfig
                           ? depth
                           : opts.queue_depth;
        queue_depth_ = std::max<std::size_t>(queue_depth_, 1);
    }

    void bind_metrics(obs::Registry* registry) {
        if (registry == nullptr) {
            return;
        }
        handoff_us_ = &registry->histogram("shard.handoff_us");
        tasks_applied_ = &registry->counter("shard.tasks_applied");
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            shards_[s]->depth_gauge = &registry->gauge(
                "shard." + std::to_string(s) + ".queue_depth");
        }
    }

    [[nodiscard]] static std::uint64_t now_ns() noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    [[nodiscard]] static Status prefixed(std::size_t s, const Status& st) {
        Status out = st;
        out.message = "shard " + std::to_string(s) + ": " + out.message;
        return out;
    }

    /// WouldDeadlock (detail = shard index) when the calling thread holds
    /// a ReadPin on any shard of this store; Ok otherwise. The full-drain
    /// entry points call this before blocking.
    [[nodiscard]] Status refuse_if_caller_pinned(const char* what) const {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (pinned_by_caller(s)) {
                return Status{
                    StatusCode::WouldDeadlock,
                    std::string(what) +
                        " called from a thread holding a ReadPin on shard " +
                        std::to_string(s) +
                        " — the pinned worker cannot drain while the pin "
                        "blocks it; release the pin first",
                    s};
            }
        }
        return Status::success();
    }

    // ---- producer side (mutating API, externally serialized) -----------

    void enqueue_edges(std::span<const Edge> batch, Op op) {
        if (batch.empty()) {
            return;
        }
        Generation& gen = acquire_generation(batch.size(), 0);
        const std::size_t base = gen.edges.size();
        const std::size_t single = single_shard_of(batch);
        if (single != kMixedShards) {
            // Small-batch bypass (and the trivial one-shard layout): the
            // whole mini-batch is one slice for one worker — no counting
            // sort, no scatter.
            gen.edges.insert(gen.edges.end(), batch.begin(), batch.end());
            submit(single, make_task(op, gen, gen.edges.data() + base,
                                     batch.size()));
            return;
        }
        partition_into(batch, gen.edges,
                       [](const Edge& e) { return e.src; });
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const std::size_t len = slice_offsets_[s + 1] - slice_offsets_[s];
            if (len != 0) {
                submit(s, make_task(op, gen,
                                    gen.edges.data() + base +
                                        slice_offsets_[s],
                                    len));
            }
        }
    }

    /// The owning shard when the whole mini-batch maps to one shard and is
    /// small enough for the bypass (or there is only one shard);
    /// kMixedShards otherwise.
    template <typename T>
    [[nodiscard]] std::size_t single_shard_of(std::span<const T> batch) const {
        const std::size_t n = shards_.size();
        if (n == 1) {
            return 0;
        }
        if (batch.size() > small_batch_) {
            return kMixedShards;
        }
        const std::size_t first = shard_of(src_of(batch[0]), n);
        for (std::size_t i = 1; i < batch.size(); ++i) {
            if (shard_of(src_of(batch[i]), n) != first) {
                return kMixedShards;
            }
        }
        return first;
    }

    [[nodiscard]] static VertexId src_of(const Edge& e) noexcept {
        return e.src;
    }
    [[nodiscard]] static VertexId src_of(const Update& u) noexcept {
        return u.edge.src;
    }

    template <typename T>
    [[nodiscard]] Task make_task(Op op, Generation& gen, const T* data,
                                 std::size_t count) {
        Task t;
        t.op = op;
        t.gen = open_;
        t.count = count;
        if constexpr (std::is_same_v<T, Edge>) {
            t.edges = data;
        } else {
            t.updates = data;
        }
        // Hand-off latency sampling: the clock read costs more than the
        // queue push at batch=1, so stamp only every 64th submission.
        if (handoff_us_ != nullptr && ((++push_seq_ & 63U) == 0) &&
            obs::recording()) {
            t.enqueue_ns = now_ns();
        }
        (void)gen;
        return t;
    }

    /// Registers the task against its generation and hands it to shard
    /// `s`'s worker. The pending increment precedes the push so the worker
    /// can never drop the generation's refcount to zero early.
    void submit(std::size_t s, Task&& t) {
        gens_[t.gen]->pending.fetch_add(1, std::memory_order_relaxed);
        Shard& sh = *shards_[s];
        sh.queue.push(std::move(t));
        if (sh.depth_gauge != nullptr) {
            sh.depth_gauge->set(static_cast<double>(sh.queue.depth()));
        }
    }

    /// Returns a generation with room for the requested append, keeping
    /// the current one open while it fits (double buffering: the open
    /// generation fills while sealed ones are still being applied). Blocks
    /// — backpressure — when all generations still have tasks in flight.
    Generation& acquire_generation(std::size_t need_edges,
                                   std::size_t need_updates) {
        if (open_ != kNoGen) {
            Generation& gen = *gens_[open_];
            const bool fits =
                gen.edges.size() + need_edges <= gen.edges.capacity() &&
                gen.updates.size() + need_updates <= gen.updates.capacity();
            if (fits) {
                return gen;
            }
            gen.sealed.store(true, std::memory_order_release);
            open_ = kNoGen;
        }
        UniqueLock lock(gen_mutex_);
        for (;;) {
            for (std::size_t i = 0; i < gens_.size(); ++i) {
                Generation& gen = *gens_[i];
                if (gen.sealed.load(std::memory_order_relaxed) &&
                    gen.pending.load(std::memory_order_acquire) == 0) {
                    gen.sealed.store(false, std::memory_order_relaxed);
                    open_ = static_cast<std::uint32_t>(i);
                    lock.unlock();
                    // Safe to touch the vectors: no task references them.
                    gen.edges.clear();
                    gen.updates.clear();
                    if (need_edges != 0) {
                        gen.edges.reserve(
                            std::max(need_edges, kGenMinSlots));
                    }
                    if (need_updates != 0) {
                        gen.updates.reserve(
                            std::max(need_updates, kGenMinSlots));
                    }
                    return gen;
                }
            }
            gen_cv_.wait(lock);
        }
    }

    /// Serial two-pass counting partition of `batch` by source shard,
    /// appended to `arena` grouped by shard. slice_offsets_[s]..[s+1] are
    /// the resulting per-shard bounds *relative to the append base*.
    /// Serial on purpose: the old parallel partition needed a fork/join
    /// barrier, and the pipeline hides the partition behind the previous
    /// batch's application anyway.
    template <typename T, typename SrcOf>
    void partition_into(std::span<const T> batch, std::vector<T>& arena,
                        SrcOf&& src_key) {
        const std::size_t n = shards_.size();
        const std::size_t base = arena.size();
        arena.resize(base + batch.size());  // within reserved capacity
        slice_offsets_.assign(n + 1, 0);
        for (const T& item : batch) {
            ++slice_offsets_[shard_of(src_key(item), n) + 1];
        }
        for (std::size_t s = 0; s < n; ++s) {
            slice_offsets_[s + 1] += slice_offsets_[s];
        }
        cursors_.assign(slice_offsets_.begin(), slice_offsets_.end() - 1);
        T* out = arena.data() + base;
        for (const T& item : batch) {
            out[cursors_[shard_of(src_key(item), n)]++] = item;
        }
    }

    // ---- worker side ---------------------------------------------------

    void worker_loop(std::size_t s) {
        const std::string name = "gt-shard-" + std::to_string(s);
        set_current_thread_name(name.c_str());
        (void)pin_current_thread(s);
        std::vector<Task> tasks;
        tasks.reserve(kMaxPopBatch);
        while (shards_[s]->queue.pop_some(tasks, kMaxPopBatch)) {
            for (const Task& t : tasks) {
                apply_task(s, t);
            }
            if (tasks_applied_ != nullptr) {
                tasks_applied_->add(tasks.size());
            }
            shards_[s]->queue.note_completed(tasks.size());
            tasks.clear();
        }
    }

    void apply_task(std::size_t s, const Task& t) {
        Shard& sh = *shards_[s];
        if (handoff_us_ != nullptr && t.enqueue_ns != 0) {
            handoff_us_->record((now_ns() - t.enqueue_ns) / 1000);
        }
        Status st;
        {
            const LockGuard<SharedMutex> lock(sh.rw);
            switch (t.op) {
                case Op::InsertEdges:
                    st = apply_insert(*sh.store,
                                      std::span<const Edge>(t.edges,
                                                            t.count));
                    break;
                case Op::DeleteEdges:
                    st = apply_delete(*sh.store,
                                      std::span<const Edge>(t.edges,
                                                            t.count));
                    break;
                case Op::ApplyUpdates:
                    st = apply_update_slice(
                        *sh.store,
                        std::span<const Update>(t.updates, t.count));
                    break;
            }
        }
        if (!st.ok() && !sh.failed) {
            sh.failed = true;
            sh.failure = std::move(st);
        }
        release_generation(*gens_[t.gen]);
    }

    void release_generation(Generation& gen) {
        if (gen.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last reference: the producer may be waiting to recycle.
            {
                const LockGuard lock(gen_mutex_);
            }
            gen_cv_.notify_all();
        }
    }

    /// Store dispatch: native Status-returning batch API when present,
    /// bool/void batch API next, per-edge loop as the fallback. The
    /// fallback loop converts thrown allocation failures into the Status
    /// codes the latching path expects (native batch stores catch their
    /// own).
    [[nodiscard]] static Status apply_insert(Store& st,
                                             std::span<const Edge> part) {
        if constexpr (requires {
                          { st.insert_batch(part) } -> std::same_as<Status>;
                      }) {
            return st.insert_batch(part);
        } else if constexpr (requires { st.insert_batch(part); }) {
            (void)st.insert_batch(part);
            return Status::success();
        } else {
            try {
                for (const Edge& e : part) {
                    (void)st.insert_edge(e.src, e.dst, e.weight);
                }
            } catch (const fail::InjectedFault&) {
                return Status{StatusCode::FaultInjected,
                              "fault injected during shard insert"};
            } catch (const std::bad_alloc&) {
                return Status{StatusCode::ResourceExhausted,
                              "allocation failed during shard insert"};
            }
            return Status::success();
        }
    }

    [[nodiscard]] static Status apply_delete(Store& st,
                                             std::span<const Edge> part) {
        if constexpr (requires {
                          { st.delete_batch(part) } -> std::same_as<Status>;
                      }) {
            return st.delete_batch(part);
        } else if constexpr (requires { st.delete_batch(part); }) {
            (void)st.delete_batch(part);
            return Status::success();
        } else {
            try {
                for (const Edge& e : part) {
                    (void)st.delete_edge(e.src, e.dst);
                }
            } catch (const fail::InjectedFault&) {
                return Status{StatusCode::FaultInjected,
                              "fault injected during shard delete"};
            } catch (const std::bad_alloc&) {
                return Status{StatusCode::ResourceExhausted,
                              "allocation failed during shard delete"};
            }
            return Status::success();
        }
    }

    /// Per-edge application in stream order: the bool returns are
    /// "created"/"existed", which the update stream does not track.
    [[nodiscard]] static Status apply_update_slice(
        Store& st, std::span<const Update> part) {
        try {
            for (const Update& u : part) {
                if (u.kind == UpdateKind::Insert) {
                    (void)st.insert_edge(u.edge.src, u.edge.dst,
                                         u.edge.weight);
                } else {
                    (void)st.delete_edge(u.edge.src, u.edge.dst);
                }
            }
        } catch (const fail::InjectedFault&) {
            return Status{StatusCode::FaultInjected,
                          "fault injected during shard update"};
        } catch (const std::bad_alloc&) {
            return Status{StatusCode::ResourceExhausted,
                          "allocation failed during shard update"};
        }
        return Status::success();
    }

    // ---- members -------------------------------------------------------

    std::array<std::unique_ptr<Generation>, kGenerations> gens_;
    /// Guards generation recycling only (the producer's wait for a free
    /// generation); appends to the open generation are producer-private.
    Mutex gen_mutex_;
    CondVar gen_cv_;
    /// Index of the generation open for appends (producer-private).
    std::uint32_t open_ = kNoGen;

    std::vector<std::unique_ptr<Shard>> shards_;

    // Producer-side partition scratch; capacity reused across batches.
    std::vector<std::size_t> slice_offsets_;  // shard s: [s, s+1) rel. base
    std::vector<std::size_t> cursors_;        // scatter cursors

    std::size_t small_batch_ = 64;
    std::size_t queue_depth_ = 1024;
    std::uint64_t push_seq_ = 0;

    // Bound once at construction (obs hot-path discipline); null without a
    // registry.
    obs::Histogram* handoff_us_ = nullptr;
    obs::Counter* tasks_applied_ = nullptr;
};

}  // namespace gt::core
