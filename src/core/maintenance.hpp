// Maintenance & space reclamation for GraphTinker (DESIGN.md §3.5).
//
// Deletion leaves debris behind: delete-only mode accumulates tombstones
// (probe work stays proportional to the peak graph), delete-and-compact can
// strand sparse child edgeblocks under their parents, and the CAL chains
// keep scanning holes forever. The maintainer walks the store and undoes
// all three:
//
//   tombstone purge   delete-only trees whose tombstone fraction crosses
//                     Config::purge_tombstone_threshold are rebuilt in
//                     place (EdgeblockArray::rebuild_tree), restoring
//                     fresh-build Robin Hood probe distance and returning
//                     surplus blocks to the arena free list
//   TBH un-branching  when Robin Hood swapping is off, child subtrees whose
//                     edges fit the parent window that branched to them are
//                     merged back up (EdgeblockArray::unbranch), shrinking
//                     tree depth after delete waves
//   CAL compaction    once the hole fraction crosses
//                     Config::cal_compact_threshold, every group chain is
//                     rewritten dense (CoarseAdjacencyList::compact_chains)
//                     and emptied blocks return to the CAL free list; moved
//                     edges' owners are re-bound through set_cal_pos
//
// Two entry points: GraphTinker::maintain() sweeps everything, and
// GraphTinker::maintain_some(budget) runs a bounded slice that resumes
// round-robin across vertices — insert_batch/delete_batch call the latter
// automatically when Config::maintenance_budget_cells is non-zero, so
// reclamation cost is amortized over the update stream.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gt::core {

class GraphTinker;

/// What one maintenance run accomplished.
struct MaintenanceReport {
    std::size_t trees_examined = 0;       // vertex trees censused
    std::size_t trees_purged = 0;         // tombstone-purge rebuilds
    std::size_t trees_unbranched = 0;     // trees shrunk by un-branching
    std::size_t cells_moved = 0;          // edges relocated by purge/merge
    std::size_t tombstones_purged = 0;    // tombstones erased
    std::size_t eba_blocks_reclaimed = 0; // edgeblocks freed (net)
    std::size_t cal_holes_reclaimed = 0;  // CAL slots compacted away
    std::size_t cal_blocks_reclaimed = 0; // CAL blocks freed (net)
    /// False when a budgeted run stopped before visiting every vertex.
    bool complete = false;

    /// True when the run changed nothing (no purge, merge or compaction).
    [[nodiscard]] bool idle() const noexcept {
        return trees_purged == 0 && trees_unbranched == 0 &&
               cells_moved == 0 && tombstones_purged == 0 &&
               eba_blocks_reclaimed == 0 && cal_holes_reclaimed == 0 &&
               cal_blocks_reclaimed == 0;
    }

    MaintenanceReport& operator+=(const MaintenanceReport& o) noexcept {
        trees_examined += o.trees_examined;
        trees_purged += o.trees_purged;
        trees_unbranched += o.trees_unbranched;
        cells_moved += o.cells_moved;
        tombstones_purged += o.tombstones_purged;
        eba_blocks_reclaimed += o.eba_blocks_reclaimed;
        cal_holes_reclaimed += o.cal_holes_reclaimed;
        cal_blocks_reclaimed += o.cal_blocks_reclaimed;
        complete = complete && o.complete;
        return *this;
    }
};

/// Executes maintenance sweeps over a GraphTinker instance. Mutates the
/// store — same single-writer contract as inserts and deletes.
class Maintainer {
public:
    /// Full sweep: every vertex tree plus the CAL chains.
    static MaintenanceReport run(GraphTinker& graph);
    /// Bounded slice: stops once ~`budget_cells` edge-cells of work (census
    /// + relocation) have been spent, resuming where the last slice left
    /// off. The CAL compaction, when triggered, always runs whole — the
    /// sweep resets the hole fraction to zero, so it is self-amortizing.
    static MaintenanceReport run_budget(GraphTinker& graph,
                                        std::uint32_t budget_cells);

private:
    class Run;  // stateful single-run walk (maintenance.cpp)
};

}  // namespace gt::core
