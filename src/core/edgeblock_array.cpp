#include "core/edgeblock_array.hpp"

#include <algorithm>
#include <cassert>

#include "core/probe_kernel.hpp"
#include "util/failpoint.hpp"
#include "util/simd.hpp"

namespace {

/// Thread-local landing zone for a stats-deferral scope (see
/// EdgeblockArray::begin_stats_batch): while `target` points at an array's
/// resolved counter handles, that array's per-operation flushes accumulate
/// here in plain integers and hit the shared relaxed atomics once when the
/// scope closes.
struct DeferredStats {
    const gt::core::EbaMetrics* target = nullptr;
    int depth = 0;
    std::uint64_t cells = 0;
    std::uint64_t workblocks = 0;
    std::uint64_t swaps = 0;
    std::uint64_t branch_outs = 0;
};
thread_local DeferredStats g_deferred_stats;

/// Accumulates probe-work counters locally and flushes them through the
/// array's obs::Counter handles once on scope exit — one RMW per operation
/// instead of one per cell inspected. Under an open deferral scope for the
/// same array the flush lands in g_deferred_stats instead, so batched
/// ingest pays the atomic RMWs once per batch rather than once per edge.
/// When `probe_hist` is set, the operation's total probe distance (cells)
/// additionally lands in that histogram — sampled and gated, so the cost
/// with recording off is one predictable branch per op.
struct StatsFlush {
    const gt::core::EbaMetrics& m;
    gt::obs::Histogram* probe_hist = nullptr;
    std::uint64_t cells = 0;
    std::uint64_t workblocks = 0;
    std::uint64_t swaps = 0;
    std::uint64_t branch_outs = 0;
    ~StatsFlush() {
        if (probe_hist != nullptr) {
            probe_hist->record_sampled(cells);
        }
        if (g_deferred_stats.target == &m) {
            g_deferred_stats.cells += cells;
            g_deferred_stats.workblocks += workblocks;
            g_deferred_stats.swaps += swaps;
            g_deferred_stats.branch_outs += branch_outs;
            return;
        }
        if (cells != 0) {
            m.cells_probed->add(cells);
        }
        if (workblocks != 0) {
            m.workblocks_fetched->add(workblocks);
        }
        if (swaps != 0) {
            m.rhh_swaps->add(swaps);
        }
        if (branch_outs != 0) {
            m.branch_outs->add(branch_outs);
        }
    }
};

}  // namespace

namespace gt::core {

EdgeblockArray::EdgeblockArray(const Config& config, CoarseAdjacencyList* cal,
                               obs::Registry* registry)
    : pagewidth_(config.pagewidth),
      subblock_(config.subblock),
      workblock_(config.workblock),
      spb_(config.pagewidth / config.subblock),
      rhh_(config.rhh_active()),
      compact_delete_(config.deletion_mode == DeletionMode::DeleteAndCompact),
      kernel_ok_(config.subblock <= 64),
      words_per_block_((config.pagewidth + 63) / 64),
      cal_(cal),
      registry_(registry) {
    config.validate();
    if (registry_ == nullptr) {
        owned_registry_ = std::make_unique<obs::Registry>();
        registry_ = owned_registry_.get();
    }
    obs::Registry& r = *registry_;
    metrics_.cells_probed = &r.counter("eba.cells_probed");
    metrics_.workblocks_fetched = &r.counter("eba.workblocks_fetched");
    metrics_.rhh_swaps = &r.counter("eba.rhh_swaps");
    metrics_.branch_outs = &r.counter("eba.branch_outs");
    metrics_.compaction_moves = &r.counter("eba.compaction_moves");
    metrics_.blocks_freed = &r.counter("eba.blocks_freed");
    metrics_.trees_rebuilt = &r.counter("eba.trees_rebuilt");
    metrics_.tombstones_purged = &r.counter("eba.tombstones_purged");
    metrics_.unbranch_moves = &r.counter("eba.unbranch_moves");
    metrics_.find_probe_cells = &r.histogram("eba.find_probe_cells");
    metrics_.insert_probe_cells = &r.histogram("eba.insert_probe_cells");
    if (config.reserve_edges > 0) {
        // Pre-size the arena eagerly (resize, not reserve) so the bulk
        // fills and first-touch page faults happen here instead of on the
        // insert hot path. Hash-sharded subblocks branch out well before a
        // block fills (skewed streams average ~a quarter occupancy), hence
        // the 4-edges-per-pagewidth sizing; geometric growth in
        // allocate_block covers any tail.
        const std::size_t blocks = std::min<std::size_t>(
            static_cast<std::size_t>(config.reserve_edges * 4 / pagewidth_) +
                config.initial_vertices + 1,
            kNoBlock - 1);
        storage_blocks_ = static_cast<std::uint32_t>(blocks);
        cells_.resize(blocks * pagewidth_);
        children_.resize(blocks * spb_, kNoBlock);
        occupied_.resize(blocks, 0);
        masks_.resize(blocks * words_per_block_, 0);
        tomb_masks_.resize(blocks * words_per_block_, 0);
    }
}

void EdgeblockArray::grow_storage(std::uint32_t target) {
    // Resize order is failure-safe: if any resize throws, the vectors that
    // already grew merely carry unused slack (block_count_ and
    // storage_blocks_ are written only after every resize landed), so the
    // arena stays consistent.
    cells_.resize(static_cast<std::size_t>(target) * pagewidth_);
    children_.resize(static_cast<std::size_t>(target) * spb_, kNoBlock);
    occupied_.resize(target, 0);
    masks_.resize(static_cast<std::size_t>(target) * words_per_block_, 0);
    tomb_masks_.resize(static_cast<std::size_t>(target) * words_per_block_,
                       0);
    storage_blocks_ = target;
}

void EdgeblockArray::ensure_block_available() {
    if (!free_blocks_.empty() || block_count_ < storage_blocks_) {
        return;
    }
    GT_FAILPOINT("eba.grow");
    // Grow the arena by many blocks at once: branch-outs allocate
    // constantly on the insert hot path, and five small resizes per
    // block (each element-constructing one block's worth of cells)
    // cost more than one bulk fill amortized over the chunk.
    grow_storage(std::max({block_count_ + 1,
                           storage_blocks_ + storage_blocks_ / 2, 64U}));
}

std::uint32_t EdgeblockArray::allocate_block() {
    std::uint32_t block;
    if (!free_blocks_.empty()) {
        block = free_blocks_.back();
        free_blocks_.pop_back();
    } else {
        block = block_count_++;
        if (block_count_ > storage_blocks_) {
            // Growth fallback for paths that skipped the pre-flight
            // (maintenance rebuilds); the insert path always runs
            // ensure_block_available first, so it never grows here.
            grow_storage(std::max(
                {block_count_, storage_blocks_ + storage_blocks_ / 2, 64U}));
        }
        return block;  // freshly appended storage is already cleared
    }
    // Free-listed blocks were scrubbed clean by free_block (an invariant
    // the auditor enforces), so recycling is pop-and-go.
    assert(occupied_[block] == 0);
    return block;
}

void EdgeblockArray::free_block(std::uint32_t block) {
    assert(occupied_[block] == 0);
    // Scrub on the way out so free-listed blocks hold no stale cells, masks
    // or tombstones — allocate_block recycles them without re-clearing, and
    // the auditor checks reclaimed blocks are genuinely empty.
    const std::size_t base = static_cast<std::size_t>(block) * pagewidth_;
    for (std::uint32_t i = 0; i < pagewidth_; ++i) {
        cells_[base + i] = EdgeCell{};
    }
    const std::size_t mbase =
        static_cast<std::size_t>(block) * words_per_block_;
    for (std::uint32_t w = 0; w < words_per_block_; ++w) {
        masks_[mbase + w] = 0;
        tomb_masks_[mbase + w] = 0;
    }
    free_blocks_.push_back(block);
    metrics_.blocks_freed->inc();
}

void EdgeblockArray::free_subtree(std::uint32_t block) {
    for (std::uint32_t s = 0; s < spb_; ++s) {
        const std::uint32_t c = child(block, s);
        if (c != kNoBlock) {
            free_subtree(c);
            child(block, s) = kNoBlock;
        }
    }
    free_block(block);
}

bool EdgeblockArray::subtree_is_empty(std::uint32_t block) const {
    if (occupied_[block] != 0) {
        return false;
    }
    for (std::uint32_t s = 0; s < spb_; ++s) {
        if (child(block, s) != kNoBlock) {
            return false;  // descendants were pruned eagerly; conservative
        }
    }
    return true;
}

void EdgeblockArray::begin_stats_batch() const noexcept {
    if (g_deferred_stats.depth++ == 0) {
        g_deferred_stats.target = &metrics_;
    }
}

void EdgeblockArray::end_stats_batch() const noexcept {
    if (--g_deferred_stats.depth != 0) {
        return;
    }
    if (g_deferred_stats.target != nullptr) {
        const EbaMetrics& m = *g_deferred_stats.target;
        if (g_deferred_stats.cells != 0) {
            m.cells_probed->add(g_deferred_stats.cells);
        }
        if (g_deferred_stats.workblocks != 0) {
            m.workblocks_fetched->add(g_deferred_stats.workblocks);
        }
        if (g_deferred_stats.swaps != 0) {
            m.rhh_swaps->add(g_deferred_stats.swaps);
        }
        if (g_deferred_stats.branch_outs != 0) {
            m.branch_outs->add(g_deferred_stats.branch_outs);
        }
    }
    g_deferred_stats = DeferredStats{};
}

std::optional<EdgeblockArray::Located> EdgeblockArray::locate(
    std::uint32_t top, VertexId dst) const {
    StatsFlush flush{metrics_, metrics_.find_probe_cells};
    std::uint32_t block = top;
    std::uint32_t level = 0;
    while (block != kNoBlock) {
        const std::uint32_t sb = sb_of(dst, level);
        const std::uint32_t sb_base = sb * subblock_;
        if (kernel_ok_) {
            // Bit-parallel FIND: one SIMD dst compare over the subblock plus
            // the occupancy/tombstone windows decide found/absent/descend
            // without a per-cell walk (see core/probe_kernel.hpp).
            const WindowBits bits = window_bits(block, sb_base);
            const SubblockWindow w{
                &cells_[static_cast<std::size_t>(block) * pagewidth_ +
                        sb_base],
                subblock_, bits.occ, bits.tomb};
            const FindStep step =
                rhh_ ? find_step<kProbeKernelSimd>(w, home_of(dst, level),
                                                   dst)
                     : find_step_full<kProbeKernelSimd>(w, dst);
            flush.cells += step.scanned;
            flush.workblocks += (step.scanned + workblock_ - 1) / workblock_;
            if (step.kind == FindStep::Kind::Found) {
                return Located{block, sb, sb_base + step.slot, level};
            }
            if (step.kind == FindStep::Kind::Absent) {
                return std::nullopt;
            }
        } else if (rhh_) {
            // Probe-order scan with Robin Hood early exit. An EMPTY cell on
            // the probe path proves the key is absent at this level *and*
            // below: had the key ever been pushed deeper, this window was
            // congested at that moment, and delete-only mode never turns an
            // occupied cell back into EMPTY (deletes tombstone).
            const std::uint32_t home = home_of(dst, level);
            std::uint32_t scanned = 0;
            for (std::uint32_t d = 0; d < subblock_; ++d) {
                const std::uint32_t slot =
                    sb_base + ((home + d) & (subblock_ - 1));
                const EdgeCell& c = cell(block, slot);
                ++scanned;
                if (c.state == CellState::Empty) {
                    flush.cells += scanned;
                    flush.workblocks += (scanned + workblock_ - 1) / workblock_;
                    return std::nullopt;
                }
                if (c.state == CellState::Occupied && c.dst == dst) {
                    flush.cells += scanned;
                    flush.workblocks += (scanned + workblock_ - 1) / workblock_;
                    return Located{block, sb, slot, level};
                }
            }
            flush.cells += scanned;
            flush.workblocks += subblock_ / workblock_;
        } else {
            // Compact-delete mode refills holes out of refill order, so the
            // whole subblock window must be inspected.
            flush.workblocks += subblock_ / workblock_;
            flush.cells += subblock_;
            bool found = false;
            std::uint32_t where = 0;
            for (std::uint32_t off = 0; off < subblock_; ++off) {
                const EdgeCell& c = cell(block, sb_base + off);
                if (c.state == CellState::Occupied && c.dst == dst) {
                    found = true;
                    where = sb_base + off;
                    break;
                }
            }
            if (found) {
                return Located{block, sb, where, level};
            }
        }
        block = child(block, sb);
        ++level;
    }
    return std::nullopt;
}

std::optional<Weight> EdgeblockArray::find(std::uint32_t top,
                                           VertexId dst) const {
    if (const auto loc = locate(top, dst)) {
        return cell(loc->block, loc->slot).weight;
    }
    return std::nullopt;
}

EdgeblockArray::InsertResult EdgeblockArray::insert(
    std::uint32_t& top, VertexId dst, Weight weight,
    std::uint32_t new_cal_pos) {
    const ProbeResult probe = probe_insert(top, dst, weight);
    switch (probe.kind) {
        case ProbeResult::Kind::Duplicate:
            return InsertResult{false, probe.cal_pos};
        case ProbeResult::Kind::PlaceAt:
            place_at(probe.where, dst, weight, probe.probe, new_cal_pos);
            if (cal_ != nullptr && new_cal_pos != kNoCalPos) {
                cal_->rebind(new_cal_pos, probe.where);
            }
            return InsertResult{true, kNoCalPos};
        case ProbeResult::Kind::Absent:
            insert_new(top, dst, weight, new_cal_pos, probe.resume_block,
                       probe.resume_level);
            return InsertResult{true, kNoCalPos};
    }
    return InsertResult{};  // unreachable
}

EdgeblockArray::ProbeResult EdgeblockArray::probe_insert(std::uint32_t& top,
                                                         VertexId dst,
                                                         Weight weight) {
    StatsFlush flush{metrics_, metrics_.insert_probe_cells};
    if (top == kNoBlock) {
        top = allocate_block();
        const std::uint32_t sb = sb_of(dst, 0);
        const std::uint32_t home = home_of(dst, 0);
        ++flush.cells;
        return ProbeResult{ProbeResult::Kind::PlaceAt, kNoCalPos,
                           CellRef{top, sb * subblock_ + home}, 0};
    }
    if (!rhh_) {
        // Compact-delete mode refills holes out of probe order, so the
        // EMPTY-exit shortcut is unsound there; fall back to FIND + INSERT.
        if (const auto loc = locate(top, dst)) {
            EdgeCell& c = cell(loc->block, loc->slot);
            const Weight prev = c.weight;
            c.weight = weight;
            ProbeResult dup{ProbeResult::Kind::Duplicate, c.cal_pos,
                            CellRef{}, 0};
            dup.prev_weight = prev;
            return dup;
        }
        return ProbeResult{ProbeResult::Kind::Absent, kNoCalPos, CellRef{},
                           0};
    }
    std::uint32_t block = top;
    std::uint32_t level = 0;
    // A tombstone or Robin Hood swap point earlier on the probe path means
    // insertion belongs there rather than at a later EMPTY cell; the full
    // INSERT cascade handles those (rarer) cases. The first such point (or
    // the deepest block when the walk exhausts the tree) is handed back as
    // the cascade's resume point so it need not re-walk the levels above,
    // which are full windows with nothing for it to do.
    bool earlier_candidate = false;
    std::uint32_t resume_block = top;
    std::uint32_t resume_level = 0;
    if (kernel_ok_) {
        // Bit-parallel fused FIND/INSERT (see core/probe_kernel.hpp):
        // duplicate and first-EMPTY detection run on the subblock's masks
        // and one SIMD dst compare per level.
        while (block != kNoBlock) {
            const std::uint32_t sb = sb_of(dst, level);
            const std::uint32_t sb_base = sb * subblock_;
            const WindowBits bits = window_bits(block, sb_base);
            const SubblockWindow w{
                &cells_[static_cast<std::size_t>(block) * pagewidth_ +
                        sb_base],
                subblock_, bits.occ, bits.tomb};
            const ProbeStep step =
                probe_step<kProbeKernelSimd>(w, home_of(dst, level), dst);
            flush.cells += step.scanned;
            flush.workblocks += (step.scanned + workblock_ - 1) / workblock_;
            if (step.kind == ProbeStep::Kind::Duplicate) {
                EdgeCell& c = cell(block, sb_base + step.slot);
                const Weight prev = c.weight;
                c.weight = weight;
                ProbeResult dup{ProbeResult::Kind::Duplicate, c.cal_pos,
                                CellRef{}, 0};
                dup.prev_weight = prev;
                return dup;
            }
            if (!earlier_candidate) {
                if (step.candidate) {
                    earlier_candidate = true;
                    resume_block = block;
                    resume_level = level;
                }
            }
            if (step.kind == ProbeStep::Kind::Empty) {
                if (!earlier_candidate) {
                    return ProbeResult{
                        ProbeResult::Kind::PlaceAt, kNoCalPos,
                        CellRef{block, sb_base + step.slot},
                        static_cast<std::uint16_t>(step.dist)};
                }
                return ProbeResult{ProbeResult::Kind::Absent, kNoCalPos,
                                   CellRef{}, 0, resume_block, resume_level};
            }
            if (!earlier_candidate) {
                // Full window, nothing reusable: the cascade would cross
                // this level verbatim, so keep the resume point below it.
                resume_block = block;
                resume_level = level;
            }
            block = child(block, sb);
            ++level;
        }
        return ProbeResult{ProbeResult::Kind::Absent, kNoCalPos, CellRef{},
                           0, resume_block, resume_level};
    }
    while (block != kNoBlock) {
        const std::uint32_t sb = sb_of(dst, level);
        const std::uint32_t sb_base = sb * subblock_;
        const std::uint32_t home = home_of(dst, level);
        for (std::uint32_t d = 0; d < subblock_; ++d) {
            const std::uint32_t slot =
                sb_base + ((home + d) & (subblock_ - 1));
            EdgeCell& c = cell(block, slot);
            ++flush.cells;
            if (c.state == CellState::Empty) {
                // Key absent at this level and every level below (see
                // locate() for the invariant).
                if (!earlier_candidate) {
                    return ProbeResult{ProbeResult::Kind::PlaceAt, kNoCalPos,
                                       CellRef{block, slot},
                                       static_cast<std::uint16_t>(d)};
                }
                return ProbeResult{ProbeResult::Kind::Absent, kNoCalPos,
                                   CellRef{}, 0, resume_block, resume_level};
            }
            if (c.state == CellState::Tombstone) {
                if (!earlier_candidate) {
                    earlier_candidate = true;
                    resume_block = block;
                    resume_level = level;
                }
                continue;
            }
            if (c.dst == dst) {
                const Weight prev = c.weight;
                c.weight = weight;
                ProbeResult dup{ProbeResult::Kind::Duplicate, c.cal_pos,
                                CellRef{}, 0};
                dup.prev_weight = prev;
                return dup;
            }
            if (c.probe < d && !earlier_candidate) {
                earlier_candidate = true;  // RHH would displace here
                resume_block = block;
                resume_level = level;
            }
        }
        flush.workblocks += subblock_ / workblock_;
        if (!earlier_candidate) {
            resume_block = block;
            resume_level = level;
        }
        block = child(block, sb);
        ++level;
    }
    return ProbeResult{ProbeResult::Kind::Absent, kNoCalPos, CellRef{}, 0,
                       resume_block, resume_level};
}

void EdgeblockArray::insert_new(std::uint32_t& top, VertexId dst,
                                Weight weight, std::uint32_t new_cal_pos,
                                std::uint32_t start_block,
                                std::uint32_t start_level) {
    if (top == kNoBlock) {
        top = allocate_block();
        start_block = kNoBlock;
    }
    // INSERT mode: Robin Hood within the subblock, Tree-Based Hashing
    // descent on congestion. `carry` is the floating edge; after a swap it
    // becomes the displaced resident. Every element placed into a cell has
    // its CAL copy re-bound to the new location — the new edge included,
    // since it carries `new_cal_pos` from the start. When the caller's
    // probe proved the levels above `start_block` are full windows with no
    // tombstone and no swap point, the cascade resumes there directly.
    StatsFlush flush{metrics_, metrics_.insert_probe_cells};
    std::uint32_t block = start_block == kNoBlock ? top : start_block;
    std::uint32_t level = start_block == kNoBlock ? 0 : start_level;
    EdgeCell carry{dst, weight, new_cal_pos, 0, CellState::Occupied};
    for (;;) {
        const std::uint32_t sb = sb_of(carry.dst, level);
        const std::uint32_t sb_base = sb * subblock_;
        std::uint32_t home = home_of(carry.dst, level);
        std::uint32_t dist = carry.probe;
        bool placed = false;
        while (dist < subblock_) {
            const std::uint32_t slot =
                sb_base + ((home + dist) & (subblock_ - 1));
            EdgeCell& resident = cell(block, slot);
            ++flush.cells;
            if (resident.state != CellState::Occupied) {
                carry.probe = static_cast<std::uint16_t>(dist);
                resident = carry;
                ++occupied_[block];
                set_occupancy(block, slot, true);
                set_tombstone(block, slot, false);
                if (cal_ != nullptr && resident.cal_pos != kNoCalPos) {
                    cal_->rebind(resident.cal_pos, CellRef{block, slot});
                }
                placed = true;
                break;
            }
            if (rhh_ && resident.probe < dist) {
                // Rob the rich: the floater takes this cell, the richer
                // resident is displaced and continues probing.
                carry.probe = static_cast<std::uint16_t>(dist);
                std::swap(resident, carry);
                ++flush.swaps;
                if (cal_ != nullptr && resident.cal_pos != kNoCalPos) {
                    cal_->rebind(resident.cal_pos, CellRef{block, slot});
                }
                // Continue as the displaced edge: same subblock (everything
                // here hashed to it), but its own home offset and probe.
                home = home_of(carry.dst, level);
                dist = carry.probe;
            }
            ++dist;
        }
        if (placed) {
            break;
        }
        // Subblock congested: branch out (Tree-Based Hashing). NB: allocate
        // first — allocate_block() may reallocate children_, so the child
        // slot must be re-resolved afterwards.
        std::uint32_t down = child(block, sb);
        if (down == kNoBlock) {
            down = allocate_block();
            child(block, sb) = down;
            ++flush.branch_outs;
        }
        block = down;
        ++level;
        carry.probe = 0;
    }
}

bool EdgeblockArray::extract_deepest(std::uint32_t block, EdgeCell& out) {
    // Descend first: the victim must come from the deepest populated block so
    // compaction shortens probe paths.
    for (std::uint32_t s = 0; s < spb_; ++s) {
        std::uint32_t& c = child(block, s);
        if (c == kNoBlock) {
            continue;
        }
        if (extract_deepest(c, out)) {
            if (subtree_is_empty(c)) {
                free_block(c);
                c = kNoBlock;
            }
            return true;
        }
        // The child's subtree held nothing: prune it.
        free_subtree(c);
        c = kNoBlock;
    }
    if (occupied_[block] == 0) {
        return false;
    }
    const std::size_t base = static_cast<std::size_t>(block) * pagewidth_;
    for (std::uint32_t i = 0; i < pagewidth_; ++i) {
        EdgeCell& c = cells_[base + i];
        if (c.state == CellState::Occupied) {
            out = c;
            c = EdgeCell{};
            --occupied_[block];
            set_occupancy(block, i, false);
            return true;
        }
    }
    assert(false && "occupied_ count out of sync");
    return false;
}

void EdgeblockArray::refill_hole(std::uint32_t block, std::uint32_t sb,
                                 std::uint32_t slot, std::uint32_t level) {
    std::uint32_t& down = child(block, sb);
    if (down == kNoBlock) {
        return;
    }
    EdgeCell victim{};
    if (!extract_deepest(down, victim)) {
        free_subtree(down);
        down = kNoBlock;
        return;
    }
    // Any edge in the subtree hashes to this subblock at this level, so it
    // may legally occupy the hole; recompute its Robin Hood displacement.
    const std::uint32_t off = slot - sb * subblock_;
    const std::uint32_t home = home_of(victim.dst, level);
    victim.probe = static_cast<std::uint16_t>((off + subblock_ - home) &
                                              (subblock_ - 1));
    cell(block, slot) = victim;
    ++occupied_[block];
    set_occupancy(block, slot, true);
    if (cal_ != nullptr && victim.cal_pos != kNoCalPos) {
        cal_->rebind(victim.cal_pos, CellRef{block, slot});
    }
    metrics_.compaction_moves->inc();
    if (down != kNoBlock && subtree_is_empty(down)) {
        free_block(down);
        down = kNoBlock;
    }
}

EdgeblockArray::EraseResult EdgeblockArray::erase(std::uint32_t& top,
                                                  VertexId dst) {
    const auto loc = locate(top, dst);
    if (!loc) {
        return EraseResult{};
    }
    EdgeCell& c = cell(loc->block, loc->slot);
    const std::uint32_t cal_pos = c.cal_pos;
    const Weight weight = c.weight;
    if (!compact_delete_) {
        // Delete-only: tombstone the cell; probing sees the slot as vacant
        // for future inserts but nothing shrinks.
        c.state = CellState::Tombstone;
        c.cal_pos = kNoCalPos;
        --occupied_[loc->block];
        set_occupancy(loc->block, loc->slot, false);
        set_tombstone(loc->block, loc->slot, true);
        return EraseResult{true, cal_pos, weight};
    }
    c = EdgeCell{};
    --occupied_[loc->block];
    set_occupancy(loc->block, loc->slot, false);
    refill_hole(loc->block, loc->sb, loc->slot, loc->level);
    // Prune the now-possibly-empty tail of the hash path so the structure
    // keeps shrinking as the graph shrinks (paper: "the data structure
    // shrinks as more edges are deleted").
    prune_path(top, dst);
    if (top != kNoBlock && subtree_is_empty(top)) {
        free_block(top);
        top = kNoBlock;
    }
    return EraseResult{true, cal_pos, weight};
}

void EdgeblockArray::prune_path(std::uint32_t top, VertexId dst) {
    if (top == kNoBlock) {
        return;
    }
    // Record the descent path of dst, then free empty childless blocks from
    // the deepest level upward.
    struct Step {
        std::uint32_t block;
        std::uint32_t sb;
    };
    Step path[kMaxPruneDepth];
    std::size_t depth = 0;
    std::uint32_t block = top;
    std::uint32_t level = 0;
    while (block != kNoBlock && depth < kMaxPruneDepth) {
        const std::uint32_t sb = sb_of(dst, level);
        path[depth++] = Step{block, sb};
        block = child(block, sb);
        ++level;
    }
    for (std::size_t i = depth; i-- > 1;) {
        const std::uint32_t b = path[i].block;
        if (subtree_is_empty(b)) {
            free_block(b);
            child(path[i - 1].block, path[i - 1].sb) = kNoBlock;
        } else {
            break;
        }
    }
}

void EdgeblockArray::prefetch_probe(std::uint32_t top,
                                    VertexId dst) const noexcept {
    if (top == kNoBlock || top >= block_count_) {
        return;
    }
    // The first probe of (top, dst) reads the level-0 subblock's cells and
    // the block's mask words; warm both. Two lines cover 8 cells — the
    // default subblock.
    const std::uint32_t sb_base = sb_of(dst, 0) * subblock_;
    const EdgeCell* cells =
        &cells_[static_cast<std::size_t>(top) * pagewidth_ + sb_base];
    // Write intent: an insert fills a cell in this window, and fetching the
    // line exclusive up front avoids a second coherence transition.
    simd::prefetch_write(cells);
    simd::prefetch_write(cells + 4);
    simd::prefetch(&masks_[static_cast<std::size_t>(top) * words_per_block_]);
    simd::prefetch(
        &tomb_masks_[static_cast<std::size_t>(top) * words_per_block_]);
    // Warm the child pointer too so the second prefetch stage
    // (prefetch_probe_child) can read it without its own miss.
    simd::prefetch(&children_[static_cast<std::size_t>(top) * spb_ +
                              sb_of(dst, 0)]);
}

void EdgeblockArray::prefetch_probe_child(std::uint32_t top,
                                          VertexId dst) const noexcept {
    if (top == kNoBlock || top >= block_count_) {
        return;
    }
    const std::uint32_t sb0 = sb_of(dst, 0);
    // Only chase the child when the level-0 window is full: that is the
    // only case where the probe descends, and the masks are already cached
    // from the first prefetch stage, so this peek is (nearly) free.
    const WindowBits bits = window_bits(top, sb0 * subblock_);
    const std::uint64_t full =
        subblock_ >= 64 ? ~0ULL : (1ULL << subblock_) - 1;
    if (bits.occ != full) {
        return;
    }
    const std::uint32_t c = child(top, sb0);
    if (c == kNoBlock || c >= block_count_) {
        return;
    }
    const std::uint32_t sb_base = sb_of(dst, 1) * subblock_;
    const EdgeCell* cells =
        &cells_[static_cast<std::size_t>(c) * pagewidth_ + sb_base];
    simd::prefetch_write(cells);
    simd::prefetch_write(cells + 4);
    simd::prefetch(&masks_[static_cast<std::size_t>(c) * words_per_block_]);
    simd::prefetch(
        &tomb_masks_[static_cast<std::size_t>(c) * words_per_block_]);
}

EdgeblockArray::TreeLoad EdgeblockArray::tree_load(std::uint32_t top) const {
    TreeLoad load;
    if (top == kNoBlock) {
        return load;
    }
    std::vector<std::uint32_t> stack{top};
    while (!stack.empty()) {
        const std::uint32_t block = stack.back();
        stack.pop_back();
        ++load.blocks;
        load.live += occupied_[block];
        const std::size_t mbase =
            static_cast<std::size_t>(block) * words_per_block_;
        for (std::uint32_t w = 0; w < words_per_block_; ++w) {
            load.tombstones += static_cast<std::uint32_t>(
                std::popcount(tomb_masks_[mbase + w]));
        }
        for (std::uint32_t s = 0; s < spb_; ++s) {
            if (child(block, s) != kNoBlock) {
                stack.push_back(child(block, s));
            }
        }
    }
    return load;
}

std::uint32_t EdgeblockArray::rebuild_tree(std::uint32_t& top) {
    if (top == kNoBlock) {
        return 0;
    }
    // Collect the live cells, freeing each block as it is drained. The
    // freed blocks land on the free list before the reinsert below starts
    // allocating, so a rebuild recycles its own storage instead of growing
    // the arena.
    std::vector<EdgeCell> live;
    std::vector<std::uint32_t> stack{top};
    std::uint64_t tombstones = 0;
    while (!stack.empty()) {
        const std::uint32_t block = stack.back();
        stack.pop_back();
        const std::size_t base = static_cast<std::size_t>(block) * pagewidth_;
        for (std::uint32_t i = 0; i < pagewidth_; ++i) {
            const EdgeCell& c = cells_[base + i];
            if (c.state == CellState::Occupied) {
                live.push_back(c);
            } else if (c.state == CellState::Tombstone) {
                ++tombstones;
            }
        }
        for (std::uint32_t s = 0; s < spb_; ++s) {
            std::uint32_t& down = child(block, s);
            if (down != kNoBlock) {
                stack.push_back(down);
                down = kNoBlock;
            }
        }
        occupied_[block] = 0;
        free_block(block);
    }
    top = kNoBlock;
    metrics_.tombstones_purged->add(tombstones);
    metrics_.trees_rebuilt->inc();
    // Reinsert through the regular INSERT cascade: placement invariants
    // (including the delete-only EMPTY-exit soundness) hold by construction
    // in a tombstone-free tree, and every placement re-binds the cell's CAL
    // copy exactly as a fresh build would.
    for (const EdgeCell& c : live) {
        insert_new(top, c.dst, c.weight, c.cal_pos);
    }
    return static_cast<std::uint32_t>(live.size());
}

std::uint32_t EdgeblockArray::subtree_live(std::uint32_t block) const {
    std::uint32_t live = occupied_[block];
    for (std::uint32_t s = 0; s < spb_; ++s) {
        const std::uint32_t down = child(block, s);
        if (down != kNoBlock) {
            live += subtree_live(down);
        }
    }
    return live;
}

std::uint32_t EdgeblockArray::unbranch(std::uint32_t& top) {
    if (top == kNoBlock || rhh_) {
        return 0;  // RHH probe-order placement forbids out-of-order pull-ups
    }
    return unbranch_block(top, 0);
}

std::uint32_t EdgeblockArray::unbranch_block(std::uint32_t block,
                                             std::uint32_t level) {
    std::uint32_t moved = 0;
    for (std::uint32_t s = 0; s < spb_; ++s) {
        std::uint32_t& down = child(block, s);
        if (down == kNoBlock) {
            continue;
        }
        // Post-order: merge the deepest generations first so this child's
        // census below reflects its already-shrunk subtree.
        moved += unbranch_block(down, level + 1);
        const std::uint32_t live = subtree_live(down);
        if (live == 0) {
            free_subtree(down);
            down = kNoBlock;
            continue;
        }
        const std::uint32_t sb_base = s * subblock_;
        std::uint32_t free_slots = 0;
        for (std::uint32_t off = 0; off < subblock_; ++off) {
            if (cell(block, sb_base + off).state != CellState::Occupied) {
                ++free_slots;
            }
        }
        if (live > free_slots) {
            continue;
        }
        // Every edge under the child hashes to this window at this level
        // (the branch-out that created it proves so), so each may legally
        // take any free slot; recompute the displacement bookkeeping as
        // refill_hole does.
        EdgeCell victim{};
        std::uint32_t off = 0;
        while (down != kNoBlock && extract_deepest(down, victim)) {
            while (cell(block, sb_base + off).state == CellState::Occupied) {
                ++off;
            }
            const std::uint32_t slot = sb_base + off;
            const std::uint32_t home = home_of(victim.dst, level);
            victim.probe = static_cast<std::uint16_t>(
                (off + subblock_ - home) & (subblock_ - 1));
            cell(block, slot) = victim;
            ++occupied_[block];
            set_occupancy(block, slot, true);
            set_tombstone(block, slot, false);
            if (cal_ != nullptr && victim.cal_pos != kNoCalPos) {
                cal_->rebind(victim.cal_pos, CellRef{block, slot});
            }
            ++moved;
            metrics_.unbranch_moves->inc();
        }
        if (down != kNoBlock) {
            free_subtree(down);  // only empties/tombstones remain
            down = kNoBlock;
        }
    }
    return moved;
}

Stats EdgeblockArray::stats() const noexcept {
    Stats s;
    s.cells_probed += metrics_.cells_probed->value();
    s.workblocks_fetched += metrics_.workblocks_fetched->value();
    s.rhh_swaps += metrics_.rhh_swaps->value();
    s.branch_outs += metrics_.branch_outs->value();
    s.compaction_moves += metrics_.compaction_moves->value();
    s.blocks_freed += metrics_.blocks_freed->value();
    s.trees_rebuilt += metrics_.trees_rebuilt->value();
    s.tombstones_purged += metrics_.tombstones_purged->value();
    s.unbranch_moves += metrics_.unbranch_moves->value();
    return s;
}

std::uint64_t EdgeblockArray::tombstones_in_arena() const noexcept {
    std::uint64_t total = 0;
    const std::size_t words =
        static_cast<std::size_t>(block_count_) * words_per_block_;
    for (std::size_t w = 0; w < words; ++w) {
        total += static_cast<std::uint64_t>(std::popcount(tomb_masks_[w]));
    }
    return total;
}

std::uint32_t EdgeblockArray::subtree_depth(std::uint32_t top) const {
    if (top == kNoBlock) {
        return 0;
    }
    std::uint32_t depth = 0;
    for (std::uint32_t s = 0; s < spb_; ++s) {
        const std::uint32_t c = child(top, s);
        if (c != kNoBlock) {
            depth = std::max(depth, subtree_depth(c));
        }
    }
    return depth + 1;
}

}  // namespace gt::core
