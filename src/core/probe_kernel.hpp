// Bit-parallel subblock probe kernels (FIND mode, paper §III.C).
//
// A subblock is a power-of-two window of edge-cells (<= 64) whose occupancy
// and tombstone state the EdgeblockArray tracks as per-block bitmasks. The
// scalar probe walks the window cell by cell in Robin Hood probe order from
// the home offset, exiting at the first EMPTY (absence proof), a key match,
// or window exhaustion (descend). These kernels compute the same outcome
// without touching cells one at a time:
//
//   match  = (SIMD dst compare over the whole window) & occupied-bits
//   empty  = ~(occupied | tombstone) within the window
//   d(x)   = probe distance of the first set bit of x from `home`
//            (a rotate + countr_zero, O(1))
//
// and then compare distances — the key is found iff it sits strictly before
// the first EMPTY on the probe path, absent at every level iff an EMPTY
// comes first, and the walk descends iff the window has no EMPTY at all.
// Both the template instantiations (SIMD and scalar compare) are compiled in
// every build so tests can diff them; GT_SIMD only selects which one the hot
// path calls.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "core/edgeblock_array.hpp"
#include "util/simd.hpp"
#include "util/types.hpp"

namespace gt::core {

// The SIMD compare reads the dst field at stride sizeof(EdgeCell); the
// kernel is only instantiated when the layout matches that contract.
static_assert(sizeof(EdgeCell) == 16,
              "probe kernel assumes 16-byte edge-cells");
static_assert(offsetof(EdgeCell, dst) == 0,
              "probe kernel assumes dst is the leading cell member");

/// One subblock of cells plus its occupancy/tombstone bit windows (bit i
/// describes cells[i]); `width` is the subblock size (power of two, <= 64).
struct SubblockWindow {
    const EdgeCell* cells = nullptr;
    std::uint32_t width = 0;
    std::uint64_t occ = 0;
    std::uint64_t tomb = 0;
};

/// All-ones mask of a `width`-bit window (width <= 64).
[[nodiscard]] constexpr std::uint64_t window_mask(std::uint32_t width) noexcept {
    return width >= 64 ? ~0ULL : (1ULL << width) - 1;
}

/// Rotates window bits so that bit d of the result corresponds to probe
/// distance d from `home` (wrapping within the window).
[[nodiscard]] constexpr std::uint64_t rotate_to_probe_order(
    std::uint64_t bits, std::uint32_t home, std::uint32_t width) noexcept {
    return ((bits >> home) | (bits << ((width - home) & 63U))) &
           window_mask(width);
}

/// Probe distance (from `home`, wrapping) of the first set bit of `bits`;
/// `width` when no bit is set — the "infinite distance" sentinel.
[[nodiscard]] constexpr std::uint32_t first_probe_dist(
    std::uint64_t bits, std::uint32_t home, std::uint32_t width) noexcept {
    const std::uint64_t rot = rotate_to_probe_order(bits, home, width);
    return rot == 0 ? width
                    : static_cast<std::uint32_t>(std::countr_zero(rot));
}

template <bool UseSimd>
[[nodiscard]] inline std::uint64_t match_bits(const SubblockWindow& w,
                                              VertexId dst) noexcept {
    if constexpr (UseSimd) {
        return simd::match_u32_stride16_simd(w.cells, w.width, dst) & w.occ;
    } else {
        return simd::match_u32_stride16_scalar(w.cells, w.width, dst) & w.occ;
    }
}

/// Outcome of the FIND walk over one subblock (locate(), RHH mode).
struct FindStep {
    enum class Kind : std::uint8_t {
        Found,    ///< key occupies cells[slot]
        Absent,   ///< an EMPTY precedes any match: key absent at every level
        Descend,  ///< window exhausted without an EMPTY: continue in child
    };
    Kind kind = Kind::Descend;
    std::uint32_t slot = 0;     // valid when Found (offset within subblock)
    std::uint32_t scanned = 0;  // cells the scalar walk would have inspected
};

/// FIND over one subblock under Robin Hood (delete-only) invariants.
template <bool UseSimd>
[[nodiscard]] inline FindStep find_step(const SubblockWindow& w,
                                        std::uint32_t home,
                                        VertexId dst) noexcept {
    const std::uint64_t match = match_bits<UseSimd>(w, dst);
    const std::uint64_t empty =
        ~(w.occ | w.tomb) & window_mask(w.width);
    const std::uint32_t d_match = first_probe_dist(match, home, w.width);
    const std::uint32_t d_empty = first_probe_dist(empty, home, w.width);
    if (d_match < d_empty) {
        return FindStep{FindStep::Kind::Found,
                        (home + d_match) & (w.width - 1), d_match + 1};
    }
    if (d_empty < w.width) {
        return FindStep{FindStep::Kind::Absent, 0, d_empty + 1};
    }
    return FindStep{FindStep::Kind::Descend, 0, w.width};
}

/// FIND over one subblock in compact-delete mode: holes are refilled out of
/// probe order there, so the whole window is inspected and the only
/// outcomes are a match or a descent.
template <bool UseSimd>
[[nodiscard]] inline FindStep find_step_full(const SubblockWindow& w,
                                             VertexId dst) noexcept {
    const std::uint64_t match = match_bits<UseSimd>(w, dst);
    if (match != 0) {
        return FindStep{FindStep::Kind::Found,
                        static_cast<std::uint32_t>(std::countr_zero(match)),
                        w.width};
    }
    return FindStep{FindStep::Kind::Descend, 0, w.width};
}

/// Outcome of the fused FIND/INSERT walk over one subblock (probe_insert).
struct ProbeStep {
    enum class Kind : std::uint8_t {
        Duplicate,  ///< key already occupies cells[slot]
        Empty,      ///< first EMPTY pinned at cells[slot], distance `dist`
        Descend,    ///< no EMPTY in the window: continue in child
    };
    Kind kind = Kind::Descend;
    std::uint32_t slot = 0;
    std::uint32_t dist = 0;
    /// A tombstone or Robin Hood swap point precedes the exit cell — the
    /// insert must run the full INSERT-mode cascade rather than place
    /// directly at the EMPTY.
    bool candidate = false;
    std::uint32_t scanned = 0;
};

/// Fused FIND/INSERT probe over one subblock (RHH mode). Mirrors the scalar
/// walk: duplicate and EMPTY detection are bit-parallel; only the (rare)
/// rich-resident check inspects individual occupied cells, and only up to
/// the exit distance.
template <bool UseSimd>
[[nodiscard]] inline ProbeStep probe_step(const SubblockWindow& w,
                                          std::uint32_t home,
                                          VertexId dst) noexcept {
    const std::uint64_t match = match_bits<UseSimd>(w, dst);
    const std::uint64_t empty = ~(w.occ | w.tomb) & window_mask(w.width);
    const std::uint32_t d_match = first_probe_dist(match, home, w.width);
    const std::uint32_t d_empty = first_probe_dist(empty, home, w.width);
    if (d_match < d_empty) {
        return ProbeStep{ProbeStep::Kind::Duplicate,
                         (home + d_match) & (w.width - 1), d_match, false,
                         d_match + 1};
    }
    // The scalar walk stops at the first EMPTY, so candidates only count
    // before it.
    const std::uint32_t bound = d_empty;
    bool candidate = first_probe_dist(w.tomb, home, w.width) < bound;
    if (!candidate) {
        std::uint64_t occ_rot = rotate_to_probe_order(w.occ, home, w.width);
        while (occ_rot != 0) {
            const auto d =
                static_cast<std::uint32_t>(std::countr_zero(occ_rot));
            if (d >= bound) {
                break;
            }
            occ_rot &= occ_rot - 1;
            const std::uint32_t slot = (home + d) & (w.width - 1);
            if (w.cells[slot].probe < d) {
                candidate = true;  // RHH would displace here
                break;
            }
        }
    }
    if (d_empty < w.width) {
        return ProbeStep{ProbeStep::Kind::Empty,
                         (home + d_empty) & (w.width - 1), d_empty, candidate,
                         d_empty + 1};
    }
    return ProbeStep{ProbeStep::Kind::Descend, 0, 0, candidate, w.width};
}

/// True when the hot paths should call the SIMD instantiations.
inline constexpr bool kProbeKernelSimd = simd::kEnabled;

}  // namespace gt::core
