// gt::GraphService — the minimal read/mutate verb surface a graph host
// exposes, implemented by both recover::DurableStore (in-process) and
// net::RemoteGraph (gt.net.v1 wire handle).
//
// The point is substitutability: tools and benches that load edges and ask
// questions (the CLI's load/bfs verbs, bench/ext_server_echo's
// local-vs-wire comparison, tools/server_smoke.sh's driver paths) code
// against this interface once and run unchanged over a local store or a
// socket. The surface is deliberately small — exactly the verbs both sides
// can honor with identical semantics. Representation-specific power
// (neighbors enumeration, SSSP/CC, stats export, WAL subscription) stays on
// the concrete types.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"
#include "util/types.hpp"

namespace gt {

class GraphService {
public:
    virtual ~GraphService() = default;

    /// Applies `edges` as one committed batch (all-or-nothing under the
    /// store's transactional contract). `edge_count`, when non-null,
    /// receives the store's edge count after the batch.
    [[nodiscard]] virtual Status insert_edges(
        std::span<const Edge> edges, std::uint64_t* edge_count = nullptr) = 0;
    [[nodiscard]] virtual Status delete_edges(
        std::span<const Edge> edges, std::uint64_t* edge_count = nullptr) = 0;

    /// Out-degree of `v` (0 for a vertex the graph has never seen).
    [[nodiscard]] virtual Status degree_of(VertexId v,
                                           std::uint64_t& out) = 0;

    /// BFS hop distances from `root`, one per target in order
    /// (kInfDistance = unreachable).
    [[nodiscard]] virtual Status bfs_distances(
        VertexId root, std::span<const VertexId> targets,
        std::vector<std::uint32_t>& out) = 0;

    /// Live edge and vertex counts.
    [[nodiscard]] virtual Status count(std::uint64_t& edges,
                                       std::uint64_t& vertices) = 0;

    /// Forces a durability checkpoint (snapshot rotation locally, the
    /// Checkpoint verb over the wire).
    [[nodiscard]] virtual Status checkpoint_now() = 0;
};

}  // namespace gt
