#include "core/graphtinker.hpp"

namespace gt::core {

GraphTinker::GraphTinker(Config config)
    : config_(config),
      sgh_(config.enable_sgh ? config.initial_vertices : 16),
      cal_(config.cal_group_size, config.cal_block_edges),
      eba_(config_, config.enable_cal ? &cal_ : nullptr) {
    config_.validate();
    top_.reserve(config_.initial_vertices);
    if (config_.reserve_edges > 0 && config_.enable_cal) {
        cal_.reserve(config_.reserve_edges);
    }
}

VertexId GraphTinker::map_source(VertexId raw) {
    if (config_.enable_sgh) {
        const VertexId dense = sgh_.get_or_assign(raw);
        if (dense >= top_.size()) {
            top_.resize(static_cast<std::size_t>(dense) + 1,
                        EdgeblockArray::kNoBlock);
            props_.ensure(dense).raw_id = raw;
        }
        return dense;
    }
    // SGH disabled: raw ids index the main region directly, so the swept id
    // space is as large as the largest id ever streamed.
    if (raw >= top_.size()) {
        top_.resize(static_cast<std::size_t>(raw) + 1,
                    EdgeblockArray::kNoBlock);
    }
    props_.ensure(raw).raw_id = raw;
    return raw;
}

std::optional<VertexId> GraphTinker::dense_of(VertexId raw) const {
    if (config_.enable_sgh) {
        return sgh_.lookup(raw);
    }
    if (raw < top_.size()) {
        return raw;
    }
    return std::nullopt;
}

bool GraphTinker::insert_edge(VertexId src, VertexId dst, Weight weight) {
    note_raw(src);
    note_raw(dst);
    const VertexId dense = map_source(src);

    const auto probe = eba_.probe_insert(top_[dense], dst, weight);
    using Kind = EdgeblockArray::ProbeResult::Kind;
    switch (probe.kind) {
        case Kind::Duplicate:
            // probe_insert already updated the EdgeblockArray weight.
            if (config_.enable_cal && probe.cal_pos != kNoCalPos) {
                cal_.update_weight(probe.cal_pos, weight);
            }
            return false;
        case Kind::PlaceAt: {
            // Common case: one probe walk pinned a free cell and proved the
            // key absent; append the CAL copy and write the cell directly.
            std::uint32_t cal_pos = kNoCalPos;
            if (config_.enable_cal) {
                cal_pos = cal_.insert(dense, src, dst, weight, probe.where);
            }
            eba_.place_at(probe.where, dst, weight, probe.probe, cal_pos);
            break;
        }
        case Kind::Absent: {
            // Congested/reusable-slot path: create the CAL copy first
            // (placeholder owner) and let the edge carry its CAL pointer
            // through the Robin Hood cascade — every placement re-binds the
            // owner, so the backreference stays correct however often the
            // new edge is displaced.
            std::uint32_t cal_pos = kNoCalPos;
            if (config_.enable_cal) {
                cal_pos = cal_.insert(dense, src, dst, weight, CellRef{});
            }
            eba_.insert_new(top_[dense], dst, weight, cal_pos);
            break;
        }
    }
    ++props_[dense].degree;
    ++num_edges_;
    return true;
}

bool GraphTinker::delete_edge(VertexId src, VertexId dst) {
    const auto dense = dense_of(src);
    if (!dense || top_[*dense] == EdgeblockArray::kNoBlock) {
        return false;
    }
    const auto result = eba_.erase(top_[*dense], dst);
    if (!result.found) {
        return false;
    }
    --props_[*dense].degree;
    --num_edges_;
    if (config_.enable_cal && result.cal_pos != kNoCalPos) {
        const bool compact =
            config_.deletion_mode == DeletionMode::DeleteAndCompact;
        if (const auto moved = cal_.erase(result.cal_pos, compact)) {
            // CAL compaction relocated another edge's copy; point its owning
            // edge-cell at the new CAL position.
            eba_.set_cal_pos(moved->owner, moved->new_pos);
        }
    }
    return true;
}

void GraphTinker::insert_batch(std::span<const Edge> batch) {
    for (const Edge& e : batch) {
        insert_edge(e.src, e.dst, e.weight);
    }
}

void GraphTinker::delete_batch(std::span<const Edge> batch) {
    for (const Edge& e : batch) {
        delete_edge(e.src, e.dst);
    }
}

std::optional<Weight> GraphTinker::find_edge(VertexId src,
                                             VertexId dst) const {
    const auto dense = dense_of(src);
    if (!dense) {
        return std::nullopt;
    }
    return eba_.find(top_[*dense], dst);
}

std::uint32_t GraphTinker::degree(VertexId raw_src) const {
    const auto dense = dense_of(raw_src);
    if (!dense || *dense >= props_.size()) {
        return 0;
    }
    return props_[*dense].degree;
}

GraphTinker::MemoryFootprint GraphTinker::memory_footprint() const {
    MemoryFootprint out;
    out.edgeblock_bytes =
        eba_.memory_bytes() + top_.size() * sizeof(std::uint32_t);
    if (config_.enable_cal) {
        out.cal_bytes = cal_.memory_bytes();
    }
    if (config_.enable_sgh) {
        out.sgh_bytes = sgh_.memory_bytes();
    }
    out.props_bytes = props_.memory_bytes();
    return out;
}

// audit() and validate() are defined in core/audit.cpp alongside the
// structural auditor they delegate to.

std::uint32_t GraphTinker::tree_depth(VertexId src) const {
    const auto dense = dense_of(src);
    if (!dense) {
        return 0;
    }
    return eba_.subtree_depth(top_[*dense]);
}

}  // namespace gt::core
