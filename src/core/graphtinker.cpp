#include "core/graphtinker.hpp"

#include <algorithm>
#include <limits>

#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace gt::core {

GraphTinker::GraphTinker(Config config)
    : config_(config),
      obs_(std::make_unique<obs::Registry>()),
      sgh_(config.enable_sgh ? config.initial_vertices : 16),
      cal_(config.cal_group_size, config.cal_block_edges, obs_.get()),
      eba_(config_, config.enable_cal ? &cal_ : nullptr, obs_.get()) {
    config_.validate();
    top_.reserve(config_.initial_vertices);
    if (config_.reserve_edges > 0 && config_.enable_cal) {
        cal_.reserve(config_.reserve_edges);
    }
    ingest_batch_us_ = &obs_->histogram("gt.insert_batch_us");
    delete_batch_us_ = &obs_->histogram("gt.delete_batch_us");
    batches_ingested_ = &obs_->counter("gt.batches");
    updates_applied_ = &obs_->counter("gt.updates");
    maintenance_runs_ = &obs_->counter("maintenance.runs");
    maintenance_complete_runs_ = &obs_->counter("maintenance.complete_runs");
    maintenance_cells_touched_ =
        &obs_->histogram("maintenance.cells_touched");
}

VertexId GraphTinker::map_source(VertexId raw) {
    if (config_.enable_sgh) {
        const VertexId dense = sgh_.get_or_assign(raw);
        if (dense >= top_.size()) {
            top_.resize(static_cast<std::size_t>(dense) + 1,
                        EdgeblockArray::kNoBlock);
            props_.ensure(dense).raw_id = raw;
        }
        return dense;
    }
    // SGH disabled: raw ids index the main region directly, so the swept id
    // space is as large as the largest id ever streamed.
    if (raw >= top_.size()) {
        top_.resize(static_cast<std::size_t>(raw) + 1,
                    EdgeblockArray::kNoBlock);
    }
    props_.ensure(raw).raw_id = raw;
    return raw;
}

std::optional<VertexId> GraphTinker::dense_of(VertexId raw) const {
    if (config_.enable_sgh) {
        return sgh_.lookup(raw);
    }
    if (raw < top_.size()) {
        return raw;
    }
    return std::nullopt;
}

bool GraphTinker::insert_edge(VertexId src, VertexId dst, Weight weight) {
    // Solo durability frame: a single-edge call outside any batch is its
    // own all-or-nothing commit unit, with the same policy as
    // run_transaction — if the frame cannot be staged the mutation is
    // refused, and if the commit fails the mutation is rolled back, so the
    // in-memory store never diverges from what post-crash replay rebuilds.
    // The cause stays latched in the log's status(). Inside a batch (or a
    // rollback) the enclosing frame already covers the edge.
    const bool tee = log_ != nullptr && txn_ == TxnState::Idle;
    if (tee) {
        const Edge e{src, dst, weight};
        if (!(log_->begin_batch(1) && log_->stage_inserts({&e, 1}))) {
            log_->abort_batch();
            return false;
        }
        journal_.clear();
        journal_.reserve(1);  // the one apply-path journal push is nothrow
        txn_ = TxnState::Applying;
        // gt-txn: first-mutation
    }
    note_raw(src);
    note_raw(dst);
    bool created = false;
    try {
        const VertexId dense = map_source(src);
        created = insert_resolved(dense, src, dst, weight, nullptr);
        if (created) {
            ++props_[dense].degree;
            ++num_edges_;
        }
    } catch (...) {
        if (tee) {
            // Growth pre-flights throw before any structural mutation, so
            // there is nothing to undo — just drop the frame.
            txn_ = TxnState::Idle;
            journal_.clear();
            log_->abort_batch();
        }
        throw;
    }
    if (tee) {
        txn_ = TxnState::Idle;
        // gt-txn: commit
        if (!log_->commit_batch()) {
            // An incomplete unwind here only loses the weight restore of a
            // duplicate insert; the edge set itself is already consistent.
            (void)rollback_journal();
            return false;
        }
        journal_.clear();
    }
    mutation_epoch_.fetch_add(1, std::memory_order_release);
    return created;
}

bool GraphTinker::insert_resolved(VertexId dense, VertexId raw_src,
                                  VertexId dst, Weight weight,
                                  CoarseAdjacencyList::Appender* app) {
    // Growth pre-flight: every allocation the apply below could need is
    // performed (or its capacity reserved) here, before any structural
    // mutation — one insert allocates at most one edgeblock and one CAL
    // block, so after these calls the probe/cascade/append below is
    // nothrow. A failure here (real or injected via the "eba.grow" /
    // "cal.grow" fail points) therefore leaves this edge un-applied and the
    // store untouched, which is what makes a mid-batch failure cleanly
    // roll-backable from the undo journal alone.
    eba_.ensure_block_available();
    if (config_.enable_cal) {
        if (app != nullptr) {
            app->prepare();
        } else {
            cal_.prepare_append(dense);
        }
    }
    const auto probe = eba_.probe_insert(top_[dense], dst, weight);
    using Kind = EdgeblockArray::ProbeResult::Kind;
    switch (probe.kind) {
        case Kind::Duplicate:
            // probe_insert already updated the EdgeblockArray weight.
            if (config_.enable_cal && probe.cal_pos != kNoCalPos) {
                cal_.update_weight(probe.cal_pos, weight);
            }
            if (txn_ == TxnState::Applying) {
                journal_.push_back(UndoEntry{UndoEntry::Kind::RestoreWeight,
                                             raw_src, dst,
                                             probe.prev_weight});
            }
            return false;
        case Kind::PlaceAt: {
            // Common case: one probe walk pinned a free cell and proved the
            // key absent; append the CAL copy and write the cell directly.
            std::uint32_t cal_pos = kNoCalPos;
            if (config_.enable_cal) {
                cal_pos = app != nullptr
                              ? app->append(raw_src, dst, weight, probe.where)
                              : cal_.insert(dense, raw_src, dst, weight,
                                            probe.where);
            }
            eba_.place_at(probe.where, dst, weight, probe.probe, cal_pos);
            break;
        }
        case Kind::Absent: {
            // Congested/reusable-slot path: create the CAL copy first
            // (placeholder owner) and let the edge carry its CAL pointer
            // through the Robin Hood cascade — every placement re-binds the
            // owner, so the backreference stays correct however often the
            // new edge is displaced.
            std::uint32_t cal_pos = kNoCalPos;
            if (config_.enable_cal) {
                cal_pos = app != nullptr
                              ? app->append(raw_src, dst, weight, CellRef{})
                              : cal_.insert(dense, raw_src, dst, weight,
                                            CellRef{});
            }
            eba_.insert_new(top_[dense], dst, weight, cal_pos);
            break;
        }
    }
    if (txn_ == TxnState::Applying) {
        journal_.push_back(
            UndoEntry{UndoEntry::Kind::EraseInsert, raw_src, dst, 0});
    }
    return true;
}

bool GraphTinker::delete_edge(VertexId src, VertexId dst) {
    // Same solo-frame policy as insert_edge: refuse when staging fails,
    // roll back (re-inserting with the journaled weight) when the commit
    // cannot be made durable.
    const bool tee = log_ != nullptr && txn_ == TxnState::Idle;
    if (tee) {
        const Edge e{src, dst, 0};
        if (!(log_->begin_batch(1) && log_->stage_deletes({&e, 1}))) {
            log_->abort_batch();
            return false;
        }
        journal_.clear();
        journal_.reserve(1);  // the one apply-path journal push is nothrow
        txn_ = TxnState::Applying;
        // gt-txn: first-mutation
    }
    bool found = false;
    try {
        if (const auto dense = dense_of(src)) {
            found = delete_resolved(*dense, src, dst);
        }
    } catch (...) {
        if (tee) {
            txn_ = TxnState::Idle;
            journal_.clear();
            log_->abort_batch();
        }
        throw;
    }
    if (tee) {
        txn_ = TxnState::Idle;
        // gt-txn: commit
        if (!log_->commit_batch()) {
            // Solo delete rollback re-inserts from the journal; a failed
            // re-insert cannot be reported through the bool, so tolerate it.
            (void)rollback_journal();
            return false;
        }
        journal_.clear();
    }
    if (found) {
        mutation_epoch_.fetch_add(1, std::memory_order_release);
    }
    return found;
}

bool GraphTinker::delete_resolved(VertexId dense, VertexId raw_src,
                                  VertexId dst) {
    if (top_[dense] == EdgeblockArray::kNoBlock) {
        return false;
    }
    // Erase pre-flight: free-list headroom (and the "cal.grow" fail point)
    // up front, so the block frees a compacting erase performs mid-mutation
    // cannot throw.
    eba_.ensure_erase_headroom();
    if (config_.enable_cal) {
        cal_.prepare_erase();
    }
    const auto result = eba_.erase(top_[dense], dst);
    if (!result.found) {
        return false;
    }
    --props_[dense].degree;
    --num_edges_;
    if (config_.enable_cal && result.cal_pos != kNoCalPos) {
        const bool compact =
            config_.deletion_mode == DeletionMode::DeleteAndCompact;
        if (const auto moved = cal_.erase(result.cal_pos, compact)) {
            // CAL compaction relocated another edge's copy; point its owning
            // edge-cell at the new CAL position.
            eba_.set_cal_pos(moved->owner, moved->new_pos);
        }
    }
    if (txn_ == TxnState::Applying) {
        journal_.push_back(UndoEntry{UndoEntry::Kind::Reinsert, raw_src, dst,
                                     result.weight});
    }
    return true;
}

void GraphTinker::sort_batch_by_source(std::span<const Edge> batch) {
    const std::size_t n = batch.size();
    VertexId max_src = 0;
    for (std::size_t i = 0; i < n; ++i) {
        max_src = std::max(max_src, batch[i].src);
    }
    // Fast path: one stable counting sort over the source ids, scattering
    // the edges straight into ingest_sorted_ — no key array, no second
    // radix pass, no separate gather. Applies whenever the histogram stays
    // small relative to the batch (its clear/prefix cost is ~4 histogram
    // entries per edge) and within a fixed memory cap.
    const std::size_t span = static_cast<std::size_t>(max_src) + 1;
    if (n >= 2048 && span <= 4 * n && span <= (1U << 20)) {
        ingest_hist_.assign(span + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++ingest_hist_[batch[i].src + 1];
        }
        for (std::size_t s = 1; s <= span; ++s) {
            ingest_hist_[s] += ingest_hist_[s - 1];
        }
        ingest_sorted_.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            ingest_sorted_[ingest_hist_[batch[i].src]++] = batch[i];
        }
        return;
    }
    ingest_keys_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ingest_keys_[i] =
            (static_cast<std::uint64_t>(batch[i].src) << 32) | i;
    }
    if (n < 2048) {
        // Full-key comparison sorts by (src, index) — exactly the stable
        // source grouping the runs need.
        std::sort(ingest_keys_.begin(), ingest_keys_.end());
        materialize_sorted(batch);
        return;
    }
    // LSD radix over the source digits only (16 bits per pass); ties keep
    // their batch order, which full-key passes would also guarantee but at
    // twice the cost.
    constexpr std::uint32_t kRadixBits = 16;
    constexpr std::uint32_t kBuckets = 1U << kRadixBits;
    ingest_tmp_.resize(n);
    ingest_hist_.assign(kBuckets, 0);
    std::uint64_t* from = ingest_keys_.data();
    std::uint64_t* to = ingest_tmp_.data();
    const std::uint32_t passes = max_src < kBuckets ? 1 : 2;
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        const std::uint32_t shift = 32 + pass * kRadixBits;
        if (pass > 0) {
            ingest_hist_.assign(kBuckets, 0);
        }
        for (std::size_t i = 0; i < n; ++i) {
            ++ingest_hist_[(from[i] >> shift) & (kBuckets - 1)];
        }
        std::uint32_t run = 0;
        for (std::uint32_t b = 0; b < kBuckets; ++b) {
            const std::uint32_t count = ingest_hist_[b];
            ingest_hist_[b] = run;
            run += count;
        }
        for (std::size_t i = 0; i < n; ++i) {
            to[ingest_hist_[(from[i] >> shift) & (kBuckets - 1)]++] = from[i];
        }
        std::swap(from, to);
    }
    if (from != ingest_keys_.data()) {
        std::swap(ingest_keys_, ingest_tmp_);
    }
    materialize_sorted(batch);
}

void GraphTinker::materialize_sorted(std::span<const Edge> batch) {
    const std::size_t n = batch.size();
    ingest_sorted_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ingest_sorted_[i] =
            batch[static_cast<std::uint32_t>(ingest_keys_[i])];
    }
}

std::span<const GraphTinker::SourceRun> GraphTinker::resolve_runs(
    std::size_t n, bool assign) {
    ingest_runs_.clear();
    // SGH lookahead: the source this many positions ahead has its hash
    // bucket warmed while the current run resolves. Short runs (the worst
    // case for this loop — one hash miss per edge) become memory-parallel.
    constexpr std::size_t kResolveLookahead = 16;
    for (std::size_t i = 0; i < n;) {
        if (config_.enable_sgh && i + kResolveLookahead < n) {
            sgh_.prefetch(ingest_sorted_[i + kResolveLookahead].src);
        }
        const VertexId src = ingest_sorted_[i].src;
        std::size_t end = i + 1;
        while (end < n && ingest_sorted_[end].src == src) {
            ++end;
        }
        if (assign) {
            note_raw(src);
            const VertexId dense = map_source(src);
            ingest_runs_.push_back(SourceRun{
                src, dense, top_[dense], static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(end)});
        } else if (const auto dense = dense_of(src)) {
            // Unknown sources drop out here: every delete under them is a
            // no-op, so their run never reaches the apply loop.
            ingest_runs_.push_back(SourceRun{
                src, *dense, top_[*dense], static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(end)});
        }
        i = end;
    }
    return ingest_runs_;
}

void GraphTinker::prefetch_ahead(std::span<const SourceRun> runs,
                                 std::size_t& cursor, std::size_t pos,
                                 bool deep) const {
    while (cursor < runs.size() && pos >= runs[cursor].end) {
        ++cursor;
    }
    if (cursor >= runs.size() || pos < runs[cursor].begin) {
        return;
    }
    if (deep) {
        eba_.prefetch_probe_child(runs[cursor].top, ingest_sorted_[pos].dst);
    } else {
        eba_.prefetch_probe(runs[cursor].top, ingest_sorted_[pos].dst);
    }
}

namespace {
/// Records a batch's wall time into a latency histogram (microseconds) on
/// scope exit. The Timer read only happens when recording is enabled, so a
/// disabled run pays one predictable branch per batch.
class BatchLatencyScope {
public:
    explicit BatchLatencyScope(obs::Histogram* hist) noexcept
        : hist_(hist), armed_(obs::kEnabled && obs::recording()) {}
    ~BatchLatencyScope() {
        if (armed_) {
            hist_->record(
                static_cast<std::uint64_t>(timer_.seconds() * 1e6));
        }
    }
    BatchLatencyScope(const BatchLatencyScope&) = delete;
    BatchLatencyScope& operator=(const BatchLatencyScope&) = delete;

private:
    obs::Histogram* hist_;
    bool armed_;
    Timer timer_;
};
}  // namespace

Status GraphTinker::validate_batch(std::span<const Edge> batch) {
    // Staged validation: the whole batch is screened before anything
    // mutates, so a rejected batch leaves the store byte-identical.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].src == kInvalidVertex || batch[i].dst == kInvalidVertex) {
            return Status{StatusCode::InvalidArgument,
                          "batch edge carries the invalid-vertex sentinel",
                          i};
        }
    }
    return Status::success();
}

bool GraphTinker::rollback_journal() noexcept {
    // Newest-first replay restores the pre-batch store: an edge that was
    // created and then re-weighted inside the same batch first gets its
    // weight step undone, then the creation.
    txn_ = TxnState::RollingBack;
    bool complete = true;
    for (std::size_t i = journal_.size(); i-- > 0;) {
        const UndoEntry& u = journal_[i];
        try {
            switch (u.kind) {
                case UndoEntry::Kind::EraseInsert: {
                    if (const auto dense = dense_of(u.src)) {
                        delete_resolved(*dense, u.src, u.dst);
                    }
                    break;
                }
                case UndoEntry::Kind::RestoreWeight:
                case UndoEntry::Kind::Reinsert:
                    // Re-entering the insert path re-creates the edge (or
                    // overwrites the weight back) with its pre-batch value.
                    // Either return value is a correct rollback outcome.
                    (void)insert_edge(u.src, u.dst, u.prev);
                    break;
            }
        } catch (...) {
            // A rollback step can only throw on genuine allocation failure
            // (fail points are single-shot and already fired). Keep
            // unwinding the rest; the caller reports the store degraded.
            complete = false;
        }
    }
    journal_.clear();
    txn_ = TxnState::Idle;
    return complete;
}

template <typename ApplyFn>
Status GraphTinker::run_transaction(std::span<const Edge> batch, bool deletes,
                                    ApplyFn&& apply) {
    if (const Status st = validate_batch(batch); !st.ok()) {
        return st;
    }
    // Stage-before-apply: the durability frame holds the batch before the
    // first in-memory mutation; it is committed only after the apply fully
    // succeeded. A crash anywhere in between leaves an uncommitted frame
    // recovery discards — equivalent to the rollback a clean failure takes.
    if (log_ != nullptr) {
        const bool staged = log_->begin_batch(batch.size()) &&
                            (deletes ? log_->stage_deletes(batch)
                                     : log_->stage_inserts(batch));
        if (!staged) {
            log_->abort_batch();
            return Status{StatusCode::IoError,
                          "update log could not stage the batch"};
        }
    }
    journal_.clear();
    journal_.reserve(batch.size());  // apply-path journal pushes are nothrow
    txn_ = TxnState::Applying;
    // gt-txn: first-mutation
    Status st = Status::success();
    try {
        apply();
    } catch (const fail::InjectedFault& f) {
        st = Status{StatusCode::FaultInjected,
                    "injected fault at site '" + f.site() + "' mid-batch",
                    journal_.size()};
    } catch (const std::bad_alloc&) {
        st = Status{StatusCode::ResourceExhausted,
                    "allocation failed mid-batch", journal_.size()};
    }
    txn_ = TxnState::Idle;
    // gt-txn: commit
    if (st.ok() && log_ != nullptr && !log_->commit_batch()) {
        // Applied in memory but not durable: roll memory back so the store
        // never diverges from what a post-crash replay would rebuild.
        st = Status{StatusCode::IoError,
                    "update log commit failed; batch rolled back"};
    } else if (!st.ok() && log_ != nullptr) {
        log_->abort_batch();
    }
    if (!st.ok() && !rollback_journal()) {
        st.message += "; rollback incomplete — store degraded";
    }
    journal_.clear();
    return st;
}

Status GraphTinker::insert_batch(std::span<const Edge> batch) {
    batches_ingested_->inc();
    updates_applied_->add(batch.size());
    const BatchLatencyScope lat{ingest_batch_us_};
    // Amortized maintenance rides on every batch boundary when configured.
    struct MaintainAtExit {
        GraphTinker& g;
        ~MaintainAtExit() {
            if (g.config_.maintenance_budget_cells > 0) {
                g.maintain_some(g.config_.maintenance_budget_cells);
            }
        }
    } maintain_at_exit{*this};
    // Single-edge bypass (durability off): a 1-edge batch is inherently
    // atomic because insert_edge's growth pre-flights throw before any
    // mutation, so the journal/txn frame would be pure overhead — route it
    // straight through the solo path at solo cost. With a log attached the
    // transactional frame stays: batch and solo records replay differently.
    if (batch.size() <= 1 && log_ == nullptr) {
        if (batch.empty()) {
            return Status::success();
        }
        const Edge& e = batch.front();
        if (e.src == kInvalidVertex || e.dst == kInvalidVertex) {
            return Status{StatusCode::InvalidArgument,
                          "batch edge carries the invalid-vertex sentinel",
                          0};
        }
        try {
            (void)insert_edge(e.src, e.dst, e.weight);
        } catch (const fail::InjectedFault& f) {
            return Status{StatusCode::FaultInjected,
                          "injected fault at site '" + f.site() +
                              "' mid-batch",
                          0};
        } catch (const std::bad_alloc&) {
            return Status{StatusCode::ResourceExhausted,
                          "allocation failed mid-batch", 0};
        }
        return Status::success();
    }
    const Status st = run_transaction(batch, /*deletes=*/false, [&] {
        if (batch.size() < kBatchFastPathMin ||
            batch.size() > std::numeric_limits<std::uint32_t>::max()) {
            for (const Edge& e : batch) {
                // Inside the transaction frame duplicates are expected and
                // per-edge creation is journaled, not reported upward.
                (void)insert_edge(e.src, e.dst, e.weight);
            }
            return;
        }
        sort_batch_by_source(batch);
        // All sources resolve before any edge applies, so the lookahead
        // prefetch below reads tops straight out of the run table (top_
        // cannot be resized mid-loop — map_source only runs here).
        const std::span<const SourceRun> runs =
            resolve_runs(batch.size(), /*assign=*/true);
        // One stats flush for the whole batch instead of 2–4 atomic RMWs
        // per probe; readers on other threads see the counters a batch
        // late, which relaxed counters already permit.
        const EdgeblockArray::StatsBatchScope stats_scope{eba_};
        std::size_t pf_cursor = 0;
        std::size_t pf_child_cursor = 0;
        for (const SourceRun& run : runs) {
            // Constant-distance lookahead: while edge i resolves, the
            // subblock edge i+D will probe is already in flight, so its
            // DRAM miss overlaps useful work instead of serializing behind
            // it.
            std::uint32_t created = 0;
            VertexId max_dst = 0;
            const auto drain = [&](CoarseAdjacencyList::Appender* app_ptr) {
                for (std::size_t i = run.begin; i < run.end; ++i) {
                    prefetch_ahead(runs, pf_cursor, i + kPrefetchDistance,
                                   /*deep=*/false);
                    prefetch_ahead(runs, pf_child_cursor,
                                   i + kPrefetchChildDistance, /*deep=*/true);
                    const Edge& e = ingest_sorted_[i];
                    // Adjacent same-destination updates: only the last one
                    // counts (exactly what applying them in order would
                    // leave behind), so the earlier ones skip their probe
                    // walks entirely.
                    if (i + 1 < run.end &&
                        ingest_sorted_[i + 1].dst == e.dst) {
                        continue;
                    }
                    max_dst = std::max(max_dst, e.dst);
                    created += insert_resolved(run.dense, run.src, e.dst,
                                               e.weight, app_ptr)
                                   ? 1U
                                   : 0U;
                }
            };
            // Per-run accounting: every edge of the run shares dense/raw
            // ids, so the counters and the raw-id bound update once, not
            // per edge. A mid-run failure settles the partial run first —
            // the journaled edges of this run ARE applied and the rollback
            // deletes them through the accounted path, so the counters must
            // cover them before the unwind reaches the rollback.
            try {
                if (config_.enable_cal) {
                    CoarseAdjacencyList::Appender app =
                        cal_.appender(run.dense);
                    drain(&app);
                } else {
                    drain(nullptr);
                }
            } catch (...) {
                note_raw(max_dst);
                props_[run.dense].degree += created;
                num_edges_ += created;
                throw;
            }
            note_raw(max_dst);
            props_[run.dense].degree += created;
            num_edges_ += created;
        }
    });
    if (st.ok()) {
        mutation_epoch_.fetch_add(1, std::memory_order_release);
    }
    return st;
}

Status GraphTinker::delete_batch(std::span<const Edge> batch) {
    batches_ingested_->inc();
    updates_applied_->add(batch.size());
    const BatchLatencyScope lat{delete_batch_us_};
    struct MaintainAtExit {
        GraphTinker& g;
        ~MaintainAtExit() {
            if (g.config_.maintenance_budget_cells > 0) {
                g.maintain_some(g.config_.maintenance_budget_cells);
            }
        }
    } maintain_at_exit{*this};
    // Single-edge bypass, mirroring insert_batch: an absent edge is a legal
    // no-op and delete_edge's erase pre-flight throws before any mutation,
    // so the 1-edge case needs no journal frame when durability is off.
    if (batch.size() <= 1 && log_ == nullptr) {
        if (batch.empty()) {
            return Status::success();
        }
        const Edge& e = batch.front();
        if (e.src == kInvalidVertex || e.dst == kInvalidVertex) {
            return Status{StatusCode::InvalidArgument,
                          "batch edge carries the invalid-vertex sentinel",
                          0};
        }
        try {
            (void)delete_edge(e.src, e.dst);
        } catch (const fail::InjectedFault& f) {
            return Status{StatusCode::FaultInjected,
                          "injected fault at site '" + f.site() +
                              "' mid-batch",
                          0};
        } catch (const std::bad_alloc&) {
            return Status{StatusCode::ResourceExhausted,
                          "allocation failed mid-batch", 0};
        }
        return Status::success();
    }
    const Status st = run_transaction(batch, /*deletes=*/true, [&] {
        if (batch.size() < kBatchFastPathMin ||
            batch.size() > std::numeric_limits<std::uint32_t>::max()) {
            for (const Edge& e : batch) {
                // Absent edges are a legal no-op within a delete batch.
                (void)delete_edge(e.src, e.dst);
            }
            return;
        }
        sort_batch_by_source(batch);
        const std::span<const SourceRun> runs =
            resolve_runs(batch.size(), /*assign=*/false);
        const EdgeblockArray::StatsBatchScope stats_scope{eba_};
        std::size_t pf_cursor = 0;
        for (const SourceRun& run : runs) {
            for (std::size_t i = run.begin; i < run.end; ++i) {
                prefetch_ahead(runs, pf_cursor, i + kPrefetchDistance,
                               /*deep=*/false);
                const Edge& e = ingest_sorted_[i];
                // Adjacent same-destination deletes: the first one removes
                // the edge and every later one is a guaranteed no-op (erase
                // of an absent / already-tombstoned key never touches the
                // counters), so skip the earlier duplicates' probe walks —
                // the insert path's adjacent-duplicate skip, mirrored.
                if (i + 1 < run.end && ingest_sorted_[i + 1].dst == e.dst) {
                    continue;
                }
                delete_resolved(run.dense, run.src, e.dst);
            }
        }
    });
    if (st.ok()) {
        mutation_epoch_.fetch_add(1, std::memory_order_release);
    }
    return st;
}

std::optional<Weight> GraphTinker::find_edge(VertexId src,
                                             VertexId dst) const {
    const auto dense = dense_of(src);
    if (!dense) {
        return std::nullopt;
    }
    return eba_.find(top_[*dense], dst);
}

std::uint32_t GraphTinker::degree(VertexId raw_src) const {
    const auto dense = dense_of(raw_src);
    if (!dense || *dense >= props_.size()) {
        return 0;
    }
    return props_[*dense].degree;
}

GraphTinker::MemoryFootprint GraphTinker::memory_footprint() const {
    MemoryFootprint out;
    out.edgeblock_bytes =
        eba_.memory_bytes() + top_.size() * sizeof(std::uint32_t);
    out.edgeblock_capacity_bytes =
        eba_.memory_capacity_bytes() + top_.size() * sizeof(std::uint32_t);
    if (config_.enable_cal) {
        out.cal_bytes = cal_.memory_bytes();
        out.cal_capacity_bytes = cal_.memory_capacity_bytes();
    }
    if (config_.enable_sgh) {
        out.sgh_bytes = sgh_.memory_bytes();
    }
    out.props_bytes = props_.memory_bytes();
    return out;
}

obs::Snapshot GraphTinker::telemetry() const {
    // Structural census gauges are refreshed at snapshot time — they are
    // levels, not events, so polling beats hot-path bookkeeping.
    obs::Registry& r = *obs_;
    r.gauge("gt.num_edges").set(static_cast<double>(num_edges_));
    r.gauge("gt.num_vertices").set(static_cast<double>(raw_bound_));
    r.gauge("gt.nonempty_vertices").set(static_cast<double>(top_.size()));
    r.gauge("eba.blocks_in_use")
        .set(static_cast<double>(eba_.blocks_in_use()));
    r.gauge("eba.blocks_allocated")
        .set(static_cast<double>(eba_.blocks_allocated()));
    r.gauge("eba.tombstones")
        .set(static_cast<double>(eba_.tombstones_in_arena()));
    if (config_.enable_cal) {
        r.gauge("cal.blocks_in_use")
            .set(static_cast<double>(cal_.blocks_in_use()));
        r.gauge("cal.live_edges").set(static_cast<double>(cal_.live_edges()));
        r.gauge("cal.scanned_slots")
            .set(static_cast<double>(cal_.scanned_slots()));
    }
    const MemoryFootprint mem = memory_footprint();
    r.gauge("mem.edgeblock_bytes")
        .set(static_cast<double>(mem.edgeblock_bytes));
    r.gauge("mem.cal_bytes").set(static_cast<double>(mem.cal_bytes));
    r.gauge("mem.total_bytes").set(static_cast<double>(mem.total()));
    return r.snapshot();
}

// audit() and validate() are defined in core/audit.cpp alongside the
// structural auditor they delegate to.

std::uint32_t GraphTinker::tree_depth(VertexId src) const {
    const auto dense = dense_of(src);
    if (!dense) {
        return 0;
    }
    return eba_.subtree_depth(top_[*dense]);
}

}  // namespace gt::core
