// GraphTinker configuration (paper §III.B, §V.A).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "util/status.hpp"

namespace gt::core {

/// Deletion mechanism (paper §III.C).
enum class DeletionMode : std::uint8_t {
    /// Tombstone the slot; no structural shrinking. Fast deletes, but probe
    /// work and analytics scans stay proportional to the peak graph size.
    DeleteOnly,
    /// Refill the hole with an edge pulled from the deepest descendant
    /// subblock on the same hash path, freeing emptied edgeblocks. Robin Hood
    /// swapping is disabled in this mode (the paper turns RHH off to avoid
    /// the edge-tracking overhead of swaps).
    DeleteAndCompact,
};

struct Config {
    /// Edge-cells per edgeblock. Paper default 64; evaluated 8..256 (Fig 17-19).
    std::uint32_t pagewidth = 64;
    /// Edge-cells per Subblock — the branch-out granularity. Paper default 8.
    std::uint32_t subblock = 8;
    /// Edge-cells per Workblock — the retrieval granularity. Paper default 4.
    std::uint32_t workblock = 4;

    /// Scatter-Gather Hashing: densify the source-vertex index space.
    bool enable_sgh = true;
    /// Coarse Adjacency List: maintain the compact secondary edge copy.
    bool enable_cal = true;
    /// Robin Hood swapping during inserts (forced off by DeleteAndCompact).
    bool enable_rhh = true;

    DeletionMode deletion_mode = DeletionMode::DeleteOnly;

    /// Source vertices per CAL group ("for example 1024", paper §III.B).
    std::uint32_t cal_group_size = 1024;
    /// Edges per CAL block.
    std::uint32_t cal_block_edges = 128;

    /// Initial dense-vertex capacity (grows on demand).
    std::uint32_t initial_vertices = 1024;

    /// Expected number of edges; storage pools reserve capacity for this
    /// many up front (0 = grow on demand). STINGER-style deployments size
    /// the structure for the maximum attainable graph, so the benches pass
    /// the dataset's edge count here for both stores.
    std::uint64_t reserve_edges = 0;

    // ---- maintenance & space reclamation (core/maintenance.hpp) ----------

    /// Delete-only mode: a vertex tree whose tombstone fraction
    /// (tombstones / (live + tombstones)) reaches this threshold is rebuilt
    /// by maintain(), purging the tombstones and restoring fresh-build Robin
    /// Hood probe distances. 0 rebuilds on the first tombstone; 1 disables
    /// purging.
    double purge_tombstone_threshold = 0.25;
    /// CAL hole fraction (holes / scanned slots) at which maintain()
    /// compacts the group chains, returning emptied blocks to the CAL free
    /// list. 1 disables chain compaction.
    double cal_compact_threshold = 0.25;
    /// Amortized maintenance: after every insert_batch/delete_batch, up to
    /// this many edge-cells' worth of maintenance work (tree scans, purge
    /// rebuilds, un-branch merges) runs, resuming round-robin across
    /// vertices. 0 leaves all maintenance to explicit maintain() calls.
    std::uint32_t maintenance_budget_cells = 0;

    // ---- sharded ingest pipeline (core/sharded.hpp) ----------------------

    /// Batches at or below this size skip the radix partition when every
    /// edge lands on one shard (always true for batch=1): the mini-batch is
    /// handed to the owning worker's queue directly. 0 disables the bypass.
    std::uint32_t sharded_small_batch_threshold = 64;
    /// Bounded depth (in hand-off tasks) of each shard's ingest queue. The
    /// producer blocks when a shard's queue fills — backpressure instead of
    /// unbounded buffering.
    std::uint32_t sharded_queue_depth = 1024;

    /// Non-throwing validation: divisibility/power-of-two invariants plus
    /// the resource-sanity caps an *untrusted* config (one decoded from a
    /// snapshot file) must clear before the store allocates anything from
    /// it. Returns the first violated invariant as a typed Status.
    [[nodiscard]] Status check() const noexcept {
        auto pow2 = [](std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; };
        auto bad = [](const char* why) {
            return Status{StatusCode::InvalidArgument, why};
        };
        if (!pow2(pagewidth) || !pow2(subblock) || !pow2(workblock)) {
            return bad("pagewidth/subblock/workblock must be powers of two");
        }
        if (pagewidth % subblock != 0 || subblock % workblock != 0) {
            return bad(
                "pagewidth must divide into subblocks, subblocks into "
                "workblocks");
        }
        if (pagewidth > 65536) {
            return bad("pagewidth larger than 65536 unsupported");
        }
        if (cal_group_size == 0 || cal_block_edges == 0) {
            return bad("CAL geometry must be non-zero");
        }
        if (cal_group_size > (1U << 24) || cal_block_edges > (1U << 24)) {
            return bad("CAL geometry implausibly large");
        }
        if (deletion_mode != DeletionMode::DeleteOnly &&
            deletion_mode != DeletionMode::DeleteAndCompact) {
            return bad("deletion_mode outside the enum range");
        }
        if (initial_vertices > (1U << 28)) {
            return bad("initial_vertices implausibly large");
        }
        if (reserve_edges > (std::uint64_t{1} << 40)) {
            return bad("reserve_edges implausibly large");
        }
        if (sharded_queue_depth == 0) {
            return bad("sharded_queue_depth must be non-zero");
        }
        if (sharded_queue_depth > (1U << 20) ||
            sharded_small_batch_threshold > (1U << 20)) {
            return bad("sharded ingest knobs implausibly large");
        }
        if (!(purge_tombstone_threshold >= 0.0 &&
              purge_tombstone_threshold <= 1.0) ||
            !(cal_compact_threshold >= 0.0 && cal_compact_threshold <= 1.0)) {
            // Negated >= form so NaN (possible in a fuzzed header) fails.
            return bad("maintenance thresholds must lie in [0, 1]");
        }
        return Status::success();
    }

    /// Validates as check(); throws std::invalid_argument on bad values
    /// (the construction-time API — programmer error, not data error).
    void validate() const {
        const Status st = check();
        if (!st.ok()) {
            throw std::invalid_argument(st.message);
        }
    }

    /// True when inserts use Robin Hood swapping (RHH is incompatible with
    /// the compacting delete path).
    [[nodiscard]] bool rhh_active() const noexcept {
        return enable_rhh && deletion_mode == DeletionMode::DeleteOnly;
    }
};

/// A diagnostics counter safe to bump from const read paths shared by
/// concurrent readers (FIND probes account their work even on lookups).
/// Relaxed atomics: counters never synchronize anything, they only have to
/// avoid being a data race. Copies snapshot the value.
class StatCounter {
public:
    StatCounter() = default;
    StatCounter(const StatCounter& other) noexcept
        : value_(other.value_.load(std::memory_order_relaxed)) {}
    StatCounter& operator=(const StatCounter& other) noexcept {
        value_.store(other.value_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return *this;
    }

    StatCounter& operator+=(std::uint64_t delta) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
        return *this;
    }
    StatCounter& operator++() noexcept { return *this += 1; }

    // NOLINTNEXTLINE(google-explicit-constructor): drop-in for uint64_t
    operator std::uint64_t() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Operation counters exposed for tests, diagnostics and the ablation
/// benches. All counters are cumulative since construction.
struct Stats {
    StatCounter cells_probed;       // edge-cells inspected
    StatCounter workblocks_fetched; // workblock-granular retrievals
    StatCounter rhh_swaps;          // Robin Hood displacements
    StatCounter branch_outs;        // subblock -> child edgeblock splits
    StatCounter compaction_moves;   // delete-and-compact relocations
    StatCounter blocks_freed;       // edgeblocks returned to the pool
    StatCounter trees_rebuilt;      // tombstone purges (tree rebuilds)
    StatCounter tombstones_purged;  // tombstones erased by purges
    StatCounter unbranch_moves;     // edges pulled up by TBH un-branching
};

}  // namespace gt::core
