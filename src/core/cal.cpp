#include "core/cal.hpp"

#include <algorithm>
#include <cassert>

#include "util/failpoint.hpp"

namespace gt::core {

CoarseAdjacencyList::CoarseAdjacencyList(std::uint32_t group_size,
                                         std::uint32_t block_edges,
                                         obs::Registry* registry)
    : group_size_(group_size), block_edges_(block_edges),
      registry_(registry) {
    assert(group_size_ > 0 && block_edges_ > 0);
    if (registry_ == nullptr) {
        owned_registry_ = std::make_unique<obs::Registry>();
        registry_ = owned_registry_.get();
    }
    obs::Registry& r = *registry_;
    blocks_allocated_m_ = &r.counter("cal.blocks_allocated");
    blocks_freed_m_ = &r.counter("cal.blocks_freed");
    holes_created_m_ = &r.counter("cal.holes_created");
    holes_reclaimed_m_ = &r.counter("cal.holes_reclaimed");
    compact_moves_m_ = &r.counter("cal.compact_moves");
    chain_blocks_m_ = &r.histogram("cal.chain_blocks");
}

std::uint32_t CoarseAdjacencyList::allocate_block(std::uint32_t group) {
    std::uint32_t id;
    if (!free_.empty()) {
        id = free_.back();
        free_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(blocks_.size());
        blocks_.emplace_back();
        pool_.resize(pool_.size() + block_edges_);
    }
    blocks_[id] = BlockMeta{.next = kNone, .prev = kNone, .group = group,
                            .used = 0};
    blocks_allocated_m_->inc();
    // Chain-length distribution: sampled at growth time, when the walk is
    // proportional to the chain the paper cares about anyway. Gated so a
    // disabled run never pays the walk.
    if constexpr (obs::kEnabled) {
        if (obs::recording() && group < groups_.size()) {
            std::uint64_t len = 1;  // the block being linked in
            for (std::uint32_t b = groups_[group].head; b != kNone;
                 b = blocks_[b].next) {
                ++len;
            }
            chain_blocks_m_->record(len);
        }
    }
    return id;
}

void CoarseAdjacencyList::reserve_headroom() {
    // Invariant restored here: free_ can absorb a push for every block that
    // exists (or is about to), so free_tail_block never reallocates.
    if (free_.empty()) {
        // The next append may allocate one fresh block: metadata slot, one
        // block's worth of pool slots, and a free-list slot for its
        // eventual release. Geometric growth — vector::reserve alone would
        // degrade push_back's amortization to O(n^2).
        const std::size_t nblocks = blocks_.size() + 1;
        if (free_.capacity() < nblocks) {
            free_.reserve(std::max<std::size_t>(nblocks * 2, 8));
        }
        if (blocks_.capacity() < nblocks) {
            blocks_.reserve(std::max<std::size_t>(nblocks * 2, 8));
        }
        const std::size_t npool = pool_.size() + block_edges_;
        if (pool_.capacity() < npool) {
            pool_.reserve(std::max(npool, pool_.capacity() * 2));
        }
    } else if (free_.capacity() < blocks_.size()) {
        free_.reserve(blocks_.size());
    }
}

void CoarseAdjacencyList::prepare_append(VertexId dense_src) {
    const std::uint32_t group = dense_src / group_size_;
    if (group >= groups_.size()) {
        groups_.resize(static_cast<std::size_t>(group) + 1);
    }
    prepare_append_group(group);
}

void CoarseAdjacencyList::prepare_append_group(std::uint32_t /*group*/) {
    GT_FAILPOINT("cal.grow");
    reserve_headroom();
}

void CoarseAdjacencyList::prepare_erase() {
    GT_FAILPOINT("cal.grow");
    if (free_.capacity() < blocks_.size()) {
        free_.reserve(blocks_.size());
    }
}

std::uint32_t CoarseAdjacencyList::insert(VertexId dense_src, VertexId raw_src,
                                          VertexId dst, Weight weight,
                                          CellRef owner) {
    const std::uint32_t group = dense_src / group_size_;
    if (group >= groups_.size()) {
        groups_.resize(static_cast<std::size_t>(group) + 1);
    }
    return insert_in_group(group, raw_src, dst, weight, owner);
}

std::uint32_t CoarseAdjacencyList::insert_in_group(std::uint32_t group,
                                                   VertexId raw_src,
                                                   VertexId dst, Weight weight,
                                                   CellRef owner) {
    GroupMeta& meta = groups_[group];
    if (meta.tail == kNone || blocks_[meta.tail].used == block_edges_) {
        const std::uint32_t block = allocate_block(group);
        blocks_[block].prev = meta.tail;
        if (meta.tail == kNone) {
            meta.head = block;
        } else {
            blocks_[meta.tail].next = block;
        }
        meta.tail = block;
    }
    BlockMeta& tail = blocks_[meta.tail];
    const std::uint32_t pos = meta.tail * block_edges_ + tail.used;
    ++tail.used;
    pool_[pos] = CalEdgeSlot{.src = raw_src, .dst = dst, .weight = weight,
                             .owner = owner};
    ++live_;
    ++used_;
    return pos;
}

void CoarseAdjacencyList::free_tail_block(GroupMeta& meta) {
    assert(meta.tail != kNone && blocks_[meta.tail].used == 0);
    const std::uint32_t old_tail = meta.tail;
    const std::uint32_t prev = blocks_[old_tail].prev;
    meta.tail = prev;
    if (prev == kNone) {
        meta.head = kNone;
    } else {
        blocks_[prev].next = kNone;
    }
    free_.push_back(old_tail);
    blocks_freed_m_->inc();
}

std::optional<CoarseAdjacencyList::Moved> CoarseAdjacencyList::erase(
    std::uint32_t pos, bool compact) {
    CalEdgeSlot& victim = pool_[pos];
    assert(victim.src != kInvalidVertex && "double CAL erase");
    --live_;
    if (!compact) {
        // Delete-only: flag as invalid; the hole is skipped during streaming
        // but keeps being scanned, which is exactly the degradation Fig 15
        // measures.
        victim.src = kInvalidVertex;
        holes_created_m_->inc();
        return std::nullopt;
    }

    const std::uint32_t block = pos / block_edges_;
    GroupMeta& meta = groups_[blocks_[block].group];
    BlockMeta& tail = blocks_[meta.tail];
    assert(tail.used > 0);
    const std::uint32_t last_pos = meta.tail * block_edges_ + tail.used - 1;
    --tail.used;
    --used_;
    std::optional<Moved> moved;
    // Self-move guard: when the erased edge IS the group's tail edge
    // (last_pos == pos), there is nothing to relocate and no Moved may be
    // emitted — the caller would re-bind an owner's CAL pointer to a slot
    // this erase just vacated.
    if (last_pos != pos) {
        // Compact chains hold no holes, so the relocated tail edge is
        // always live and its owner backreference is current (every prior
        // cell move re-bound it through rebind()).
        assert(pool_[last_pos].src != kInvalidVertex &&
               "compact-mode tail slot must be live");
        pool_[pos] = pool_[last_pos];
        moved = Moved{.owner = pool_[pos].owner, .new_pos = pos};
        compact_moves_m_->inc();
    }
    pool_[last_pos] = CalEdgeSlot{};
    if (tail.used == 0) {
        free_tail_block(meta);
    }
    return moved;
}

std::size_t CoarseAdjacencyList::compact_chains(
    const std::function<void(CellRef, std::uint32_t)>& rebind) {
    std::size_t reclaimed = 0;
    for (GroupMeta& meta : groups_) {
        if (meta.head == kNone) {
            continue;
        }
        // One pass per chain with a trailing write cursor: live slots slide
        // toward the head (preserving streaming order), holes are skipped
        // and every relocated edge's owner is re-bound immediately.
        std::uint32_t wb = meta.head;
        std::uint32_t wslot = 0;
        std::uint64_t live_in_group = 0;
        for (std::uint32_t rb = meta.head; rb != kNone;
             rb = blocks_[rb].next) {
            const std::size_t rbase =
                static_cast<std::size_t>(rb) * block_edges_;
            const std::uint32_t used = blocks_[rb].used;
            for (std::uint32_t i = 0; i < used; ++i) {
                CalEdgeSlot& slot = pool_[rbase + i];
                if (slot.src == kInvalidVertex) {
                    ++reclaimed;  // delete-only hole: drops out of the chain
                    continue;
                }
                ++live_in_group;
                if (wslot == block_edges_) {
                    wb = blocks_[wb].next;
                    wslot = 0;
                }
                const auto wpos =
                    static_cast<std::uint32_t>(wb * block_edges_ + wslot);
                if (wpos != static_cast<std::uint32_t>(rbase + i)) {
                    pool_[wpos] = slot;
                    slot = CalEdgeSlot{};
                    rebind(pool_[wpos].owner, wpos);
                }
                ++wslot;
            }
        }
        if (live_in_group == 0) {
            // Nothing left: the whole chain returns to the free list.
            while (meta.tail != kNone) {
                blocks_[meta.tail].used = 0;
                free_tail_block(meta);
            }
            continue;
        }
        // Rewrite the bump counters — full blocks up to the write cursor,
        // the cursor block partial — and free everything past the cursor.
        for (std::uint32_t b = meta.head;; b = blocks_[b].next) {
            if (b == wb) {
                blocks_[b].used = wslot;
                break;
            }
            blocks_[b].used = block_edges_;
        }
        while (meta.tail != wb) {
            blocks_[meta.tail].used = 0;
            free_tail_block(meta);
        }
    }
    used_ -= reclaimed;
    holes_reclaimed_m_->add(reclaimed);
    return reclaimed;
}

void CoarseAdjacencyList::update_weight(std::uint32_t pos, Weight weight) {
    assert(pool_[pos].src != kInvalidVertex);
    pool_[pos].weight = weight;
}

void CoarseAdjacencyList::rebind(std::uint32_t pos, CellRef owner) {
    assert(pool_[pos].src != kInvalidVertex);
    pool_[pos].owner = owner;
}

CoarseAdjacencyList::SlotView CoarseAdjacencyList::slot_at(
    std::uint32_t pos) const {
    const CalEdgeSlot& slot = pool_[pos];
    return SlotView{.src = slot.src, .dst = slot.dst, .weight = slot.weight,
                    .owner = slot.owner, .valid = slot.src != kInvalidVertex};
}

}  // namespace gt::core
