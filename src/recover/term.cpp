#include "recover/term.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace gt::recover {

namespace {

constexpr std::uint32_t kTermMagic = 0x4754544DU;  // "GTTM" little-endian
constexpr std::uint32_t kTermVersion = 1;

std::string term_path(const std::string& dir) { return dir + "/term.gtt"; }

Status errno_status(const std::string& what) {
    return Status{StatusCode::IoError, what + ": " + std::strerror(errno)};
}

}  // namespace

Status load_term(const std::string& dir, std::uint64_t& term) {
    term = 0;
    const std::string path = term_path(dir);
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT) {
            return Status::success();  // never promoted: term 0
        }
        return errno_status("open('" + path + "')");
    }
    unsigned char buf[sizeof(kTermMagic) + sizeof(kTermVersion) +
                      sizeof(std::uint64_t)];
    ssize_t got = 0;
    for (;;) {
        got = ::read(fd, buf, sizeof(buf));
        if (got >= 0 || errno != EINTR) {
            break;
        }
    }
    ::close(fd);
    if (got != static_cast<ssize_t>(sizeof(buf))) {
        return Status{StatusCode::IoError,
                      "term file '" + path + "' is truncated"};
    }
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::memcpy(&magic, buf, sizeof(magic));
    std::memcpy(&version, buf + 4, sizeof(version));
    if (magic != kTermMagic) {
        return Status{StatusCode::IoError,
                      "term file '" + path + "' has a bad magic"};
    }
    if (version != kTermVersion) {
        return Status{StatusCode::IoError,
                      "term file '" + path + "' has unsupported version " +
                          std::to_string(version)};
    }
    std::memcpy(&term, buf + 8, sizeof(term));
    return Status::success();
}

Status store_term(const std::string& dir, std::uint64_t term) {
    std::uint64_t current = 0;
    if (const Status st = load_term(dir, current); !st.ok()) {
        return st;
    }
    if (term < current) {
        return Status{StatusCode::InvalidArgument,
                      "refusing to lower term " + std::to_string(current) +
                          " to " + std::to_string(term),
                      current};
    }
    if (term == current && term != 0) {
        return Status::success();  // already durable at this term
    }
    const std::string path = term_path(dir);
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        return errno_status("open('" + tmp + "')");
    }
    unsigned char buf[sizeof(kTermMagic) + sizeof(kTermVersion) +
                      sizeof(term)];
    std::memcpy(buf, &kTermMagic, sizeof(kTermMagic));
    std::memcpy(buf + 4, &kTermVersion, sizeof(kTermVersion));
    std::memcpy(buf + 8, &term, sizeof(term));
    std::size_t off = 0;
    while (off < sizeof(buf)) {
        const ssize_t put = ::write(fd, buf + off, sizeof(buf) - off);
        if (put > 0) {
            off += static_cast<std::size_t>(put);
            continue;
        }
        if (put < 0 && errno == EINTR) {
            continue;
        }
        if (put == 0) {
            errno = ENOSPC;
        }
        const Status st = errno_status("write('" + tmp + "')");
        ::close(fd);
        return st;
    }
    if (::fsync(fd) != 0) {
        const Status st = errno_status("fsync('" + tmp + "')");
        ::close(fd);
        return st;
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return errno_status("rename('" + tmp + "')");
    }
    // Fence the rename itself: a promotion must not evaporate on power
    // loss, or a resurrected stale primary could win the next election.
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0) {
        return errno_status("open('" + dir + "') for fsync");
    }
    const int rc = ::fsync(dfd);
    ::close(dfd);
    if (rc != 0) {
        return errno_status("fsync('" + dir + "')");
    }
    return Status::success();
}

}  // namespace gt::recover
