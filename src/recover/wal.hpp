// Checksummed write-ahead log (the durability tentpole).
//
// File layout:
//
//   u32 magic "GTWL", u32 version 1
//   record*:  u32 crc32c | u32 len | u64 seq | u8 type | payload[len]
//
// The crc covers (len, seq, type, payload), so a flipped bit anywhere in a
// record — header included — is detected. Sequence numbers are assigned at
// commit time and are strictly contiguous in the file; a gap means records
// were lost and recovery refuses the tail.
//
// Record types:
//
//   BatchBegin   payload u64 op_count      opens a commit frame
//   InsertRun    payload u32 n, n edges    insertions staged in the frame
//   DeleteRun    payload u32 n, n edges    deletions staged in the frame
//   BatchCommit  payload u64 op_count      seals the frame (durability point)
//   SoloInsert   payload 1 edge            single-op frame, collapsed
//   SoloDelete   payload 1 edge            single-op frame, collapsed
//
// A frame's records are buffered in memory while the store applies the
// batch and reach the file *only at commit* — one write() per batch (group
// commit), one fsync under DurabilityMode::FsyncBatch. A frame begun but
// never committed (crash mid-apply) therefore leaves no trace at all, and a
// crash mid-write leaves a torn tail that scan/replay discard down to the
// last committed frame — exactly the state the store's transactional
// rollback would have produced.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/update_log.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace gt::core {
class GraphTinker;
}  // namespace gt::core

namespace gt::recover {

namespace testing {
/// write(2)-shaped hook the WAL append path routes through when set. Tests
/// use it to provoke outcomes real filesystems won't produce on demand —
/// notably the `write() == 0` boundary — without touching the kernel. Not
/// thread-safe: install before I/O starts, clear (nullptr) when done.
using WriteFn = ssize_t (*)(int fd, const void* buf, std::size_t len);
void set_write_override(WriteFn fn) noexcept;
}  // namespace testing

inline constexpr std::uint32_t kWalMagic = 0x4754574C;  // "GTWL"
inline constexpr std::uint32_t kWalVersion = 1;
/// Records larger than this are rejected as corrupt before any
/// length-proportional allocation happens. The cap is enforced on the write
/// side by kWalMaxEdgesPerRun: staging splits a batch into bounded runs, so
/// no legitimate record can ever approach this limit.
inline constexpr std::uint32_t kWalMaxRecordLen = 1U << 30;

/// Edges per Insert/DeleteRun record. stage_inserts/stage_deletes split a
/// larger span across multiple runs inside the same frame, which keeps every
/// record payload (4 + n*sizeof(Edge) bytes) far below kWalMaxRecordLen and
/// every run count within u32 — an arbitrarily large committed batch must
/// never produce a record that scan_wal would reject as corrupt.
inline constexpr std::uint32_t kWalMaxEdgesPerRun = 1U << 22;

enum class WalRecordType : std::uint8_t {
    BatchBegin = 1,
    InsertRun = 2,
    DeleteRun = 3,
    BatchCommit = 4,
    SoloInsert = 5,
    SoloDelete = 6,
};

/// How hard commits push toward the platter.
enum class DurabilityMode : std::uint8_t {
    /// Log nothing (measurement baseline; recovery sees an empty log).
    Off,
    /// write() at commit; the OS page cache owns the data. Survives process
    /// crashes, not power loss.
    Buffered,
    /// write() + fsync() at commit — one fsync per *batch*, which is what
    /// makes WAL-per-batch affordable. Survives power loss.
    FsyncBatch,
};

[[nodiscard]] constexpr std::string_view to_string(DurabilityMode m) {
    switch (m) {
        case DurabilityMode::Off: return "off";
        case DurabilityMode::Buffered: return "buffered";
        case DurabilityMode::FsyncBatch: return "fsync_batch";
    }
    return "unknown";
}

/// One decoded record (payload still raw bytes).
struct WalRecord {
    std::uint64_t seq = 0;
    WalRecordType type{};
    std::vector<unsigned char> payload;
    std::uint64_t offset = 0;  // byte offset of the record header
};

/// Appending side. Implements core::UpdateLog so GraphTinker tees through
/// it; all UpdateLog methods are noexcept and latch the first failure into
/// status() (the store must not unwind through its durability tee).
class WalWriter final : public core::UpdateLog {
public:
    /// `registry` receives the "wal.*" telemetry; null keeps a private one.
    explicit WalWriter(obs::Registry* registry = nullptr);
    ~WalWriter() override;

    WalWriter(const WalWriter&) = delete;
    WalWriter& operator=(const WalWriter&) = delete;

    /// Opens (creating if absent) the log at `path` for appending. An
    /// existing file is scanned: its torn tail — anything after the last
    /// valid record — is truncated away. Appending resumes at
    /// max(next_seq_hint, last on-disk seq + 1): the hint is a *lower
    /// bound*, never lowered by the file, so a commit can never be
    /// assigned a sequence number an existing checkpoint already claims to
    /// cover — replay would silently skip it after the next crash. The
    /// hint must itself honor that contract: pass the newest snapshot's
    /// covered seq + 1 (every seq below the hint is checkpoint-covered).
    /// When the hint is ahead of the whole file, the covered records are
    /// dropped and the log restarts gap-free at the hint.
    [[nodiscard]] Status open(const std::string& path, DurabilityMode mode,
                              std::uint64_t next_seq_hint = 0);
    void close() noexcept;

    /// First error latched by the append path (Ok while healthy). Once
    /// non-Ok every further begin/stage/commit returns false.
    [[nodiscard]] const Status& status() const noexcept { return status_; }
    [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
    [[nodiscard]] DurabilityMode mode() const noexcept { return mode_; }
    /// Sequence number the next committed record will carry.
    [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
    /// Sequence number of the last record made durable (0 = none yet).
    [[nodiscard]] std::uint64_t durable_seq() const noexcept {
        return next_seq_ - 1;
    }

    /// Forces an fsync now (checkpointing wants a hard boundary even in
    /// Buffered mode).
    [[nodiscard]] Status sync() noexcept;

    /// Appends externally produced records verbatim — the replication
    /// follower's mirror path: records shipped from a primary land in this
    /// log carrying the primary's own sequence numbers, so the two logs
    /// stay byte-compatible and the follower's durable_seq() *is* its
    /// applied position. The records must continue this log's sequence
    /// exactly and form one complete frame (last record a commit or solo).
    /// One write() per call — the same durability point as commit_batch();
    /// FsyncBatch syncs. Refused (not latched) on a sequence gap so the
    /// caller can re-subscribe; I/O failures latch as usual.
    [[nodiscard]] Status append_frame(
        std::span<const WalRecord> records) noexcept;

    /// Latches `st` as the writer's terminal status: every further
    /// begin/stage/commit fails fast with it. Used when the enclosing store
    /// loses its log mid-rotation and must refuse writes rather than let
    /// them run silently un-teed.
    void poison(Status st) noexcept { latch(std::move(st)); }

    // ---- core::UpdateLog -------------------------------------------------
    // ([[nodiscard]] is not inherited from the interface, so restate it.)
    [[nodiscard]] bool begin_batch(std::uint64_t op_count) noexcept override;
    [[nodiscard]] bool stage_inserts(std::span<const Edge> edges)
        noexcept override;
    [[nodiscard]] bool stage_deletes(std::span<const Edge> edges)
        noexcept override;
    [[nodiscard]] bool commit_batch() noexcept override;
    void abort_batch() noexcept override;

private:
    struct StagedRun {
        WalRecordType type;
        std::uint32_t count;  // edges, stored back-to-back in stage_buf_
    };

    void latch(Status st) noexcept;
    /// Shared body of stage_inserts/stage_deletes: splits `edges` into
    /// kWalMaxEdgesPerRun-bounded runs.
    [[nodiscard]] bool stage_runs(WalRecordType type,
                                  std::span<const Edge> edges) noexcept;
    /// Encodes one record (header + payload + crc) into out_buf_.
    void encode_record(WalRecordType type, const void* payload,
                       std::size_t len);
    [[nodiscard]] bool write_out_buf() noexcept;

    int fd_ = -1;
    DurabilityMode mode_ = DurabilityMode::Buffered;
    std::uint64_t next_seq_ = 1;
    Status status_;

    bool in_batch_ = false;
    std::uint64_t batch_ops_ = 0;
    std::vector<StagedRun> staged_;
    std::vector<Edge> stage_buf_;
    std::vector<unsigned char> out_buf_;

    obs::Registry* registry_ = nullptr;
    std::unique_ptr<obs::Registry> owned_registry_;
    obs::Counter* records_m_ = nullptr;
    obs::Counter* commits_m_ = nullptr;
    obs::Counter* aborts_m_ = nullptr;
    obs::Counter* bytes_m_ = nullptr;
    obs::Counter* fsyncs_m_ = nullptr;
    obs::Histogram* commit_bytes_m_ = nullptr;
};

/// Outcome of a scan/replay pass.
struct ReplayStats {
    std::uint64_t records_scanned = 0;
    std::uint64_t batches_applied = 0;
    std::uint64_t edges_inserted = 0;
    std::uint64_t edges_deleted = 0;
    std::uint64_t last_seq = 0;          // last valid record seen
    std::uint64_t last_committed_seq = 0;
    std::uint64_t valid_bytes = 0;       // offset past the last valid record
    bool torn_tail = false;              // trailing bytes failed validation
    bool torn_batch = false;             // open frame discarded at EOF
    Status tail_status;                  // why scanning stopped (Ok = EOF)
};

/// Scans `path`, calling `fn(record)` for every valid record in order; stops
/// at the first invalid/torn record. Returns Ok when the whole file parsed
/// (stats.tail_status says why it stopped otherwise — a torn tail is
/// *expected* after a crash and is reported via stats, not the return).
/// Returns WalBadMagic/WalBadVersion when the file is not a WAL at all.
[[nodiscard]] Status scan_wal(
    const std::string& path, ReplayStats& stats,
    const std::function<void(const WalRecord&)>& fn);

/// Replays every committed frame with seq > `after_seq` into `graph`
/// (insert/delete runs re-applied in commit order). Torn tails and
/// uncommitted frames are discarded per the crash contract. The graph must
/// not have a WAL attached (replay must not re-log).
[[nodiscard]] Status replay_wal(const std::string& path,
                                core::GraphTinker& graph,
                                std::uint64_t after_seq, ReplayStats& stats);

/// Truncates `path` to its valid prefix (stats.valid_bytes of a scan). Used
/// by WalWriter::open before appending, and by tests.
[[nodiscard]] Status truncate_wal_tail(const std::string& path,
                                       std::uint64_t valid_bytes);

/// Record-by-record WAL application — the framing/commit semantics of
/// replay_wal() exposed incrementally, for consumers whose records arrive
/// one at a time (the replication follower's shipped stream) instead of
/// from a file scan. Runs of an open frame buffer in memory; only a
/// BatchCommit (or a solo record) mutates the graph, so a stream that stops
/// mid-frame leaves the graph exactly at the last committed boundary.
/// Records with seq <= `after_seq` (judged at the commit/solo record, the
/// frame's durability point) are skipped. The first framing violation or
/// apply failure latches: every later apply() returns it unchanged.
class WalApplier {
public:
    /// `stats`, when non-null, accumulates batches/edges counters exactly
    /// as replay_wal() reports them.
    explicit WalApplier(core::GraphTinker& graph, std::uint64_t after_seq = 0,
                        ReplayStats* stats = nullptr)
        : graph_(graph), after_seq_(after_seq), stats_(stats) {}

    /// Feeds one record (callers supply them in seq order). Returns the
    /// latched status — Ok means everything fed so far applied cleanly.
    [[nodiscard]] Status apply(const WalRecord& rec);

    [[nodiscard]] const Status& status() const noexcept { return status_; }
    /// True while a BatchBegin has been fed without its commit.
    [[nodiscard]] bool frame_open() const noexcept { return open_; }
    /// Seq of the last commit/solo record whose effects are in the graph.
    [[nodiscard]] std::uint64_t applied_seq() const noexcept {
        return applied_seq_;
    }

private:
    struct Run {
        bool deletes = false;
        std::vector<Edge> edges;
    };

    core::GraphTinker& graph_;
    std::uint64_t after_seq_ = 0;
    ReplayStats* stats_ = nullptr;
    bool open_ = false;
    std::vector<Run> runs_;
    std::uint64_t applied_seq_ = 0;
    Status status_;
};

/// Incremental WAL reader — the primary-side cursor behind the Subscribe
/// verb. Holds a private read fd plus a byte/seq cursor and surfaces the
/// complete records appended since the last poll(), in order.
///
/// Safe to run against a live WalWriter on the same file: the writer
/// write()s a frame's records in one append, so a poll sees either the
/// whole frame or a clean prefix ending in an incomplete record. An
/// incomplete tail is not an error here — the cursor stays parked on the
/// last whole-record boundary and the next poll retries — but a checksum
/// or sequence violation in *complete* bytes is real corruption and
/// latches status(). prune_wal() rewrites the log file in place, which
/// orphans this fd; the owner detects the resulting stall (or listens for
/// the prune) and reopens from its last shipped seq.
class WalTailer {
public:
    WalTailer() = default;
    ~WalTailer() { close(); }

    WalTailer(const WalTailer&) = delete;
    WalTailer& operator=(const WalTailer&) = delete;

    /// Opens `path` read-only and validates the file header. Records with
    /// seq <= `after_seq` are read but not surfaced — the catch-up skip for
    /// a follower that already holds a prefix.
    [[nodiscard]] Status open(const std::string& path,
                              std::uint64_t after_seq = 0);
    void close() noexcept;
    [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

    /// First hard failure (corruption past a complete record, read errors).
    /// Once latched every poll() returns 0.
    [[nodiscard]] const Status& status() const noexcept { return status_; }
    /// Sequence of the last record surfaced to a poll() callback (0 when
    /// nothing surfaced yet; skipped catch-up records do not count).
    [[nodiscard]] std::uint64_t last_seq() const noexcept {
        return last_seq_;
    }
    /// Sequence of the first record the file held at open() time — the
    /// tailer's servable floor. 0 when the log had no complete record header
    /// yet (fresh or pruned log; the owner falls back to the writer's
    /// resume seq).
    [[nodiscard]] std::uint64_t first_seq() const noexcept {
        return first_seq_;
    }

    /// Reads forward from the cursor, invoking `fn` for every complete
    /// record (after the catch-up skip). Stops at EOF, at an incomplete
    /// tail (both are "caught up for now" — retry after the next commit),
    /// after `limit` surfaced records (0 = unbounded), or at a latched
    /// failure. Returns the number surfaced to `fn` this call.
    [[nodiscard]] std::size_t poll(
        const std::function<void(const WalRecord&)>& fn,
        std::size_t limit = 0);

private:
    int fd_ = -1;
    std::uint64_t offset_ = 0;    // next unread byte
    std::uint64_t prev_seq_ = 0;  // contiguity check
    std::uint64_t skip_seq_ = 0;  // surface only seq > skip_seq_
    std::uint64_t last_seq_ = 0;
    std::uint64_t first_seq_ = 0;
    Status status_;
};

}  // namespace gt::recover
