// Primary-term sidecar — the durable fencing token for failover.
//
// A *term* is a monotonically increasing u64 naming which primary's history
// a graph directory belongs to. Every promotion bumps it; the gt.net.v1
// protocol carries it on Hello / Subscribe / ship frames so a partitioned
// old primary (lower term) can never overwrite or ship into a promoted
// replica (higher term) — the split-brain fence.
//
// The term deliberately lives *beside* the WAL, not inside it: replication
// mirrors WAL bytes verbatim (`WalWriter::append_frame`), and the WAL
// file/record headers are frozen by the wal-layout lint rule against the
// golden byte test. A sidecar keeps the primary's and replica's logs
// byte-identical across a promotion while still making the term crash-
// durable (written tmp + fsync + rename + dir fsync, the snapshot
// rotation's discipline).
//
// File format (<dir>/term.gtt): "GTTM" magic | u32 version (1) | u64 term,
// all little-endian. A missing file reads as term 0 — every pre-failover
// directory is term 0 by definition.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace gt::recover {

/// Reads the term recorded in `dir`. Missing file => term 0, Ok. A present
/// but malformed file is an error — fencing must never silently regress.
[[nodiscard]] Status load_term(const std::string& dir, std::uint64_t& term);

/// Crash-atomically records `term` in `dir`. Refuses (InvalidArgument) to
/// lower a previously recorded term: the fence only ratchets up.
[[nodiscard]] Status store_term(const std::string& dir, std::uint64_t term);

}  // namespace gt::recover
