// Deterministic crash-torture workload (tools/crash_torture.sh).
//
// The writer process applies step 0, 1, 2, ... against a DurableStore until
// it is killed. Every step is a single transactional batch derived purely
// from (seed, step), so a verifier — in a different process, after the
// kill — can regenerate the exact op stream. Every *insert* step carries a
// marker edge (kTortureMarkerSrc -> step); batches are atomic, so the set
// of markers present after recovery identifies exactly which insert steps
// committed. Delete steps (every 4th) cannot carry markers, which leaves
// one bit of ambiguity when the crash lands right after a delete step's
// commit: the verifier therefore accepts either of the two hypotheses
// (trailing delete committed / not yet) — see verify_torture_recovery.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/graphtinker.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gt::recover {

/// Marker source vertex — far outside the workload's vertex range.
inline constexpr VertexId kTortureMarkerSrc = 4000000000U;

/// True when `step` is a delete step (every 4th, after a warm-up).
[[nodiscard]] constexpr bool torture_step_is_delete(
    std::uint64_t step) noexcept {
    return step >= 3 && step % 4 == 3;
}

/// The batch for `step`, derived purely from (seed, step). Insert steps
/// draw `edges_per_step` random edges over a `vertices`-wide id space plus
/// the marker edge; delete steps re-derive the edges of step-3 and delete
/// them (their marker included).
[[nodiscard]] inline std::vector<Edge> torture_step_batch(
    std::uint64_t seed, std::uint64_t step, std::uint32_t edges_per_step,
    std::uint32_t vertices) {
    if (torture_step_is_delete(step)) {
        std::vector<Edge> prey =
            torture_step_batch(seed, step - 3, edges_per_step, vertices);
        for (Edge& e : prey) {
            e.weight = 0;  // weights are ignored by deletes
        }
        return prey;
    }
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + step);
    std::vector<Edge> batch;
    batch.reserve(edges_per_step + 1);
    for (std::uint32_t i = 0; i < edges_per_step; ++i) {
        const auto src = static_cast<VertexId>(rng.next_below(vertices));
        const auto dst = static_cast<VertexId>(rng.next_below(vertices));
        const auto w = static_cast<Weight>(1 + rng.next_below(1000));
        batch.push_back(Edge{src, dst, w});
    }
    // The marker rides in the same atomic batch as the payload.
    batch.push_back(Edge{kTortureMarkerSrc,
                         static_cast<VertexId>(step),
                         static_cast<Weight>(step + 1)});
    return batch;
}

/// Replays steps [0, steps) into `graph` (the verifier's twin build).
inline void torture_apply_steps(core::GraphTinker& graph, std::uint64_t seed,
                                std::uint64_t steps,
                                std::uint32_t edges_per_step,
                                std::uint32_t vertices) {
    for (std::uint64_t k = 0; k < steps; ++k) {
        const std::vector<Edge> batch =
            torture_step_batch(seed, k, edges_per_step, vertices);
        if (torture_step_is_delete(k)) {
            (void)graph.delete_batch(batch);
        } else {
            (void)graph.insert_batch(batch);
        }
    }
}

/// Sorted (src, dst, weight) triples of every live edge — the canonical
/// form the verifier compares.
[[nodiscard]] inline std::vector<Edge> sorted_edge_set(
    const core::GraphTinker& graph) {
    std::vector<Edge> edges;
    edges.reserve(graph.num_edges());
    graph.visit_edges([&](VertexId s, VertexId d, Weight w) {
        edges.push_back(Edge{s, d, w});
    });
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        return a.src != b.src ? a.src < b.src
               : a.dst != b.dst ? a.dst < b.dst
                                : a.weight < b.weight;
    });
    return edges;
}

/// Largest marker step present in `graph` (nullopt when none committed).
[[nodiscard]] inline std::optional<std::uint64_t> torture_max_marker(
    const core::GraphTinker& graph) {
    std::optional<std::uint64_t> best;
    graph.visit_out_edges(kTortureMarkerSrc, [&](VertexId dst, Weight) {
        if (!best || dst > *best) {
            best = dst;
        }
    });
    return best;
}

struct TortureVerdict {
    bool ok = false;
    std::uint64_t committed_steps = 0;  // steps the recovered state matches
    std::string detail;
};

/// Decides whether `recovered` equals a committed prefix of the torture
/// stream. Because a trailing *delete* step leaves no marker, both
/// hypotheses (with and without it) are regenerated and compared.
[[nodiscard]] inline TortureVerdict verify_torture_recovery(
    const core::GraphTinker& recovered, std::uint64_t seed,
    std::uint32_t edges_per_step, std::uint32_t vertices) {
    const std::optional<std::uint64_t> marker = torture_max_marker(recovered);
    // Steps 0..marker all committed (markers are per-insert-step and the
    // stream is sequential). Candidate prefix lengths: marker+1, or
    // marker+2 when the following step is a delete (whose commit is
    // invisible to markers).
    std::vector<std::uint64_t> candidates;
    if (!marker) {
        candidates.push_back(0);
    } else {
        candidates.push_back(*marker + 1);
        if (torture_step_is_delete(*marker + 1)) {
            candidates.push_back(*marker + 2);
        }
    }
    const std::vector<Edge> got = sorted_edge_set(recovered);
    for (const std::uint64_t steps : candidates) {
        core::Config cfg = recovered.config();
        cfg.reserve_edges = 0;
        core::GraphTinker twin(cfg);
        torture_apply_steps(twin, seed, steps, edges_per_step, vertices);
        if (sorted_edge_set(twin) == got) {
            return TortureVerdict{true, steps,
                                  "matches committed prefix of " +
                                      std::to_string(steps) + " step(s)"};
        }
    }
    TortureVerdict v;
    v.ok = false;
    v.committed_steps = marker ? *marker + 1 : 0;
    v.detail = "recovered edge set matches no committed prefix (max marker " +
               (marker ? std::to_string(*marker) : std::string{"none"}) + ")";
    return v;
}

}  // namespace gt::recover
