// DurableStore — a GraphTinker wrapped in the crash-recovery protocol.
//
// Directory layout:
//
//   <dir>/snapshot.gts        newest checkpoint (core/serialize.hpp v2)
//   <dir>/snapshot.prev.gts   previous checkpoint (fallback)
//   <dir>/wal.gtw             write-ahead log (recover/wal.hpp)
//
// open() recovery state machine:
//
//   1. load snapshot.gts; on *any* decode failure fall back to
//      snapshot.prev.gts; on failure again start from an empty store.
//      The per-file Status codes are surfaced in RecoveryInfo.
//   2. replay wal.gtw strictly after the loaded snapshot's wal_seq,
//      discarding the torn tail and any uncommitted frame.
//   3. audit() the rebuilt store; refuse (RecoveryAuditFailed) if any
//      structural invariant is violated.
//   4. truncate the WAL's torn tail and attach a WalWriter appending at
//      the next sequence number.
//
// checkpoint() writes snapshot.tmp.gts, fsyncs it, rotates
// snapshot.gts -> snapshot.prev.gts, renames the tmp into place, and fsyncs
// the directory — crash-atomic at every step. The WAL is *not* truncated by
// a checkpoint (by default): keeping it means a later snapshot corruption
// can still recover by full replay; prune_wal() reclaims the space when the
// caller decides the snapshots are trustworthy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph_service.hpp"
#include "core/graphtinker.hpp"
#include "recover/wal.hpp"
#include "util/status.hpp"

namespace gt::recover {

struct DurableOptions {
    /// Configuration for a store created from scratch (ignored when a
    /// snapshot supplies one).
    core::Config config{};
    DurabilityMode mode = DurabilityMode::Buffered;
    /// Run the deep structural audit after recovery (cheap insurance; turn
    /// off only for enormous stores).
    bool audit_after_recovery = true;
};

/// What open() found and did — surfaced for the CLI and tests.
struct RecoveryInfo {
    enum class Source : std::uint8_t { Fresh, Snapshot, PrevSnapshot };
    Source source = Source::Fresh;
    Status snapshot_status;       // decode result of snapshot.gts
    Status prev_snapshot_status;  // decode result of snapshot.prev.gts
    std::uint64_t snapshot_wal_seq = 0;
    ReplayStats replay;
    bool wal_present = false;
    bool audit_ran = false;
    bool audit_clean = true;
};

[[nodiscard]] constexpr std::string_view to_string(
    RecoveryInfo::Source s) noexcept {
    switch (s) {
        case RecoveryInfo::Source::Fresh: return "fresh";
        case RecoveryInfo::Source::Snapshot: return "snapshot";
        case RecoveryInfo::Source::PrevSnapshot: return "prev_snapshot";
    }
    return "unknown";
}

class DurableStore final : public GraphService {
public:
    DurableStore() = default;
    ~DurableStore() override;
    DurableStore(const DurableStore&) = delete;
    DurableStore& operator=(const DurableStore&) = delete;

    /// Recovers (or creates) the store at `dir` per the state machine above
    /// and attaches the WAL. `info` (optional) receives the recovery
    /// details.
    [[nodiscard]] Status open(const std::string& dir,
                              const DurableOptions& options = {},
                              RecoveryInfo* info = nullptr);

    /// Detaches the WAL and closes it (pending buffered data is written;
    /// FsyncBatch mode syncs).
    void close() noexcept;

    [[nodiscard]] bool is_open() const noexcept { return graph_ != nullptr; }
    [[nodiscard]] core::GraphTinker& graph() noexcept { return *graph_; }
    [[nodiscard]] const core::GraphTinker& graph() const noexcept {
        return *graph_;
    }
    [[nodiscard]] WalWriter& wal() noexcept { return *wal_; }

    /// Directory this store was opened on (empty when closed). The server
    /// uses it to key multi-tenant graphs by their on-disk root.
    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

    /// Forces the WAL to the platter now (hard durability boundary on
    /// demand — the server's Sync endpoint). Ok when no WAL is attached.
    [[nodiscard]] Status sync() noexcept {
        if (wal_ == nullptr || !wal_->is_open()) {
            return Status::success();
        }
        return wal_->sync();
    }

    /// Crash-atomically replaces the newest snapshot with the current
    /// in-memory state and records the WAL position it covers.
    [[nodiscard]] Status checkpoint();

    /// Drops WAL records a checkpoint already covers by rewriting the log.
    /// Call after a checkpoint has been verified/trusted.
    [[nodiscard]] Status prune_wal();

    // Paths (exposed for the torture harness).
    [[nodiscard]] std::string snapshot_path() const;
    [[nodiscard]] std::string prev_snapshot_path() const;
    [[nodiscard]] std::string wal_path() const;

    // ---- GraphService ----------------------------------------------------
    // The local implementation of the shared verb surface: mutations ride
    // the WAL-teed transactional batch path, bfs_distances runs the engine
    // in-process. checkpoint_now() is checkpoint().
    [[nodiscard]] Status insert_edges(std::span<const Edge> edges,
                                      std::uint64_t* edge_count) override;
    [[nodiscard]] Status delete_edges(std::span<const Edge> edges,
                                      std::uint64_t* edge_count) override;
    [[nodiscard]] Status degree_of(VertexId v, std::uint64_t& out) override;
    [[nodiscard]] Status bfs_distances(
        VertexId root, std::span<const VertexId> targets,
        std::vector<std::uint32_t>& out) override;
    [[nodiscard]] Status count(std::uint64_t& edges,
                               std::uint64_t& vertices) override;
    [[nodiscard]] Status checkpoint_now() override { return checkpoint(); }

private:
    std::string dir_;
    DurableOptions options_{};
    std::unique_ptr<core::GraphTinker> graph_;
    /// Created in open() so its "wal.*" telemetry lands in the graph's own
    /// registry (one unified exporter per store).
    std::unique_ptr<WalWriter> wal_;
};

}  // namespace gt::recover
