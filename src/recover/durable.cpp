#include "recover/durable.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/audit.hpp"
#include "core/serialize.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"

namespace gt::recover {

namespace {

bool file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

Status fsync_path(const std::string& path, bool directory) {
    const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
    const int fd = ::open(path.c_str(), flags | O_CLOEXEC);
    if (fd < 0) {
        return Status{StatusCode::IoError,
                      "open('" + path + "') for fsync failed: " +
                          std::strerror(errno)};
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        return Status{StatusCode::IoError,
                      "fsync('" + path + "') failed: " +
                          std::strerror(errno)};
    }
    return Status::success();
}

Status load_snapshot_file(const std::string& path,
                          core::LoadedSnapshot& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Status{StatusCode::IoError,
                      "cannot open snapshot '" + path + "'"};
    }
    return core::read_snapshot(in, out);
}

}  // namespace

DurableStore::~DurableStore() { close(); }

void DurableStore::close() noexcept {
    if (graph_ != nullptr && wal_ != nullptr) {
        graph_->attach_update_log(nullptr);
    }
    if (wal_ != nullptr) {
        wal_->close();
        wal_.reset();
    }
    graph_.reset();
}

std::string DurableStore::snapshot_path() const {
    return dir_ + "/snapshot.gts";
}
std::string DurableStore::prev_snapshot_path() const {
    return dir_ + "/snapshot.prev.gts";
}
std::string DurableStore::wal_path() const { return dir_ + "/wal.gtw"; }

Status DurableStore::open(const std::string& dir,
                          const DurableOptions& options, RecoveryInfo* info) {
    close();
    dir_ = dir;
    options_ = options;
    RecoveryInfo local;
    RecoveryInfo& ri = info != nullptr ? *info : local;
    ri = RecoveryInfo{};

    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status{StatusCode::IoError,
                      "mkdir('" + dir + "') failed: " + std::strerror(errno)};
    }

    // 1. Newest-valid-snapshot fallback chain.
    core::LoadedSnapshot loaded;
    if (file_exists(snapshot_path())) {
        ri.snapshot_status = load_snapshot_file(snapshot_path(), loaded);
        if (ri.snapshot_status.ok()) {
            ri.source = RecoveryInfo::Source::Snapshot;
        }
    } else {
        ri.snapshot_status =
            Status{StatusCode::IoError, "snapshot.gts absent"};
    }
    if (loaded.graph == nullptr && file_exists(prev_snapshot_path())) {
        ri.prev_snapshot_status =
            load_snapshot_file(prev_snapshot_path(), loaded);
        if (ri.prev_snapshot_status.ok()) {
            ri.source = RecoveryInfo::Source::PrevSnapshot;
        }
    }
    if (loaded.graph != nullptr) {
        graph_ = std::move(loaded.graph);
        ri.snapshot_wal_seq = loaded.wal_seq;
    } else {
        ri.source = RecoveryInfo::Source::Fresh;
        ri.snapshot_wal_seq = 0;
        try {
            graph_ = std::make_unique<core::GraphTinker>(options.config);
        } catch (const std::invalid_argument& e) {
            return Status{StatusCode::InvalidArgument, e.what()};
        }
    }

    // 2. Replay the WAL tail on top (strictly after the snapshot's seq).
    ri.wal_present = file_exists(wal_path());
    if (ri.wal_present) {
        const Status st =
            replay_wal(wal_path(), *graph_, ri.snapshot_wal_seq, ri.replay);
        if (!st.ok()) {
            graph_.reset();
            return st;
        }
    }

    // 3. Post-replay structural audit: a recovered store must be
    // indistinguishable from one that never crashed.
    if (options.audit_after_recovery) {
        ri.audit_ran = true;
        const core::AuditReport report = graph_->audit();
        ri.audit_clean = report.ok();
        if (!ri.audit_clean) {
            const Status st{StatusCode::RecoveryAuditFailed,
                            "post-replay audit: " + report.to_string(),
                            report.violations.size()};
            graph_.reset();
            return st;
        }
    }

    // 4. Attach the appending WAL (its open() truncates the torn tail).
    wal_ = std::make_unique<WalWriter>(&graph_->obs());
    const std::uint64_t resume =
        std::max(ri.replay.last_seq, ri.snapshot_wal_seq) + 1;
    const Status wst = wal_->open(wal_path(), options.mode, resume);
    if (!wst.ok()) {
        wal_.reset();
        graph_.reset();
        return wst;
    }
    graph_->attach_update_log(wal_.get());
    return Status::success();
}

// ---------------------------------------------------------------------------
// GraphService

namespace {

[[nodiscard]] Status require_open(const DurableStore& store,
                                  const char* verb) {
    if (!store.is_open()) {
        return Status{StatusCode::InvalidArgument,
                      std::string{verb} + " on a closed store"};
    }
    return Status::success();
}

}  // namespace

Status DurableStore::insert_edges(std::span<const Edge> edges,
                                  std::uint64_t* edge_count) {
    if (Status st = require_open(*this, "insert_edges"); !st.ok()) {
        return st;
    }
    if (Status st = graph_->insert_batch(edges); !st.ok()) {
        return st;
    }
    if (edge_count != nullptr) {
        *edge_count = graph_->num_edges();
    }
    return Status::success();
}

Status DurableStore::delete_edges(std::span<const Edge> edges,
                                  std::uint64_t* edge_count) {
    if (Status st = require_open(*this, "delete_edges"); !st.ok()) {
        return st;
    }
    if (Status st = graph_->delete_batch(edges); !st.ok()) {
        return st;
    }
    if (edge_count != nullptr) {
        *edge_count = graph_->num_edges();
    }
    return Status::success();
}

Status DurableStore::degree_of(VertexId v, std::uint64_t& out) {
    if (Status st = require_open(*this, "degree_of"); !st.ok()) {
        return st;
    }
    out = graph_->degree(v);
    return Status::success();
}

Status DurableStore::bfs_distances(VertexId root,
                                   std::span<const VertexId> targets,
                                   std::vector<std::uint32_t>& out) {
    if (Status st = require_open(*this, "bfs_distances"); !st.ok()) {
        return st;
    }
    engine::DynamicAnalysis<core::GraphTinker, engine::Bfs> a(*graph_);
    a.set_root(root);
    a.run_from_scratch();
    out.resize(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        out[i] = a.property(targets[i]);
    }
    return Status::success();
}

Status DurableStore::count(std::uint64_t& edges, std::uint64_t& vertices) {
    if (Status st = require_open(*this, "count"); !st.ok()) {
        return st;
    }
    edges = graph_->num_edges();
    vertices = graph_->num_vertices();
    return Status::success();
}

Status DurableStore::checkpoint() {
    if (!is_open()) {
        return Status{StatusCode::InvalidArgument,
                      "checkpoint on a closed store"};
    }
    // Hard durability boundary: everything the snapshot will claim to cover
    // must actually be on disk before the snapshot can rotate in.
    if (const Status st = wal_->sync(); !st.ok()) {
        return st;
    }
    const std::uint64_t covered_seq = wal_->durable_seq();
    const std::string tmp = dir_ + "/snapshot.tmp.gts";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return Status{StatusCode::IoError,
                          "cannot create '" + tmp + "'"};
        }
        if (const Status st = core::write_snapshot(*graph_, out, covered_seq);
            !st.ok()) {
            return st;
        }
    }
    if (const Status st = fsync_path(tmp, /*directory=*/false); !st.ok()) {
        return st;
    }
    // Rotate: current -> prev (clobbering the old prev), tmp -> current.
    // A crash between the renames leaves a valid prev to fall back to.
    if (file_exists(snapshot_path())) {
        if (std::rename(snapshot_path().c_str(),
                        prev_snapshot_path().c_str()) != 0) {
            return Status{StatusCode::IoError,
                          std::string{"snapshot rotate failed: "} +
                              std::strerror(errno)};
        }
    }
    if (std::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
        return Status{StatusCode::IoError,
                      std::string{"snapshot rename failed: "} +
                          std::strerror(errno)};
    }
    return fsync_path(dir_, /*directory=*/true);
}

Status DurableStore::prune_wal() {
    if (!is_open()) {
        return Status{StatusCode::InvalidArgument,
                      "prune_wal on a closed store"};
    }
    // The snapshot chain must cover everything the WAL would be pruned of;
    // simplest sound policy: checkpoint already ran, so start a fresh log.
    const std::uint64_t resume = wal_->next_seq();
    const DurabilityMode mode = wal_->mode();
    graph_->attach_update_log(nullptr);
    wal_->close();
    // From here on the graph is un-teed: every exit — success or failure —
    // must re-attach a log. On failure that means reopening whatever
    // wal_path() currently names (the original log, or the already-rotated
    // fresh one; either is a valid resume point given the checkpoint). If
    // even that fails, the writer is poisoned and re-attached so writes are
    // *refused* with the error rather than silently applied undurably.
    const auto fail = [&](Status st) {
        if (const Status re = wal_->open(wal_path(), mode, resume);
            !re.ok()) {
            wal_->poison(re);
        }
        graph_->attach_update_log(wal_.get());
        return st;
    };
    const std::string tmp = dir_ + "/wal.tmp.gtw";
    std::remove(tmp.c_str());  // a stale tmp must not donate its records
    {
        WalWriter fresh;
        if (const Status st = fresh.open(tmp, DurabilityMode::FsyncBatch,
                                         resume);
            !st.ok()) {
            return fail(st);
        }
        if (const Status st = fresh.sync(); !st.ok()) {
            return fail(st);
        }
        fresh.close();
    }
    if (std::rename(tmp.c_str(), wal_path().c_str()) != 0) {
        return fail(Status{StatusCode::IoError,
                           std::string{"wal rotate failed: "} +
                               std::strerror(errno)});
    }
    if (const Status st = fsync_path(dir_, /*directory=*/true); !st.ok()) {
        return fail(st);
    }
    if (const Status st = wal_->open(wal_path(), mode, resume); !st.ok()) {
        wal_->poison(st);
        graph_->attach_update_log(wal_.get());
        return st;
    }
    graph_->attach_update_log(wal_.get());
    return Status::success();
}

}  // namespace gt::recover
