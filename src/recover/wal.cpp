#include "recover/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/graphtinker.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

namespace gt::recover {

namespace testing {
namespace {
WriteFn g_write_override = nullptr;
}  // namespace
void set_write_override(WriteFn fn) noexcept { g_write_override = fn; }
}  // namespace testing

namespace {

ssize_t wal_write(int fd, const void* buf, std::size_t len) {
    if (testing::g_write_override != nullptr) {
        return testing::g_write_override(fd, buf, len);
    }
    return ::write(fd, buf, len);
}

constexpr std::size_t kRecordHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) + 1;
constexpr std::size_t kFileHeaderBytes = sizeof(std::uint32_t) * 2;

/// crc32c over (len, seq, type, payload) — everything after the crc field.
std::uint32_t record_crc(std::uint32_t len, std::uint64_t seq,
                         std::uint8_t type, const void* payload) {
    std::uint32_t crc = 0xFFFFFFFFU;
    crc = util::crc32c_extend(crc, &len, sizeof(len));
    crc = util::crc32c_extend(crc, &seq, sizeof(seq));
    crc = util::crc32c_extend(crc, &type, sizeof(type));
    crc = util::crc32c_extend(crc, payload, len);
    return crc ^ 0xFFFFFFFFU;
}

bool valid_type(std::uint8_t t) {
    return t >= static_cast<std::uint8_t>(WalRecordType::BatchBegin) &&
           t <= static_cast<std::uint8_t>(WalRecordType::SoloDelete);
}

/// Full-buffer write with EINTR/partial-write handling. A zero return from
/// write() (seen near ENOSPC boundaries on some filesystems) is terminal,
/// not progress — retrying it would spin forever — so it fails the write
/// with errno latched (ENOSPC when the kernel left it unset).
bool write_all(int fd, const unsigned char* data, std::size_t len) {
    while (len > 0) {
        errno = 0;
        const ssize_t n = wal_write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        if (n == 0) {
            if (errno == 0) {
                errno = ENOSPC;
            }
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Why a full-buffer read stopped. Scanning must tell a torn tail (EOF)
/// apart from a failing read(): truncating the log at a transient I/O error
/// would permanently discard the valid committed records that follow.
enum class ReadOutcome : std::uint8_t {
    Full,   ///< all `len` bytes read
    Eof,    ///< clean EOF before the first byte
    Short,  ///< EOF after some bytes — a genuinely torn record
    Error,  ///< read() failed (errno holds the cause)
};

ReadOutcome read_exact(int fd, unsigned char* data, std::size_t len) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::read(fd, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return ReadOutcome::Error;
        }
        if (n == 0) {
            return done == 0 ? ReadOutcome::Eof : ReadOutcome::Short;
        }
        done += static_cast<std::size_t>(n);
    }
    return ReadOutcome::Full;
}

}  // namespace

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(obs::Registry* registry) : registry_(registry) {
    if (registry_ == nullptr) {
        owned_registry_ = std::make_unique<obs::Registry>();
        registry_ = owned_registry_.get();
    }
    obs::Registry& r = *registry_;
    records_m_ = &r.counter("wal.records_appended");
    commits_m_ = &r.counter("wal.batches_committed");
    aborts_m_ = &r.counter("wal.batches_aborted");
    bytes_m_ = &r.counter("wal.bytes_written");
    fsyncs_m_ = &r.counter("wal.fsyncs");
    commit_bytes_m_ = &r.histogram("wal.commit_bytes");
}

WalWriter::~WalWriter() { close(); }

void WalWriter::latch(Status st) noexcept {
    if (status_.ok()) {
        status_ = std::move(st);
    }
}

Status WalWriter::open(const std::string& path, DurabilityMode mode,
                       std::uint64_t next_seq_hint) {
    close();
    status_ = Status::success();
    mode_ = mode;
    next_seq_ = next_seq_hint == 0 ? 1 : next_seq_hint;
    if (mode_ == DurabilityMode::Off) {
        // No file at all: commits are accounted (sequence numbers advance so
        // checkpoints stay coherent) but nothing is persisted.
        return Status::success();
    }

    // Scan whatever is already there: resume the sequence after the last
    // valid record and cut off any torn tail so fresh appends land on a
    // clean boundary. Existence is checked with stat(), not inferred from
    // the scan's error code — a mid-scan read error must refuse the open,
    // not masquerade as "no file yet" and stamp a header into the middle
    // of an existing log.
    struct stat sb{};
    const bool exists = ::stat(path.c_str(), &sb) == 0;
    ReplayStats scan;
    if (exists) {
        const Status scanned = scan_wal(path, scan, [](const WalRecord&) {});
        if (!scanned.ok()) {
            return scanned;  // foreign file, or the scan itself failed
        }
        if (scan.torn_tail) {
            if (const Status st = truncate_wal_tail(path, scan.valid_bytes);
                !st.ok()) {
                return st;
            }
        }
        // The hint is a lower bound (the snapshot's covered seq + 1): it is
        // never lowered to the file's resume point, or an on-disk log that
        // lags the checkpoint chain (e.g. a DurabilityMode::Off run
        // advanced seqs, checkpointed, then the mode was switched back)
        // would pull new commits down to sequence numbers replay silently
        // skips as already covered. When the hint is *ahead* of the file,
        // every on-disk record carries a covered seq — and appending at the
        // hint would leave a sequence gap scan_wal rejects as torn — so the
        // log resets to just its header and restarts gap-free at the hint.
        if (scan.last_seq != 0) {
            if (next_seq_ > scan.last_seq + 1) {
                if (const Status st =
                        truncate_wal_tail(path, kFileHeaderBytes);
                    !st.ok()) {
                    return st;
                }
                scan.valid_bytes = kFileHeaderBytes;
            } else {
                next_seq_ = scan.last_seq + 1;
            }
        }
    }

    const int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        return Status{StatusCode::IoError,
                      "open('" + path + "') failed: " + std::strerror(errno)};
    }
    if (!exists || scan.valid_bytes < kFileHeaderBytes) {
        const std::uint32_t magic = kWalMagic;
        const std::uint32_t version = kWalVersion;
        unsigned char header[kFileHeaderBytes];
        std::memcpy(header, &magic, sizeof(magic));
        std::memcpy(header + sizeof(magic), &version, sizeof(version));
        out_buf_.assign(header, header + sizeof(header));
        if (!write_out_buf()) {
            close();
            return Status{StatusCode::IoError, "WAL header write failed"};
        }
    }
    return Status::success();
}

void WalWriter::close() noexcept {
    if (fd_ >= 0) {
        if (mode_ == DurabilityMode::FsyncBatch) {
            ::fsync(fd_);
        }
        ::close(fd_);
        fd_ = -1;
    }
    in_batch_ = false;
    staged_.clear();
    stage_buf_.clear();
}

Status WalWriter::sync() noexcept {
    if (mode_ == DurabilityMode::Off) {
        return Status::success();
    }
    if (fd_ < 0) {
        return Status{StatusCode::WalClosed, "sync on a closed WAL"};
    }
    if (::fsync(fd_) != 0) {
        const Status st{StatusCode::IoError,
                        std::string{"fsync failed: "} + std::strerror(errno)};
        latch(st);
        return st;
    }
    fsyncs_m_->inc();
    return Status::success();
}

bool WalWriter::begin_batch(std::uint64_t op_count) noexcept {
    if (!status_.ok()) {
        return false;
    }
    if (in_batch_) {
        // Frames never nest (the store guards with its txn state); treat it
        // as a latched programming error rather than corrupting the log.
        latch(Status{StatusCode::WalBadRecord, "nested begin_batch"});
        return false;
    }
    try {
        in_batch_ = true;
        batch_ops_ = op_count;
        staged_.clear();
        stage_buf_.clear();
        return true;
    } catch (...) {
        latch(Status{StatusCode::ResourceExhausted, "begin_batch failed"});
        return false;
    }
}

bool WalWriter::stage_runs(WalRecordType type,
                           std::span<const Edge> edges) noexcept {
    if (!status_.ok() || !in_batch_) {
        return false;
    }
    try {
        GT_FAILPOINT("wal.stage");
        // Split oversized spans into bounded runs: a single run whose
        // payload tops kWalMaxRecordLen (or whose count wraps u32) would be
        // rejected by scan_wal as corrupt, and recovery would truncate that
        // committed batch *and every later frame* as a torn tail.
        do {
            const std::size_t n = std::min<std::size_t>(
                edges.size(), kWalMaxEdgesPerRun);
            staged_.push_back(
                StagedRun{type, static_cast<std::uint32_t>(n)});
            stage_buf_.insert(stage_buf_.end(), edges.begin(),
                              edges.begin() + static_cast<std::ptrdiff_t>(n));
            edges = edges.subspan(n);
        } while (!edges.empty());
        return true;
    } catch (...) {
        // Staging happens entirely in memory, before any file I/O — the
        // caller aborts the frame (dropping any partially staged runs) and
        // the log stays coherent, so this is a transient failure, not a
        // latched one.
        return false;
    }
}

bool WalWriter::stage_inserts(std::span<const Edge> edges) noexcept {
    return stage_runs(WalRecordType::InsertRun, edges);
}

bool WalWriter::stage_deletes(std::span<const Edge> edges) noexcept {
    return stage_runs(WalRecordType::DeleteRun, edges);
}

void WalWriter::encode_record(WalRecordType type, const void* payload,
                              std::size_t len) {
    const auto len32 = static_cast<std::uint32_t>(len);
    const std::uint64_t seq = next_seq_++;
    const auto type8 = static_cast<std::uint8_t>(type);
    const std::uint32_t crc = record_crc(len32, seq, type8, payload);
    const auto append = [this](const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        out_buf_.insert(out_buf_.end(), b, b + n);
    };
    append(&crc, sizeof(crc));
    append(&len32, sizeof(len32));
    append(&seq, sizeof(seq));
    append(&type8, sizeof(type8));
    append(payload, len);
    records_m_->inc();
}

bool WalWriter::write_out_buf() noexcept {
    if (mode_ == DurabilityMode::Off) {
        out_buf_.clear();
        return true;
    }
    if (fd_ < 0) {
        latch(Status{StatusCode::WalClosed, "append to a closed WAL"});
        return false;
    }
    if (!write_all(fd_, out_buf_.data(), out_buf_.size())) {
        latch(Status{StatusCode::IoError,
                     std::string{"WAL write failed: "} +
                         std::strerror(errno)});
        return false;
    }
    bytes_m_->add(out_buf_.size());
    out_buf_.clear();
    return true;
}

bool WalWriter::commit_batch() noexcept {
    if (!status_.ok() || !in_batch_) {
        return false;
    }
    in_batch_ = false;
    try {
        GT_FAILPOINT("wal.commit");
        out_buf_.clear();
        // Single-op frames collapse into one Solo record: a third of the
        // framing bytes and one crc, which is what keeps per-edge durable
        // inserts viable.
        if (batch_ops_ == 1 && staged_.size() == 1 && staged_[0].count == 1) {
            const WalRecordType solo =
                staged_[0].type == WalRecordType::InsertRun
                    ? WalRecordType::SoloInsert
                    : WalRecordType::SoloDelete;
            encode_record(solo, stage_buf_.data(), sizeof(Edge));
        } else {
            encode_record(WalRecordType::BatchBegin, &batch_ops_,
                          sizeof(batch_ops_));
            std::size_t edge_off = 0;
            std::vector<unsigned char> payload;
            for (const StagedRun& run : staged_) {
                payload.clear();
                payload.reserve(sizeof(run.count) +
                                run.count * sizeof(Edge));
                const auto* c =
                    reinterpret_cast<const unsigned char*>(&run.count);
                payload.insert(payload.end(), c, c + sizeof(run.count));
                const auto* e = reinterpret_cast<const unsigned char*>(
                    stage_buf_.data() + edge_off);
                payload.insert(payload.end(), e,
                               e + static_cast<std::size_t>(run.count) *
                                       sizeof(Edge));
                edge_off += run.count;
                encode_record(run.type, payload.data(), payload.size());
            }
            encode_record(WalRecordType::BatchCommit, &batch_ops_,
                          sizeof(batch_ops_));
        }
        const std::size_t commit_bytes = out_buf_.size();
        if (!write_out_buf()) {
            return false;
        }
        if (mode_ == DurabilityMode::FsyncBatch) {
            if (::fsync(fd_) != 0) {
                latch(Status{StatusCode::IoError,
                             std::string{"fsync failed: "} +
                                 std::strerror(errno)});
                return false;
            }
            fsyncs_m_->inc();
        }
        commits_m_->inc();
        commit_bytes_m_->record_sampled(commit_bytes);
        staged_.clear();
        stage_buf_.clear();
        return true;
    } catch (const fail::InjectedFault& f) {
        latch(Status{StatusCode::FaultInjected,
                     "injected fault at '" + f.site() + "'"});
        return false;
    } catch (...) {
        latch(Status{StatusCode::ResourceExhausted, "commit_batch failed"});
        return false;
    }
}

void WalWriter::abort_batch() noexcept {
    if (in_batch_) {
        in_batch_ = false;
        staged_.clear();
        stage_buf_.clear();
        aborts_m_->inc();
    }
}

Status WalWriter::append_frame(std::span<const WalRecord> records) noexcept {
    if (!status_.ok()) {
        return status_;
    }
    if (in_batch_) {
        return Status{StatusCode::InvalidArgument,
                      "append_frame during an open local batch"};
    }
    if (records.empty()) {
        return Status::success();
    }
    if (fd_ < 0 || mode_ == DurabilityMode::Off) {
        return Status{StatusCode::WalClosed,
                      "append_frame requires an open, durable WAL"};
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].seq != next_seq_ + i) {
            return Status{StatusCode::WalBadSequence,
                          "append_frame: records do not continue this log's "
                          "sequence (expected " +
                              std::to_string(next_seq_ + i) + ", got " +
                              std::to_string(records[i].seq) + ")"};
        }
        if (records[i].payload.size() > kWalMaxRecordLen) {
            return Status{StatusCode::WalBadRecord,
                          "append_frame: record payload exceeds "
                          "kWalMaxRecordLen"};
        }
    }
    const WalRecordType last = records.back().type;
    if (last != WalRecordType::BatchCommit &&
        last != WalRecordType::SoloInsert &&
        last != WalRecordType::SoloDelete) {
        return Status{StatusCode::WalBadRecord,
                      "append_frame: frame does not end at a commit or solo "
                      "record"};
    }
    try {
        out_buf_.clear();
        for (const WalRecord& rec : records) {
            // Seq equality was pre-validated above, so encode_record's
            // internally assigned next_seq_++ reproduces rec.seq exactly.
            encode_record(rec.type, rec.payload.data(), rec.payload.size());
        }
        const std::size_t commit_bytes = out_buf_.size();
        if (!write_out_buf()) {
            return status_;
        }
        if (mode_ == DurabilityMode::FsyncBatch) {
            if (::fsync(fd_) != 0) {
                latch(Status{StatusCode::IoError,
                             std::string{"fsync failed: "} +
                                 std::strerror(errno)});
                return status_;
            }
            fsyncs_m_->inc();
        }
        commits_m_->inc();
        commit_bytes_m_->record_sampled(commit_bytes);
        return Status::success();
    } catch (...) {
        latch(Status{StatusCode::ResourceExhausted, "append_frame failed"});
        return status_;
    }
}

// ---------------------------------------------------------------------------
// Scan / replay

Status scan_wal(const std::string& path, ReplayStats& stats,
                const std::function<void(const WalRecord&)>& fn) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        return Status{StatusCode::IoError,
                      "open('" + path + "') failed: " + std::strerror(errno)};
    }
    struct FdCloser {
        int fd;
        ~FdCloser() { ::close(fd); }
    } closer{fd};

    unsigned char header[kFileHeaderBytes];
    switch (read_exact(fd, header, sizeof(header))) {
        case ReadOutcome::Full:
            break;
        case ReadOutcome::Error:
            return Status{StatusCode::IoError,
                          "read('" + path +
                              "') failed: " + std::strerror(errno)};
        case ReadOutcome::Eof:
        case ReadOutcome::Short:
            // Empty (or sub-header) file: treat as a valid empty log with a
            // torn tail of whatever partial bytes exist.
            stats.valid_bytes = 0;
            stats.torn_tail = true;
            stats.tail_status = Status{StatusCode::WalTruncated,
                                       "EOF inside the file header"};
            return Status::success();
    }
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::memcpy(&magic, header, sizeof(magic));
    std::memcpy(&version, header + sizeof(magic), sizeof(version));
    if (magic != kWalMagic) {
        return Status{StatusCode::WalBadMagic, "not a GraphTinker WAL",
                      magic};
    }
    if (version != kWalVersion) {
        return Status{StatusCode::WalBadVersion, "unsupported WAL version",
                      version};
    }
    std::uint64_t offset = kFileHeaderBytes;
    stats.valid_bytes = offset;

    WalRecord rec;
    bool frame_open = false;
    std::uint64_t prev_seq = 0;
    const auto stop = [&](StatusCode code, std::string msg,
                          std::uint64_t detail = 0) {
        stats.torn_tail = true;
        stats.tail_status = Status{code, std::move(msg), detail};
        return Status::success();
    };
    for (;;) {
        unsigned char rh[kRecordHeaderBytes];
        const ReadOutcome got = read_exact(fd, rh, sizeof(rh));
        if (got == ReadOutcome::Eof) {
            break;  // clean EOF on a record boundary
        }
        if (got == ReadOutcome::Error) {
            // A failing read is NOT a torn tail: reporting it as one would
            // let WalWriter::open truncate away valid committed records.
            return Status{StatusCode::IoError,
                          "WAL read failed at offset " +
                              std::to_string(offset) + ": " +
                              std::strerror(errno)};
        }
        if (got == ReadOutcome::Short) {
            return stop(StatusCode::WalTruncated,
                        "EOF inside a record header", offset);
        }
        std::uint32_t crc = 0;
        std::uint32_t len = 0;
        std::uint64_t seq = 0;
        std::uint8_t type = 0;
        std::memcpy(&crc, rh, sizeof(crc));
        std::memcpy(&len, rh + 4, sizeof(len));
        std::memcpy(&seq, rh + 8, sizeof(seq));
        std::memcpy(&type, rh + 16, sizeof(type));
        if (len > kWalMaxRecordLen || !valid_type(type)) {
            return stop(StatusCode::WalBadRecord,
                        "record header out of bounds", offset);
        }
        rec.payload.resize(len);
        if (len > 0) {
            switch (read_exact(fd, rec.payload.data(), len)) {
                case ReadOutcome::Full:
                    break;
                case ReadOutcome::Error:
                    return Status{StatusCode::IoError,
                                  "WAL read failed at offset " +
                                      std::to_string(offset) + ": " +
                                      std::strerror(errno)};
                case ReadOutcome::Eof:
                case ReadOutcome::Short:
                    return stop(StatusCode::WalTruncated,
                                "EOF inside a record payload", offset);
            }
        }
        if (crc != record_crc(len, seq, type, rec.payload.data())) {
            return stop(StatusCode::WalChecksum, "record checksum mismatch",
                        offset);
        }
        if (prev_seq != 0 && seq != prev_seq + 1) {
            return stop(StatusCode::WalBadSequence,
                        "sequence gap in the record stream", seq);
        }
        prev_seq = seq;
        rec.seq = seq;
        rec.type = static_cast<WalRecordType>(type);
        rec.offset = offset;
        offset += sizeof(rh) + len;

        ++stats.records_scanned;
        stats.last_seq = seq;
        stats.valid_bytes = offset;
        switch (rec.type) {
            case WalRecordType::BatchBegin:
                frame_open = true;  // an older open frame is simply torn
                break;
            case WalRecordType::BatchCommit:
                frame_open = false;
                stats.last_committed_seq = seq;
                break;
            case WalRecordType::SoloInsert:
            case WalRecordType::SoloDelete:
                if (!frame_open) {
                    stats.last_committed_seq = seq;
                }
                break;
            default:
                break;
        }
        fn(rec);
    }
    stats.torn_batch = frame_open;
    return Status::success();
}

namespace {

[[nodiscard]] bool decode_run(const std::vector<unsigned char>& payload,
                              std::vector<Edge>& out) {
    std::uint32_t count = 0;
    if (payload.size() < sizeof(count)) {
        return false;
    }
    std::memcpy(&count, payload.data(), sizeof(count));
    const std::size_t need =
        sizeof(count) + static_cast<std::size_t>(count) * sizeof(Edge);
    if (payload.size() != need) {
        return false;
    }
    out.resize(count);
    std::memcpy(out.data(), payload.data() + sizeof(count),
                static_cast<std::size_t>(count) * sizeof(Edge));
    return true;
}

}  // namespace

Status WalApplier::apply(const WalRecord& rec) {
    if (!status_.ok()) {
        return status_;
    }
    const auto latch = [&](Status st) {
        if (!st.ok() && status_.ok()) {
            status_ = st;
        }
    };
    const auto reset_frame = [&] {
        open_ = false;
        runs_.clear();
    };
    switch (rec.type) {
        case WalRecordType::BatchBegin:
            reset_frame();  // an older open frame is simply torn
            open_ = true;
            break;
        case WalRecordType::InsertRun:
        case WalRecordType::DeleteRun: {
            if (!open_) {
                latch(Status{StatusCode::WalBadRecord,
                             "well-checksummed record violates framing"});
                break;
            }
            Run run;
            run.deletes = rec.type == WalRecordType::DeleteRun;
            if (!decode_run(rec.payload, run.edges)) {
                latch(Status{StatusCode::WalBadRecord,
                             "well-checksummed record violates framing"});
                break;
            }
            runs_.push_back(std::move(run));
            break;
        }
        case WalRecordType::BatchCommit: {
            if (!open_) {
                latch(Status{StatusCode::WalBadRecord,
                             "well-checksummed record violates framing"});
                break;
            }
            // Skip frames the snapshot already covers: the *commit* seq is
            // the frame's durability point.
            if (rec.seq > after_seq_) {
                for (const Run& run : runs_) {
                    if (run.deletes) {
                        latch(graph_.delete_batch(run.edges));
                        if (stats_ != nullptr) {
                            stats_->edges_deleted += run.edges.size();
                        }
                    } else {
                        latch(graph_.insert_batch(run.edges));
                        if (stats_ != nullptr) {
                            stats_->edges_inserted += run.edges.size();
                        }
                    }
                }
                if (stats_ != nullptr) {
                    ++stats_->batches_applied;
                }
                applied_seq_ = rec.seq;
            }
            reset_frame();
            break;
        }
        case WalRecordType::SoloInsert:
        case WalRecordType::SoloDelete: {
            if (open_) {
                // A solo record implicitly tears any open frame.
                reset_frame();
            }
            if (rec.payload.size() != sizeof(Edge)) {
                latch(Status{StatusCode::WalBadRecord,
                             "well-checksummed record violates framing"});
                break;
            }
            if (rec.seq <= after_seq_) {
                break;
            }
            std::vector<Edge> solo(1);
            std::memcpy(solo.data(), rec.payload.data(), sizeof(Edge));
            if (rec.type == WalRecordType::SoloInsert) {
                latch(graph_.insert_batch(solo));
                if (stats_ != nullptr) {
                    ++stats_->edges_inserted;
                }
            } else {
                latch(graph_.delete_batch(solo));
                if (stats_ != nullptr) {
                    ++stats_->edges_deleted;
                }
            }
            if (stats_ != nullptr) {
                ++stats_->batches_applied;
            }
            applied_seq_ = rec.seq;
            break;
        }
    }
    return status_;
}

Status replay_wal(const std::string& path, core::GraphTinker& graph,
                  std::uint64_t after_seq, ReplayStats& stats) {
    WalApplier applier(graph, after_seq, &stats);
    const Status st = scan_wal(path, stats, [&](const WalRecord& rec) {
        (void)applier.apply(rec);  // first failure latches; later feeds no-op
    });
    if (!st.ok()) {
        return st;
    }
    if (!applier.status().ok()) {
        return applier.status();
    }
    stats.torn_batch = stats.torn_batch || applier.frame_open();
    return Status::success();
}

// ---------------------------------------------------------------------------
// WalTailer

namespace {

/// pread_exact: like read_exact but at an explicit offset, leaving the fd's
/// own position alone — a stalled poll must not disturb the cursor.
ReadOutcome pread_exact(int fd, unsigned char* data, std::size_t len,
                        std::uint64_t offset) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::pread(fd, data + done, len - done,
                                  static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return ReadOutcome::Error;
        }
        if (n == 0) {
            return done == 0 ? ReadOutcome::Eof : ReadOutcome::Short;
        }
        done += static_cast<std::size_t>(n);
    }
    return ReadOutcome::Full;
}

}  // namespace

Status WalTailer::open(const std::string& path, std::uint64_t after_seq) {
    close();
    status_ = Status::success();
    skip_seq_ = after_seq;
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) {
        return Status{StatusCode::IoError,
                      "open('" + path + "') failed: " + std::strerror(errno)};
    }
    unsigned char header[kFileHeaderBytes];
    switch (pread_exact(fd_, header, sizeof(header), 0)) {
        case ReadOutcome::Full:
            break;
        case ReadOutcome::Error: {
            Status st{StatusCode::IoError,
                      "read('" + path +
                          "') failed: " + std::strerror(errno)};
            close();
            return st;
        }
        case ReadOutcome::Eof:
        case ReadOutcome::Short:
            close();
            return Status{StatusCode::WalTruncated,
                          "EOF inside the WAL file header"};
    }
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::memcpy(&magic, header, sizeof(magic));
    std::memcpy(&version, header + sizeof(magic), sizeof(version));
    if (magic != kWalMagic) {
        close();
        return Status{StatusCode::WalBadMagic, "not a GraphTinker WAL",
                      magic};
    }
    if (version != kWalVersion) {
        close();
        return Status{StatusCode::WalBadVersion, "unsupported WAL version",
                      version};
    }
    offset_ = kFileHeaderBytes;
    prev_seq_ = 0;
    last_seq_ = 0;
    // Peek the first record header for the servable floor; an incomplete
    // header (fresh log, or mid-first-append) leaves it 0 and the owner
    // falls back to the writer's resume seq.
    first_seq_ = 0;
    unsigned char rh[kRecordHeaderBytes];
    if (pread_exact(fd_, rh, sizeof(rh), kFileHeaderBytes) ==
        ReadOutcome::Full) {
        std::memcpy(&first_seq_, rh + 8, sizeof(first_seq_));
    }
    return Status::success();
}

void WalTailer::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    offset_ = 0;
    prev_seq_ = 0;
    last_seq_ = 0;
    first_seq_ = 0;
}

std::size_t WalTailer::poll(const std::function<void(const WalRecord&)>& fn,
                            std::size_t limit) {
    if (fd_ < 0 || !status_.ok()) {
        return 0;
    }
    std::size_t surfaced = 0;
    WalRecord rec;
    while (limit == 0 || surfaced < limit) {
        unsigned char rh[kRecordHeaderBytes];
        const ReadOutcome got = pread_exact(fd_, rh, sizeof(rh), offset_);
        if (got == ReadOutcome::Eof || got == ReadOutcome::Short) {
            break;  // caught up (a short header fills in on a later poll)
        }
        if (got == ReadOutcome::Error) {
            status_ = Status{StatusCode::IoError,
                             "WAL tail read failed at offset " +
                                 std::to_string(offset_) + ": " +
                                 std::strerror(errno)};
            break;
        }
        std::uint32_t crc = 0;
        std::uint32_t len = 0;
        std::uint64_t seq = 0;
        std::uint8_t type = 0;
        std::memcpy(&crc, rh, sizeof(crc));
        std::memcpy(&len, rh + 4, sizeof(len));
        std::memcpy(&seq, rh + 8, sizeof(seq));
        std::memcpy(&type, rh + 16, sizeof(type));
        if (len > kWalMaxRecordLen || !valid_type(type)) {
            status_ = Status{StatusCode::WalBadRecord,
                             "record header out of bounds", offset_};
            break;
        }
        rec.payload.resize(len);
        if (len > 0) {
            const ReadOutcome body = pread_exact(
                fd_, rec.payload.data(), len, offset_ + sizeof(rh));
            if (body == ReadOutcome::Eof || body == ReadOutcome::Short) {
                break;  // mid-append; the rest arrives with the commit
            }
            if (body == ReadOutcome::Error) {
                status_ = Status{StatusCode::IoError,
                                 "WAL tail read failed at offset " +
                                     std::to_string(offset_) + ": " +
                                     std::strerror(errno)};
                break;
            }
        }
        // Complete bytes past this point are final (appends are ordered),
        // so validation failures are corruption, not racing.
        if (crc != record_crc(len, seq, type, rec.payload.data())) {
            status_ = Status{StatusCode::WalChecksum,
                             "record checksum mismatch", offset_};
            break;
        }
        if (prev_seq_ != 0 && seq != prev_seq_ + 1) {
            status_ = Status{StatusCode::WalBadSequence,
                             "sequence gap in the record stream", seq};
            break;
        }
        prev_seq_ = seq;
        rec.seq = seq;
        rec.type = static_cast<WalRecordType>(type);
        rec.offset = offset_;
        offset_ += sizeof(rh) + len;
        if (seq <= skip_seq_) {
            continue;  // catch-up skip: the follower already holds this
        }
        last_seq_ = seq;
        ++surfaced;
        fn(rec);
    }
    return surfaced;
}

Status truncate_wal_tail(const std::string& path,
                         std::uint64_t valid_bytes) {
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
        return Status{StatusCode::IoError,
                      "truncate('" + path +
                          "') failed: " + std::strerror(errno)};
    }
    return Status::success();
}

}  // namespace gt::recover
