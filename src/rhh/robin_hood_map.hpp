// A standalone Robin Hood open-addressing hash map.
//
// This is the hashing substrate of the paper (§III.A): on collision, the
// incoming element competes with the resident by probe distance — the
// "richer" element (smaller displacement from its home bucket) yields the
// slot and the displaced element continues probing. The result is a tight
// upper bound on probe distance and very stable lookup cost at high load.
//
// GraphTinker uses this map for the Scatter-Gather Hashing table (raw source
// id -> dense hashed id, and reverse), and the benchmark suite measures it in
// isolation (bench/micro_rhh).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/hash.hpp"
#include "util/simd.hpp"

namespace gt {

/// Robin Hood map from a 32/64-bit integral key to an arbitrary value.
/// Deletion uses backward-shift, so no tombstones ever accumulate and the
/// probe-distance invariant is preserved across any operation mix.
template <typename Key, typename Value>
class RobinHoodMap {
    static_assert(std::is_integral_v<Key>, "RobinHoodMap keys are integers");

public:
    explicit RobinHoodMap(std::size_t initial_capacity = 16) {
        rehash(round_up(initial_capacity));
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    /// Bytes held by the slot table.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return slots_.size() * sizeof(Slot);
    }

    /// Inserts key->value or overwrites the existing mapping.
    /// Returns true when the key was newly inserted.
    [[nodiscard]] bool insert(Key key, Value value) {
        if ((size_ + 1) * 10 >= capacity() * 7) {  // load factor 0.7
            rehash(capacity() * 2);
        }
        return insert_no_grow(key, std::move(value));
    }

    /// Looks up a key; nullptr when absent.
    [[nodiscard]] const Value* find(Key key) const noexcept {
        const std::size_t mask = capacity() - 1;
        std::size_t pos = home(key);
        for (std::uint32_t dist = 0;; ++dist, pos = (pos + 1) & mask) {
            const Slot& slot = slots_[pos];
            if (!slot.occupied || slot.probe < dist) {
                // Robin Hood invariant: if this element were present it would
                // have displaced a richer resident by now.
                return nullptr;
            }
            if (slot.key == key) {
                return &slot.value;
            }
        }
    }

    [[nodiscard]] Value* find(Key key) noexcept {
        return const_cast<Value*>(std::as_const(*this).find(key));
    }

    [[nodiscard]] bool contains(Key key) const noexcept {
        return find(key) != nullptr;
    }

    /// Warms the home bucket of `key` ahead of a find/insert — callers that
    /// know their next lookups (e.g. the batched ingest resolving a sorted
    /// source list) overlap the bucket miss with useful work.
    void prefetch(Key key) const noexcept {
        gt::simd::prefetch(&slots_[home(key)]);
    }

    /// Removes a key via backward-shift; returns the removed value if any.
    std::optional<Value> erase(Key key) {
        const std::size_t mask = capacity() - 1;
        std::size_t pos = home(key);
        for (std::uint32_t dist = 0;; ++dist, pos = (pos + 1) & mask) {
            Slot& slot = slots_[pos];
            if (!slot.occupied || slot.probe < dist) {
                return std::nullopt;
            }
            if (slot.key == key) {
                std::optional<Value> out = std::move(slot.value);
                backward_shift(pos);
                --size_;
                return out;
            }
        }
    }

    /// Maximum displacement of any resident element (diagnostics).
    [[nodiscard]] std::uint32_t max_probe_distance() const noexcept {
        std::uint32_t max = 0;
        for (const Slot& slot : slots_) {
            if (slot.occupied && slot.probe > max) {
                max = slot.probe;
            }
        }
        return max;
    }

    /// Mean displacement of resident elements (diagnostics).
    [[nodiscard]] double mean_probe_distance() const noexcept {
        if (size_ == 0) {
            return 0.0;
        }
        std::uint64_t total = 0;
        for (const Slot& slot : slots_) {
            if (slot.occupied) {
                total += slot.probe;
            }
        }
        return static_cast<double>(total) / static_cast<double>(size_);
    }

    /// Visits every (key, value) pair in unspecified order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Slot& slot : slots_) {
            if (slot.occupied) {
                fn(slot.key, slot.value);
            }
        }
    }

    void clear() {
        for (Slot& slot : slots_) {
            slot = Slot{};
        }
        size_ = 0;
    }

private:
    struct Slot {
        Key key{};
        Value value{};
        std::uint32_t probe = 0;
        bool occupied = false;
    };

    static std::size_t round_up(std::size_t n) {
        std::size_t p = 16;
        while (p < n) {
            p <<= 1;
        }
        return p;
    }

    [[nodiscard]] std::size_t home(Key key) const noexcept {
        return static_cast<std::size_t>(
                   mix64(static_cast<std::uint64_t>(key))) &
               (capacity() - 1);
    }

    bool insert_no_grow(Key key, Value value) {
        const std::size_t mask = capacity() - 1;
        std::size_t pos = home(key);
        Key cur_key = key;
        Value cur_value = std::move(value);
        std::uint32_t cur_probe = 0;
        bool inserted_new = false;
        bool still_original = true;  // tracks whether cur_* is the new entry
        for (;; pos = (pos + 1) & mask, ++cur_probe) {
            Slot& slot = slots_[pos];
            if (!slot.occupied) {
                slot.key = cur_key;
                slot.value = std::move(cur_value);
                slot.probe = cur_probe;
                slot.occupied = true;
                ++size_;
                return still_original ? true : inserted_new;
            }
            if (still_original && slot.key == cur_key) {
                slot.value = std::move(cur_value);  // overwrite semantics
                return false;
            }
            if (slot.probe < cur_probe) {
                // Rob the rich: swap the floater with the resident.
                std::swap(slot.key, cur_key);
                std::swap(slot.value, cur_value);
                std::swap(slot.probe, cur_probe);
                if (still_original) {
                    inserted_new = true;
                    still_original = false;
                }
            }
        }
    }

    void backward_shift(std::size_t hole) {
        const std::size_t mask = capacity() - 1;
        for (;;) {
            const std::size_t next = (hole + 1) & mask;
            Slot& successor = slots_[next];
            if (!successor.occupied || successor.probe == 0) {
                slots_[hole] = Slot{};
                return;
            }
            slots_[hole] = std::move(successor);
            --slots_[hole].probe;
            hole = next;
        }
    }

    void rehash(std::size_t new_capacity) {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_capacity, Slot{});
        size_ = 0;
        for (Slot& slot : old) {
            if (slot.occupied) {
                insert_no_grow(slot.key, std::move(slot.value));
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

}  // namespace gt
