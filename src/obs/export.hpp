// Rendering for gt::obs snapshots — one exporter for every emitter.
//
// JsonWriter is a small streaming JSON emitter (comma/indent bookkeeping,
// string escaping, shortest-round-trip doubles) used by the benches for
// their envelope documents; Exporter renders a Snapshot either as a
// stable-schema JSON value ("gt.obs.v1", sections sorted by metric name)
// or as aligned human tables. Benches and the CLI embed snapshots with
// Exporter::append_json instead of hand-rolling JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace gt::obs {

/// Streaming JSON writer. Call shape mirrors the document: begin_object /
/// key / value / end_object, with commas, newlines and 2-space indentation
/// inserted automatically. Output is deterministic (doubles use shortest
/// round-trip formatting), which the golden-schema test relies on.
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v) { return value(std::string_view(v)); }
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(unsigned v) {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter& value(bool v);

    /// key(k) + value(v) in one call.
    template <typename T>
    JsonWriter& member(std::string_view k, T&& v) {
        key(k);
        return value(std::forward<T>(v));
    }

    /// Terminates the document with a trailing newline (top level only).
    void finish();

    /// Formats a double exactly as value(double) would — shared with the
    /// table renderer so both outputs agree.
    [[nodiscard]] static std::string format_double(double v);

private:
    void before_value();
    void newline_indent();

    std::ostream& os_;
    // One level per open container: 'o' expecting key, 'v' object expecting
    // value (key already written), 'a' array.
    std::string stack_;
    std::vector<bool> has_items_;
};

/// Renders Snapshots. All three consumers (micro_ingest, micro_churn,
/// `gt stats`) go through this one implementation.
class Exporter {
public:
    /// Writes a full JSON document: the snapshot object plus trailing
    /// newline.
    static void write_json(std::ostream& os, const Snapshot& snap);

    /// Emits the snapshot as the *current value* of `w` — use after
    /// w.key("registry") to embed a snapshot in a larger document.
    static void append_json(JsonWriter& w, const Snapshot& snap);

    /// Renders aligned human tables (counters/gauges, histogram summary
    /// with mean/p50/p99, series rows).
    static void write_table(std::ostream& os, const Snapshot& snap);
};

}  // namespace gt::obs
