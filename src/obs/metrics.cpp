#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>

namespace gt::obs {

namespace {

std::uint32_t floor_pow2(std::uint32_t v) noexcept {
    return v == 0 ? 1 : std::bit_floor(v);
}

std::uint32_t env_sample_period() noexcept {
    const char* raw = std::getenv("GT_OBS_SAMPLE");
    if (raw == nullptr || *raw == '\0') {
        return 64;
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(raw, &end, 10);
    if (end == raw || v == 0 || v > (1u << 30)) {
        return 64;
    }
    return floor_pow2(static_cast<std::uint32_t>(v));
}

bool env_recording() noexcept {
    const char* raw = std::getenv("GT_OBS_RECORD");
    if (raw == nullptr || *raw == '\0') {
        return true;
    }
    return !(raw[0] == '0' && raw[1] == '\0');
}

std::atomic<bool>& recording_flag() noexcept {
    static std::atomic<bool> flag{env_recording()};
    return flag;
}

std::atomic<std::uint32_t>& sample_mask_word() noexcept {
    static std::atomic<std::uint32_t> mask{env_sample_period() - 1};
    return mask;
}

}  // namespace

bool recording() noexcept {
    return recording_flag().load(std::memory_order_relaxed);
}

void set_recording(bool on) noexcept {
    recording_flag().store(on, std::memory_order_relaxed);
}

std::uint32_t sample_period() noexcept {
    return detail::sample_mask() + 1;
}

void set_sample_period(std::uint32_t period) noexcept {
    sample_mask_word().store(floor_pow2(period) - 1,
                             std::memory_order_relaxed);
}

std::uint32_t detail::sample_mask() noexcept {
    return sample_mask_word().load(std::memory_order_relaxed);
}

// ---- Snapshot ---------------------------------------------------------

namespace {

template <typename Rows>
auto* find_row(const Rows& rows, std::string_view name) {
    // Rows are sorted by name (registry maps iterate in order).
    const auto it = std::lower_bound(
        rows.begin(), rows.end(), name,
        [](const auto& row, std::string_view n) { return row.name < n; });
    return (it != rows.end() && it->name == name) ? &*it : nullptr;
}

}  // namespace

std::uint64_t Snapshot::HistogramRow::quantile_bound(
    double q) const noexcept {
    if (count == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen > rank) {
            return Histogram::bucket_limit(i);
        }
    }
    return Histogram::bucket_limit(buckets.size() - 1);
}

const Snapshot::CounterRow* Snapshot::counter(std::string_view name) const {
    return find_row(counters, name);
}
const Snapshot::GaugeRow* Snapshot::gauge(std::string_view name) const {
    return find_row(gauges, name);
}
const Snapshot::HistogramRow* Snapshot::histogram(
    std::string_view name) const {
    return find_row(histograms, name);
}
const Snapshot::SeriesRow* Snapshot::find_series(
    std::string_view name) const {
    return find_row(series, name);
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
    const CounterRow* row = counter(name);
    return row == nullptr ? 0 : row->value;
}

double Snapshot::gauge_value(std::string_view name) const {
    const GaugeRow* row = gauge(name);
    return row == nullptr ? 0.0 : row->value;
}

// ---- MetricsRegistry --------------------------------------------------

namespace {

template <typename T, typename Map, typename Make>
T& resolve(Map& map, std::string_view name, Make make) {
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(std::string(name), make()).first;
    }
    return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
    const LockGuard lock(mu_);
    return resolve<Counter>(counters_, name,
                   [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    const LockGuard lock(mu_);
    return resolve<Gauge>(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
    const LockGuard lock(mu_);
    return resolve<Histogram>(histograms_, name,
                   [] { return std::make_unique<Histogram>(); });
}

Series& MetricsRegistry::series(std::string_view name,
                                std::vector<std::string> fields,
                                std::size_t capacity) {
    const LockGuard lock(mu_);
    return resolve<Series>(series_, name, [&] {
        return std::make_unique<Series>(std::move(fields), capacity);
    });
}

Snapshot MetricsRegistry::snapshot() const {
    const LockGuard lock(mu_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        snap.counters.push_back({name, c->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        snap.gauges.push_back({name, g->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        Snapshot::HistogramRow row;
        row.name = name;
        row.count = h->count();
        row.sum = h->sum();
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            row.buckets[i] = h->bucket(i);
        }
        snap.histograms.push_back(std::move(row));
    }
    snap.series.reserve(series_.size());
    for (const auto& [name, s] : series_) {
        snap.series.push_back({name, s->fields(), s->rows()});
    }
    return snap;
}

}  // namespace gt::obs
