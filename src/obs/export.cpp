#include "obs/export.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <ostream>

#include "util/table.hpp"

namespace gt::obs {

// ---- JsonWriter -------------------------------------------------------

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

}  // namespace

std::string JsonWriter::format_double(double v) {
    if (!std::isfinite(v)) {
        return "0";  // JSON has no NaN/Inf; benches never produce them
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

void JsonWriter::newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) {
        os_ << "  ";
    }
}

void JsonWriter::before_value() {
    if (stack_.empty()) {
        return;  // top-level document value
    }
    char& state = stack_.back();
    if (state == 'v') {
        state = 'o';  // value consumed the pending key
        return;
    }
    assert(state == 'a' && "JSON object members need key() before value()");
    if (has_items_.back()) {
        os_ << ',';
    }
    has_items_.back() = true;
    newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
    assert(!stack_.empty() && stack_.back() == 'o');
    if (has_items_.back()) {
        os_ << ',';
    }
    has_items_.back() = true;
    newline_indent();
    write_escaped(os_, name);
    os_ << ": ";
    stack_.back() = 'v';
    return *this;
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    os_ << '{';
    stack_.push_back('o');
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    assert(!stack_.empty() && stack_.back() == 'o');
    const bool had_items = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        newline_indent();
    }
    os_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    os_ << '[';
    stack_.push_back('a');
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    assert(!stack_.empty() && stack_.back() == 'a');
    const bool had_items = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had_items) {
        newline_indent();
    }
    os_ << ']';
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
    before_value();
    write_escaped(os_, v);
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    before_value();
    os_ << format_double(v);
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    before_value();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    before_value();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    before_value();
    os_ << (v ? "true" : "false");
    return *this;
}

void JsonWriter::finish() {
    assert(stack_.empty() && "finish() with unclosed containers");
    os_ << '\n';
}

// ---- Exporter ---------------------------------------------------------

void Exporter::append_json(JsonWriter& w, const Snapshot& snap) {
    w.begin_object();
    w.member("schema", "gt.obs.v1");

    w.key("counters").begin_object();
    for (const auto& c : snap.counters) {
        w.member(c.name, c.value);
    }
    w.end_object();

    w.key("gauges").begin_object();
    for (const auto& g : snap.gauges) {
        w.member(g.name, g.value);
    }
    w.end_object();

    w.key("histograms").begin_object();
    for (const auto& h : snap.histograms) {
        w.key(h.name).begin_object();
        w.member("count", h.count);
        w.member("sum", h.sum);
        w.member("mean", h.mean());
        w.member("p50", h.quantile_bound(0.50));
        w.member("p99", h.quantile_bound(0.99));
        w.key("buckets").begin_array();
        for (const auto b : h.buckets) {
            w.value(b);
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();

    w.key("series").begin_object();
    for (const auto& s : snap.series) {
        w.key(s.name).begin_object();
        w.key("fields").begin_array();
        for (const auto& f : s.fields) {
            w.value(f);
        }
        w.end_array();
        w.key("rows").begin_array();
        for (const auto& row : s.rows) {
            w.begin_array();
            for (const double v : row) {
                w.value(v);
            }
            w.end_array();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();

    w.end_object();
}

void Exporter::write_json(std::ostream& os, const Snapshot& snap) {
    JsonWriter w(os);
    append_json(w, snap);
    w.finish();
}

void Exporter::write_table(std::ostream& os, const Snapshot& snap) {
    if (!snap.counters.empty() || !snap.gauges.empty()) {
        Table t({"metric", "value"});
        for (const auto& c : snap.counters) {
            t.add_row({c.name, std::to_string(c.value)});
        }
        for (const auto& g : snap.gauges) {
            t.add_row({g.name, JsonWriter::format_double(g.value)});
        }
        t.print(os);
    }
    if (!snap.histograms.empty()) {
        Table t({"histogram", "count", "mean", "p50", "p99", "max<="});
        for (const auto& h : snap.histograms) {
            std::size_t top = 0;
            for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                if (h.buckets[i] != 0) {
                    top = i;
                }
            }
            t.add_row({h.name, std::to_string(h.count),
                       Table::fmt(h.mean(), 2),
                       std::to_string(h.quantile_bound(0.50)),
                       std::to_string(h.quantile_bound(0.99)),
                       std::to_string(Histogram::bucket_limit(top))});
        }
        t.print(os);
    }
    for (const auto& s : snap.series) {
        os << s.name << " (" << s.rows.size() << " rows)\n";
        std::vector<std::string> header = {"#"};
        header.insert(header.end(), s.fields.begin(), s.fields.end());
        Table t(std::move(header));
        std::size_t i = 0;
        for (const auto& row : s.rows) {
            std::vector<std::string> cells = {std::to_string(i++)};
            for (const double v : row) {
                cells.push_back(Table::fmt(v, 4));
            }
            t.add_row(std::move(cells));
        }
        t.print(os);
    }
}

}  // namespace gt::obs
