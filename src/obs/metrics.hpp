// gt::obs — the observability layer (DESIGN.md §"Observability").
//
// GraphTinker's claims are quantitative (probe distance, FP/IP mode flips,
// tombstone pressure), so the runtime must be able to explain its own
// behaviour cheaply. This header provides the four telemetry primitives and
// the registry that names them:
//
//   Counter    monotonic relaxed-atomic u64 (cells probed, blocks freed, …)
//   Gauge      last-value double (live edges, blocks in use, A/E ratio, …)
//   Histogram  log2-bucketed u64 distribution (probe distance per FIND /
//              INSERT, batch ingest latency, maintenance cells touched,
//              CAL chain length)
//   Series     bounded ring of structured samples (the hybrid engine's
//              per-iteration trace: mode, A/E, edges streamed, wall time)
//
// Producers resolve typed handles from a MetricsRegistry once at
// construction and record through them on the hot path; exporters snapshot
// the registry into a stable-schema value rendered by obs/export.hpp.
//
// Cost model. Counters are the pre-existing relaxed Stats counters moved
// behind names — their cost is unchanged. Histogram/Series recording is the
// *new* cost and is double-gated: the GT_OBS compile-time switch (=0
// compiles record() to an empty body) and a process-wide runtime knob
// (obs::set_recording) that reduces an armed record() to one
// predictable-branch relaxed load. Hot-path sites use record_sampled(),
// which additionally keeps only every `sample_period()`-th sample, so even
// fully enabled recording costs one thread-local increment per op in the
// common case. micro-bench budget: < 2% ingest delta with recording
// disabled at runtime (gated in CI via BENCH_obs_overhead.json).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

// Compile-time gate: -DGT_OBS=0 removes histogram/series recording bodies
// entirely (counters and gauges stay — the Stats shim and tests read them).
#ifndef GT_OBS
#define GT_OBS 1
#endif

namespace gt::obs {

/// True when the build carries the hot-path recording bodies.
inline constexpr bool kEnabled = GT_OBS != 0;

// ---- runtime knobs (process-wide) -------------------------------------

/// Master runtime switch for histogram/series recording. Defaults from the
/// GT_OBS_RECORD environment variable (unset/non-zero = on) at first use.
[[nodiscard]] bool recording() noexcept;
void set_recording(bool on) noexcept;

/// Sampling period for record_sampled() hot-path sites: only every
/// `period`-th sample lands in the histogram. Rounded down to a power of
/// two; 1 records everything. Defaults from GT_OBS_SAMPLE (default 64).
[[nodiscard]] std::uint32_t sample_period() noexcept;
void set_sample_period(std::uint32_t period) noexcept;

namespace detail {
/// Mask form of sample_period (period - 1; period is a power of two).
[[nodiscard]] std::uint32_t sample_mask() noexcept;
}  // namespace detail

// ---- primitives -------------------------------------------------------

/// Monotonic counter safe to bump from const read paths shared by
/// concurrent readers. Relaxed: counters never synchronize anything.
class Counter {
public:
    void add(std::uint64_t delta) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    void inc() noexcept { add(1); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (levels, ratios, footprints). Writers race benignly:
/// readers see one of the written values.
class Gauge {
public:
    void set(double value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// log2-bucketed histogram: bucket i counts values whose bit width is i
/// (bucket 0 = value 0, bucket i = [2^(i-1), 2^i) for i >= 1). 33 buckets
/// cover the u32-ish quantities recorded here (cells, microseconds, blocks)
/// with headroom; larger values clamp into the last bucket.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 33;

    /// Records one sample (gated on the runtime switch only). Use for
    /// per-batch / per-sweep sites where every sample is cheap to keep.
    void record(std::uint64_t value) noexcept {
#if GT_OBS
        if (!recording()) {
            return;
        }
        record_unchecked(value);
#else
        (void)value;
#endif
    }

    /// Hot-path variant: additionally keeps only every sample_period()-th
    /// sample (per thread), so per-op cost stays a predictable branch plus
    /// one thread-local increment.
    void record_sampled(std::uint64_t value) noexcept {
#if GT_OBS
        if (!recording()) {
            return;
        }
        thread_local std::uint32_t tick = 0;
        if ((++tick & detail::sample_mask()) != 0) {
            return;
        }
        record_unchecked(value);
#else
        (void)value;
#endif
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
        const auto w = static_cast<std::size_t>(std::bit_width(value));
        return w < kBuckets ? w : kBuckets - 1;
    }
    /// Inclusive upper bound of bucket i (what a rendered axis labels).
    [[nodiscard]] static std::uint64_t bucket_limit(std::size_t i) noexcept {
        return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }

private:
    void record_unchecked(std::uint64_t value) noexcept {
        buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Bounded ring of structured samples under a fixed field schema — the
/// hybrid engine publishes one row per iteration here. Appends are
/// mutex-guarded: rows arrive at iteration granularity, never per edge.
class Series {
public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    Series(std::vector<std::string> fields, std::size_t capacity)
        : fields_(std::move(fields)),
          capacity_(capacity == 0 ? 1 : capacity) {}

    /// Appends one row (row.size() must equal fields().size(); extra values
    /// are dropped, missing ones zero-filled). Oldest rows fall out once
    /// the ring is full. Gated on the runtime recording switch.
    void append(std::span<const double> row) {
        if (!recording()) {
            return;
        }
        const LockGuard lock(mu_);
        std::vector<double> stored(fields_.size(), 0.0);
        const std::size_t n = std::min(row.size(), stored.size());
        for (std::size_t i = 0; i < n; ++i) {
            stored[i] = row[i];
        }
        if (rows_.size() < capacity_) {
            rows_.push_back(std::move(stored));
        } else {
            rows_[head_] = std::move(stored);
            head_ = (head_ + 1) % capacity_;
            ++dropped_;
        }
        ++appended_;
    }

    void clear() {
        const LockGuard lock(mu_);
        rows_.clear();
        head_ = 0;
        appended_ = 0;
        dropped_ = 0;
    }

    [[nodiscard]] const std::vector<std::string>& fields() const noexcept {
        return fields_;
    }
    /// Rows in append order (oldest surviving row first).
    [[nodiscard]] std::vector<std::vector<double>> rows() const {
        const LockGuard lock(mu_);
        std::vector<std::vector<double>> out;
        out.reserve(rows_.size());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            out.push_back(rows_[(head_ + i) % rows_.size()]);
        }
        return out;
    }
    [[nodiscard]] std::size_t size() const {
        const LockGuard lock(mu_);
        return rows_.size();
    }
    /// Total rows ever appended (dropped rows included).
    [[nodiscard]] std::uint64_t appended() const {
        const LockGuard lock(mu_);
        return appended_;
    }

private:
    std::vector<std::string> fields_;  // immutable after construction
    std::size_t capacity_;             // immutable after construction
    mutable Mutex mu_;
    std::vector<std::vector<double>> rows_ GT_GUARDED_BY(mu_);
    /// Oldest row once the ring wrapped.
    std::size_t head_ GT_GUARDED_BY(mu_) = 0;
    std::uint64_t appended_ GT_GUARDED_BY(mu_) = 0;
    std::uint64_t dropped_ GT_GUARDED_BY(mu_) = 0;
};

// ---- snapshot ---------------------------------------------------------

/// Point-in-time copy of a registry, sorted by name — the stable schema the
/// exporter renders. Counter/gauge/histogram/series sections each appear in
/// lexicographic name order.
struct Snapshot {
    struct CounterRow {
        std::string name;
        std::uint64_t value = 0;
    };
    struct GaugeRow {
        std::string name;
        double value = 0.0;
    };
    struct HistogramRow {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, Histogram::kBuckets> buckets{};

        [[nodiscard]] double mean() const noexcept {
            return count == 0 ? 0.0
                              : static_cast<double>(sum) /
                                    static_cast<double>(count);
        }
        /// Upper bound of the bucket containing quantile `q` in [0, 1].
        [[nodiscard]] std::uint64_t quantile_bound(double q) const noexcept;
    };
    struct SeriesRow {
        std::string name;
        std::vector<std::string> fields;
        std::vector<std::vector<double>> rows;
    };

    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
    std::vector<SeriesRow> series;

    [[nodiscard]] const CounterRow* counter(std::string_view name) const;
    [[nodiscard]] const GaugeRow* gauge(std::string_view name) const;
    [[nodiscard]] const HistogramRow* histogram(std::string_view name) const;
    [[nodiscard]] const SeriesRow* find_series(std::string_view name) const;
    /// Counter value by name (0 when absent) — assertion convenience.
    [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
    [[nodiscard]] double gauge_value(std::string_view name) const;
};

// ---- registry ---------------------------------------------------------

/// Named metric store. Handle resolution (counter/gauge/histogram/series)
/// interns the name under a mutex and returns a stable reference — callers
/// resolve once at construction and record lock-free afterwards. Metric
/// names use dotted lowercase ("eba.cells_probed"); the rendered schema is
/// sorted by name, so adding a metric never reorders existing ones.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    [[nodiscard]] Counter& counter(std::string_view name);
    [[nodiscard]] Gauge& gauge(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name);
    /// Resolves a series, creating it with `fields`/`capacity` when new
    /// (an existing series keeps its original schema).
    [[nodiscard]] Series& series(
        std::string_view name, std::vector<std::string> fields,
        std::size_t capacity = Series::kDefaultCapacity);

    [[nodiscard]] Snapshot snapshot() const;

private:
    // The maps are guarded (interning mutates them); the pointed-to metrics
    // are not — handles returned from resolution are recorded through
    // lock-free, which is the whole point of resolve-once-then-record.
    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        GT_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        GT_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
        GT_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Series>, std::less<>> series_
        GT_GUARDED_BY(mu_);
};

/// Registry is the term the rest of the tree uses.
using Registry = MetricsRegistry;

}  // namespace gt::obs
