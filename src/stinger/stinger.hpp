// STINGER-style adjacency-list dynamic graph store (the paper's baseline).
//
// This is a faithful reimplementation of the data-structure core of STINGER
// (Ediger et al., HPEC 2012) as the paper describes and configures it
// (§II.A, §V.A): a logical vertex array in which each vertex owns a linked
// chain of fixed-size edgeblocks (average block size 16 in the evaluation).
// Edges within a chain are neither sorted nor hashed, so FIND during an
// insert or delete walks the whole chain — the O(degree) probe distance that
// GraphTinker's hashing removes. Deletions tombstone a slot; insertions
// reuse the first free slot found during the FIND pass or append a new block
// at the end of the chain.
//
// STINGER is a *concurrent* shared structure, and its per-update bookkeeping
// is part of what the paper measures against. This port therefore keeps the
// bookkeeping the original pays on every update even when driven by one
// thread: a per-source-vertex lock (STINGER locks the edge list during
// updates), atomically maintained out- and in-degree counters on both
// endpoints, a global atomic edge counter, and first/recent timestamp pairs
// on every edge (STINGER's temporal metadata, written on each insert).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.hpp"
#include "util/types.hpp"
#include "util/visit.hpp"

namespace gt::stinger {

struct StingerConfig {
    /// Edges per edgeblock; the paper sets STINGER's average block size to 16.
    std::uint32_t edges_per_block = 16;
    /// Initial size of the logical vertex array (grows on demand). STINGER
    /// proper is sized for the maximum graph at startup; benches pass the
    /// dataset's vertex count.
    std::uint32_t initial_vertices = 1024;
    /// Expected edges; the edgeblock pool reserves capacity for this many.
    std::uint64_t reserve_edges = 0;
};

class Stinger {
public:
    explicit Stinger(StingerConfig config = {});

    /// Inserts (src, dst, weight); if the edge already exists its weight is
    /// overwritten. Returns true when a new edge was created.
    [[nodiscard]] bool insert_edge(VertexId src, VertexId dst,
                                   Weight weight = 1);

    /// Tombstones (src, dst). Returns true when the edge existed.
    [[nodiscard]] bool delete_edge(VertexId src, VertexId dst);

    /// Weight lookup; returns nullptr when the edge is absent. The pointer is
    /// invalidated by any mutation.
    [[nodiscard]] const Weight* find_edge(VertexId src, VertexId dst) const;

    [[nodiscard]] EdgeCount num_edges() const noexcept {
        return num_edges_.load(std::memory_order_relaxed);
    }
    /// One past the largest vertex id ever touched (the swept id space).
    [[nodiscard]] VertexId num_vertices() const noexcept {
        return static_cast<VertexId>(vertices_.size());
    }
    [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
        return v < vertices_.size()
                   ? vertices_[v].out_degree.load(std::memory_order_relaxed)
                   : 0;
    }
    /// STINGER also maintains in-degrees on every update.
    [[nodiscard]] std::uint32_t in_degree(VertexId v) const noexcept {
        return v < vertices_.size()
                   ? vertices_[v].in_degree.load(std::memory_order_relaxed)
                   : 0;
    }

    /// Visits every live out-edge of v: fn(dst, weight); fn may return void
    /// or bool (false stops; returns false when cut short).
    template <typename Fn>
    bool visit_out_edges(VertexId v, Fn&& fn) const {
        if (v >= vertices_.size()) {
            return true;
        }
        for (std::uint32_t b = vertices_[v].head; b != kNoBlock;
             b = blocks_[b].next) {
            const std::size_t base = static_cast<std::size_t>(b) * block_size_;
            for (std::uint32_t i = 0; i < block_size_; ++i) {
                const Cell& cell = cells_[base + i];
                if (cell.state == CellState::Occupied) {
                    if (!visit_step(fn, cell.dst, cell.weight)) {
                        return false;
                    }
                }
            }
        }
        return true;
    }

    /// Visits every live edge: fn(src, dst, weight). This sweeps the entire
    /// logical vertex array — STINGER has no non-empty-vertex index, which is
    /// exactly the inefficiency GraphTinker's SGH addresses.
    template <typename Fn>
    bool visit_edges(Fn&& fn) const {
        for (VertexId v = 0; v < vertices_.size(); ++v) {
            const bool complete =
                visit_out_edges(v, [&](VertexId dst, Weight w) {
                    return visit_step(fn, v, dst, w);
                });
            if (!complete) {
                return false;
            }
        }
        return true;
    }

    /// Diagnostics: blocks allocated in the pool.
    [[nodiscard]] std::size_t num_blocks() const noexcept {
        return blocks_.size();
    }
    /// Bytes held by the vertex array and edgeblock pool.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return vertices_.size() * sizeof(VertexMeta) +
               blocks_.size() * sizeof(BlockMeta) +
               cells_.size() * sizeof(Cell);
    }
    /// Diagnostics: chain length (blocks) of vertex v.
    [[nodiscard]] std::uint32_t chain_length(VertexId v) const noexcept;

private:
    enum class CellState : std::uint8_t { Empty, Occupied, Tombstone };

    struct Cell {
        VertexId dst = kInvalidVertex;
        Weight weight = 0;
        std::uint32_t time_first = 0;   // STINGER temporal metadata
        std::uint32_t time_recent = 0;
        CellState state = CellState::Empty;
    };

    struct BlockMeta {
        std::uint32_t next = kNoBlock;
        std::uint32_t high = 0;  // STINGER's high-water mark per block
    };

    struct VertexMeta {
        std::uint32_t head = kNoBlock;
        std::uint32_t tail = kNoBlock;
        std::atomic<std::uint32_t> out_degree{0};
        std::atomic<std::uint32_t> in_degree{0};
        /// STINGER serializes writers on a vertex's edge list. Guards this
        /// vertex's head/tail and the cells of its chain (spread across the
        /// shared block arenas, so not expressible as GT_GUARDED_BY —
        /// writers take it via LockGuard<SpinLock> per update).
        SpinLock lock;

        VertexMeta() = default;
        VertexMeta(const VertexMeta& other)
            : head(other.head),
              tail(other.tail),
              out_degree(other.out_degree.load(std::memory_order_relaxed)),
              in_degree(other.in_degree.load(std::memory_order_relaxed)) {}
        VertexMeta& operator=(const VertexMeta& other) {
            head = other.head;
            tail = other.tail;
            out_degree.store(
                other.out_degree.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            in_degree.store(other.in_degree.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
            return *this;
        }
    };

    static constexpr std::uint32_t kNoBlock = 0xffffffffU;

    void ensure_vertex(VertexId v);
    std::uint32_t allocate_block();

    std::uint32_t block_size_;
    std::vector<VertexMeta> vertices_;
    std::vector<BlockMeta> blocks_;
    std::vector<Cell> cells_;  // blocks_.size() * block_size_ cells
    std::atomic<EdgeCount> num_edges_{0};
    std::uint32_t timestamp_ = 0;  // batch-granular logical clock
};

}  // namespace gt::stinger
