#include "stinger/stinger.hpp"

#include <algorithm>
#include <cassert>

namespace gt::stinger {

Stinger::Stinger(StingerConfig config)
    : block_size_(std::max<std::uint32_t>(1, config.edges_per_block)) {
    vertices_.resize(std::max<std::uint32_t>(1, config.initial_vertices));
    if (config.reserve_edges > 0) {
        const std::size_t blocks =
            static_cast<std::size_t>(config.reserve_edges / block_size_) +
            config.initial_vertices + 1;
        blocks_.reserve(blocks);
        cells_.reserve(blocks * block_size_);
    }
}

void Stinger::ensure_vertex(VertexId v) {
    if (v >= vertices_.size()) {
        std::size_t size = vertices_.size();
        while (size <= v) {
            size *= 2;
        }
        vertices_.resize(size);
    }
}

std::uint32_t Stinger::allocate_block() {
    const auto id = static_cast<std::uint32_t>(blocks_.size());
    blocks_.emplace_back();
    cells_.resize(cells_.size() + block_size_);
    return id;
}

bool Stinger::insert_edge(VertexId src, VertexId dst, Weight weight) {
    ensure_vertex(src);
    ensure_vertex(dst);
    VertexMeta& meta = vertices_[src];
    const LockGuard<SpinLock> guard(meta.lock);  // per-update list lock
    const std::uint32_t now = ++timestamp_;

    // FIND pass: walk the entire chain looking for dst, remembering the first
    // reusable slot (empty or tombstoned) along the way.
    std::size_t free_slot = static_cast<std::size_t>(-1);
    for (std::uint32_t b = meta.head; b != kNoBlock; b = blocks_[b].next) {
        const std::size_t base = static_cast<std::size_t>(b) * block_size_;
        const std::uint32_t high = blocks_[b].high;
        for (std::uint32_t i = 0; i < block_size_; ++i) {
            Cell& cell = cells_[base + i];
            if (cell.state == CellState::Occupied) {
                if (cell.dst == dst) {
                    // Existing edge: update weight and recency timestamp.
                    cell.weight = weight;
                    cell.time_recent = now;
                    return false;
                }
            } else if (free_slot == static_cast<std::size_t>(-1)) {
                free_slot = base + i;
            }
            if (i >= high && cell.state == CellState::Empty) {
                break;  // past the block's high-water mark: nothing further
            }
        }
    }

    if (free_slot == static_cast<std::size_t>(-1)) {
        // Chain exhausted: append a fresh block at the tail.
        const std::uint32_t block = allocate_block();
        if (meta.tail == kNoBlock) {
            meta.head = block;
        } else {
            blocks_[meta.tail].next = block;
        }
        meta.tail = block;
        free_slot = static_cast<std::size_t>(block) * block_size_;
    }

    Cell& cell = cells_[free_slot];
    cell.dst = dst;
    cell.weight = weight;
    cell.time_first = now;
    cell.time_recent = now;
    cell.state = CellState::Occupied;
    const std::uint32_t block = static_cast<std::uint32_t>(
        free_slot / block_size_);
    const std::uint32_t offset = static_cast<std::uint32_t>(
        free_slot % block_size_);
    blocks_[block].high = std::max(blocks_[block].high, offset + 1);
    meta.out_degree.fetch_add(1, std::memory_order_relaxed);
    vertices_[dst].in_degree.fetch_add(1, std::memory_order_relaxed);
    num_edges_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool Stinger::delete_edge(VertexId src, VertexId dst) {
    if (src >= vertices_.size()) {
        return false;
    }
    VertexMeta& meta = vertices_[src];
    const LockGuard<SpinLock> guard(meta.lock);
    for (std::uint32_t b = meta.head; b != kNoBlock; b = blocks_[b].next) {
        const std::size_t base = static_cast<std::size_t>(b) * block_size_;
        for (std::uint32_t i = 0; i < block_size_; ++i) {
            Cell& cell = cells_[base + i];
            if (cell.state == CellState::Occupied && cell.dst == dst) {
                cell.state = CellState::Tombstone;
                meta.out_degree.fetch_sub(1, std::memory_order_relaxed);
                vertices_[dst].in_degree.fetch_sub(1,
                                                   std::memory_order_relaxed);
                num_edges_.fetch_sub(1, std::memory_order_relaxed);
                return true;
            }
        }
    }
    return false;
}

const Weight* Stinger::find_edge(VertexId src, VertexId dst) const {
    if (src >= vertices_.size()) {
        return nullptr;
    }
    for (std::uint32_t b = vertices_[src].head; b != kNoBlock;
         b = blocks_[b].next) {
        const std::size_t base = static_cast<std::size_t>(b) * block_size_;
        for (std::uint32_t i = 0; i < block_size_; ++i) {
            const Cell& cell = cells_[base + i];
            if (cell.state == CellState::Occupied && cell.dst == dst) {
                return &cell.weight;
            }
        }
    }
    return nullptr;
}

std::uint32_t Stinger::chain_length(VertexId v) const noexcept {
    if (v >= vertices_.size()) {
        return 0;
    }
    std::uint32_t len = 0;
    for (std::uint32_t b = vertices_[v].head; b != kNoBlock;
         b = blocks_[b].next) {
        ++len;
    }
    return len;
}

}  // namespace gt::stinger
