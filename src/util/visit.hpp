// Visitor-callback adapter for the unified visit_* edge-iteration API.
//
// Every edge visitor in the tree (`visit_out_edges`, `visit_edges`,
// `visit_edges_of`, …) accepts a callback that may return either `void`
// (visit everything) or `bool` (`false` stops the traversal early). The
// two former API families (`for_each_*` and `for_each_*_until`) collapsed
// into one; visit_step() is the `if constexpr` shim that makes a void
// callback look like one that always continues.
#pragma once

#include <type_traits>
#include <utility>

namespace gt {

/// Invokes `fn(args...)`; returns true to continue iterating. A void
/// callback always continues; a bool-returning callback stops on false.
template <typename Fn, typename... Args>
[[nodiscard]] constexpr bool visit_step(Fn& fn, Args&&... args) {
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&, Args&&...>>) {
        fn(std::forward<Args>(args)...);
        return true;
    } else {
        return static_cast<bool>(fn(std::forward<Args>(args)...));
    }
}

}  // namespace gt
