// Aligned-table / CSV emission for the benchmark harness.
//
// Every figure-reproduction binary prints one of these tables so the output
// can be eyeballed against the paper and also parsed (`--csv` style) by
// plotting scripts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gt {

/// Collects rows of stringified cells and renders them either as an aligned
/// text table (human) or as CSV (machines).
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Appends a row; the row is padded/truncated to the header width.
    void add_row(std::vector<std::string> row);

    /// Convenience for mixed numeric rows.
    void add_row_values(const std::vector<double>& values, int precision = 3);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    void print(std::ostream& os) const;
    void print_csv(std::ostream& os) const;

    /// Formats a double with fixed precision (shared helper).
    static std::string fmt(double value, int precision = 3);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace gt
