#include "util/failpoint.hpp"

#include <atomic>
#include <map>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gt::fail {

namespace {

struct SiteState {
    std::uint64_t countdown = 0;  // 0 = not armed
    std::uint64_t hits = 0;
};

struct Registry {
    Mutex mu;
    std::map<std::string, SiteState, std::less<>> sites GT_GUARDED_BY(mu);
};

Registry& registry() {
    static Registry r;
    return r;
}

/// Hot-path gate. Counts *armed sites*; crossings only take the mutex while
/// this is nonzero.
std::atomic<std::uint64_t> g_armed{0};

}  // namespace

bool any_armed() noexcept {
    return g_armed.load(std::memory_order_relaxed) != 0;
}

void arm(const std::string& site, std::uint64_t countdown) {
    if (countdown == 0) {
        countdown = 1;
    }
    Registry& r = registry();
    const LockGuard lock(r.mu);
    SiteState& s = r.sites[site];
    if (s.countdown == 0) {
        g_armed.fetch_add(1, std::memory_order_relaxed);
    }
    s.countdown = countdown;
}

void disarm(const std::string& site) {
    Registry& r = registry();
    const LockGuard lock(r.mu);
    const auto it = r.sites.find(site);
    if (it != r.sites.end() && it->second.countdown != 0) {
        it->second.countdown = 0;
        g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
}

void reset() {
    Registry& r = registry();
    const LockGuard lock(r.mu);
    for (auto& [name, state] : r.sites) {
        if (state.countdown != 0) {
            state.countdown = 0;
            g_armed.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

std::uint64_t hits(const std::string& site) {
    Registry& r = registry();
    const LockGuard lock(r.mu);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

namespace detail {

void crossed(const char* site) {
    Registry& r = registry();
    bool fire = false;
    {
        const LockGuard lock(r.mu);
        const auto it = r.sites.find(site);
        if (it == r.sites.end() || it->second.countdown == 0) {
            return;
        }
        ++it->second.hits;
        if (--it->second.countdown == 0) {
            // Single-shot: firing disarms, so rollback paths that re-cross
            // the site succeed unless the test re-arms it.
            g_armed.fetch_sub(1, std::memory_order_relaxed);
            fire = true;
        }
    }
    if (fire) {
        throw InjectedFault{site};
    }
}

bool check(const char* site) noexcept {
    Registry& r = registry();
    const LockGuard lock(r.mu);
    const auto it = r.sites.find(site);
    if (it == r.sites.end() || it->second.countdown == 0) {
        return false;
    }
    ++it->second.hits;
    if (--it->second.countdown == 0) {
        g_armed.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

}  // namespace detail

}  // namespace gt::fail
