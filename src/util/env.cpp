#include "util/env.hpp"

#include <cstdlib>

namespace gt {

double env_double(const char* name, double fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    char* end = nullptr;
    const double value = std::strtod(raw, &end);
    return end != raw ? value : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(raw, &end, 10);
    return end != raw ? value : fallback;
}

double bench_scale() { return env_double("GT_SCALE", 1.0 / 64.0); }

}  // namespace gt
