// Small statistics helpers for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gt {

struct Summary {
    double mean = 0.0;
    double stddev = 0.0;  // sample stddev (n-1 divisor); 0 when count < 2
    double min = 0.0;
    double max = 0.0;
    std::size_t count = 0;
};

/// Mean / sample standard deviation / extrema of a benchmark rep series.
/// The stddev uses Bessel's correction (n-1): benchmark reps are a sample
/// of the timing distribution, not its entirety, and the population formula
/// systematically understates spread for the small rep counts (3-10) the
/// harness runs. One rep (or none) has no spread estimate — stddev is 0.
[[nodiscard]] inline Summary summarize(const std::vector<double>& xs) {
    Summary s;
    s.count = xs.size();
    if (xs.empty()) {
        return s;
    }
    double sum = 0.0;
    s.min = xs.front();
    s.max = xs.front();
    for (double x : xs) {
        sum += x;
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2) {
        return s;
    }
    double var = 0.0;
    for (double x : xs) {
        var += (x - s.mean) * (x - s.mean);
    }
    s.stddev = std::sqrt(var / static_cast<double>(xs.size() - 1));
    return s;
}

/// Relative degradation between the first and last sample, as the paper
/// reports for load stability (e.g. "34% throughput degradation").
[[nodiscard]] inline double degradation(const std::vector<double>& xs) {
    if (xs.size() < 2 || xs.front() == 0.0) {
        return 0.0;
    }
    return (xs.front() - xs.back()) / xs.front();
}

}  // namespace gt
