// Threading substrate: a blocking parallel_for pool plus the hand-off
// primitives the pipelined sharded store builds on.
//
// GraphTinker's multicore story (paper §III.D) shards the structure across
// instances and applies each shard's updates on its own core. Two execution
// models live here:
//
//   ThreadPool     fork/join parallel_for for shard-parallel *analytics*
//                  (the engine scatters a batch across workers and needs the
//                  barrier). parallel_for is a template over the callable —
//                  the hot path erases it to a raw function pointer + context
//                  instead of a std::function, so submitting a lambda
//                  allocates nothing.
//   HandoffQueue   bounded FIFO hand-off channel between a coordinating
//                  producer and one persistent consumer (a shard worker).
//                  The *ingest* substrate: no fork/join per batch — workers
//                  run for the store's lifetime, the producer scatters and
//                  enqueues, and the acquire/release enqueue/complete epochs
//                  give readers a drain barrier.
//
// set_current_thread_name / pin_current_thread let the shard workers show up
// named in profilers and stick to their core (paper Fig. 6: one interval per
// core).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gt {

/// Names the calling thread for debuggers/profilers (Linux: ≤15 chars are
/// kept; silently truncated). No-op on platforms without the facility.
void set_current_thread_name(const char* name) noexcept;

/// Pins the calling thread to `cpu` (mod the online CPU count). Returns
/// false when the platform does not support affinity or the call failed —
/// callers treat pinning as a hint, never a requirement.
bool pin_current_thread(std::size_t cpu) noexcept;

/// How many times a consumer should poll before blocking on its condvar.
/// 0 on single-core hosts, where spinning only starves the producer.
[[nodiscard]] std::size_t spin_iterations_hint() noexcept;

class ThreadPool {
public:
    /// Creates `threads` workers. 0 means std::thread::hardware_concurrency().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Runs fn(i) for i in [0, n) across the pool and blocks until all
    /// complete. fn is invoked concurrently; it must synchronize any shared
    /// state itself. Exceptions thrown by fn terminate (tasks are noexcept
    /// by contract — benchmark/engine bodies do not throw). The callable is
    /// passed through as a raw pointer + thunk: no type erasure allocation
    /// per call, which matters for the small-n fan-outs the engine issues
    /// per iteration.
    template <typename Fn>
    void parallel_for(std::size_t n, Fn&& fn) {
        using Callable = std::remove_reference_t<Fn>;
        run_batch(n,
                  [](void* ctx, std::size_t i) {
                      (*static_cast<Callable*>(ctx))(i);
                  },
                  const_cast<void*>(
                      static_cast<const void*>(std::addressof(fn))));
    }

    /// Runs fn(t) once per worker thread t in [0, size()), in parallel.
    template <typename Fn>
    void for_each_worker(Fn&& fn) {
        parallel_for(size(), std::forward<Fn>(fn));
    }

private:
    /// The erased form every parallel_for submission reduces to.
    using RawTask = void (*)(void* ctx, std::size_t index);

    struct Batch {
        RawTask call = nullptr;
        void* ctx = nullptr;
        std::size_t n = 0;
        std::size_t next = 0;       // next index to claim
        std::size_t remaining = 0;  // indices not yet finished
        std::uint64_t epoch = 0;    // generation counter for wakeups
    };

    void run_batch(std::size_t n, RawTask call, void* ctx);
    void worker_loop();

    std::vector<std::thread> workers_;
    /// Guards the batch descriptor and the stop flag; work_cv_/done_cv_
    /// wait on it. Workers and the submitting thread drop it around each
    /// task call, so the lock only serializes index claims.
    Mutex mutex_;
    CondVar work_cv_;
    CondVar done_cv_;
    Batch batch_ GT_GUARDED_BY(mutex_);
    bool stop_ GT_GUARDED_BY(mutex_) = false;
};

/// Bounded FIFO hand-off channel: one coordinating producer side (the
/// store's mutating API — externally serialized, the single-writer half of
/// the single-writer/many-reader discipline) feeding one persistent consumer
/// (the shard worker).
///
/// Progress/visibility contract:
///   - enqueued()/completed() are acquire-published epochs. After
///     wait_idle() observes completed == enqueued, every write the consumer
///     made while applying those tasks is visible to the caller — that is
///     the read barrier ShardedStore's pins and drains are built on.
///   - push() blocks while the ring is full (backpressure); pop_some()
///     blocks while it is empty, spinning spin_iterations_hint() times
///     first so a streaming producer never pays a futex wake per task.
///   - Producer-side wakeups are edge-triggered: only the push that makes
///     the queue non-empty notifies, so a burst of tiny tasks costs one
///     wake, not one syscall per task.
///
/// stop() lets the consumer drain what is queued and then exit: pop_some
/// keeps returning tasks until the ring is empty and only then reports
/// shutdown — a destructor that stops and joins therefore never drops work.
template <typename Task>
class HandoffQueue {
public:
    explicit HandoffQueue(std::size_t capacity)
        : ring_(capacity == 0 ? 1 : capacity),
          spin_(spin_iterations_hint()) {}

    HandoffQueue(const HandoffQueue&) = delete;
    HandoffQueue& operator=(const HandoffQueue&) = delete;

    /// Producer: enqueues one task, blocking while the ring is full.
    /// Must not be called after stop().
    void push(Task&& task) {
        bool was_empty = false;
        {
            UniqueLock lock(mutex_);
            while (count_ == ring_.size() && !stopped_) {
                ++producer_waiters_;
                space_cv_.wait(lock);
                --producer_waiters_;
            }
            if (stopped_) {
                return;  // shutting down; the task is dropped by contract
            }
            was_empty = count_ == 0;
            ring_[(head_ + count_) % ring_.size()] = std::move(task);
            ++count_;
        }
        enqueued_.fetch_add(1, std::memory_order_release);
        if (was_empty) {
            work_cv_.notify_one();
        }
    }

    /// Consumer: moves up to `max_tasks` queued tasks into `out` (appended),
    /// blocking until at least one is available. Returns false only when the
    /// queue is stopped *and* empty — i.e. after a full drain.
    bool pop_some(std::vector<Task>& out, std::size_t max_tasks) {
        // Bounded spin before sleeping: a streaming producer refills the
        // ring within a few hundred cycles, and the futex round trip costs
        // more than the whole hand-off. inflight_ is consumer-owned (this
        // thread's own bookkeeping), so the unlocked read is race-free.
        for (std::size_t i = spin_; i > 0; --i) {
            if (enqueued_.load(std::memory_order_acquire) !=
                completed_.load(std::memory_order_relaxed) + inflight_) {
                break;
            }
            std::this_thread::yield();
        }
        UniqueLock lock(mutex_);
        while (count_ == 0 && !stopped_) {
            work_cv_.wait(lock);
        }
        if (count_ == 0) {
            return false;  // stopped and drained
        }
        const std::size_t take = count_ < max_tasks ? count_ : max_tasks;
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(ring_[head_]));
            head_ = (head_ + 1) % ring_.size();
        }
        count_ -= take;
        inflight_ += take;
        if (producer_waiters_ > 0) {
            space_cv_.notify_all();
        }
        return true;
    }

    /// Consumer: publishes that `n` previously popped tasks finished
    /// applying. Pairs a release increment with wait_idle()'s acquire so
    /// the application's side effects are visible to drained readers. The
    /// notify is taken under the mutex so a wait_idle() that just tested
    /// the epochs cannot sleep through it.
    void note_completed(std::size_t n) {
        inflight_ -= n;
        completed_.fetch_add(n, std::memory_order_release);
        const LockGuard lock(mutex_);
        idle_cv_.notify_all();
    }

    /// Blocks until every task enqueued so far has been applied. Callable
    /// from any thread; const because it mutates nothing the producer or
    /// consumer own (the waiters' condvar state is mutable bookkeeping).
    void wait_idle() const {
        if (completed_.load(std::memory_order_acquire) ==
            enqueued_.load(std::memory_order_acquire)) {
            return;  // fast path: two fences, no lock
        }
        UniqueLock lock(mutex_);
        while (completed_.load(std::memory_order_acquire) !=
               enqueued_.load(std::memory_order_acquire)) {
            idle_cv_.wait(lock);
        }
    }

    /// Wakes everyone; the consumer drains the remaining tasks and then
    /// pop_some returns false. Idempotent.
    void stop() {
        {
            const LockGuard lock(mutex_);
            stopped_ = true;
        }
        work_cv_.notify_all();
        space_cv_.notify_all();
    }

    /// Tasks enqueued over the queue's lifetime (acquire).
    [[nodiscard]] std::uint64_t enqueued() const noexcept {
        return enqueued_.load(std::memory_order_acquire);
    }
    /// Tasks fully applied over the queue's lifetime (acquire).
    [[nodiscard]] std::uint64_t completed() const noexcept {
        return completed_.load(std::memory_order_acquire);
    }
    /// Instantaneous backlog (enqueued but not yet applied) — the
    /// queue-depth gauge's source.
    [[nodiscard]] std::size_t depth() const noexcept {
        const std::uint64_t done = completed_.load(std::memory_order_acquire);
        const std::uint64_t in = enqueued_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(in - done);
    }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return ring_.size();
    }

private:
    mutable Mutex mutex_;
    mutable CondVar work_cv_;   // consumer waits for tasks
    mutable CondVar space_cv_;  // producer waits for ring slots
    mutable CondVar idle_cv_;   // drain barriers wait for completion
    std::vector<Task> ring_ GT_GUARDED_BY(mutex_);
    std::size_t head_ GT_GUARDED_BY(mutex_) = 0;
    std::size_t count_ GT_GUARDED_BY(mutex_) = 0;
    /// Popped but not yet note_completed()-ed. Consumer-thread-private (only
    /// pop_some/note_completed touch it, both consumer-side), so it needs no
    /// guard and the spin loop may read it lock-free.
    std::size_t inflight_ = 0;
    std::size_t producer_waiters_ GT_GUARDED_BY(mutex_) = 0;
    bool stopped_ GT_GUARDED_BY(mutex_) = false;
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> completed_{0};
    const std::size_t spin_;
};

}  // namespace gt
