// A small, dependency-free thread pool with a blocking parallel_for.
//
// GraphTinker's multicore story (paper §III.D) shards the structure across
// instances and applies each shard's updates on its own core; this pool is
// the substrate for that as well as for shard-parallel analytics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace gt {

class ThreadPool {
public:
    /// Creates `threads` workers. 0 means std::thread::hardware_concurrency().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Runs fn(i) for i in [0, n) across the pool and blocks until all
    /// complete. fn is invoked concurrently; it must synchronize any shared
    /// state itself. Exceptions thrown by fn terminate (tasks are noexcept
    /// by contract — benchmark/engine bodies do not throw).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Runs fn(t) once per worker thread t in [0, size()), in parallel.
    void for_each_worker(const std::function<void(std::size_t)>& fn) {
        parallel_for(size(), fn);
    }

private:
    struct Batch {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        std::size_t next = 0;       // next index to claim
        std::size_t remaining = 0;  // indices not yet finished
        std::uint64_t epoch = 0;    // generation counter for wakeups
    };

    void worker_loop();

    std::vector<std::thread> workers_;
    /// Guards the batch descriptor and the stop flag; work_cv_/done_cv_
    /// wait on it. Workers and the submitting thread drop it around each
    /// fn(i) call, so the lock only serializes index claims.
    Mutex mutex_;
    CondVar work_cv_;
    CondVar done_cv_;
    Batch batch_ GT_GUARDED_BY(mutex_);
    bool stop_ GT_GUARDED_BY(mutex_) = false;
};

}  // namespace gt
