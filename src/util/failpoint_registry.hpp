// Central registry of fail-point site names.
//
// Every GT_FAILPOINT("<name>") in the tree must name an entry here, and
// every entry must be exercised by at least one test — both directions are
// enforced by tools/gt_lint.py (rule: failpoint-registry). The registry
// exists so a fail point can't silently rot: renaming a site without
// updating its tests, or adding an injection hook nobody ever fires, fails
// the lint run instead of shipping dead error-handling paths.
//
// Keep the list sorted. The comment after each name says where the site
// lives and what failure it simulates.
#pragma once

#include <array>
#include <string_view>

namespace gt::fail {

inline constexpr std::array<std::string_view, 12> kKnownSites = {
    "cal.grow",    // src/core/cal.cpp — CAL block allocation during append
    "eba.grow",    // src/core/edgeblock_array.cpp — edgeblock pool growth
    "net.client.drop_frame",  // src/net/client.cpp — a decoded reply frame
                              // vanishes (lost response; resend path)
    "net.connect.stall",      // src/net/io.cpp — connect to a host that
                              // never answers the SYN (deadline path)
    "net.recv.eintr",         // src/net/io.cpp — EINTR storm inside recv
    "net.recv.reset",         // src/net/io.cpp — ECONNRESET on recv
    "net.recv.stall",         // src/net/io.cpp — peer accepts then goes
                              // silent mid-frame (deadline path)
    "net.send.eintr",         // src/net/io.cpp — EINTR storm inside send
    "net.send.reset",         // src/net/io.cpp — ECONNRESET on send
    "net.send.short",         // src/net/io.cpp — kernel takes one byte
                              // (partial-send reassembly)
    "wal.commit",  // src/recover/wal.cpp — commit-record write/fsync
    "wal.stage",   // src/recover/wal.cpp — payload staging write
};

}  // namespace gt::fail
