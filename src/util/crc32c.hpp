// CRC32C (Castagnoli) — the checksum guarding every WAL record and snapshot
// section (src/recover, core/serialize). Chosen over plain CRC32 for its
// better error-detection properties on short records and because it is the
// de-facto storage-stack standard (iSCSI, ext4, LevelDB WALs).
//
// Implementation: slice-by-8 with compile-time-generated tables — ~1 word
// per cycle without any ISA requirement beyond baseline x86-64/aarch64 (the
// build does not assume SSE4.2). When the compiler is explicitly targeting
// SSE4.2 the hardware crc32 instruction is used instead.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace gt::util {

namespace detail {

inline constexpr std::uint32_t kCrc32cPoly = 0x82F63B78U;  // reflected

using Crc32cTables = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr Crc32cTables make_crc32c_tables() {
    Crc32cTables t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int k = 0; k < 8; ++k) {
            crc = (crc >> 1) ^ ((crc & 1U) != 0 ? kCrc32cPoly : 0U);
        }
        t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = t[0][i];
        for (std::size_t s = 1; s < 8; ++s) {
            crc = t[0][crc & 0xFFU] ^ (crc >> 8);
            t[s][i] = crc;
        }
    }
    return t;
}

inline constexpr Crc32cTables kCrc32cTables = make_crc32c_tables();

}  // namespace detail

/// Extends a running CRC32C over `len` bytes. Start (and finish) with
/// crc32c(): the init/final XORs live there so partial updates compose.
inline std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                                   std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
#if defined(__SSE4_2__)
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
        p += 8;
        len -= 8;
    }
    while (len > 0) {
        crc = _mm_crc32_u8(crc, *p++);
        --len;
    }
#else
    const auto& t = detail::kCrc32cTables;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // The word-at-a-time slice absorbs the running crc into the low bytes,
    // which is only correct little-endian; big-endian targets take the
    // byte loop below.
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        word ^= crc;  // little-endian: low 4 bytes absorb the running crc
        crc = t[7][word & 0xFFU] ^ t[6][(word >> 8) & 0xFFU] ^
              t[5][(word >> 16) & 0xFFU] ^ t[4][(word >> 24) & 0xFFU] ^
              t[3][(word >> 32) & 0xFFU] ^ t[2][(word >> 40) & 0xFFU] ^
              t[1][(word >> 48) & 0xFFU] ^ t[0][word >> 56];
        p += 8;
        len -= 8;
    }
#endif
    while (len > 0) {
        crc = t[0][(crc ^ *p++) & 0xFFU] ^ (crc >> 8);
        --len;
    }
#endif
    return crc;
}

/// One-shot CRC32C of a buffer (standard init/final inversion).
inline std::uint32_t crc32c(const void* data, std::size_t len) noexcept {
    return crc32c_extend(0xFFFFFFFFU, data, len) ^ 0xFFFFFFFFU;
}

}  // namespace gt::util
