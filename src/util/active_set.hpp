// Active-vertex frontier used by the hybrid engine.
//
// The incremental-compute model iterates over an explicit, possibly sparse,
// set of active vertices; the full-compute model only needs the membership
// test. This structure provides both: an O(1) dedup bitmap plus a dense list
// for iteration, with O(active) clearing between iterations.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace gt {

class ActiveSet {
public:
    ActiveSet() = default;
    explicit ActiveSet(std::size_t capacity) { resize(capacity); }

    /// Grows the id space; existing membership is preserved.
    void resize(std::size_t capacity) { member_.resize(capacity, false); }

    [[nodiscard]] std::size_t capacity() const noexcept { return member_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return list_.size(); }
    [[nodiscard]] bool empty() const noexcept { return list_.empty(); }

    [[nodiscard]] bool contains(VertexId v) const noexcept {
        return v < member_.size() && member_[v];
    }

    /// Adds v if absent; returns true when newly added.
    bool insert(VertexId v) {
        if (v >= member_.size()) {
            member_.resize(static_cast<std::size_t>(v) + 1, false);
        }
        if (member_[v]) {
            return false;
        }
        member_[v] = true;
        list_.push_back(v);
        return true;
    }

    /// O(size) clear: only touches bits that are set.
    void clear() {
        for (VertexId v : list_) {
            member_[v] = false;
        }
        list_.clear();
    }

    /// Dense iteration view (insertion order).
    [[nodiscard]] const std::vector<VertexId>& vertices() const noexcept {
        return list_;
    }

    void swap(ActiveSet& other) noexcept {
        member_.swap(other.member_);
        list_.swap(other.list_);
    }

private:
    std::vector<bool> member_;
    std::vector<VertexId> list_;
};

}  // namespace gt
