// Portable SIMD primitives for the probe kernels.
//
// The only vector operation the EdgeblockArray needs is "which of these N
// strided 32-bit keys equal the needle?" — the destination ids of an
// edge-cell subblock sit 16 bytes apart (sizeof(EdgeCell)), and the probe
// kernel wants them compared 4 at a time into a bitmask it can combine with
// the occupancy masks. SSE2 (x86-64 baseline) and NEON (aarch64 baseline)
// variants are provided behind the GT_SIMD compile toggle; every build also
// compiles the scalar reference so tests can diff the two and non-SIMD
// targets keep working unchanged.
#pragma once

#include <cstdint>
#include <cstring>

#if defined(GT_SIMD) && GT_SIMD
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define GT_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define GT_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace gt::simd {

/// True when this build selects a vector implementation for the probe
/// kernels (GT_SIMD enabled *and* the target has SSE2/NEON).
#if defined(GT_SIMD_SSE2) || defined(GT_SIMD_NEON)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Issues a best-effort read prefetch for the cache line holding `addr`.
inline void prefetch(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, 0 /*read*/, 3 /*high locality*/);
#else
    (void)addr;
#endif
}

/// Write-intent variant: fetches the line in an exclusive coherence state,
/// for targets about to be modified (e.g. an edge-cell an insert will fill).
inline void prefetch_write(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, 1 /*write*/, 3 /*high locality*/);
#else
    (void)addr;
#endif
}

/// Scalar reference: bit i of the result is set when the 32-bit key at byte
/// offset i*16 from `first_key` equals `needle`. `count` <= 64.
[[nodiscard]] inline std::uint64_t match_u32_stride16_scalar(
    const void* first_key, std::uint32_t count, std::uint32_t needle) noexcept {
    const auto* p = static_cast<const unsigned char*>(first_key);
    std::uint64_t mask = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t key;
        std::memcpy(&key, p + static_cast<std::size_t>(i) * 16, sizeof(key));
        mask |= static_cast<std::uint64_t>(key == needle) << i;
    }
    return mask;
}

/// Vector variant of match_u32_stride16_scalar: compares 4 keys per step
/// (SSE2 shuffle-gather / NEON de-interleaving load). Falls back to the
/// scalar reference when no vector ISA is selected, so it is always safe to
/// call; the two variants agree bit-for-bit on every input.
[[nodiscard]] inline std::uint64_t match_u32_stride16_simd(
    const void* first_key, std::uint32_t count, std::uint32_t needle) noexcept {
#if defined(GT_SIMD_SSE2)
    const auto* p = static_cast<const unsigned char*>(first_key);
    const __m128i vneedle = _mm_set1_epi32(static_cast<int>(needle));
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const unsigned char* q = p + static_cast<std::size_t>(i) * 16;
        // One 16-byte cell per load; lane 0 of each is the key.
        const __m128 a = _mm_castsi128_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)));
        const __m128 b = _mm_castsi128_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 16)));
        const __m128 c = _mm_castsi128_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 32)));
        const __m128 d = _mm_castsi128_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 48)));
        // Gather lane 0 of a/b/c/d into one vector: [a0 b0 c0 d0].
        const __m128 ab = _mm_shuffle_ps(a, b, _MM_SHUFFLE(0, 0, 0, 0));
        const __m128 cd = _mm_shuffle_ps(c, d, _MM_SHUFFLE(0, 0, 0, 0));
        const __m128 keys = _mm_shuffle_ps(ab, cd, _MM_SHUFFLE(2, 0, 2, 0));
        const __m128i eq = _mm_cmpeq_epi32(_mm_castps_si128(keys), vneedle);
        mask |= static_cast<std::uint64_t>(
                    _mm_movemask_ps(_mm_castsi128_ps(eq)))
                << i;
    }
    for (; i < count; ++i) {
        std::uint32_t key;
        std::memcpy(&key, p + static_cast<std::size_t>(i) * 16, sizeof(key));
        mask |= static_cast<std::uint64_t>(key == needle) << i;
    }
    return mask;
#elif defined(GT_SIMD_NEON)
    const auto* p = static_cast<const unsigned char*>(first_key);
    const uint32x4_t vneedle = vdupq_n_u32(needle);
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        // vld4q de-interleaves 64 bytes with a 4-word stride: val[0] holds
        // the word at byte offsets 0/16/32/48 — exactly the four keys.
        const uint32x4x4_t cells = vld4q_u32(reinterpret_cast<const std::uint32_t*>(
            p + static_cast<std::size_t>(i) * 16));
        const uint32x4_t eq = vceqq_u32(cells.val[0], vneedle);
        const uint16x4_t narrowed = vmovn_u32(eq);
        const std::uint64_t lanes =
            vget_lane_u64(vreinterpret_u64_u16(narrowed), 0);
        const std::uint64_t bits = (lanes & 0x1ULL) | ((lanes >> 15) & 0x2ULL) |
                                   ((lanes >> 30) & 0x4ULL) |
                                   ((lanes >> 45) & 0x8ULL);
        mask |= bits << i;
    }
    for (; i < count; ++i) {
        std::uint32_t key;
        std::memcpy(&key, p + static_cast<std::size_t>(i) * 16, sizeof(key));
        mask |= static_cast<std::uint64_t>(key == needle) << i;
    }
    return mask;
#else
    return match_u32_stride16_scalar(first_key, count, needle);
#endif
}

}  // namespace gt::simd
