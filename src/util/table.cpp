#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
    std::vector<std::string> row;
    row.reserve(values.size());
    for (double value : values) {
        row.push_back(fmt(value, precision));
    }
    add_row(std::move(row));
}

std::string Table::fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };
    emit(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c) {
        rule.append(widths[c] + 2, c + 1 == header_.size() ? '-' : '-');
    }
    os << rule << '\n';
    for (const auto& row : rows_) {
        emit(row);
    }
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0) {
                os << ',';
            }
            os << cells[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) {
        emit(row);
    }
}

}  // namespace gt
