// gt::Status — typed, allocation-light error reporting for the durability
// and persistence layers.
//
// The recovery stack (snapshots, WAL, transactional batches) needs to say
// *which* failure happened — a truncated config section is recoverable by
// falling back to an older snapshot, while a checksum mismatch in the edge
// stream means the file is actively corrupt, and a transactional batch
// failure must carry the failing op index back to the caller. A bool cannot
// express any of that, so every fallible operation in those layers returns a
// Status: a code from the closed enum below, an optional human-readable
// message, and a 64-bit detail slot (failing batch index, byte offset, or
// sequence number depending on the code).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace gt {

/// Closed set of failure classes. Codes are grouped by subsystem; tests
/// assert on codes (never on message text), so each distinct detectable
/// failure gets its own code.
enum class StatusCode : std::uint8_t {
    Ok = 0,

    // ---- generic -------------------------------------------------------
    InvalidArgument,    // caller-supplied value out of domain
    ResourceExhausted,  // allocation failure (std::bad_alloc)
    FaultInjected,      // a gt::fail FailPoint fired (tests/torture only)
    IoError,            // read/write/fsync/rename on the underlying file
    WouldDeadlock,      // refused: completing the call would self-deadlock
                        // (e.g. draining a shard the caller holds pinned)
    TimedOut,           // a deadline-bounded operation ran out of time
                        // (net io deadlines; retryable at the caller's
                        // discretion — the operation may have partially
                        // happened on the other side)

    // ---- snapshot save/load (core/serialize.hpp) -----------------------
    SnapshotBadMagic,           // leading magic is not "GTSB"
    SnapshotBadVersion,         // unsupported format version
    SnapshotTruncatedHeader,    // EOF inside magic/version/wal_seq
    SnapshotTruncatedConfig,    // EOF inside the config section
    SnapshotConfigChecksum,     // config section CRC32C mismatch
    SnapshotBadConfig,          // config decoded but fails validation
    SnapshotTruncatedEdgeCount, // EOF where the edge count belongs
    SnapshotTruncatedEdges,     // EOF inside the edge records
    SnapshotEdgeChecksum,       // edge section CRC32C mismatch
    SnapshotEdgeCountMismatch,  // edges present != count declared
    SnapshotTruncatedFooter,    // EOF where the end marker belongs
    SnapshotBadFooter,          // end marker is not "GTSE"
    SnapshotImplausibleCount,   // declared edge count exceeds the stream size

    // ---- write-ahead log (recover/wal.hpp) -----------------------------
    WalBadMagic,     // file header magic is not "GTWL"
    WalBadVersion,   // unsupported WAL format version
    WalTruncated,    // clean torn tail: EOF inside a record (discardable)
    WalChecksum,     // record CRC32C mismatch (bit rot / torn write)
    WalBadRecord,    // record type/length outside the format's bounds
    WalBadSequence,  // sequence numbers not contiguous/monotonic
    WalTornBatch,    // batch frame opened but never committed (discardable)
    WalClosed,       // writer already failed/closed; append refused

    // ---- recovery orchestration (recover/durable.hpp) ------------------
    RecoveryAuditFailed,  // post-replay structural audit found violations
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) noexcept {
    switch (code) {
        case StatusCode::Ok: return "ok";
        case StatusCode::InvalidArgument: return "invalid_argument";
        case StatusCode::ResourceExhausted: return "resource_exhausted";
        case StatusCode::FaultInjected: return "fault_injected";
        case StatusCode::IoError: return "io_error";
        case StatusCode::WouldDeadlock: return "would_deadlock";
        case StatusCode::TimedOut: return "timed_out";
        case StatusCode::SnapshotBadMagic: return "snapshot_bad_magic";
        case StatusCode::SnapshotBadVersion: return "snapshot_bad_version";
        case StatusCode::SnapshotTruncatedHeader:
            return "snapshot_truncated_header";
        case StatusCode::SnapshotTruncatedConfig:
            return "snapshot_truncated_config";
        case StatusCode::SnapshotConfigChecksum:
            return "snapshot_config_checksum";
        case StatusCode::SnapshotBadConfig: return "snapshot_bad_config";
        case StatusCode::SnapshotTruncatedEdgeCount:
            return "snapshot_truncated_edge_count";
        case StatusCode::SnapshotTruncatedEdges:
            return "snapshot_truncated_edges";
        case StatusCode::SnapshotEdgeChecksum:
            return "snapshot_edge_checksum";
        case StatusCode::SnapshotEdgeCountMismatch:
            return "snapshot_edge_count_mismatch";
        case StatusCode::SnapshotTruncatedFooter:
            return "snapshot_truncated_footer";
        case StatusCode::SnapshotBadFooter: return "snapshot_bad_footer";
        case StatusCode::SnapshotImplausibleCount:
            return "snapshot_implausible_count";
        case StatusCode::WalBadMagic: return "wal_bad_magic";
        case StatusCode::WalBadVersion: return "wal_bad_version";
        case StatusCode::WalTruncated: return "wal_truncated";
        case StatusCode::WalChecksum: return "wal_checksum";
        case StatusCode::WalBadRecord: return "wal_bad_record";
        case StatusCode::WalBadSequence: return "wal_bad_sequence";
        case StatusCode::WalTornBatch: return "wal_torn_batch";
        case StatusCode::WalClosed: return "wal_closed";
        case StatusCode::RecoveryAuditFailed: return "recovery_audit_failed";
    }
    return "unknown";
}

struct Status {
    StatusCode code = StatusCode::Ok;
    std::string message;
    /// Code-dependent detail: the failing op index for batch errors, the
    /// byte offset for file-format errors, the sequence number for WAL
    /// ordering errors. 0 when the code carries no detail.
    std::uint64_t detail = 0;

    Status() = default;
    Status(StatusCode c, std::string msg, std::uint64_t d = 0)
        : code(c), message(std::move(msg)), detail(d) {}

    [[nodiscard]] bool ok() const noexcept { return code == StatusCode::Ok; }
    explicit operator bool() const noexcept { return ok(); }

    [[nodiscard]] static Status success() { return Status{}; }
    [[nodiscard]] static Status make(StatusCode code, std::string message,
                                     std::uint64_t detail = 0) {
        return Status{code, std::move(message), detail};
    }

    [[nodiscard]] std::string to_string() const {
        if (ok()) {
            return "ok";
        }
        std::string out{gt::to_string(code)};
        if (!message.empty()) {
            out += ": ";
            out += message;
        }
        if (detail != 0) {
            out += " (detail=" + std::to_string(detail) + ")";
        }
        return out;
    }
};

}  // namespace gt
