// Hash mixers used across the data structures.
//
// The Tree-Based Hashing scheme of the paper requires a *level-salted* hash
// family: at every generation of the edgeblock tree the destination vertex id
// must re-hash to a fresh subblock/cell position, otherwise congestion at one
// level reproduces itself at every descendant level.
#pragma once

#include <cstdint>

namespace gt {

/// splitmix64 finalizer — a strong, cheap 64-bit mixer (public-domain
/// constants from Vigna's splitmix64 reference implementation).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// 32-bit finalizer (murmur3 fmix32).
[[nodiscard]] constexpr std::uint32_t mix32(std::uint32_t x) noexcept {
    x ^= x >> 16;
    x *= 0x85ebca6bU;
    x ^= x >> 13;
    x *= 0xc2b2ae35U;
    x ^= x >> 16;
    return x;
}

/// Level-salted hash of a vertex id: `level` is the generation in the
/// edgeblock tree (0 = top-parent). Distinct levels give independent values.
[[nodiscard]] constexpr std::uint64_t level_hash(std::uint32_t vertex,
                                                 std::uint32_t level) noexcept {
    return mix64((static_cast<std::uint64_t>(level) << 32) | vertex);
}

}  // namespace gt
