#include "util/thread_pool.hpp"

#include <algorithm>

namespace gt {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const LockGuard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) {
        return;
    }
    UniqueLock lock(mutex_);
    batch_.fn = &fn;
    batch_.n = n;
    batch_.next = 0;
    batch_.remaining = n;
    ++batch_.epoch;
    work_cv_.notify_all();

    // The calling thread helps, so a pool of size 1 still makes progress even
    // while its single worker is busy elsewhere.
    while (batch_.next < batch_.n) {
        const std::size_t index = batch_.next++;
        lock.unlock();
        fn(index);
        lock.lock();
        --batch_.remaining;
    }
    while (batch_.remaining != 0) {
        done_cv_.wait(lock);
    }
    batch_.fn = nullptr;
}

void ThreadPool::worker_loop() {
    UniqueLock lock(mutex_);
    std::uint64_t seen_epoch = 0;
    while (true) {
        while (!stop_ &&
               !(batch_.fn != nullptr && batch_.next < batch_.n &&
                 batch_.epoch != seen_epoch)) {
            work_cv_.wait(lock);
        }
        if (stop_) {
            return;
        }
        seen_epoch = batch_.epoch;
        while (batch_.fn != nullptr && batch_.next < batch_.n) {
            const std::size_t index = batch_.next++;
            const auto* fn = batch_.fn;
            lock.unlock();
            (*fn)(index);
            lock.lock();
            if (--batch_.remaining == 0) {
                done_cv_.notify_all();
            }
        }
    }
}

}  // namespace gt
