#include "util/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <cstring>
#endif

namespace gt {

void set_current_thread_name(const char* name) noexcept {
#if defined(__linux__)
    // The kernel caps comm names at 16 bytes including the NUL; truncate
    // instead of letting pthread_setname_np fail with ERANGE.
    char buf[16];
    std::strncpy(buf, name, sizeof(buf) - 1);
    buf[sizeof(buf) - 1] = '\0';
    (void)pthread_setname_np(pthread_self(), buf);
#else
    (void)name;
#endif
}

bool pin_current_thread(std::size_t cpu) noexcept {
#if defined(__linux__)
    const long online = sysconf(_SC_NPROCESSORS_ONLN);
    if (online <= 0) {
        return false;
    }
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(cpu % static_cast<std::size_t>(online)), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

std::size_t spin_iterations_hint() noexcept {
    // On a single-core host the producer cannot run while the consumer
    // spins, so every spin iteration is pure delay — block immediately.
    static const std::size_t hint =
        std::thread::hardware_concurrency() > 1 ? 256 : 0;
    return hint;
}

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const LockGuard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::run_batch(std::size_t n, RawTask call, void* ctx) {
    if (n == 0) {
        return;
    }
    UniqueLock lock(mutex_);
    batch_.call = call;
    batch_.ctx = ctx;
    batch_.n = n;
    batch_.next = 0;
    batch_.remaining = n;
    ++batch_.epoch;
    work_cv_.notify_all();

    // The calling thread helps, so a pool of size 1 still makes progress even
    // while its single worker is busy elsewhere.
    while (batch_.next < batch_.n) {
        const std::size_t index = batch_.next++;
        lock.unlock();
        call(ctx, index);
        lock.lock();
        --batch_.remaining;
    }
    while (batch_.remaining != 0) {
        done_cv_.wait(lock);
    }
    batch_.call = nullptr;
    batch_.ctx = nullptr;
}

void ThreadPool::worker_loop() {
    UniqueLock lock(mutex_);
    std::uint64_t seen_epoch = 0;
    while (true) {
        while (!stop_ &&
               !(batch_.call != nullptr && batch_.next < batch_.n &&
                 batch_.epoch != seen_epoch)) {
            work_cv_.wait(lock);
        }
        if (stop_) {
            return;
        }
        seen_epoch = batch_.epoch;
        while (batch_.call != nullptr && batch_.next < batch_.n) {
            const std::size_t index = batch_.next++;
            const RawTask call = batch_.call;
            void* ctx = batch_.ctx;
            lock.unlock();
            call(ctx, index);
            lock.lock();
            if (--batch_.remaining == 0) {
                done_cv_.notify_all();
            }
        }
    }
}

}  // namespace gt
