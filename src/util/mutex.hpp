// Annotated locking primitives — the only place in the tree allowed to name
// std::mutex and friends (gt_lint.py's raw-mutex rule enforces this).
//
// Every lock in the repo is a gt::Mutex / gt::SharedMutex / gt::SpinLock so
// Clang Thread Safety Analysis (the `tsa` CMake preset) can check the lock
// discipline statically: members carry GT_GUARDED_BY(mu_), functions carry
// GT_REQUIRES / GT_EXCLUDES, and the RAII guards below are scoped
// capabilities the analysis tracks through unlock()/lock() cycles (the
// thread-pool wait loops need exactly that).
//
// The wrappers add no state and no virtual dispatch — each is
// layout-identical to the std primitive it wraps; the annotations are free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace gt {

/// Exclusive-only mutex (std::mutex with a capability annotation).
class GT_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() GT_ACQUIRE() { mu_.lock(); }
    void unlock() GT_RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() GT_TRY_ACQUIRE(true) {
        return mu_.try_lock();
    }

    /// The wrapped primitive — for CondVar only; never lock it directly.
    [[nodiscard]] std::mutex& native() { return mu_; }

private:
    std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex with capability annotations).
class GT_CAPABILITY("shared_mutex") SharedMutex {
public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() GT_ACQUIRE() { mu_.lock(); }
    void unlock() GT_RELEASE() { mu_.unlock(); }
    /// Non-blocking writer acquire — lets a single-writer owner fall back
    /// to a deferred queue instead of stalling its event loop behind
    /// readers (glibc's shared_mutex is reader-preferring).
    [[nodiscard]] bool try_lock() GT_TRY_ACQUIRE(true) {
        return mu_.try_lock();
    }
    void lock_shared() GT_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() GT_RELEASE_SHARED() { mu_.unlock_shared(); }

private:
    std::shared_mutex mu_;
};

/// Tiny test-and-set spinlock for fine-grained per-record serialization
/// (STINGER's per-vertex edge-list lock). Spins without backoff: critical
/// sections are a handful of cache lines and contention is per-vertex.
class GT_CAPABILITY("spinlock") SpinLock {
public:
    SpinLock() = default;
    SpinLock(const SpinLock&) = delete;
    SpinLock& operator=(const SpinLock&) = delete;

    void lock() GT_ACQUIRE() {
        while (flag_.test_and_set(std::memory_order_acquire)) {
        }
    }
    void unlock() GT_RELEASE() { flag_.clear(std::memory_order_release); }

private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII exclusive guard over any annotated lockable (Mutex, SharedMutex in
/// writer mode, SpinLock). The std::lock_guard of this layer.
template <typename LockType = Mutex>
class GT_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(LockType& mu) GT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() GT_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    LockType& mu_;
};

/// RAII shared (reader) guard over a SharedMutex.
class GT_SCOPED_CAPABILITY SharedLockGuard {
public:
    explicit SharedLockGuard(SharedMutex& mu) GT_ACQUIRE_SHARED(mu)
        : mu_(mu) {
        mu_.lock_shared();
    }
    ~SharedLockGuard() GT_RELEASE_GENERIC() { mu_.unlock_shared(); }

    SharedLockGuard(const SharedLockGuard&) = delete;
    SharedLockGuard& operator=(const SharedLockGuard&) = delete;

private:
    SharedMutex& mu_;
};

/// Scoped exclusive hold on a gt::Mutex that supports mid-scope
/// unlock()/lock() cycles and condition-variable waits — the annotated
/// std::unique_lock. Constructed locked; the destructor releases only if
/// still held.
class GT_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& mu) GT_ACQUIRE(mu) : native_(mu.native()) {}
    /// Releases the hold if still held (std::unique_lock tracks that).
    ~UniqueLock() GT_RELEASE() {}

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    /// Drops the hold mid-scope (hot sections run unlocked).
    void unlock() GT_RELEASE() { native_.unlock(); }
    /// Re-acquires after unlock().
    void lock() GT_ACQUIRE() { native_.lock(); }

    /// The wrapped std::unique_lock — for CondVar::wait only.
    [[nodiscard]] std::unique_lock<std::mutex>& native() { return native_; }

private:
    std::unique_lock<std::mutex> native_;
};

/// Condition variable paired with gt::Mutex via gt::UniqueLock.
///
/// The analysis treats a wait as happening with the lock continuously held:
/// wait() atomically releases and re-acquires inside, so guarded state read
/// after wake is in fact protected — the annotation-free modeling is sound.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// One blocking wait (spurious wakeups possible — re-test the condition
    /// in a loop). Prefer this over a predicate overload: the analysis sees
    /// the guarded condition read directly in the annotated caller, whereas
    /// a predicate lambda would be analyzed as an unannotated function.
    void wait(UniqueLock& lock) { cv_.wait(lock.native()); }
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace gt
