// Environment-variable configuration knobs shared by the bench harness.
#pragma once

#include <cstdint>
#include <string>

namespace gt {

/// Reads an environment variable as double, returning `fallback` when unset
/// or unparsable.
[[nodiscard]] double env_double(const char* name, double fallback);

/// Reads an environment variable as u64, returning `fallback` when unset or
/// unparsable.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Global benchmark scale factor (GT_SCALE). Benches multiply paper edge
/// counts by this; default 1/64 keeps the full suite laptop-friendly.
[[nodiscard]] double bench_scale();

}  // namespace gt
