// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace gt {

/// Simple wall-clock stopwatch.
class Timer {
public:
    Timer() noexcept : start_(Clock::now()) {}

    void reset() noexcept { start_ = Clock::now(); }

    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Throughput in million items per second, guarding against zero elapsed.
[[nodiscard]] inline double mops(std::uint64_t items, double seconds) noexcept {
    return seconds > 0.0 ? static_cast<double>(items) / seconds / 1e6 : 0.0;
}

}  // namespace gt
