// gt::fail — pluggable fault injection for robustness testing.
//
// A *fail point* is a named site in production code where a test (or the
// crash-torture harness) can schedule a failure: the Nth time execution
// crosses the site, it throws gt::fail::InjectedFault — which derives from
// std::bad_alloc, so every handler written for genuine allocation failure
// also covers injected ones. Sites are placed where failure is *survivable
// by construction*: arena growth pre-flights that run before any structural
// mutation, and WAL appends whose caller latches the error.
//
// Cost when idle: one relaxed atomic load of a process-wide "anything
// armed?" flag per site crossing — no lock, no map lookup. Arming is
// test-only and mutex-guarded. Fail points are countdown-armed and
// single-shot: after firing they disarm themselves, so rollback/recovery
// code that re-crosses the same site does not fail again unless the test
// re-arms it.
#pragma once

#include <cstdint>
#include <new>
#include <string>

namespace gt::fail {

/// Thrown when an armed fail point fires. Derives from std::bad_alloc so
/// generic OOM-rollback paths handle injected faults identically; callers
/// that need to distinguish catch InjectedFault first.
class InjectedFault : public std::bad_alloc {
public:
    explicit InjectedFault(std::string site) : site_(std::move(site)) {}
    [[nodiscard]] const char* what() const noexcept override {
        return "gt::fail::InjectedFault";
    }
    [[nodiscard]] const std::string& site() const noexcept { return site_; }

private:
    std::string site_;
};

/// Arms `site` to fire on its `countdown`-th crossing (1 = next crossing).
/// Re-arming an armed site resets its countdown.
void arm(const std::string& site, std::uint64_t countdown = 1);

/// Disarms `site` (no-op when not armed).
void disarm(const std::string& site);

/// Disarms every site.
void reset();

/// Crossings of `site` since process start (armed or not, fired or not).
/// Test-only introspection; counted only while at least one site is armed.
[[nodiscard]] std::uint64_t hits(const std::string& site);

/// True when at least one site is armed (the hot-path gate).
[[nodiscard]] bool any_armed() noexcept;

namespace detail {
/// Slow path of GT_FAILPOINT: decrements `site`'s countdown and throws
/// InjectedFault when it reaches zero. Called only when any_armed().
void crossed(const char* site);

/// Slow path of GT_FAILPOINT_HIT: same countdown bookkeeping as crossed(),
/// but reports the firing as a return value instead of throwing — the form
/// noexcept code (the net io layer) uses to mutate a syscall outcome.
[[nodiscard]] bool check(const char* site) noexcept;
}  // namespace detail

/// Marks a fail-point site. Near-zero cost when nothing is armed.
inline void failpoint(const char* site) {
    if (any_armed()) {
        detail::crossed(site);
    }
}

/// Non-throwing site marker: true exactly when the armed countdown fires.
[[nodiscard]] inline bool failpoint_hit(const char* site) noexcept {
    return any_armed() && detail::check(site);
}

/// RAII arm/disarm for tests.
class ScopedFailPoint {
public:
    explicit ScopedFailPoint(std::string site, std::uint64_t countdown = 1)
        : site_(std::move(site)) {
        arm(site_, countdown);
    }
    ~ScopedFailPoint() { disarm(site_); }
    ScopedFailPoint(const ScopedFailPoint&) = delete;
    ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

private:
    std::string site_;
};

}  // namespace gt::fail

/// Site marker macro — reads as a statement at the injection site.
#define GT_FAILPOINT(site) ::gt::fail::failpoint(site)

/// Non-throwing site marker — reads as a condition: the branch taken when
/// it fires simulates the failure in place (errno, short count, ...).
#define GT_FAILPOINT_HIT(site) ::gt::fail::failpoint_hit(site)
