// Clang Thread Safety Analysis attribute macros (GT_ prefix).
//
// These turn the repo's lock discipline — which mutex guards which state,
// which functions require which capability — from comments into compiler-
// checked contracts. Under Clang with -Wthread-safety (the `tsa` CMake
// preset), a read of a GT_GUARDED_BY member without its lock held, a
// double-acquire, or a forgotten release is a hard error; under GCC (which
// has no equivalent analysis) every macro expands to nothing and the
// annotated code compiles unchanged.
//
// Vocabulary (mirrors the Clang attribute set, see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   GT_CAPABILITY(name)        class is a lockable capability ("mutex")
//   GT_SCOPED_CAPABILITY       RAII class acquiring at ctor / releasing at dtor
//   GT_GUARDED_BY(mu)          member readable/writable only with mu held
//   GT_PT_GUARDED_BY(mu)       pointee guarded by mu (the pointer itself not)
//   GT_ACQUIRE(mu...)          function acquires mu exclusively
//   GT_ACQUIRE_SHARED(mu...)   function acquires mu shared
//   GT_RELEASE(mu...)          function releases mu
//   GT_RELEASE_SHARED(mu...)   function releases a shared hold on mu
//   GT_TRY_ACQUIRE(ok, mu...)  acquires mu when returning `ok`
//   GT_REQUIRES(mu...)         callable only with mu held exclusively
//   GT_REQUIRES_SHARED(mu...)  callable only with mu held (shared suffices)
//   GT_EXCLUDES(mu...)         callable only with mu NOT held (deadlock guard)
//   GT_ASSERT_CAPABILITY(mu)   runtime assertion that mu is held
//   GT_RETURN_CAPABILITY(mu)   function returns a reference to mu
//   GT_NO_THREAD_SAFETY_ANALYSIS  opt a function out (init/teardown paths)
//
// Keep these macros on the gt::Mutex family (src/util/mutex.hpp) and the
// data they guard; gt_lint.py's raw-mutex rule keeps std primitives from
// creeping back in unannotated.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef GT_THREAD_ANNOTATION
#define GT_THREAD_ANNOTATION(x)  // no-op: GCC / MSVC / old Clang
#endif

#define GT_CAPABILITY(name) GT_THREAD_ANNOTATION(capability(name))
#define GT_SCOPED_CAPABILITY GT_THREAD_ANNOTATION(scoped_lockable)
#define GT_GUARDED_BY(x) GT_THREAD_ANNOTATION(guarded_by(x))
#define GT_PT_GUARDED_BY(x) GT_THREAD_ANNOTATION(pt_guarded_by(x))
#define GT_ACQUIRE(...) \
    GT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GT_ACQUIRE_SHARED(...) \
    GT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GT_RELEASE(...) \
    GT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GT_RELEASE_SHARED(...) \
    GT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GT_RELEASE_GENERIC(...) \
    GT_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define GT_TRY_ACQUIRE(...) \
    GT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GT_REQUIRES(...) \
    GT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GT_REQUIRES_SHARED(...) \
    GT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define GT_EXCLUDES(...) GT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GT_ASSERT_CAPABILITY(x) \
    GT_THREAD_ANNOTATION(assert_capability(x))
#define GT_RETURN_CAPABILITY(x) GT_THREAD_ANNOTATION(lock_returned(x))
#define GT_NO_THREAD_SAFETY_ANALYSIS \
    GT_THREAD_ANNOTATION(no_thread_safety_analysis)
