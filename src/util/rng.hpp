// Deterministic pseudo-random number generation for workload synthesis.
//
// All generators in this repository are seeded explicitly so every benchmark
// and test run is reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace gt {

/// xoshiro256** — fast, high-quality PRNG (Blackman & Vigna, public domain).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
        // Seed the full state through splitmix64 as the authors recommend.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            word = mix64(x++);
        }
    }

    [[nodiscard]] std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
        // Lemire's multiply-shift rejection-free reduction is fine here:
        // slight bias is irrelevant for workload synthesis.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /// Uniform double in [0, 1).
    [[nodiscard]] double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

}  // namespace gt
