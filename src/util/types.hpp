// Fundamental value types shared by every GraphTinker module.
#pragma once

#include <cstdint>
#include <limits>

namespace gt {

/// Vertex identifier. 32 bits covers every dataset in the paper (max 2^21
/// vertices) with plenty of headroom while keeping edge records compact.
using VertexId = std::uint32_t;

/// Edge weight. The paper's SSSP experiments use weighted edges; BFS/CC
/// ignore the weight.
using Weight = std::uint32_t;

/// Count of edges; graphs in the evaluation reach 182M edges, so 64 bits.
using EdgeCount = std::uint64_t;

/// Sentinel for "no vertex" / "unassigned slot".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for infinite distance in SSSP/BFS properties.
inline constexpr std::uint32_t kInfDistance = std::numeric_limits<std::uint32_t>::max();

/// A directed edge as it appears in an update stream.
struct Edge {
    VertexId src = kInvalidVertex;
    VertexId dst = kInvalidVertex;
    Weight weight = 1;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/// Kind of update in a dynamic stream.
enum class UpdateKind : std::uint8_t { Insert, Delete };

/// A single dynamic-graph update (edge plus operation).
struct Update {
    Edge edge;
    UpdateKind kind = UpdateKind::Insert;

    friend bool operator==(const Update&, const Update&) = default;
};

}  // namespace gt
