// The hybrid edge-centric graph engine (paper §IV).
//
// Per iteration, the inference unit predicts whether full processing (FP —
// stream *all* edges contiguously, here from the CAL; messages from inactive
// sources are simply skipped) or incremental processing (IP — walk the
// out-edges of each active vertex through the EdgeblockArray) is cheaper,
// using the paper's rule:
//
//     T = A / E,     mode = FP when T > threshold (0.02), else IP
//
// where A is the number of active vertices for the upcoming iteration and E
// is the number of edges loaded so far. Both modes compute identical
// per-iteration results; only the memory access pattern differs — which is
// the whole point.
//
// The engine is generic over the store: any type providing
//   visit_out_edges(v, fn(dst, w)) / visit_edges(fn(src, dst, w)) /
//   num_edges() / num_vertices() / degree(v)
// can drive it, so GraphTinker and the STINGER baseline are exercised by
// byte-for-byte the same engine code.
//
// Telemetry goes through gt::obs: point EngineOptions::registry at a
// MetricsRegistry and the engine appends one row per iteration to the
// "engine.trace" series (mode, decision ratio, edges streamed/walked, wall
// time) and bumps the aggregate "engine.*" counters. No registry, no
// recording — there is no private trace vector any more.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/active_set.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace gt::engine {

/// Load path of one iteration.
enum class Mode : std::uint8_t { Full, Incremental };

/// Engine-level policy for choosing the load path.
///
/// `Hybrid` is the paper's inference rule: T = A/E against a fixed
/// threshold, where A counts active vertices. `HybridDegreeAware`
/// implements the paper's stated future-work heuristic: it weighs the
/// active set by its total degree (L = Σ degree(active)), i.e. the exact
/// number of edges an incremental iteration would walk, and compares L/E
/// against `degree_threshold` — the measured cost ratio between streaming
/// one edge from the CAL and walking one edge through the EdgeblockArray.
/// On graphs whose average degree is so high that A/E can never reach the
/// fixed threshold (e.g. hollywood-2009), the degree-aware rule still finds
/// the FP/IP crossover.
enum class ModePolicy : std::uint8_t {
    ForceFull,
    ForceIncremental,
    Hybrid,
    HybridDegreeAware,
};

struct EngineOptions {
    ModePolicy policy = ModePolicy::Hybrid;
    /// The paper's empirically chosen decision threshold (§IV.B).
    double threshold = 0.02;
    /// Crossover for HybridDegreeAware: choose FP when the incremental walk
    /// would touch more than this fraction of all edges.
    double degree_threshold = 0.3;
    /// Telemetry sink. When set, every iteration appends a row to the
    /// "engine.trace" series (fields kTraceFields below) and bumps the
    /// aggregate "engine.*" counters. Typically `&store.obs()` so engine
    /// and store telemetry land in one snapshot; null disables recording.
    obs::Registry* registry = nullptr;
};

/// Field schema of the "engine.trace" series, one row per iteration:
/// `iteration` is a monotonically increasing sequence number across runs,
/// `mode_full` is 1.0 for FP / 0.0 for IP, `ratio` is the value the
/// inference unit compared against its threshold (A/E, or L/E for the
/// degree-aware policy).
inline constexpr std::array<std::string_view, 7> kTraceFields = {
    "iteration",     "mode_full",     "active", "ratio",
    "edges_streamed", "logical_edges", "seconds"};

/// Aggregated statistics for one analytics run (one convergence to
/// fixpoint). `logical_edges` is mode-independent, so
/// logical_edges / seconds is the throughput metric used to compare FP, IP,
/// hybrid and the STINGER baseline on equal footing (EXPERIMENTS.md).
struct RunStats {
    std::size_t iterations = 0;
    std::size_t full_iterations = 0;
    std::size_t incremental_iterations = 0;
    std::uint64_t edges_streamed = 0;
    std::uint64_t logical_edges = 0;
    double seconds = 0.0;

    void accumulate(const RunStats& other) {
        iterations += other.iterations;
        full_iterations += other.full_iterations;
        incremental_iterations += other.incremental_iterations;
        edges_streamed += other.edges_streamed;
        logical_edges += other.logical_edges;
        seconds += other.seconds;
    }

    [[nodiscard]] double throughput_meps() const noexcept {
        return mops(logical_edges, seconds);
    }
};

/// A persistent dynamic analysis: vertex properties survive across batch
/// updates so the incremental-compute model can refine the previous result
/// instead of recomputing it (paper §II.B).
template <typename Store, typename Alg>
class DynamicAnalysis {
public:
    using Property = typename Alg::Property;

    explicit DynamicAnalysis(const Store& store, EngineOptions opts = {},
                             Alg alg = {})
        : store_(store), opts_(opts), alg_(alg) {
        if (opts_.registry != nullptr) {
            obs::Registry& r = *opts_.registry;
            trace_ = &r.series("engine.trace",
                               {kTraceFields.begin(), kTraceFields.end()});
            iterations_m_ = &r.counter("engine.iterations");
            full_m_ = &r.counter("engine.full_iterations");
            incremental_m_ = &r.counter("engine.incremental_iterations");
            streamed_m_ = &r.counter("engine.edges_streamed");
            logical_m_ = &r.counter("engine.logical_edges");
        }
    }

    /// Registers the analysis root (BFS/SSSP); its property becomes 0 and it
    /// seeds from-scratch runs. May be called before the vertex exists.
    void set_root(VertexId root) {
        roots_.push_back(root);
        grow(root + 1);
        props_[root] = Property{0};
        active_.insert(root);
    }

    /// Set-Inconsistency-Vertices unit + run to fixpoint. Call *after* the
    /// store ingested `batch`.
    RunStats on_batch(std::span<const Edge> batch) {
        grow(static_cast<VertexId>(store_.num_vertices()));
        alg_.seed_batch(batch, [&](VertexId v) { active_.insert(v); });
        return run();
    }

    /// Store-and-static-compute model: discard prior state and recompute the
    /// whole analysis on the graph as it currently stands.
    RunStats run_from_scratch() {
        reset();
        return run();
    }

    /// Re-seeds without discarding properties (useful after manual edits).
    RunStats run_to_fixpoint() { return run(); }

    [[nodiscard]] const std::vector<Property>& properties() const noexcept {
        return props_;
    }
    [[nodiscard]] Property property(VertexId v) const {
        return v < props_.size() ? props_[v] : alg_.initial(v);
    }
    [[nodiscard]] const Alg& algorithm() const noexcept { return alg_; }
    [[nodiscard]] const EngineOptions& options() const noexcept {
        return opts_;
    }

private:
    void grow(VertexId bound) {
        const auto old = static_cast<VertexId>(props_.size());
        if (bound <= old) {
            return;
        }
        props_.resize(bound);
        temp_.resize(bound);
        for (VertexId v = old; v < bound; ++v) {
            props_[v] = alg_.initial(v);
        }
        active_.resize(bound);
        next_.resize(bound);
        touched_.resize(bound);
    }

    void reset() {
        active_.clear();
        next_.clear();
        touched_.clear();
        const auto bound = static_cast<VertexId>(store_.num_vertices());
        props_.clear();
        grow(bound);
        if constexpr (Alg::needs_root) {
            for (VertexId root : roots_) {
                grow(root + 1);
                props_[root] = Property{0};
                active_.insert(root);
            }
        } else {
            // Label-propagation style: every vertex starts active owning its
            // initial label.
            for (VertexId v = 0; v < bound; ++v) {
                active_.insert(v);
            }
        }
    }

    /// Mode plus the ratio the inference unit compared (published to the
    /// "engine.trace" series so threshold crossings are visible post hoc).
    struct ModeDecision {
        Mode mode;
        double ratio;
    };

    /// The inference-box decision for the upcoming iteration (paper §IV.B).
    [[nodiscard]] ModeDecision decide_mode() const {
        const double edges =
            static_cast<double>(std::max<EdgeCount>(store_.num_edges(), 1));
        const double a_over_e = static_cast<double>(active_.size()) / edges;
        switch (opts_.policy) {
            case ModePolicy::ForceFull:
                return {Mode::Full, a_over_e};
            case ModePolicy::ForceIncremental:
                return {Mode::Incremental, a_over_e};
            case ModePolicy::Hybrid:
                return {a_over_e > opts_.threshold ? Mode::Full
                                                   : Mode::Incremental,
                        a_over_e};
            case ModePolicy::HybridDegreeAware:
                break;
        }
        std::uint64_t walk = 0;  // edges an IP iteration would traverse
        for (VertexId u : active_.vertices()) {
            walk += store_.degree(u);
        }
        const double t = static_cast<double>(walk) / edges;
        return {t > opts_.degree_threshold ? Mode::Full : Mode::Incremental,
                t};
    }

    void scatter_to(VertexId dst, Property msg) {
        if (dst >= temp_.size()) {
            grow(dst + 1);
        }
        if (touched_.insert(dst)) {
            temp_[dst] = msg;
        } else {
            temp_[dst] = alg_.reduce(temp_[dst], msg);
        }
    }

    RunStats run() {
        RunStats stats;
        while (!active_.empty()) {
            Timer timer;
            const ModeDecision decision = decide_mode();
            const Mode mode = decision.mode;
            const std::size_t processed = active_.size();
            std::uint64_t streamed = 0;
            std::uint64_t logical = 0;
            touched_.clear();

            // --- processing phase (scatter + reduce) --------------------
            if (mode == Mode::Incremental) {
                for (VertexId u : active_.vertices()) {
                    const Property up = props_[u];
                    store_.visit_out_edges(u, [&](VertexId v, Weight w) {
                        ++streamed;
                        if (const auto msg = alg_.process_edge(u, up, w)) {
                            scatter_to(v, *msg);
                        }
                    });
                }
                logical = streamed;
            } else {
                store_.visit_edges([&](VertexId u, VertexId v, Weight w) {
                    ++streamed;
                    if (active_.contains(u)) {
                        if (const auto msg =
                                alg_.process_edge(u, props_[u], w)) {
                            scatter_to(v, *msg);
                        }
                    }
                });
                for (VertexId u : active_.vertices()) {
                    logical += store_.degree(u);
                }
            }

            // Post-scatter hook: algorithms like forward-push PageRank fold
            // the mass they just pushed into their own committed state.
            if constexpr (requires(Alg a, Property& prop) {
                              a.on_scattered(prop);
                          }) {
                for (VertexId u : active_.vertices()) {
                    alg_.on_scattered(props_[u]);
                }
            }

            // --- apply phase (commit + next frontier) --------------------
            next_.clear();
            for (VertexId v : touched_.vertices()) {
                if (alg_.apply(props_[v], temp_[v])) {
                    next_.insert(v);
                }
            }
            active_.swap(next_);

            const double secs = timer.seconds();
            ++stats.iterations;
            if (mode == Mode::Full) {
                ++stats.full_iterations;
            } else {
                ++stats.incremental_iterations;
            }
            stats.edges_streamed += streamed;
            stats.logical_edges += logical;
            stats.seconds += secs;
            publish_iteration(decision, processed, streamed, logical, secs);
        }
        return stats;
    }

    void publish_iteration(ModeDecision decision, std::size_t processed,
                           std::uint64_t streamed, std::uint64_t logical,
                           double secs) {
        if (trace_ == nullptr) {
            return;
        }
        iterations_m_->inc();
        (decision.mode == Mode::Full ? full_m_ : incremental_m_)->inc();
        streamed_m_->add(streamed);
        logical_m_->add(logical);
        const double row[] = {static_cast<double>(++iteration_seq_),
                              decision.mode == Mode::Full ? 1.0 : 0.0,
                              static_cast<double>(processed),
                              decision.ratio,
                              static_cast<double>(streamed),
                              static_cast<double>(logical),
                              secs};
        trace_->append(row);
    }

    const Store& store_;
    EngineOptions opts_;
    Alg alg_;
    // Telemetry handles, resolved once in the constructor; all null when
    // EngineOptions::registry is null (trace_ doubles as the gate).
    obs::Series* trace_ = nullptr;
    obs::Counter* iterations_m_ = nullptr;
    obs::Counter* full_m_ = nullptr;
    obs::Counter* incremental_m_ = nullptr;
    obs::Counter* streamed_m_ = nullptr;
    obs::Counter* logical_m_ = nullptr;
    std::uint64_t iteration_seq_ = 0;  // trace row ids, monotone across runs
    std::vector<Property> props_;
    std::vector<Property> temp_;
    ActiveSet active_;
    ActiveSet next_;
    ActiveSet touched_;
    std::vector<VertexId> roots_;
};

}  // namespace gt::engine
