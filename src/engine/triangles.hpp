// Triangle counting and local clustering coefficients (extension).
//
// STINGER's flagship streaming analytic was clustering coefficients (Ediger
// et al., IPDPSW 2010 — the paper's reference [17]); this module provides
// the equivalent over any store in this library. Input graphs are treated
// as undirected: ingest symmetrized edges, as the analytics benches do.
//
// Algorithm: sorted-adjacency intersection. Each vertex's neighbor list is
// extracted and sorted once; the triangle count of v is
//   Σ_{u in N(v)} |N(v) ∩ N(u)| / 2
// and the local clustering coefficient is triangles / (deg * (deg-1) / 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace gt::engine {

struct TriangleStats {
    std::uint64_t total_triangles = 0;           // each counted once
    std::vector<std::uint64_t> per_vertex;       // triangles through v
    std::vector<double> clustering_coefficient;  // 0 when degree < 2
    double global_clustering = 0.0;              // closed triples / triples
};

/// Counts triangles in the *undirected* graph held by `store` (expects a
/// symmetrized edge set; self-loops and duplicate neighbors are ignored).
template <typename Store>
[[nodiscard]] TriangleStats count_triangles(const Store& store) {
    const auto n = static_cast<VertexId>(store.num_vertices());
    std::vector<std::vector<VertexId>> adjacency(n);
    store.visit_edges([&](VertexId u, VertexId v, Weight) {
        if (u != v) {
            adjacency[u].push_back(v);
        }
    });
    for (auto& neighbors : adjacency) {
        std::sort(neighbors.begin(), neighbors.end());
        neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                        neighbors.end());
    }

    TriangleStats stats;
    stats.per_vertex.assign(n, 0);
    stats.clustering_coefficient.assign(n, 0.0);
    std::uint64_t wedges_total = 0;
    for (VertexId v = 0; v < n; ++v) {
        const auto& nv = adjacency[v];
        std::uint64_t closed = 0;
        for (VertexId u : nv) {
            const auto& nu = adjacency[u];
            // |N(v) ∩ N(u)| via merge intersection.
            std::size_t i = 0;
            std::size_t j = 0;
            while (i < nv.size() && j < nu.size()) {
                if (nv[i] == nu[j]) {
                    ++closed;
                    ++i;
                    ++j;
                } else if (nv[i] < nu[j]) {
                    ++i;
                } else {
                    ++j;
                }
            }
        }
        // Every triangle through v is counted twice (once per edge of v).
        stats.per_vertex[v] = closed / 2;
        const std::uint64_t degree = nv.size();
        const std::uint64_t wedges = degree * (degree - 1) / 2;
        wedges_total += wedges;
        if (wedges > 0) {
            stats.clustering_coefficient[v] =
                static_cast<double>(stats.per_vertex[v]) /
                static_cast<double>(wedges);
        }
    }
    std::uint64_t tri_endpoint_sum = 0;
    for (std::uint64_t t : stats.per_vertex) {
        tri_endpoint_sum += t;
    }
    stats.total_triangles = tri_endpoint_sum / 3;
    stats.global_clustering =
        wedges_total > 0 ? static_cast<double>(tri_endpoint_sum) /
                               static_cast<double>(wedges_total)
                         : 0.0;
    return stats;
}

}  // namespace gt::engine
