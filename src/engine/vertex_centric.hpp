// Vertex-centric processing (the paper's stated future work, §IV.A) in its
// highest-impact form: direction-optimizing BFS (Beamer-style).
//
// The edge-centric engine always *pushes* along out-edges. When the frontier
// grows to a large fraction of the graph, pushing inspects nearly every edge
// while most checks fail; a *pull* (bottom-up) step instead lets each
// still-unvisited vertex scan its in-edges and stop at the first frontier
// parent — usually after one or two probes on low-diameter graphs. The
// optimizer switches per level between the two using the classic heuristics:
//
//   top-down -> bottom-up  when  m_f > m_u / alpha
//   bottom-up -> top-down  when  n_f < n / beta
//
// where m_f = edges out of the frontier, m_u = edges out of still-unvisited
// vertices, n_f = frontier size. The store must provide both adjacency
// directions (core::BidirectionalGraphTinker).
#pragma once

#include <cstdint>
#include <vector>

#include "util/timer.hpp"
#include "util/types.hpp"

namespace gt::engine {

struct DirectionOptions {
    double alpha = 14.0;  // push->pull aggressiveness (Beamer's default)
    double beta = 24.0;   // pull->push fall-back
    bool force_push = false;  // baseline mode for comparisons
};

struct DirectionTrace {
    bool bottom_up;
    std::size_t frontier;
    std::uint64_t edges_examined;
};

struct DirectionStats {
    std::size_t levels = 0;
    std::size_t bottom_up_levels = 0;
    std::uint64_t edges_examined = 0;
    double seconds = 0.0;
    std::vector<DirectionTrace> trace;
};

/// One-shot direction-optimizing BFS over a bidirectional store. Returns hop
/// counts (kInfDistance when unreachable); `stats` reports the per-level
/// direction decisions.
template <typename Store>
std::vector<std::uint32_t> direction_optimizing_bfs(
    const Store& store, VertexId root, DirectionStats* stats = nullptr,
    DirectionOptions options = {}) {
    const auto n = static_cast<VertexId>(store.num_vertices());
    std::vector<std::uint32_t> level(n, kInfDistance);
    DirectionStats local;
    Timer timer;
    if (root >= n) {
        if (stats != nullptr) {
            *stats = local;
        }
        return level;
    }

    std::vector<VertexId> frontier{root};
    level[root] = 0;

    // m_u: out-edges of still-unvisited vertices, maintained decrementally.
    std::uint64_t unvisited_edges = 0;
    for (VertexId v = 0; v < n; ++v) {
        unvisited_edges += store.degree(v);
    }
    unvisited_edges -= store.degree(root);
    std::size_t unvisited = static_cast<std::size_t>(n) - 1;

    std::uint32_t depth = 0;
    bool bottom_up = false;
    while (!frontier.empty()) {
        // Direction decision for this level.
        if (!options.force_push) {
            std::uint64_t frontier_edges = 0;
            for (VertexId u : frontier) {
                frontier_edges += store.degree(u);
            }
            if (!bottom_up &&
                static_cast<double>(frontier_edges) >
                    static_cast<double>(unvisited_edges) / options.alpha) {
                bottom_up = true;
            } else if (bottom_up &&
                       static_cast<double>(frontier.size()) <
                           static_cast<double>(n) / options.beta) {
                bottom_up = false;
            }
        }

        std::vector<VertexId> next;
        std::uint64_t examined = 0;
        if (!bottom_up) {
            // Top-down push along out-edges.
            for (VertexId u : frontier) {
                store.visit_out_edges(u, [&](VertexId v, Weight) {
                    ++examined;
                    if (level[v] == kInfDistance) {
                        level[v] = depth + 1;
                        next.push_back(v);
                    }
                });
            }
        } else {
            // Bottom-up pull: every unvisited vertex scans in-edges and
            // stops at the first parent on the current level.
            for (VertexId v = 0; v < n; ++v) {
                if (level[v] != kInfDistance) {
                    continue;
                }
                store.visit_in_edges(v, [&](VertexId u, Weight) {
                    ++examined;
                    if (level[u] == depth) {
                        level[v] = depth + 1;
                        next.push_back(v);
                        return false;  // one witness suffices
                    }
                    return true;
                });
            }
        }

        local.trace.push_back(
            DirectionTrace{bottom_up, frontier.size(), examined});
        local.edges_examined += examined;
        ++local.levels;
        local.bottom_up_levels += bottom_up ? 1 : 0;
        for (VertexId v : next) {
            unvisited_edges -= store.degree(v);
        }
        unvisited -= next.size();
        frontier.swap(next);
        ++depth;
    }
    local.seconds = timer.seconds();
    if (stats != nullptr) {
        *stats = std::move(local);
    }
    return level;
}

}  // namespace gt::engine
