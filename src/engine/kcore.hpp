// k-core decomposition (extension): peel vertices by degree to find the
// coreness of every vertex — a standard density measure for the social
// graphs this library targets.
//
// Input is treated as undirected (ingest symmetrized edges). The algorithm
// is the classic O(V + E) bucket peel (Batagelj–Zaveršnik): process vertices
// in nondecreasing degree order; a vertex's coreness is its remaining degree
// when removed, and removal decrements its still-present neighbors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace gt::engine {

struct KCoreResult {
    std::vector<std::uint32_t> coreness;  // per vertex
    std::uint32_t degeneracy = 0;         // max coreness
    /// Number of vertices with coreness >= k, for k in [0, degeneracy].
    std::vector<std::size_t> core_sizes;
};

template <typename Store>
[[nodiscard]] KCoreResult kcore_decomposition(const Store& store) {
    const auto n = static_cast<VertexId>(store.num_vertices());
    // Undirected degree view (dedup handled by the store).
    std::vector<std::uint32_t> degree(n, 0);
    std::vector<std::vector<VertexId>> adjacency(n);
    store.visit_edges([&](VertexId u, VertexId v, Weight) {
        if (u != v) {
            adjacency[u].push_back(v);
        }
    });
    for (VertexId v = 0; v < n; ++v) {
        degree[v] = static_cast<std::uint32_t>(adjacency[v].size());
    }

    // Bucket sort vertices by degree.
    std::uint32_t max_degree = 0;
    for (std::uint32_t d : degree) {
        max_degree = std::max(max_degree, d);
    }
    std::vector<std::size_t> bucket_start(max_degree + 2, 0);
    for (std::uint32_t d : degree) {
        ++bucket_start[d + 1];
    }
    for (std::size_t i = 1; i < bucket_start.size(); ++i) {
        bucket_start[i] += bucket_start[i - 1];
    }
    std::vector<VertexId> order(n);
    std::vector<std::size_t> position(n);
    {
        std::vector<std::size_t> cursor(bucket_start.begin(),
                                        bucket_start.end() - 1);
        for (VertexId v = 0; v < n; ++v) {
            position[v] = cursor[degree[v]]++;
            order[position[v]] = v;
        }
    }

    KCoreResult result;
    result.coreness.assign(n, 0);
    std::vector<std::uint32_t> current(degree);
    std::vector<bool> removed(n, false);
    // bucket_start[d] = index of the first vertex with current degree >= d.
    for (std::size_t i = 0; i < order.size(); ++i) {
        const VertexId v = order[i];
        result.coreness[v] = current[v];
        result.degeneracy = std::max(result.degeneracy, current[v]);
        removed[v] = true;
        for (VertexId u : adjacency[v]) {
            if (removed[u] || current[u] <= current[v]) {
                continue;
            }
            // Move u one bucket down: swap it with the first vertex of its
            // current bucket, then shrink the bucket boundary.
            const std::uint32_t du = current[u];
            const std::size_t first_of_bucket = bucket_start[du];
            const VertexId w = order[first_of_bucket];
            if (w != u) {
                std::swap(order[position[u]], order[first_of_bucket]);
                std::swap(position[u], position[w]);
            }
            ++bucket_start[du];
            --current[u];
        }
    }

    result.core_sizes.assign(result.degeneracy + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
        for (std::uint32_t k = 0; k <= result.coreness[v]; ++k) {
            ++result.core_sizes[k];
        }
    }
    return result;
}

}  // namespace gt::engine
