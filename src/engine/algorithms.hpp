// Edge-centric GAS algorithm plugins (paper §IV.A).
//
// An algorithm conforming to the engine's edge-centric paradigm defines
// `process_edge` (scatter a message from a source property across an edge),
// `reduce` (combine messages arriving at a vertex) and `apply` (commit the
// reduced message into the vertex property, reporting whether the vertex
// activates for the next iteration). It also defines the
// set-inconsistency-vertices rule used after each batch update (paper
// §IV.C): BFS/SSSP seed the batch's source endpoints, CC seeds both
// endpoints.
//
// All three shipped algorithms are *monotone* (properties only decrease), so
// incremental execution over an insert-only stream converges to the same
// fixed point as a from-scratch run — the property the engine's tests check
// against the static reference implementations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>

#include "util/types.hpp"

namespace gt::engine {

/// Breadth-first search: property = hop count from the root.
struct Bfs {
    using Property = std::uint32_t;
    static constexpr const char* name = "BFS";
    static constexpr bool needs_root = true;

    [[nodiscard]] Property initial(VertexId) const { return kInfDistance; }

    [[nodiscard]] std::optional<Property> process_edge(VertexId /*src*/,
                                                       Property src_prop,
                                                       Weight) const {
        if (src_prop == kInfDistance) {
            return std::nullopt;  // unreached sources emit nothing
        }
        return src_prop + 1;
    }

    [[nodiscard]] Property reduce(Property a, Property b) const {
        return std::min(a, b);
    }

    /// Commits `incoming` when it improves `current`; true activates the
    /// vertex for the next iteration.
    bool apply(Property& current, Property incoming) const {
        if (incoming < current) {
            current = incoming;
            return true;
        }
        return false;
    }

    template <typename Activate>
    void seed_batch(std::span<const Edge> batch, Activate&& activate) const {
        for (const Edge& e : batch) {
            activate(e.src);
        }
    }
};

/// Single-source shortest paths (non-negative weights): property = distance.
struct Sssp {
    using Property = std::uint32_t;
    static constexpr const char* name = "SSSP";
    static constexpr bool needs_root = true;

    [[nodiscard]] Property initial(VertexId) const { return kInfDistance; }

    [[nodiscard]] std::optional<Property> process_edge(VertexId /*src*/,
                                                       Property src_prop,
                                                       Weight w) const {
        if (src_prop == kInfDistance) {
            return std::nullopt;
        }
        const std::uint64_t sum = static_cast<std::uint64_t>(src_prop) + w;
        // Saturate below infinity so reachable distances stay distinguishable.
        return static_cast<Property>(
            std::min<std::uint64_t>(sum, kInfDistance - 1));
    }

    [[nodiscard]] Property reduce(Property a, Property b) const {
        return std::min(a, b);
    }

    bool apply(Property& current, Property incoming) const {
        if (incoming < current) {
            current = incoming;
            return true;
        }
        return false;
    }

    template <typename Activate>
    void seed_batch(std::span<const Edge> batch, Activate&& activate) const {
        for (const Edge& e : batch) {
            activate(e.src);
        }
    }
};

/// Connected components via min-label propagation: property = component
/// label (smallest vertex id in the component). Graphs must be symmetrized
/// at ingest for this to compute *weakly* connected components — the
/// analytics benches do so (DESIGN.md §3.6).
struct Cc {
    using Property = std::uint32_t;
    static constexpr const char* name = "CC";
    static constexpr bool needs_root = false;

    [[nodiscard]] Property initial(VertexId v) const { return v; }

    [[nodiscard]] std::optional<Property> process_edge(VertexId /*src*/,
                                                       Property src_prop,
                                                       Weight) const {
        return src_prop;  // labels always propagate
    }

    [[nodiscard]] Property reduce(Property a, Property b) const {
        return std::min(a, b);
    }

    bool apply(Property& current, Property incoming) const {
        if (incoming < current) {
            current = incoming;
            return true;
        }
        return false;
    }

    /// CC's properties can change on both endpoints (paper §IV.C).
    template <typename Activate>
    void seed_batch(std::span<const Edge> batch, Activate&& activate) const {
        for (const Edge& e : batch) {
            activate(e.src);
            activate(e.dst);
        }
    }
};

/// PageRank state: committed rank plus residual mass not yet propagated.
struct PageRankState {
    double rank = 0.0;
    double residual = 0.0;
};

/// Forward-push PageRank (extension beyond the paper's three algorithms).
///
/// Property fixed point: rank_v = (1-d) + d * Σ_{u->v} rank_u / deg(u).
/// Each iteration, every active vertex scatters d * residual / deg(u) along
/// its out-edges, then folds the pushed residual into its committed rank
/// (the engine's post-scatter hook). Vertices whose accumulated residual
/// exceeds `tolerance` reactivate; total residual decays geometrically, so
/// the run terminates with per-vertex error bounded by the residual left
/// behind. Dangling vertices absorb their residual (push-style semantics).
///
/// Unlike BFS/SSSP/CC this algorithm activates nearly every vertex each
/// iteration, so the paper's inference unit correctly converges on full
/// processing — the opposite end of the hybrid decision space. It is exact
/// for from-scratch runs; after structural updates, re-run from scratch
/// (the push invariant does not survive out-degree changes).
template <typename Store>
struct PageRank {
    using Property = PageRankState;
    static constexpr const char* name = "PageRank";
    static constexpr bool needs_root = false;

    const Store* store = nullptr;
    double damping = 0.85;
    double tolerance = 1e-9;

    [[nodiscard]] Property initial(VertexId) const {
        return PageRankState{0.0, 1.0 - damping};
    }

    [[nodiscard]] std::optional<Property> process_edge(VertexId src,
                                                       Property src_prop,
                                                       Weight) const {
        const std::uint32_t degree = store->degree(src);
        if (degree == 0 || src_prop.residual <= 0.0) {
            return std::nullopt;
        }
        return PageRankState{
            0.0, damping * src_prop.residual / static_cast<double>(degree)};
    }

    [[nodiscard]] Property reduce(Property a, Property b) const {
        return PageRankState{0.0, a.residual + b.residual};
    }

    /// Folds pushed residual into committed rank after the scatter phase.
    void on_scattered(Property& prop) const {
        prop.rank += prop.residual;
        prop.residual = 0.0;
    }

    bool apply(Property& current, Property incoming) const {
        current.residual += incoming.residual;
        return current.residual > tolerance;
    }

    template <typename Activate>
    void seed_batch(std::span<const Edge> batch, Activate&& activate) const {
        for (const Edge& e : batch) {
            activate(e.src);
            activate(e.dst);
        }
    }
};

}  // namespace gt::engine
