// Snapshot extraction: freeze any dynamic store into an immutable CSR.
//
// The store-and-static-compute model (paper §II.B) classically preprocesses
// the graph into CSR before each static run; this helper provides that path
// as a first-class API so static algorithms (and external tooling) can
// consume GraphTinker/STINGER state directly.
#pragma once

#include <vector>

#include "engine/reference.hpp"
#include "util/types.hpp"

namespace gt::engine {

/// Materializes the current edge set of `store` (any type with
/// visit_edges and num_vertices) as a CSR snapshot.
template <typename Store>
[[nodiscard]] CsrSnapshot snapshot_of(const Store& store) {
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(store.num_edges()));
    store.visit_edges([&](VertexId s, VertexId d, Weight w) {
        edges.push_back(Edge{s, d, w});
    });
    return CsrSnapshot(edges, store.num_vertices());
}

}  // namespace gt::engine
