// Static reference implementations used to validate the hybrid engine.
//
// These are deliberately boring textbook algorithms over a CSR snapshot —
// plain queue BFS, Dijkstra, union-find connected components — so that every
// engine result (any store, any mode policy, any dynamic schedule) can be
// checked against an independent oracle in the tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"
#include "util/visit.hpp"

namespace gt::engine {

/// An immutable CSR snapshot built from an edge list. Duplicate (src, dst)
/// pairs keep only the *last* weight, matching the stores' overwrite
/// semantics.
class CsrSnapshot {
public:
    CsrSnapshot(std::span<const Edge> edges, VertexId num_vertices);

    [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
    [[nodiscard]] EdgeCount num_edges() const noexcept {
        return adjacency_.size();
    }

    template <typename Fn>
    bool visit_out_edges(VertexId v, Fn&& fn) const {
        for (EdgeCount i = offsets_[v]; i < offsets_[v + 1]; ++i) {
            if (!visit_step(fn, adjacency_[i].first, adjacency_[i].second)) {
                return false;
            }
        }
        return true;
    }

private:
    VertexId n_;
    std::vector<EdgeCount> offsets_;
    std::vector<std::pair<VertexId, Weight>> adjacency_;
};

/// Hop counts from `root` (kInfDistance when unreachable).
[[nodiscard]] std::vector<std::uint32_t> reference_bfs(const CsrSnapshot& g,
                                                       VertexId root);

/// Shortest distances from `root` (Dijkstra; kInfDistance when unreachable).
[[nodiscard]] std::vector<std::uint32_t> reference_sssp(const CsrSnapshot& g,
                                                        VertexId root);

/// Min-label connected components over the *directed* edges as given —
/// matches the engine's label propagation when the input was symmetrized.
[[nodiscard]] std::vector<std::uint32_t> reference_cc(const CsrSnapshot& g);

/// Unnormalized PageRank fixed point rank_v = (1-d) + d * Σ_{u->v} r_u/deg(u)
/// by Jacobi iteration to within `epsilon` in the sup norm — the oracle for
/// the engine's forward-push PageRank.
[[nodiscard]] std::vector<double> reference_pagerank(const CsrSnapshot& g,
                                                     double damping = 0.85,
                                                     double epsilon = 1e-12);

/// Duplicates every edge in the reverse direction (same weight). Analytics
/// benches symmetrize at ingest so min-label CC computes weakly connected
/// components and BFS/SSSP follow undirected reachability (DESIGN.md §3.6).
[[nodiscard]] std::vector<Edge> symmetrize(std::span<const Edge> edges);

}  // namespace gt::engine
