// Shard-parallel analytics over ShardedStore (extension).
//
// The paper parallelizes *updates* by loading hash-partitioned intervals of
// the edge stream into independent GraphTinker instances (Fig. 6). This
// engine extends the same decomposition to the analytics side: each shard
// scatters its own edges on its own worker, reducing into per-worker message
// buffers that are merged before the (serial) apply phase. Results are
// bit-identical to the serial engine because reduce is associative and
// commutative for every shipped algorithm.
//
// Modes mirror the serial hybrid engine: full processing streams each
// shard's compact CAL; incremental processing walks the out-edges of the
// active vertices owned by each shard.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/sharded.hpp"
#include "engine/hybrid_engine.hpp"
#include "util/active_set.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace gt::engine {

template <typename Store, typename Alg>
class ParallelDynamicAnalysis {
public:
    using Property = typename Alg::Property;
    using Sharded = core::ShardedStore<Store>;

    explicit ParallelDynamicAnalysis(const Sharded& store,
                                     EngineOptions opts = {}, Alg alg = {})
        : store_(store),
          opts_(opts),
          alg_(alg),
          pool_(store.num_shards()),
          locals_(store.num_shards()) {
        if (opts_.registry != nullptr) {
            obs::Registry& r = *opts_.registry;
            trace_ = &r.series("engine.trace",
                               {kTraceFields.begin(), kTraceFields.end()});
            iterations_m_ = &r.counter("engine.iterations");
            full_m_ = &r.counter("engine.full_iterations");
            incremental_m_ = &r.counter("engine.incremental_iterations");
            streamed_m_ = &r.counter("engine.edges_streamed");
            logical_m_ = &r.counter("engine.logical_edges");
        }
    }

    void set_root(VertexId root) {
        roots_.push_back(root);
        grow(root + 1);
        props_[root] = Property{0};
        active_.insert(root);
    }

    RunStats on_batch(std::span<const Edge> batch) {
        grow(bound_from_store());
        alg_.seed_batch(batch, [&](VertexId v) { active_.insert(v); });
        return run();
    }

    RunStats run_from_scratch() {
        reset();
        return run();
    }

    [[nodiscard]] Property property(VertexId v) const {
        return v < props_.size() ? props_[v] : alg_.initial(v);
    }
    [[nodiscard]] std::size_t num_workers() const noexcept {
        return pool_.size();
    }

private:
    /// Per-worker scatter buffer: dense message array plus touched list.
    struct Local {
        std::vector<Property> temp;
        ActiveSet touched;
        std::uint64_t streamed = 0;
    };

    [[nodiscard]] VertexId bound_from_store() const {
        VertexId bound = 0;
        for (std::size_t s = 0; s < store_.num_shards(); ++s) {
            bound = std::max(bound, store_.shard(s).num_vertices());
        }
        return bound;
    }

    [[nodiscard]] EdgeCount total_edges() const {
        return store_.num_edges();
    }

    void grow(VertexId bound) {
        const auto old = static_cast<VertexId>(props_.size());
        if (bound <= old) {
            return;
        }
        props_.resize(bound);
        temp_.resize(bound);
        for (VertexId v = old; v < bound; ++v) {
            props_[v] = alg_.initial(v);
        }
        active_.resize(bound);
        next_.resize(bound);
        touched_.resize(bound);
        for (Local& local : locals_) {
            local.temp.resize(bound);
            local.touched.resize(bound);
        }
    }

    void reset() {
        active_.clear();
        next_.clear();
        touched_.clear();
        props_.clear();
        grow(bound_from_store());
        if constexpr (Alg::needs_root) {
            for (VertexId root : roots_) {
                grow(root + 1);
                props_[root] = Property{0};
                active_.insert(root);
            }
        } else {
            const auto bound = static_cast<VertexId>(props_.size());
            for (VertexId v = 0; v < bound; ++v) {
                active_.insert(v);
            }
        }
    }

    /// Mode plus the compared A/E ratio (see hybrid_engine.hpp).
    struct ModeDecision {
        Mode mode;
        double ratio;
    };

    [[nodiscard]] ModeDecision decide_mode() const {
        const double edges = static_cast<double>(
            std::max<EdgeCount>(total_edges(), 1));
        const double t = static_cast<double>(active_.size()) / edges;
        switch (opts_.policy) {
            case ModePolicy::ForceFull:
                return {Mode::Full, t};
            case ModePolicy::ForceIncremental:
                return {Mode::Incremental, t};
            default:
                break;
        }
        return {t > opts_.threshold ? Mode::Full : Mode::Incremental, t};
    }

    RunStats run() {
        RunStats stats;
        // Active vertices grouped by owning shard (incremental mode).
        std::vector<std::vector<VertexId>> by_shard(store_.num_shards());
        while (!active_.empty()) {
            Timer timer;
            const ModeDecision decision = decide_mode();
            const Mode mode = decision.mode;
            const std::size_t processed = active_.size();

            // --- parallel scatter phase ------------------------------
            if (mode == Mode::Incremental) {
                for (auto& bucket : by_shard) {
                    bucket.clear();
                }
                for (VertexId u : active_.vertices()) {
                    by_shard[Sharded::shard_of(u, store_.num_shards())]
                        .push_back(u);
                }
            }
            pool_.for_each_worker([&](std::size_t s) {
                Local& local = locals_[s];
                local.touched.clear();
                local.streamed = 0;
                auto scatter = [&](VertexId u, VertexId v, Weight w) {
                    if (const auto msg =
                            alg_.process_edge(u, props_[u], w)) {
                        if (local.touched.insert(v)) {
                            local.temp[v] = *msg;
                        } else {
                            local.temp[v] =
                                alg_.reduce(local.temp[v], *msg);
                        }
                    }
                };
                if (mode == Mode::Incremental) {
                    for (VertexId u : by_shard[s]) {
                        store_.shard(s).visit_out_edges(
                            u, [&](VertexId v, Weight w) {
                                ++local.streamed;
                                scatter(u, v, w);
                            });
                    }
                } else {
                    store_.shard(s).visit_edges(
                        [&](VertexId u, VertexId v, Weight w) {
                            ++local.streamed;
                            if (active_.contains(u)) {
                                scatter(u, v, w);
                            }
                        });
                }
            });

            // --- merge worker buffers (serial, associative reduce) ----
            touched_.clear();
            std::uint64_t streamed = 0;
            for (Local& local : locals_) {
                streamed += local.streamed;
                for (VertexId v : local.touched.vertices()) {
                    if (touched_.insert(v)) {
                        temp_[v] = local.temp[v];
                    } else {
                        temp_[v] = alg_.reduce(temp_[v], local.temp[v]);
                    }
                }
            }

            std::uint64_t logical = 0;
            if (mode == Mode::Incremental) {
                logical = streamed;
            } else {
                for (VertexId u : active_.vertices()) {
                    logical += store_
                                   .shard(Sharded::shard_of(
                                       u, store_.num_shards()))
                                   .degree(u);
                }
            }

            // --- post-scatter hook + apply phase ----------------------
            if constexpr (requires(Alg a, Property& p) {
                              a.on_scattered(p);
                          }) {
                for (VertexId u : active_.vertices()) {
                    alg_.on_scattered(props_[u]);
                }
            }
            next_.clear();
            for (VertexId v : touched_.vertices()) {
                if (alg_.apply(props_[v], temp_[v])) {
                    next_.insert(v);
                }
            }
            active_.swap(next_);

            ++stats.iterations;
            if (mode == Mode::Full) {
                ++stats.full_iterations;
            } else {
                ++stats.incremental_iterations;
            }
            const double secs = timer.seconds();
            stats.edges_streamed += streamed;
            stats.logical_edges += logical;
            stats.seconds += secs;
            if (trace_ != nullptr) {
                iterations_m_->inc();
                (mode == Mode::Full ? full_m_ : incremental_m_)->inc();
                streamed_m_->add(streamed);
                logical_m_->add(logical);
                const double row[] = {
                    static_cast<double>(++iteration_seq_),
                    mode == Mode::Full ? 1.0 : 0.0,
                    static_cast<double>(processed),
                    decision.ratio,
                    static_cast<double>(streamed),
                    static_cast<double>(logical),
                    secs};
                trace_->append(row);
            }
        }
        return stats;
    }

    const Sharded& store_;
    EngineOptions opts_;
    Alg alg_;
    // Telemetry handles (null without EngineOptions::registry); rows land
    // in the same "engine.trace" schema the serial engine publishes.
    obs::Series* trace_ = nullptr;
    obs::Counter* iterations_m_ = nullptr;
    obs::Counter* full_m_ = nullptr;
    obs::Counter* incremental_m_ = nullptr;
    obs::Counter* streamed_m_ = nullptr;
    obs::Counter* logical_m_ = nullptr;
    std::uint64_t iteration_seq_ = 0;
    ThreadPool pool_;
    std::vector<Property> props_;
    std::vector<Property> temp_;
    ActiveSet active_;
    ActiveSet next_;
    ActiveSet touched_;
    std::vector<Local> locals_;
    std::vector<VertexId> roots_;
};

}  // namespace gt::engine
