#include "engine/reference.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace gt::engine {

CsrSnapshot::CsrSnapshot(std::span<const Edge> edges, VertexId num_vertices)
    : n_(num_vertices) {
    // Deduplicate (src, dst): last weight wins, matching store semantics.
    std::unordered_map<std::uint64_t, Weight> dedup;
    dedup.reserve(edges.size());
    for (const Edge& e : edges) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
        dedup[key] = e.weight;
    }
    std::vector<std::uint32_t> degree(n_ + 1, 0);
    for (const auto& [key, w] : dedup) {
        ++degree[key >> 32];
    }
    offsets_.assign(n_ + 1, 0);
    for (VertexId v = 0; v < n_; ++v) {
        offsets_[v + 1] = offsets_[v] + degree[v];
    }
    adjacency_.resize(dedup.size());
    std::vector<EdgeCount> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto& [key, w] : dedup) {
        const auto src = static_cast<VertexId>(key >> 32);
        const auto dst = static_cast<VertexId>(key & 0xffffffffU);
        adjacency_[cursor[src]++] = {dst, w};
    }
}

std::vector<std::uint32_t> reference_bfs(const CsrSnapshot& g, VertexId root) {
    std::vector<std::uint32_t> level(g.num_vertices(), kInfDistance);
    if (root >= g.num_vertices()) {
        return level;
    }
    level[root] = 0;
    std::queue<VertexId> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
        const VertexId u = frontier.front();
        frontier.pop();
        g.visit_out_edges(u, [&](VertexId v, Weight) {
            if (level[v] == kInfDistance) {
                level[v] = level[u] + 1;
                frontier.push(v);
            }
        });
    }
    return level;
}

std::vector<std::uint32_t> reference_sssp(const CsrSnapshot& g,
                                          VertexId root) {
    std::vector<std::uint32_t> dist(g.num_vertices(), kInfDistance);
    if (root >= g.num_vertices()) {
        return dist;
    }
    using Item = std::pair<std::uint32_t, VertexId>;  // (distance, vertex)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[root] = 0;
    pq.emplace(0, root);
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d != dist[u]) {
            continue;  // stale entry
        }
        g.visit_out_edges(u, [&](VertexId v, Weight w) {
            const std::uint64_t candidate = static_cast<std::uint64_t>(d) + w;
            const auto clamped = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(candidate, kInfDistance - 1));
            if (clamped < dist[v]) {
                dist[v] = clamped;
                pq.emplace(clamped, v);
            }
        });
    }
    return dist;
}

std::vector<std::uint32_t> reference_cc(const CsrSnapshot& g) {
    // Union-find over the edges treated as undirected, then canonicalize
    // each component to its minimum vertex id (the engine's label fixpoint).
    std::vector<VertexId> parent(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        parent[v] = v;
    }
    auto find = [&](VertexId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        g.visit_out_edges(u, [&](VertexId v, Weight) {
            const VertexId ru = find(u);
            const VertexId rv = find(v);
            if (ru != rv) {
                parent[std::max(ru, rv)] = std::min(ru, rv);
            }
        });
    }
    std::vector<std::uint32_t> label(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        label[v] = find(v);  // roots are the minimum id by construction
    }
    return label;
}

std::vector<double> reference_pagerank(const CsrSnapshot& g, double damping,
                                       double epsilon) {
    const VertexId n = g.num_vertices();
    std::vector<std::uint32_t> degree(n, 0);
    for (VertexId u = 0; u < n; ++u) {
        g.visit_out_edges(u, [&](VertexId, Weight) { ++degree[u]; });
    }
    std::vector<double> rank(n, 1.0 - damping);
    std::vector<double> next(n, 0.0);
    for (int iter = 0; iter < 1000; ++iter) {
        std::fill(next.begin(), next.end(), 1.0 - damping);
        for (VertexId u = 0; u < n; ++u) {
            if (degree[u] == 0) {
                continue;  // dangling vertices absorb their mass
            }
            const double share = damping * rank[u] / degree[u];
            g.visit_out_edges(u, [&](VertexId v, Weight) {
                next[v] += share;
            });
        }
        double delta = 0.0;
        for (VertexId v = 0; v < n; ++v) {
            delta = std::max(delta, std::abs(next[v] - rank[v]));
        }
        rank.swap(next);
        if (delta < epsilon) {
            break;
        }
    }
    return rank;
}

std::vector<Edge> symmetrize(std::span<const Edge> edges) {
    std::vector<Edge> out;
    out.reserve(edges.size() * 2);
    for (const Edge& e : edges) {
        out.push_back(e);
        out.push_back(Edge{e.dst, e.src, e.weight});
    }
    return out;
}

}  // namespace gt::engine
