// Social-network stream: track communities (weakly connected components) in
// real time over a follow/unfollow stream.
//
// Models the paper's motivating workload (§I): a rapidly evolving social
// graph receiving batched updates, with an analysis that must stay fresh
// after every batch. Follows are symmetric friendships (inserted in both
// directions); periodic unfollow waves delete edges, after which the
// analysis recomputes from scratch (deletions are not monotone).
//
//   $ ./build/examples/social_stream
#include <cstdio>
#include <unordered_map>

#include "core/graphtinker.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/reference.hpp"
#include "gen/rmat.hpp"
#include "util/rng.hpp"

namespace {

using namespace gt;

std::size_t count_communities(
    const engine::DynamicAnalysis<core::GraphTinker, engine::Cc>& cc,
    VertexId bound) {
    std::unordered_map<std::uint32_t, std::size_t> sizes;
    for (VertexId v = 0; v < bound; ++v) {
        ++sizes[cc.property(v)];
    }
    // Count only labels that actually group >= 2 users; singletons are
    // users who never interacted.
    std::size_t communities = 0;
    for (const auto& [label, size] : sizes) {
        if (size >= 2) {
            ++communities;
        }
    }
    return communities;
}

}  // namespace

int main() {
    using namespace gt;
    constexpr VertexId kUsers = 50'000;

    // Follows arrive with the heavy-tailed structure of a real social graph
    // (RMAT); each follow becomes a symmetric friendship edge.
    const auto follows =
        engine::symmetrize(rmat_edges(kUsers, 200'000, /*seed=*/2024));

    core::Config cfg;
    cfg.deletion_mode = core::DeletionMode::DeleteAndCompact;  // churny graph
    core::GraphTinker network(cfg);
    engine::DynamicAnalysis<core::GraphTinker, engine::Cc> communities(
        network);

    Rng rng(7);
    constexpr std::size_t kBatch = 40'000;
    std::printf("%-6s %12s %12s %14s %10s\n", "step", "friendships",
                "communities", "engine(Meps)", "mode mix");
    for (std::size_t offset = 0; offset < follows.size(); offset += kBatch) {
        const std::size_t len = std::min(kBatch, follows.size() - offset);
        const std::span<const Edge> batch(follows.data() + offset, len);
        (void)network.insert_batch(batch);
        const auto stats = communities.on_batch(batch);

        std::printf("%-6zu %12llu %12zu %14.1f %6zuF/%zuI\n", offset / kBatch,
                    static_cast<unsigned long long>(network.num_edges()),
                    count_communities(communities, network.num_vertices()),
                    stats.throughput_meps(), stats.full_iterations,
                    stats.incremental_iterations);

        // Every other step, an unfollow wave removes 5% of a random earlier
        // batch, then the community view recomputes.
        if ((offset / kBatch) % 2 == 1) {
            const std::size_t wave_start =
                rng.next_below(offset / kBatch) * kBatch;
            std::size_t removed = 0;
            for (std::size_t i = wave_start;
                 i < wave_start + kBatch && i + 1 < follows.size(); i += 40) {
                // Remove both directions of the friendship.
                removed += network.delete_edge(follows[i].src, follows[i].dst)
                               ? 1
                               : 0;
                (void)network.delete_edge(follows[i].dst, follows[i].src);
            }
            communities.run_from_scratch();
            std::printf("       unfollow wave: -%zu friendships, "
                        "%zu communities\n",
                        removed,
                        count_communities(communities,
                                          network.num_vertices()));
        }
    }

    std::printf("\nfinal: %llu friendships across %zu active users, "
                "%zu edgeblocks in use\n",
                static_cast<unsigned long long>(network.num_edges()),
                network.num_nonempty_vertices(),
                network.edgeblock_array().blocks_in_use());
    return 0;
}
