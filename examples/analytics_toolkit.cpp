// Analytics toolkit tour: the extension APIs in one program — PageRank,
// triangle counting / clustering coefficients, snapshot export,
// direction-optimizing BFS, and save/load persistence.
//
//   $ ./build/examples/analytics_toolkit
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/bidirectional.hpp"
#include "core/serialize.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/reference.hpp"
#include "engine/snapshot.hpp"
#include "engine/triangles.hpp"
#include "engine/vertex_centric.hpp"
#include "gen/rmat.hpp"

int main() {
    using namespace gt;

    const auto edges =
        engine::symmetrize(rmat_edges(20'000, 150'000, /*seed=*/77));

    // A bidirectional store gives both adjacency directions.
    core::BidirectionalGraphTinker graph;
    graph.insert_batch(edges);
    std::printf("graph: %llu directed edges over %u vertices\n\n",
                static_cast<unsigned long long>(graph.num_edges()),
                graph.num_vertices());

    // 1. PageRank (forward push) over the forward direction.
    engine::PageRank<core::GraphTinker> pr_alg{&graph.forward(), 0.85, 1e-9};
    engine::DynamicAnalysis<core::GraphTinker,
                            engine::PageRank<core::GraphTinker>>
        pr(graph.forward(), engine::EngineOptions{},
           pr_alg);
    pr.run_from_scratch();
    VertexId top_vertex = 0;
    double top_rank = 0.0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        if (pr.property(v).rank > top_rank) {
            top_rank = pr.property(v).rank;
            top_vertex = v;
        }
    }
    std::printf("1. PageRank: most central vertex is %u (rank %.2f)\n",
                top_vertex, top_rank);

    // 2. Triangles and clustering coefficients.
    const auto tri = engine::count_triangles(graph.forward());
    std::printf("2. Triangles: %llu total, global clustering %.4f\n",
                static_cast<unsigned long long>(tri.total_triangles),
                tri.global_clustering);

    // 3. Direction-optimizing BFS from the most central vertex.
    engine::DirectionStats dstats;
    const auto levels =
        engine::direction_optimizing_bfs(graph, top_vertex, &dstats);
    const auto reached = static_cast<std::size_t>(
        std::count_if(levels.begin(), levels.end(),
                      [](std::uint32_t l) { return l != kInfDistance; }));
    std::printf("3. BFS from %u: reached %zu vertices in %zu levels "
                "(%zu bottom-up), %llu edges examined\n",
                top_vertex, reached, dstats.levels, dstats.bottom_up_levels,
                static_cast<unsigned long long>(dstats.edges_examined));

    // 4. Freeze a CSR snapshot and run a static oracle on it.
    const auto snap = engine::snapshot_of(graph.forward());
    const auto static_bfs = engine::reference_bfs(snap, top_vertex);
    std::printf("4. Snapshot: CSR with %llu edges; static BFS agrees with "
                "dynamic: %s\n",
                static_cast<unsigned long long>(snap.num_edges()),
                levels == static_bfs ? "yes" : "NO (bug!)");

    // 5. Persist and restore.
    std::stringstream buffer;
    if (const gt::Status st = core::write_snapshot(graph.forward(), buffer);
        !st.ok()) {
        std::printf("5. Persistence FAILED: %s\n", st.to_string().c_str());
        return 1;
    }
    core::LoadedSnapshot loaded;
    if (const gt::Status st = core::read_snapshot(buffer, loaded); !st.ok()) {
        std::printf("5. Restore FAILED: %s\n", st.to_string().c_str());
        return 1;
    }
    const auto restored = std::move(loaded.graph);
    std::printf("5. Persistence: snapshot is %zu bytes; restored graph has "
                "%llu edges (validate: %s)\n",
                buffer.str().size(),
                static_cast<unsigned long long>(restored->num_edges()),
                restored->validate().empty() ? "ok" : "FAILED");
    return 0;
}
