// Road-network monitor: keep single-source travel times fresh as new road
// segments open.
//
// Builds a weighted grid road network, runs SSSP from a depot, then streams
// in "new road" batches (insertions with travel-time weights). Because SSSP
// distances are monotone under insertions, the hybrid engine refines the
// previous answer incrementally — the example prints how little work each
// refresh needs compared to a full recompute.
//
//   $ ./build/examples/road_network_sssp
#include <cstdio>
#include <vector>

#include "core/graphtinker.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace gt;

constexpr std::uint32_t kGridSide = 300;  // 90k intersections

VertexId node(std::uint32_t x, std::uint32_t y) { return y * kGridSide + x; }

/// Bidirectional road segment with a travel-time weight.
void add_road(std::vector<Edge>& roads, VertexId a, VertexId b, Weight w) {
    roads.push_back({a, b, w});
    roads.push_back({b, a, w});
}

}  // namespace

int main() {
    using namespace gt;
    Rng rng(99);

    // Base network: a city grid with 1-10 minute segments.
    std::vector<Edge> base;
    for (std::uint32_t y = 0; y < kGridSide; ++y) {
        for (std::uint32_t x = 0; x < kGridSide; ++x) {
            const auto w = [&] {
                return static_cast<Weight>(1 + rng.next_below(10));
            };
            if (x + 1 < kGridSide) {
                add_road(base, node(x, y), node(x + 1, y), w());
            }
            if (y + 1 < kGridSide) {
                add_road(base, node(x, y), node(x, y + 1), w());
            }
        }
    }

    core::GraphTinker roads;
    (void)roads.insert_batch(base);

    engine::DynamicAnalysis<core::GraphTinker, engine::Sssp> travel_time(
        roads);
    const VertexId depot = node(kGridSide / 2, kGridSide / 2);
    travel_time.set_root(depot);
    Timer initial;
    const auto first = travel_time.run_from_scratch();
    std::printf("initial network: %llu segments, full SSSP in %.1f ms "
                "(%zu iterations)\n\n",
                static_cast<unsigned long long>(roads.num_edges()),
                initial.millis(), first.iterations);

    const VertexId corner = node(kGridSide - 1, kGridSide - 1);
    std::printf("depot -> far corner: %u minutes\n\n",
                travel_time.property(corner));

    // Ten construction seasons: each opens 200 express segments (long-range
    // shortcuts with low travel time), and the monitor refreshes.
    std::printf("%-8s %10s %12s %14s %16s\n", "season", "new", "refresh(ms)",
                "edges touched", "depot->corner");
    for (int season = 1; season <= 10; ++season) {
        std::vector<Edge> opened;
        for (int i = 0; i < 200; ++i) {
            const VertexId a = static_cast<VertexId>(
                rng.next_below(kGridSide * kGridSide));
            const VertexId b = static_cast<VertexId>(
                rng.next_below(kGridSide * kGridSide));
            add_road(opened, a, b,
                     static_cast<Weight>(1 + rng.next_below(3)));
        }
        (void)roads.insert_batch(opened);
        Timer refresh;
        const auto stats = travel_time.on_batch(opened);
        std::printf("%-8d %10zu %12.2f %14llu %13u min\n", season,
                    opened.size(), refresh.millis(),
                    static_cast<unsigned long long>(stats.edges_streamed),
                    travel_time.property(corner));
    }

    std::printf("\n(each refresh touched a small fraction of the %llu "
                "segments — the incremental model at work)\n",
                static_cast<unsigned long long>(roads.num_edges()));
    return 0;
}
