// Engine-mode comparison: the same dynamic BFS driven four ways — full
// processing, incremental processing, the hybrid engine, and the STINGER
// baseline — on one workload, printing a miniature of the paper's Fig. 11.
//
// Demonstrates the mode-policy API and the store-generic engine (the same
// DynamicAnalysis template runs over GraphTinker and Stinger).
//
//   $ ./build/examples/engine_comparison
#include <cstdio>
#include <string>

#include "core/graphtinker.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/reference.hpp"
#include "gen/batcher.hpp"
#include "gen/rmat.hpp"
#include "stinger/stinger.hpp"

namespace {

using namespace gt;

template <typename Store>
engine::RunStats drive(Store& store, const std::vector<Edge>& edges,
                       engine::ModePolicy policy) {
    engine::DynamicAnalysis<Store, engine::Bfs> bfs(
        store, engine::EngineOptions{.policy = policy});
    bfs.set_root(0);
    engine::RunStats total;
    EdgeBatcher batches(edges, 50'000);
    for (std::size_t b = 0; b < batches.num_batches(); ++b) {
        const auto batch = batches.batch(b);
        for (const Edge& e : batch) {
            (void)store.insert_edge(e.src, e.dst, e.weight);
        }
        total.accumulate(bfs.on_batch(batch));
    }
    return total;
}

void report(const std::string& name, const engine::RunStats& stats) {
    std::printf("%-22s %8.1f Meps   %3zu full / %3zu incremental iterations\n",
                name.c_str(), stats.throughput_meps(), stats.full_iterations,
                stats.incremental_iterations);
}

}  // namespace

int main() {
    using namespace gt;
    const auto edges =
        engine::symmetrize(rmat_edges(100'000, 400'000, /*seed=*/5));
    std::printf("dynamic BFS over %zu streamed edges, batches of 50k:\n\n",
                edges.size());

    {
        core::GraphTinker store;
        report("GraphTinker FP",
               drive(store, edges, engine::ModePolicy::ForceFull));
    }
    {
        core::GraphTinker store;
        report("GraphTinker IP",
               drive(store, edges, engine::ModePolicy::ForceIncremental));
    }
    {
        core::GraphTinker store;
        report("GraphTinker hybrid",
               drive(store, edges, engine::ModePolicy::Hybrid));
    }
    {
        stinger::Stinger store;
        report("STINGER FP",
               drive(store, edges, engine::ModePolicy::ForceFull));
    }

    std::printf("\nthroughput = logical edges per engine-second (identical "
                "work across modes, so rows are directly comparable)\n");
    return 0;
}
