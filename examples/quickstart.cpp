// Quickstart: build a small dynamic graph, update it in batches, and keep a
// BFS analysis fresh with the hybrid engine.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/graphtinker.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/reference.hpp"
#include "gen/batcher.hpp"
#include "gen/rmat.hpp"

int main() {
    using namespace gt;

    // 1. Create a GraphTinker store with the paper's default geometry
    //    (PAGEWIDTH=64, Subblock=8, Workblock=4, SGH+CAL on).
    core::GraphTinker graph;

    // 2. Stream edges in batches, as a dynamic workload would.
    const auto stream =
        engine::symmetrize(rmat_edges(/*vertices=*/10'000,
                                      /*edges=*/80'000, /*seed=*/7));
    EdgeBatcher batches(stream, /*batch_size=*/20'000);

    // 3. Attach a persistent BFS analysis; the hybrid engine picks full or
    //    incremental processing per iteration automatically.
    engine::DynamicAnalysis<core::GraphTinker, engine::Bfs> bfs(graph);
    bfs.set_root(0);

    for (std::size_t b = 0; b < batches.num_batches(); ++b) {
        const auto batch = batches.batch(b);
        (void)graph.insert_batch(batch);
        const auto stats = bfs.on_batch(batch);
        std::printf(
            "batch %zu: |E|=%llu, %zu iterations (%zu full / %zu incremental), "
            "%.2f Medges/s\n",
            b, static_cast<unsigned long long>(graph.num_edges()),
            stats.iterations, stats.full_iterations,
            stats.incremental_iterations, stats.throughput_meps());
    }

    // 4. Query the analysis and the structure.
    std::printf("\nvertex 42 is %u hops from vertex 0\n", bfs.property(42));
    std::printf("graph: %llu edges over %zu non-empty vertices, "
                "%zu edgeblocks in use\n",
                static_cast<unsigned long long>(graph.num_edges()),
                graph.num_nonempty_vertices(),
                graph.edgeblock_array().blocks_in_use());
    return 0;
}
