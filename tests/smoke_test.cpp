// End-to-end smoke: load a small RMAT graph into both stores, run all three
// algorithms through the hybrid engine, and validate against the references.
#include <gtest/gtest.h>

#include "core/graphtinker.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/reference.hpp"
#include "gen/rmat.hpp"
#include "stinger/stinger.hpp"

namespace gt {
namespace {

TEST(Smoke, InsertFindDelete) {
    core::GraphTinker tinker;
    EXPECT_TRUE(tinker.insert_edge(1, 2, 7));
    EXPECT_FALSE(tinker.insert_edge(1, 2, 9));  // weight update
    EXPECT_EQ(tinker.find_edge(1, 2), std::optional<Weight>(9));
    EXPECT_EQ(tinker.num_edges(), 1u);
    EXPECT_TRUE(tinker.delete_edge(1, 2));
    EXPECT_FALSE(tinker.find_edge(1, 2).has_value());
    EXPECT_EQ(tinker.num_edges(), 0u);
}

TEST(Smoke, EngineMatchesReferenceOnBothStores) {
    const auto raw = rmat_edges(512, 4096, /*seed=*/42);
    const auto edges = engine::symmetrize(raw);

    core::GraphTinker tinker;
    stinger::Stinger baseline;
    for (const Edge& e : edges) {
        (void)tinker.insert_edge(e.src, e.dst, e.weight);
        (void)baseline.insert_edge(e.src, e.dst, e.weight);
    }
    ASSERT_EQ(tinker.num_edges(), baseline.num_edges());

    const engine::CsrSnapshot csr(edges, tinker.num_vertices());
    const auto want_bfs = engine::reference_bfs(csr, 0);
    const auto want_cc = engine::reference_cc(csr);

    engine::DynamicAnalysis<core::GraphTinker, engine::Bfs> bfs_gt(tinker);
    bfs_gt.set_root(0);
    bfs_gt.run_from_scratch();
    engine::DynamicAnalysis<stinger::Stinger, engine::Cc> cc_st(baseline);
    cc_st.run_from_scratch();

    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        EXPECT_EQ(bfs_gt.property(v), want_bfs[v]) << "BFS vertex " << v;
        EXPECT_EQ(cc_st.property(v), want_cc[v]) << "CC vertex " << v;
    }
}

}  // namespace
}  // namespace gt
