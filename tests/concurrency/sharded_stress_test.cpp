// TSan race-stress for ShardedStore: the one-writer-per-shard model under
// rapid interleaved insert/delete batches, cross-checked against a serial
// reference instance and swept by the deep auditor per shard. Any cross-shard
// write leak or partition race shows up either as a TSan report or as a
// content divergence.
#include <gtest/gtest.h>

#include <vector>

#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "core/sharded.hpp"
#include "gen/batcher.hpp"
#include "gen/rmat.hpp"
#include "util/rng.hpp"

namespace gt::core {
namespace {

Config stress_config() {
    Config cfg;
    cfg.pagewidth = 16;
    cfg.subblock = 8;
    cfg.workblock = 4;
    return cfg;
}

TEST(ShardedStress, InterleavedInsertDeleteMatchesSerialReference) {
    constexpr std::size_t kShards = 4;
    constexpr std::uint32_t kVertices = 200;
    ShardedStore<GraphTinker> store(kShards,
                                    [] { return stress_config(); });
    GraphTinker reference(stress_config());

    const auto inserts = rmat_edges(kVertices, 4000, 77);
    Rng rng(99);
    EdgeBatcher batches(inserts, 500);
    for (std::size_t b = 0; b < batches.num_batches(); ++b) {
        const auto batch = batches.batch(b);
        (void)store.insert_batch(batch);
        (void)reference.insert_batch(batch);

        // Delete a pseudo-random slice of everything inserted so far, so
        // shard-parallel DELETE walks interleave with prior INSERT state.
        std::vector<Edge> doomed;
        for (int i = 0; i < 120; ++i) {
            const auto& e = inserts[rng.next_below((b + 1) * 500)];
            doomed.push_back(e);
        }
        (void)store.delete_batch(doomed);
        (void)reference.delete_batch(doomed);

        ASSERT_EQ(store.num_edges(), reference.num_edges()) << "batch " << b;
    }

    // Content equivalence: every reference edge is found in its shard with
    // the same weight, and no shard holds an edge the reference lacks.
    reference.visit_edges([&](VertexId src, VertexId dst, Weight w) {
        const auto got = store.find_edge(src, dst);
        ASSERT_TRUE(got.has_value()) << src << "->" << dst;
        EXPECT_EQ(*got, w) << src << "->" << dst;
    });
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
        store.shard(s).visit_edges(
            [&](VertexId src, VertexId dst, Weight w) {
                const auto want = reference.find_edge(src, dst);
                ASSERT_TRUE(want.has_value())
                    << "shard " << s << " leaked " << src << "->" << dst;
                EXPECT_EQ(*want, w);
            });
    }

    // Every shard must pass the deep structural audit after the stress run.
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
        const AuditReport report = Auditor::run(store.shard(s));
        EXPECT_TRUE(report.ok()) << "shard " << s << ": "
                                 << report.to_string();
    }
}

TEST(ShardedStress, RepeatedSmallBatchesAcrossManyShards) {
    // Seven shards on small batches maximizes queue hand-offs relative to
    // real work — the regime where worker wakeup races would surface.
    ShardedStore<GraphTinker> store(7, [] { return stress_config(); });
    const auto edges = rmat_edges(100, 3000, 123);
    EdgeBatcher batches(edges, 64);
    for (std::size_t b = 0; b < batches.num_batches(); ++b) {
        (void)store.insert_batch(batches.batch(b));
    }
    EdgeCount per_shard_total = 0;
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
        per_shard_total += store.shard(s).num_edges();
        EXPECT_TRUE(Auditor::run(store.shard(s)).ok()) << "shard " << s;
    }
    EXPECT_EQ(per_shard_total, store.num_edges());
}

TEST(ShardedStress, DeleteEverythingInParallel) {
    ShardedStore<GraphTinker> store(4, [] { return stress_config(); });
    const auto edges = rmat_edges(80, 2500, 31);
    (void)store.insert_batch(edges);
    (void)store.delete_batch(edges);
    EXPECT_EQ(store.num_edges(), 0u);
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
        const AuditReport report = Auditor::run(store.shard(s));
        EXPECT_TRUE(report.ok()) << "shard " << s << ": "
                                 << report.to_string();
    }
}

}  // namespace
}  // namespace gt::core
