// TSan race-stress for the shard-parallel analytics engine: repeated
// incremental batches with per-batch equivalence against the serial engine,
// plus back-to-back from-scratch runs reusing the same worker state. The
// engine's merge/apply phases are serial by design; this proves the parallel
// compute phase keeps worker-local state actually local.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "core/sharded.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/parallel_engine.hpp"
#include "engine/reference.hpp"
#include "gen/batcher.hpp"
#include "gen/rmat.hpp"

namespace gt::engine {
namespace {

TEST(ParallelEngineStress, IncrementalBfsStaysBitEqualUnderManyBatches) {
    const auto edges = symmetrize(rmat_edges(300, 5000, 61));
    core::ShardedStore<core::GraphTinker> sharded(4, [] {
        return core::Config{};
    });
    core::GraphTinker serial;

    ParallelDynamicAnalysis<core::GraphTinker, Bfs> par(sharded);
    DynamicAnalysis<core::GraphTinker, Bfs> ser(serial);
    par.set_root(0);
    ser.set_root(0);

    EdgeBatcher batches(edges, 200);
    for (std::size_t b = 0; b < batches.num_batches(); ++b) {
        const auto batch = batches.batch(b);
        (void)sharded.insert_batch(batch);
        (void)serial.insert_batch(batch);
        par.on_batch(batch);
        ser.on_batch(batch);
        for (VertexId v = 0; v < serial.num_vertices(); ++v) {
            ASSERT_EQ(par.property(v), ser.property(v))
                << "batch " << b << " vertex " << v;
        }
    }
    // The stores behind the engine must still be structurally sound.
    for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
        EXPECT_TRUE(core::Auditor::run(sharded.shard(s)).ok())
            << "shard " << s;
    }
}

TEST(ParallelEngineStress, RepeatedFromScratchRunsAreStable) {
    const auto edges = symmetrize(rmat_edges(250, 4000, 71));
    core::ShardedStore<core::GraphTinker> store(3, [] {
        return core::Config{};
    });
    (void)store.insert_batch(edges);

    VertexId bound = 0;
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
        bound = std::max(bound, store.shard(s).num_vertices());
    }
    const CsrSnapshot csr(edges, bound);
    const auto want = reference_bfs(csr, 0);

    ParallelDynamicAnalysis<core::GraphTinker, Bfs> bfs(store);
    bfs.set_root(0);
    for (int run = 0; run < 5; ++run) {
        const auto stats = bfs.run_from_scratch();
        ASSERT_GT(stats.iterations, 0u) << "run " << run;
        for (VertexId v = 0; v < csr.num_vertices(); ++v) {
            ASSERT_EQ(bfs.property(v), want[v])
                << "run " << run << " vertex " << v;
        }
    }
}

TEST(ParallelEngineStress, TwoAlgorithmsShareTheStore) {
    // Two engines driving parallel compute phases over the same sharded
    // store back to back: readers of shared graph state, writers only of
    // their own property arrays.
    const auto edges = symmetrize(rmat_edges(200, 3000, 81));
    core::ShardedStore<core::GraphTinker> store(4, [] {
        return core::Config{};
    });
    core::GraphTinker serial;

    ParallelDynamicAnalysis<core::GraphTinker, Cc> cc(store);
    ParallelDynamicAnalysis<core::GraphTinker, Bfs> bfs(store);
    DynamicAnalysis<core::GraphTinker, Cc> ser_cc(serial);
    DynamicAnalysis<core::GraphTinker, Bfs> ser_bfs(serial);
    bfs.set_root(0);
    ser_bfs.set_root(0);

    EdgeBatcher batches(edges, 500);
    for (std::size_t b = 0; b < batches.num_batches(); ++b) {
        const auto batch = batches.batch(b);
        (void)store.insert_batch(batch);
        (void)serial.insert_batch(batch);
        cc.on_batch(batch);
        bfs.on_batch(batch);
        ser_cc.on_batch(batch);
        ser_bfs.on_batch(batch);
    }
    for (VertexId v = 0; v < serial.num_vertices(); ++v) {
        ASSERT_EQ(cc.property(v), ser_cc.property(v)) << "CC vertex " << v;
        ASSERT_EQ(bfs.property(v), ser_bfs.property(v)) << "BFS vertex " << v;
    }
}

}  // namespace
}  // namespace gt::engine
