// TSan race-stress for the *locked* mutation concurrency contract.
//
// GraphTinker itself is single-writer: maintenance, inserts and deletes may
// never run concurrently with anything. What makes them safe to interleave
// across threads is the lock discipline documented in DESIGN.md §12 — an
// annotated gt::SharedMutex where every mutator (writer batches AND
// maintain_some) holds the exclusive side and readers hold the shared side.
// This suite drives that exact pattern hard: a churn writer, a budgeted
// maintenance thread and a pack of traversal readers hammer one store
// through the gt:: wrappers. Under the tsan preset, any hole in the
// wrappers (a forgotten unlock, maintenance sneaking in beside a reader)
// surfaces as a data-race report; under plain builds it still verifies
// reader-visible consistency and a clean final audit.
//
// This is the dynamic counterpart of the static -Wthread-safety build: the
// annotations prove lock/unlock pairing at compile time, this proves the
// discipline actually excludes the races at run time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace gt::core {
namespace {

Config race_config() {
    Config cfg;
    cfg.pagewidth = 16;
    cfg.subblock = 8;
    cfg.workblock = 4;
    // Delete-only mode accumulates tombstones, which is what gives the
    // maintenance thread real purge work to race against the readers.
    cfg.deletion_mode = DeletionMode::DeleteOnly;
    cfg.purge_tombstone_threshold = 0.2;
    return cfg;
}

std::vector<Edge> batch_for(std::uint64_t seed, std::uint32_t vertices,
                            std::uint32_t count) {
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        edges.push_back({static_cast<VertexId>(rng.next_below(vertices)),
                         static_cast<VertexId>(rng.next_below(vertices * 2)),
                         static_cast<Weight>(1 + i % 100)});
    }
    return edges;
}

TEST(MaintenanceRace, BudgetedSweepsRaceReadersAndWriterUnderLock) {
    GraphTinker g(race_config());
    SharedMutex store_mu;

    // Sizes tuned for TSan's ~10x slowdown: enough rounds that maintenance
    // genuinely purges mid-run (the assertions below check it did), small
    // enough to finish in seconds.
    constexpr std::uint32_t kVertices = 48;
    constexpr std::uint32_t kBatch = 256;
    constexpr int kRounds = 40;
    constexpr int kReaders = 3;

    {
        const LockGuard<SharedMutex> lock(store_mu);
        ASSERT_TRUE(g.insert_batch(batch_for(1, kVertices, 4 * kBatch)).ok());
    }

    std::atomic<bool> stop{false};
    std::atomic<bool> reader_failed{false};
    std::atomic<std::uint64_t> reader_sweeps{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
            while (!stop.load(std::memory_order_acquire)) {
                {
                    // One shared hold per sweep: within it the store must
                    // be frozen, so degree(v) and the traversal count must
                    // agree even while the writer and the maintainer queue
                    // behind us.
                    const SharedLockGuard lock(store_mu);
                    for (VertexId v = static_cast<VertexId>(t);
                         v < g.num_vertices();
                         v += static_cast<VertexId>(kReaders)) {
                        std::uint32_t seen = 0;
                        (void)g.visit_out_edges(
                            v,
                            [&](VertexId, Weight) { ++seen; return true; });
                        if (seen != g.degree(v)) {
                            reader_failed.store(true,
                                                std::memory_order_release);
                            return;
                        }
                    }
                }
                reader_sweeps.fetch_add(1, std::memory_order_relaxed);
                // glibc's rwlock is reader-preferring: back-to-back shared
                // re-acquisition would starve the exclusive side forever.
                // An unlocked gap per sweep guarantees zero-reader windows.
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
        });
    }

    MaintenanceReport total;
    total.complete = true;
    std::thread maintainer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            {
                const LockGuard<SharedMutex> lock(store_mu);
                total += g.maintain_some(/*budget_cells=*/400);
            }
            // Release between slices so the churn writer gets its turn.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });

    // Churn writer (this thread): alternating insert and delete waves over
    // the same key space keeps the tombstone fraction crossing the purge
    // threshold so the maintainer has real structural work.
    for (int round = 0; round < kRounds; ++round) {
        const auto edges =
            batch_for(static_cast<std::uint64_t>(round) + 100, kVertices,
                      kBatch);
        {
            const LockGuard<SharedMutex> lock(store_mu);
            if (round % 2 == 0) {
                ASSERT_TRUE(g.insert_batch(edges).ok());
            } else {
                ASSERT_TRUE(g.delete_batch(edges).ok());
            }
        }
        // Stretch the race window: without this the 40 rounds finish in a
        // couple of milliseconds and the readers barely overlap.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }

    stop.store(true, std::memory_order_release);
    maintainer.join();
    for (std::thread& r : readers) {
        r.join();
    }

    EXPECT_FALSE(reader_failed.load()) << "a shared-lock reader saw a "
                                          "half-maintained adjacency";
    EXPECT_GT(reader_sweeps.load(), 0u);
    // The race only means anything if maintenance actually ran structural
    // work while the readers/writer were live.
    EXPECT_GT(total.trees_examined, 0u);

    const AuditReport report = g.audit();
    EXPECT_TRUE(report.violations.empty())
        << "store failed its structural audit after racing maintenance";
}

}  // namespace
}  // namespace gt::core
