// Pipelined ShardedStore contract tests: concurrent reads via ReadPin while
// other shards ingest (TSan certifies the single-writer/many-reader epochs),
// flush/drain barrier correctness, asynchronous per-shard failure latching,
// and destructor draining of still-queued batches. Sized to stay fast under
// ThreadSanitizer; run under the tsan preset to certify the pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "core/sharded.hpp"
#include "gen/rmat.hpp"
#include "util/failpoint.hpp"
#include "util/status.hpp"
#include "util/types.hpp"

namespace gt::core {
namespace {

Config pipeline_config() {
    Config cfg;
    cfg.pagewidth = 16;
    cfg.subblock = 8;
    cfg.workblock = 4;
    return cfg;
}

using Sharded = ShardedStore<GraphTinker>;

/// Splits a stream into the edges owned by `target` and everything else,
/// using the store's own placement function.
void split_by_shard(std::span<const Edge> edges, std::size_t target,
                    std::size_t shards, std::vector<Edge>& owned,
                    std::vector<Edge>& others) {
    for (const Edge& e : edges) {
        (Sharded::shard_of(e.src, shards) == target ? owned : others)
            .push_back(e);
    }
}

TEST(ShardedPipeline, ConcurrentReadDuringIngest) {
    constexpr std::size_t kShards = 4;
    Sharded store(kShards, [] { return pipeline_config(); });

    const auto all = rmat_edges(300, 6000, 7);
    std::vector<Edge> pinned_edges;
    std::vector<Edge> other_edges;
    split_by_shard(all, 0, kShards, pinned_edges, other_edges);
    ASSERT_FALSE(pinned_edges.empty());
    ASSERT_FALSE(other_edges.empty());

    // Seed shard 0, settle, and remember what a reader must keep seeing.
    (void)store.insert_batch(pinned_edges);
    store.drain();
    const EdgeCount pinned_count = store.shard(0).num_edges();

    // One writer streams mini-batches that all hash away from shard 0
    // while this thread repeatedly pins shard 0 and reads through the pin.
    // The pinned store must stay frozen at its drained state the whole
    // time; TSan certifies the reads never race the other shards' workers.
    std::thread writer([&] {
        constexpr std::size_t kSlice = 256;
        for (std::size_t i = 0; i < other_edges.size(); i += kSlice) {
            const std::size_t len =
                std::min(kSlice, other_edges.size() - i);
            (void)store.insert_batch(
                std::span<const Edge>(other_edges).subspan(i, len));
        }
    });
    for (int i = 0; i < 64; ++i) {
        const auto pin = store.read_snapshot(0);
        EXPECT_EQ(pin->num_edges(), pinned_count);
    }
    writer.join();
    ASSERT_TRUE(store.flush().ok());

    GraphTinker reference(pipeline_config());
    (void)reference.insert_batch(all);
    EXPECT_EQ(store.num_edges(), reference.num_edges());
}

TEST(ShardedPipeline, PinnedShardDefersWritesUntilRelease) {
    constexpr std::size_t kShards = 2;
    Sharded store(kShards, [] { return pipeline_config(); });
    const auto all = rmat_edges(200, 2000, 13);
    std::vector<Edge> owned;
    std::vector<Edge> others;
    split_by_shard(all, 0, kShards, owned, others);
    ASSERT_FALSE(owned.empty());

    {
        const auto pin = store.read_snapshot(0);
        // Enqueue work for the pinned shard: its worker must block on the
        // rwlock instead of mutating under the reader.
        (void)store.insert_batch(owned);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_EQ(pin->num_edges(), 0u);
    }
    store.drain();
    GraphTinker reference(pipeline_config());
    (void)reference.insert_batch(owned);
    EXPECT_EQ(store.shard(0).num_edges(), reference.num_edges());
}

TEST(ShardedPipeline, FlushDrainsAndEpochsAdvance) {
    constexpr std::size_t kShards = 4;
    Sharded store(kShards, [] { return pipeline_config(); });
    GraphTinker reference(pipeline_config());

    std::vector<std::uint64_t> before(kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
        before[s] = store.shard_epoch(s);
    }

    const auto edges = rmat_edges(150, 3000, 5);
    constexpr std::size_t kSlice = 500;
    for (std::size_t i = 0; i < edges.size(); i += kSlice) {
        const auto slice =
            std::span<const Edge>(edges).subspan(i, kSlice);
        (void)store.insert_batch(slice);
        (void)reference.insert_batch(slice);
    }
    ASSERT_TRUE(store.flush().ok());
    EXPECT_EQ(store.num_edges(), reference.num_edges());

    // Every shard applied at least one hand-off task, and flush() on an
    // already-idle pipeline stays Ok.
    for (std::size_t s = 0; s < kShards; ++s) {
        EXPECT_GT(store.shard_epoch(s), before[s]) << "shard " << s;
    }
    EXPECT_TRUE(store.flush().ok());
}

TEST(ShardedPipeline, ShardFailureLatchesUntilFlush) {
    constexpr std::size_t kShards = 3;
    Sharded store(kShards, [] { return pipeline_config(); });
    const auto edges = rmat_edges(200, 5000, 11);

    {
        // Single-shot: exactly one shard's edgeblock growth faults, rolls
        // its slice back, and latches; the other shards commit.
        const fail::ScopedFailPoint fp("eba.grow", 1);
        (void)store.insert_batch(edges);

        const Status first = store.first_shard_failure();
        ASSERT_FALSE(first.ok());
        EXPECT_EQ(first.code, StatusCode::FaultInjected);
        EXPECT_TRUE(first.message.starts_with("shard "))
            << first.message;
        // The latch survives reads...
        const Status again = store.first_shard_failure();
        EXPECT_EQ(again.code, first.code);
        EXPECT_EQ(again.message, first.message);
        // ...flush() reports it once more and re-arms.
        const Status flushed = store.flush();
        EXPECT_EQ(flushed.code, first.code);
        EXPECT_EQ(flushed.message, first.message);
        EXPECT_TRUE(store.flush().ok());
    }

    // Rollback left every shard structurally sound.
    for (std::size_t s = 0; s < store.num_shards(); ++s) {
        EXPECT_TRUE(Auditor::run(store.shard(s)).ok()) << "shard " << s;
    }

    // Re-ingesting with nothing armed heals: the store converges to the
    // serial reference.
    (void)store.insert_batch(edges);
    ASSERT_TRUE(store.flush().ok());
    GraphTinker reference(pipeline_config());
    (void)reference.insert_batch(edges);
    EXPECT_EQ(store.num_edges(), reference.num_edges());
}

TEST(ShardedPipeline, FlushUnderReadPinRefusesWouldDeadlock) {
    constexpr std::size_t kShards = 2;
    Sharded store(kShards, [] { return pipeline_config(); });
    const auto all = rmat_edges(100, 1000, 17);
    (void)store.insert_batch(all);
    ASSERT_TRUE(store.flush().ok());

    {
        const auto pin = store.read_snapshot(0);
        // Queue work that lands on the pinned shard too: its worker blocks
        // on the pin's shared lock, so the queue cannot settle. Before the
        // per-thread pin registry, flush() here waited on that worker
        // forever — the self-deadlock sharded.hpp only warned about.
        (void)store.insert_batch(all);
        const Status st = store.flush();
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.code, StatusCode::WouldDeadlock);
        EXPECT_EQ(st.detail, 0u);  // names the pinned shard
        EXPECT_EQ(store.first_shard_failure().code,
                  StatusCode::WouldDeadlock);
        // Single-shard reads on the pinned shard stay non-blocking: they
        // serve the pin's settled epoch instead of waiting on the blocked
        // worker (shard-local wait is skipped when the caller holds the
        // pin).
        EXPECT_EQ(store.shard(0).num_edges(), pin->num_edges());
    }

    // Pin released: the same flush completes and reports a healthy run.
    ASSERT_TRUE(store.flush().ok());
    GraphTinker reference(pipeline_config());
    (void)reference.insert_batch(all);
    EXPECT_EQ(store.num_edges(), reference.num_edges());
}

/// Minimal store: counts applied edges. Exercises the per-edge fallback of
/// the worker's dispatch (no insert_batch member) and makes destruction
/// observable from outside the wrapper.
class CountingStore {
public:
    explicit CountingStore(std::atomic<std::uint64_t>* counter)
        : counter_(counter) {}

    bool insert_edge(VertexId, VertexId, Weight) {
        counter_->fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    // Referenced by the worker's dispatch switch; never called here.
    bool delete_edge(VertexId, VertexId) { return false; }

private:
    std::atomic<std::uint64_t>* counter_;
};

TEST(ShardedPipeline, DestructorDrainsQueuedBatches) {
    std::atomic<std::uint64_t> applied{0};
    constexpr std::size_t kEdges = 20000;
    const auto edges = rmat_edges(500, kEdges, 3);
    {
        ShardedStore<CountingStore> store(3, [&] { return &applied; });
        constexpr std::size_t kSlice = 128;
        for (std::size_t i = 0; i < edges.size(); i += kSlice) {
            const std::size_t len = std::min(kSlice, edges.size() - i);
            (void)store.insert_batch(
                std::span<const Edge>(edges).subspan(i, len));
        }
        // No drain/flush: the destructor must stop the queues and still
        // apply every enqueued slice before the stores die.
    }
    EXPECT_EQ(applied.load(std::memory_order_relaxed), kEdges);
}

}  // namespace
}  // namespace gt::core
