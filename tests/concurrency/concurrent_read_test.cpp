// TSan race-stress for the supported read-concurrency contract: once a
// GraphTinker instance is quiescent, any number of threads may run FIND,
// out-edge traversal, full-edge streaming and even the deep auditor against
// it simultaneously. This directly exercises the two const-path mutations
// that must be race-free by construction — the relaxed-atomic Stats counters
// bumped by every FIND and the thread-local traversal scratch used by
// visit_edges_of.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "util/rng.hpp"

namespace gt::core {
namespace {

Config stress_config() {
    Config cfg;
    cfg.pagewidth = 16;
    cfg.subblock = 8;
    cfg.workblock = 4;
    return cfg;
}

std::vector<Edge> stress_edges(std::uint32_t vertices, std::uint32_t count,
                               std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        edges.push_back({static_cast<VertexId>(rng.next_below(vertices)),
                         static_cast<VertexId>(rng.next_below(vertices * 4)),
                         static_cast<Weight>(1 + i % 200)});
    }
    return edges;
}

TEST(ConcurrentRead, ParallelFindersAgreeOnEveryEdge) {
    GraphTinker g(stress_config());
    const auto edges = stress_edges(64, 1500, 3);
    for (const Edge& e : edges) {
        (void)g.insert_edge(e.src, e.dst, e.weight);
    }

    constexpr int kThreads = 4;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Each thread sweeps the whole edge list from a different offset
            // so FIND walks (and their stats counters) overlap constantly.
            const std::size_t start = edges.size() / kThreads * t;
            for (std::size_t i = 0; i < edges.size(); ++i) {
                const Edge& e = edges[(start + i) % edges.size()];
                if (!g.find_edge(e.src, e.dst).has_value()) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
                hits.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(hits.load(), static_cast<std::uint64_t>(kThreads) * edges.size());
    // The shared stats counters absorbed every probe without losing updates
    // being a correctness property; merely assert they moved.
    EXPECT_GT(static_cast<std::uint64_t>(g.stats().cells_probed), 0u);
}

TEST(ConcurrentRead, MixedTraversalFindAndAudit) {
    GraphTinker g(stress_config());
    const auto edges = stress_edges(48, 1200, 11);
    for (const Edge& e : edges) {
        (void)g.insert_edge(e.src, e.dst, e.weight);
    }
    const EdgeCount expect_edges = g.num_edges();

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;

    // Two traversal threads: per-vertex out-edge walks using the (formerly
    // shared, now thread-local) visit stack.
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int round = 0; round < 30; ++round) {
                EdgeCount seen = 0;
                for (VertexId src = 0; src < 48; ++src) {
                    g.visit_out_edges(src,
                                        [&](VertexId, Weight) { ++seen; });
                }
                if (seen != expect_edges) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    // One full-stream thread: CAL-backed visit_edges.
    threads.emplace_back([&] {
        for (int round = 0; round < 30; ++round) {
            EdgeCount seen = 0;
            g.visit_edges([&](VertexId, VertexId, Weight) { ++seen; });
            if (seen != expect_edges) {
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    });
    // One FIND thread hammering point lookups.
    threads.emplace_back([&] {
        for (int round = 0; round < 10; ++round) {
            for (const Edge& e : edges) {
                if (!g.find_edge(e.src, e.dst).has_value()) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }
    });
    // One auditor thread: the deep audit is documented read-only and safe
    // alongside other readers.
    threads.emplace_back([&] {
        for (int round = 0; round < 5; ++round) {
            if (!Auditor::run(g).ok()) {
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    });

    for (auto& th : threads) {
        th.join();
    }
    EXPECT_FALSE(failed.load());
}

TEST(ConcurrentRead, EbaFallbackStreamIsThreadSafe) {
    // With CAL disabled, visit_edges falls back to the EdgeblockArray
    // sweep, which leans on the thread-local visit stack from every thread.
    Config cfg = stress_config();
    cfg.enable_cal = false;
    GraphTinker g(cfg);
    const auto edges = stress_edges(40, 900, 17);
    for (const Edge& e : edges) {
        (void)g.insert_edge(e.src, e.dst, e.weight);
    }
    const EdgeCount expect_edges = g.num_edges();

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int round = 0; round < 20; ++round) {
                EdgeCount seen = 0;
                g.visit_edges([&](VertexId, VertexId, Weight) { ++seen; });
                if (seen != expect_edges) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace gt::core
