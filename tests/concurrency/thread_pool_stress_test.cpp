// TSan race-stress for the ThreadPool: rapid batch turnover, unbalanced
// bodies, pool handoff between caller threads, nested pools and immediate
// teardown. Sized to finish in seconds even under ThreadSanitizer's ~10x
// slowdown while still exercising every wakeup/handoff edge in the pool.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace gt {
namespace {

TEST(ThreadPoolStress, RapidSmallBatches) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    constexpr int kRounds = 300;
    constexpr std::size_t kTasks = 32;
    for (int round = 0; round < kRounds; ++round) {
        pool.parallel_for(kTasks, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kRounds) * kTasks *
                              (kTasks + 1) / 2);
}

TEST(ThreadPoolStress, UnbalancedBodies) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> work{0};
    for (int round = 0; round < 20; ++round) {
        pool.parallel_for(16, [&](std::size_t i) {
            // Task cost varies by three orders of magnitude, so slow tasks
            // overlap many fast-batch wakeups.
            volatile std::uint64_t spin = 0;
            const std::uint64_t iters = 1ULL << (i % 12);
            for (std::uint64_t k = 0; k < iters; ++k) {
                spin = spin + k;
            }
            work.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(work.load(), 20u * 16u);
}

TEST(ThreadPoolStress, CallerHandoffBetweenThreads) {
    // The pool contract allows any single thread to drive parallel_for at a
    // time; exercise serial handoff of that role across caller threads.
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 50; ++round) {
        std::thread caller([&] {
            pool.parallel_for(17, [&](std::size_t i) {
                sum.fetch_add(i, std::memory_order_relaxed);
            });
        });
        caller.join();
        pool.parallel_for(17, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 100u * (17u * 16u / 2));
}

TEST(ThreadPoolStress, TeardownRightAfterWork) {
    for (int round = 0; round < 40; ++round) {
        std::atomic<int> ran{0};
        {
            ThreadPool pool(2);
            pool.parallel_for(8, [&](std::size_t) {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        }  // destructor must join cleanly while workers may still be waking
        EXPECT_EQ(ran.load(), 8);
    }
}

TEST(ThreadPoolStress, NestedDistinctPools) {
    ThreadPool outer(2);
    std::atomic<std::uint64_t> sum{0};
    outer.parallel_for(4, [&](std::size_t o) {
        ThreadPool inner(2);
        inner.parallel_for(8, [&](std::size_t i) {
            sum.fetch_add(o * 8 + i, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(sum.load(), 31u * 32u / 2);
}

TEST(ThreadPoolStress, EmptyAndSingletonBatches) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int round = 0; round < 100; ++round) {
        pool.parallel_for(0, [&](std::size_t) { ran.fetch_add(100); });
        pool.parallel_for(1, [&](std::size_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace gt
