// Tests for the EdgeblockArray: Robin Hood probing, Tree-Based Hashing
// branch-out, deletion modes and the compaction machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/edgeblock_array.hpp"

namespace gt::core {
namespace {

Config small_config() {
    Config cfg;
    cfg.pagewidth = 16;
    cfg.subblock = 4;
    cfg.workblock = 2;
    cfg.enable_cal = false;
    return cfg;
}

TEST(EdgeblockArray, InsertFindUpdate) {
    const Config cfg = small_config();
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    EXPECT_TRUE(eba.insert(top, 5, 10).inserted);
    EXPECT_NE(top, EdgeblockArray::kNoBlock);
    EXPECT_FALSE(eba.insert(top, 5, 20).inserted);  // weight update
    EXPECT_EQ(eba.find(top, 5), std::optional<Weight>(20));
    EXPECT_FALSE(eba.find(top, 6).has_value());
}

TEST(EdgeblockArray, FindOnEmptyHandle) {
    const Config cfg = small_config();
    EdgeblockArray eba(cfg, nullptr);
    EXPECT_FALSE(eba.find(EdgeblockArray::kNoBlock, 1).has_value());
    std::uint32_t top = EdgeblockArray::kNoBlock;
    EXPECT_FALSE(eba.erase(top, 1).found);
}

TEST(EdgeblockArray, BranchesOutWhenSubblockCongests) {
    const Config cfg = small_config();  // 4 subblocks of 4 cells
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    // Far more edges than one block holds: the tree must branch.
    for (VertexId d = 0; d < 200; ++d) {
        eba.insert(top, d, 1);
    }
    EXPECT_GT(eba.stats().branch_outs, 0u);
    EXPECT_GT(eba.blocks_in_use(), 1u);
    for (VertexId d = 0; d < 200; ++d) {
        EXPECT_TRUE(eba.find(top, d).has_value()) << d;
    }
}

TEST(EdgeblockArray, DepthIsLogarithmicInDegree) {
    // The paper's probe-distance claim: O(log n) generations vs the
    // adjacency list's O(n) blocks.
    Config cfg;
    cfg.pagewidth = 64;
    cfg.subblock = 8;
    cfg.workblock = 4;
    cfg.enable_cal = false;
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    constexpr VertexId kDegree = 20000;
    for (VertexId d = 0; d < kDegree; ++d) {
        eba.insert(top, d, 1);
    }
    const double depth = eba.subtree_depth(top);
    // Each level multiplies capacity by ~spb (8); generous upper bound of
    // 4x the information-theoretic depth tolerates hash imbalance.
    const double log_bound = std::log2(kDegree) / std::log2(8.0);
    EXPECT_LE(depth, 4.0 * log_bound + 2.0)
        << "tree far deeper than O(log degree)";
}

TEST(EdgeblockArray, RobinHoodSwapsHappenAndPreserveFindability) {
    Config cfg = small_config();
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 64; ++d) {
        eba.insert(top, d, d + 1);
    }
    EXPECT_GT(eba.stats().rhh_swaps, 0u) << "RHH never displaced anything";
    for (VertexId d = 0; d < 64; ++d) {
        EXPECT_EQ(eba.find(top, d), std::optional<Weight>(d + 1));
    }
}

TEST(EdgeblockArray, RhhDisabledInCompactMode) {
    Config cfg = small_config();
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    EXPECT_FALSE(cfg.rhh_active());
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 64; ++d) {
        eba.insert(top, d, d + 1);
    }
    EXPECT_EQ(eba.stats().rhh_swaps, 0u);
    for (VertexId d = 0; d < 64; ++d) {
        EXPECT_EQ(eba.find(top, d), std::optional<Weight>(d + 1));
    }
}

TEST(EdgeblockArray, DeleteOnlyTombstonesWithoutFreeingBlocks) {
    Config cfg = small_config();
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 100; ++d) {
        eba.insert(top, d, 1);
    }
    const std::size_t peak_blocks = eba.blocks_in_use();
    for (VertexId d = 0; d < 100; ++d) {
        EXPECT_TRUE(eba.erase(top, d).found);
    }
    EXPECT_EQ(eba.blocks_in_use(), peak_blocks) << "delete-only must not shrink";
    EXPECT_EQ(eba.stats().blocks_freed, 0u);
    for (VertexId d = 0; d < 100; ++d) {
        EXPECT_FALSE(eba.find(top, d).has_value());
    }
    // Tombstoned slots are reusable by later inserts.
    const std::size_t before = eba.blocks_in_use();
    for (VertexId d = 200; d < 260; ++d) {
        eba.insert(top, d, 1);
    }
    EXPECT_LE(eba.blocks_in_use(), before + 4);
}

TEST(EdgeblockArray, DeleteAndCompactShrinksToNothing) {
    Config cfg = small_config();
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 500; ++d) {
        eba.insert(top, d, 1);
    }
    const std::size_t peak = eba.blocks_in_use();
    EXPECT_GT(peak, 5u);
    for (VertexId d = 0; d < 500; ++d) {
        ASSERT_TRUE(eba.erase(top, d).found) << d;
    }
    EXPECT_EQ(top, EdgeblockArray::kNoBlock) << "empty vertex keeps no block";
    EXPECT_EQ(eba.blocks_in_use(), 0u) << "compact mode must fully shrink";
    EXPECT_GT(eba.stats().blocks_freed, 0u);
}

TEST(EdgeblockArray, CompactionRelocatesDeepEdgesUpward) {
    Config cfg = small_config();
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 300; ++d) {
        eba.insert(top, d, d);
    }
    const auto depth_before = eba.subtree_depth(top);
    // Delete half; survivors must all stay findable with correct weights.
    for (VertexId d = 0; d < 300; d += 2) {
        ASSERT_TRUE(eba.erase(top, d).found);
    }
    EXPECT_GT(eba.stats().compaction_moves, 0u);
    EXPECT_LE(eba.subtree_depth(top), depth_before);
    for (VertexId d = 1; d < 300; d += 2) {
        EXPECT_EQ(eba.find(top, d), std::optional<Weight>(d)) << d;
    }
    for (VertexId d = 0; d < 300; d += 2) {
        EXPECT_FALSE(eba.find(top, d).has_value()) << d;
    }
}

TEST(EdgeblockArray, FreedBlocksAreRecycled) {
    Config cfg = small_config();
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top_a = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 200; ++d) {
        eba.insert(top_a, d, 1);
    }
    const std::size_t allocated_peak = eba.blocks_allocated();
    for (VertexId d = 0; d < 200; ++d) {
        eba.erase(top_a, d);
    }
    // A second vertex reuses the freed pool instead of growing the arena.
    std::uint32_t top_b = EdgeblockArray::kNoBlock;
    for (VertexId d = 0; d < 200; ++d) {
        eba.insert(top_b, d, 1);
    }
    EXPECT_EQ(eba.blocks_allocated(), allocated_peak);
}

TEST(EdgeblockArray, IterationVisitsExactlyLiveEdges) {
    Config cfg = small_config();
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    std::set<VertexId> expected;
    for (VertexId d = 0; d < 150; ++d) {
        eba.insert(top, d * 3, 1);
        expected.insert(d * 3);
    }
    for (VertexId d = 0; d < 150; d += 5) {
        eba.erase(top, d * 3);
        expected.erase(d * 3);
    }
    std::set<VertexId> seen;
    eba.visit_edges_of(top, [&](VertexId dst, Weight) {
        EXPECT_TRUE(seen.insert(dst).second) << "duplicate " << dst;
    });
    EXPECT_EQ(seen, expected);
}

TEST(EdgeblockArray, WorkblockFetchesAreCounted) {
    Config cfg = small_config();
    EdgeblockArray eba(cfg, nullptr);
    std::uint32_t top = EdgeblockArray::kNoBlock;
    eba.insert(top, 1, 1);
    const auto before = eba.stats().workblocks_fetched;
    (void)eba.find(top, 1);
    EXPECT_GT(eba.stats().workblocks_fetched, before);
}

TEST(EdgeblockArrayConfig, ValidationRejectsBadGeometry) {
    Config bad;
    bad.pagewidth = 48;  // not a power of two
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = Config{};
    bad.subblock = 16;
    bad.workblock = 32;  // workblock larger than subblock
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = Config{};
    bad.cal_group_size = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    EXPECT_NO_THROW(Config{}.validate());
}

}  // namespace
}  // namespace gt::core
