// Tests for the parallel sharded wrapper (paper Fig. 6).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/graphtinker.hpp"
#include "core/sharded.hpp"
#include "gen/rmat.hpp"
#include "stinger/stinger.hpp"

namespace gt::core {
namespace {

using E = std::tuple<VertexId, VertexId, Weight>;

template <typename Sharded>
std::set<E> all_edges(const Sharded& sharded) {
    std::set<E> out;
    for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
        sharded.shard(s).visit_edges(
            [&](VertexId u, VertexId v, Weight w) { out.emplace(u, v, w); });
    }
    return out;
}

TEST(Sharded, GraphTinkerMatchesSerialInstance) {
    const auto edges = rmat_edges(1000, 20000, 31);
    ShardedStore<GraphTinker> sharded(4, [] { return Config{}; });
    GraphTinker serial;
    (void)sharded.insert_batch(edges);
    (void)serial.insert_batch(edges);
    EXPECT_EQ(sharded.num_edges(), serial.num_edges());

    std::set<E> serial_edges;
    serial.visit_edges(
        [&](VertexId u, VertexId v, Weight w) { serial_edges.emplace(u, v, w); });
    EXPECT_EQ(all_edges(sharded), serial_edges);
}

TEST(Sharded, ShardsPartitionBySourceOnly) {
    const auto edges = rmat_edges(500, 5000, 32);
    ShardedStore<GraphTinker> sharded(8, [] { return Config{}; });
    (void)sharded.insert_batch(edges);
    // Every vertex's out-edges live in exactly one shard.
    for (VertexId v = 0; v < 500; ++v) {
        int shards_with_v = 0;
        for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
            if (sharded.shard(s).degree(v) > 0) {
                ++shards_with_v;
            }
        }
        EXPECT_LE(shards_with_v, 1) << "vertex " << v << " split across shards";
    }
}

TEST(Sharded, DeleteBatchRemovesEverything) {
    const auto edges = rmat_edges(300, 8000, 33);
    ShardedStore<GraphTinker> sharded(3, [] { return Config{}; });
    (void)sharded.insert_batch(edges);
    EXPECT_GT(sharded.num_edges(), 0u);
    (void)sharded.delete_batch(edges);
    EXPECT_EQ(sharded.num_edges(), 0u);
}

TEST(Sharded, FindRoutesToOwningShard) {
    ShardedStore<GraphTinker> sharded(5, [] { return Config{}; });
    const std::vector<Edge> batch{{1, 2, 10}, {3, 4, 20}, {100, 7, 30}};
    (void)sharded.insert_batch(batch);
    EXPECT_EQ(sharded.find_edge(1, 2), std::optional<Weight>(10));
    EXPECT_EQ(sharded.find_edge(100, 7), std::optional<Weight>(30));
    EXPECT_FALSE(sharded.find_edge(1, 7).has_value());
}

TEST(Sharded, WorksForStingerToo) {
    const auto edges = rmat_edges(400, 6000, 34);
    ShardedStore<stinger::Stinger> sharded(
        4, [] { return stinger::StingerConfig{}; });
    stinger::Stinger serial;
    (void)sharded.insert_batch(edges);
    for (const Edge& e : edges) {
        (void)serial.insert_edge(e.src, e.dst, e.weight);
    }
    EXPECT_EQ(sharded.num_edges(), serial.num_edges());
    std::set<E> serial_edges;
    serial.visit_edges(
        [&](VertexId u, VertexId v, Weight w) { serial_edges.emplace(u, v, w); });
    EXPECT_EQ(all_edges(sharded), serial_edges);
}

TEST(Sharded, SingleShardDegeneratesGracefully) {
    ShardedStore<GraphTinker> sharded(1, [] { return Config{}; });
    const std::vector<Edge> batch{{1, 2, 3}};
    (void)sharded.insert_batch(batch);
    EXPECT_EQ(sharded.num_edges(), 1u);
    EXPECT_EQ(sharded.num_shards(), 1u);
}

TEST(Sharded, ZeroShardRequestClampsToOne) {
    ShardedStore<GraphTinker> sharded(0, [] { return Config{}; });
    EXPECT_EQ(sharded.num_shards(), 1u);
}

TEST(Sharded, ReadSnapshotAllSeesOneConsistentCut) {
    const auto edges = rmat_edges(800, 12000, 34);
    ShardedStore<GraphTinker> sharded(4, [] { return Config{}; });
    (void)sharded.insert_batch(edges);
    GraphTinker serial;
    (void)serial.insert_batch(edges);

    {
        const auto pin = sharded.read_snapshot_all();
        ASSERT_EQ(pin.num_shards(), 4u);
        // The pin's cross-shard aggregate matches the serial instance, and
        // the per-shard views union to exactly the serial edge set — one
        // settled epoch across every shard.
        EXPECT_EQ(pin.edge_total(), serial.num_edges());
        std::set<E> pinned_edges;
        for (std::size_t s = 0; s < pin.num_shards(); ++s) {
            pin.store(s).visit_edges([&](VertexId u, VertexId v, Weight w) {
                pinned_edges.emplace(u, v, w);
            });
        }
        std::set<E> serial_edges;
        serial.visit_edges([&](VertexId u, VertexId v, Weight w) {
            serial_edges.emplace(u, v, w);
        });
        EXPECT_EQ(pinned_edges, serial_edges);
    }

    // Ingest resumes after the pin drops.
    const std::vector<Edge> more{{900, 901, 1}};
    EXPECT_TRUE(sharded.insert_batch(more).ok());
    EXPECT_EQ(sharded.num_edges(), serial.num_edges() + 1);
}

}  // namespace
}  // namespace gt::core
