// Differential tests for the batched ingest fast path: insert_batch /
// delete_batch must leave the store equivalent to per-edge application of
// the same stream — same edge set, weights, degrees, edge count and a clean
// structural audit — across every feature configuration. Also covers the
// ShardedStore radix partition + apply_updates pre-combining.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "core/sharded.hpp"
#include "gen/batch_prep.hpp"
#include "gen/rmat.hpp"

namespace gt::core {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Weight>;

EdgeMap edge_map(const GraphTinker& g) {
    EdgeMap out;
    g.visit_edges([&](VertexId u, VertexId v, Weight w) {
        out[{u, v}] = w;
    });
    return out;
}

template <typename Sharded>
EdgeMap edge_map_sharded(const Sharded& sharded) {
    EdgeMap out;
    for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
        sharded.shard(s).visit_edges(
            [&](VertexId u, VertexId v, Weight w) { out[{u, v}] = w; });
    }
    return out;
}

/// Batch path and per-edge twin must agree on all observable state.
void expect_equivalent(const GraphTinker& batch, const GraphTinker& serial,
                       const std::string& label) {
    EXPECT_EQ(batch.num_edges(), serial.num_edges()) << label;
    EXPECT_EQ(edge_map(batch), edge_map(serial)) << label;
    EXPECT_EQ(batch.num_vertices(), serial.num_vertices()) << label;
    for (VertexId v = 0; v < serial.num_vertices(); ++v) {
        ASSERT_EQ(batch.degree(v), serial.degree(v)) << label << " v=" << v;
    }
    const AuditReport batch_audit = batch.audit();
    EXPECT_TRUE(batch_audit.ok()) << label << ": " << batch_audit.to_string();
}

struct NamedConfig {
    std::string name;
    Config config;
};

std::vector<NamedConfig> all_configs() {
    std::vector<NamedConfig> out;
    out.push_back({"default", Config{}});
    Config no_cal;
    no_cal.enable_cal = false;
    out.push_back({"no_cal", no_cal});
    Config no_sgh;
    no_sgh.enable_sgh = false;
    out.push_back({"no_sgh", no_sgh});
    Config compact;
    compact.deletion_mode = DeletionMode::DeleteAndCompact;
    out.push_back({"compact_delete", compact});
    Config no_rhh;
    no_rhh.enable_rhh = false;
    out.push_back({"no_rhh", no_rhh});
    return out;
}

TEST(IngestDifferential, InsertBatchMatchesPerEdge) {
    const auto edges = rmat_edges(2000, 60000, 7);
    for (const NamedConfig& nc : all_configs()) {
        GraphTinker batch(nc.config);
        GraphTinker serial(nc.config);
        (void)batch.insert_batch(edges);
        for (const Edge& e : edges) {
            (void)serial.insert_edge(e.src, e.dst, e.weight);
        }
        expect_equivalent(batch, serial, nc.name);
    }
}

TEST(IngestDifferential, DuplicatePairsKeepLastWeight) {
    // Duplicate (src, dst) pairs inside one batch: the stable source sort
    // must preserve stream order within a source, so the last weight wins in
    // both paths.
    std::vector<Edge> edges;
    for (std::uint32_t round = 0; round < 50; ++round) {
        for (VertexId src = 0; src < 8; ++src) {
            edges.push_back(Edge{src, (src + round) % 16, round + 1});
            edges.push_back(Edge{src, (src + round) % 16, round + 100});
        }
    }
    GraphTinker batch;
    GraphTinker serial;
    (void)batch.insert_batch(edges);
    for (const Edge& e : edges) {
        (void)serial.insert_edge(e.src, e.dst, e.weight);
    }
    expect_equivalent(batch, serial, "dup_pairs");
    EXPECT_EQ(batch.find_edge(0, 5), serial.find_edge(0, 5));
}

TEST(IngestDifferential, DuplicateDeletesDecrementOnce) {
    // A delete batch naming the same (src, dst) pair several times must
    // remove the edge exactly once: the sorted apply loop skips adjacent
    // duplicates, and the tombstone left by the first erase makes any
    // re-probe miss. num_edges must never double-decrement.
    for (const NamedConfig& nc : all_configs()) {
        GraphTinker batch(nc.config);
        GraphTinker serial(nc.config);
        const auto edges = rmat_edges(400, 6000, 21);
        (void)batch.insert_batch(edges);
        for (const Edge& e : edges) {
            (void)serial.insert_edge(e.src, e.dst, e.weight);
        }

        // Every surviving edge deleted twice back-to-back plus once more at
        // the end of the stream (non-adjacent repeat after sorting ties are
        // broken by stable order).
        std::vector<Edge> deletes;
        EdgeMap live = edge_map(batch);
        std::size_t picked = 0;
        for (const auto& [key, weight] : live) {
            if (picked++ % 2 != 0) {
                continue;
            }
            deletes.push_back(Edge{key.first, key.second, weight});
            deletes.push_back(Edge{key.first, key.second, weight});
        }
        const std::size_t first_wave = deletes.size();
        deletes.insert(deletes.end(), deletes.begin(),
                       deletes.begin() + static_cast<std::ptrdiff_t>(
                                             first_wave / 2));
        (void)batch.delete_batch(deletes);
        for (const Edge& e : deletes) {
            (void)serial.delete_edge(e.src, e.dst);
        }
        expect_equivalent(batch, serial, nc.name + " dup_deletes");

        // Deleting the same set again in a fresh batch (all already gone)
        // must be a no-op for the counters.
        const EdgeCount before = batch.num_edges();
        (void)batch.delete_batch(deletes);
        for (const Edge& e : deletes) {
            (void)serial.delete_edge(e.src, e.dst);
        }
        EXPECT_EQ(batch.num_edges(), before) << nc.name;
        expect_equivalent(batch, serial, nc.name + " redelete");
    }
}

TEST(IngestDifferential, MixedInsertDeleteStream) {
    // Interleaved insert/delete batches, including deletes of absent edges
    // and of never-streamed sources, across every config.
    std::mt19937 rng(99);
    for (const NamedConfig& nc : all_configs()) {
        GraphTinker batch(nc.config);
        GraphTinker serial(nc.config);
        std::vector<Edge> live;
        for (int round = 0; round < 8; ++round) {
            const auto inserts =
                rmat_edges(600, 4000, 1000 + round * 17);
            (void)batch.insert_batch(inserts);
            for (const Edge& e : inserts) {
                (void)serial.insert_edge(e.src, e.dst, e.weight);
            }
            live.insert(live.end(), inserts.begin(), inserts.end());

            // Delete a random slice of what exists plus some junk.
            std::vector<Edge> deletes;
            for (int i = 0; i < 1500 && !live.empty(); ++i) {
                const std::size_t pick = rng() % live.size();
                deletes.push_back(live[pick]);
                live[pick] = live.back();
                live.pop_back();
            }
            deletes.push_back(Edge{100000, 1, 1});  // unknown source
            deletes.push_back(Edge{1, 100000, 1});  // unknown dst
            (void)batch.delete_batch(deletes);
            for (const Edge& e : deletes) {
                (void)serial.delete_edge(e.src, e.dst);
            }
            expect_equivalent(batch, serial,
                              nc.name + " round " + std::to_string(round));
        }
    }
}

TEST(IngestDifferential, SmallBatchesTakeScalarPathAndStillMatch) {
    // Below the fast-path threshold insert_batch degrades to per-edge; the
    // equivalence contract is identical either way.
    const auto edges = rmat_edges(100, 600, 3);
    GraphTinker batch;
    GraphTinker serial;
    for (std::size_t i = 0; i < edges.size(); i += 16) {
        const std::size_t len = std::min<std::size_t>(16, edges.size() - i);
        (void)batch.insert_batch(std::span<const Edge>(edges).subspan(i, len));
    }
    for (const Edge& e : edges) {
        (void)serial.insert_edge(e.src, e.dst, e.weight);
    }
    expect_equivalent(batch, serial, "small_batches");
}

TEST(IngestDifferential, ShardedMatchesSerialAndAuditsClean) {
    const auto edges = rmat_edges(1500, 50000, 11);
    ShardedStore<GraphTinker> sharded(6, [] { return Config{}; });
    GraphTinker serial;
    (void)sharded.insert_batch(edges);
    for (const Edge& e : edges) {
        (void)serial.insert_edge(e.src, e.dst, e.weight);
    }
    EXPECT_EQ(sharded.num_edges(), serial.num_edges());
    EXPECT_EQ(edge_map_sharded(sharded), edge_map(serial));
    for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
        const AuditReport report = sharded.shard(s).audit();
        EXPECT_TRUE(report.ok()) << "shard " << s << ": "
                                 << report.to_string();
    }
    (void)sharded.delete_batch(edges);
    EXPECT_EQ(sharded.num_edges(), 0u);
}

TEST(IngestDifferential, ShardedApplyUpdatesPreCombines) {
    // apply_updates runs prepare_batch before sharding: duplicates fold,
    // insert+delete pairs cancel under assume_new_edges, and the surviving
    // stream produces the same store as serial prepared application.
    std::vector<Update> raw;
    for (VertexId src = 0; src < 200; ++src) {
        raw.push_back(Update{Edge{src, src + 1, 1}, UpdateKind::Insert});
        raw.push_back(Update{Edge{src, src + 1, 2}, UpdateKind::Insert});
        if (src % 4 == 0) {
            raw.push_back(Update{Edge{src, src + 1, 0}, UpdateKind::Delete});
        }
    }
    ShardedStore<GraphTinker> sharded(4, [] { return Config{}; });
    const auto result = sharded.apply_updates(raw, /*assume_new_edges=*/true);
    EXPECT_EQ(result.cancellations, 50u);
    EXPECT_GT(result.duplicates, 0u);
    EXPECT_EQ(result.applied, 150u);
    EXPECT_EQ(sharded.num_edges(), 150u);

    GraphTinker serial;
    const PreparedBatch prepared =
        prepare_batch(raw, /*assume_new_edges=*/true);
    apply_batch(serial, prepared);
    EXPECT_EQ(edge_map_sharded(sharded), edge_map(serial));
}

TEST(IngestDifferential, ShardOfIsStableAndInRange) {
    for (const std::size_t shards : {1UL, 2UL, 3UL, 7UL, 8UL, 64UL}) {
        std::vector<std::size_t> hits(shards, 0);
        for (VertexId v = 0; v < 10000; ++v) {
            const std::size_t s =
                ShardedStore<GraphTinker>::shard_of(v, shards);
            ASSERT_LT(s, shards);
            ASSERT_EQ(s, ShardedStore<GraphTinker>::shard_of(v, shards));
            ++hits[s];
        }
        // Fastmod over a mixed hash spreads sources roughly evenly.
        for (std::size_t s = 0; s < shards; ++s) {
            EXPECT_GT(hits[s], 10000 / shards / 2)
                << "shard " << s << " of " << shards << " underloaded";
        }
    }
    // Guarded degenerate case: shard_of itself tolerates 0 shards.
    EXPECT_EQ(ShardedStore<GraphTinker>::shard_of(123, 0), 0u);
}

}  // namespace
}  // namespace gt::core
