// Randomized property tests for the Coarse Adjacency List and the SGH unit
// under sustained churn, plus cross-feature combinations not covered by the
// unit suites.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/scoped_audit.hpp"
#include "core/bidirectional.hpp"
#include "core/cal.hpp"
#include "core/graphtinker.hpp"
#include "core/sgh.hpp"
#include "engine/algorithms.hpp"
#include "engine/hybrid_engine.hpp"
#include "engine/reference.hpp"
#include "gen/rmat.hpp"
#include "stinger/stinger.hpp"
#include "util/rng.hpp"

namespace gt::core {
namespace {

class CalFuzzTest : public ::testing::TestWithParam<bool> {};

TEST_P(CalFuzzTest, RandomChurnKeepsStreamExact) {
    const bool compact = GetParam();
    CoarseAdjacencyList cal(/*group_size=*/8, /*block_edges=*/4);
    // Model: live CAL entries keyed by a synthetic id we track through the
    // Moved notifications.
    struct Entry {
        VertexId src;
        VertexId dst;
        Weight weight;
    };
    std::unordered_map<std::uint32_t, Entry> live;  // pos -> entry
    Rng rng(compact ? 1 : 2);
    for (int op = 0; op < 20000; ++op) {
        if (live.empty() || rng.next_below(10) < 6) {
            const auto dense = static_cast<VertexId>(rng.next_below(64));
            // Unique weight per insertion so the Moved re-keying below can
            // identify the relocated entry unambiguously.
            const Entry e{dense * 1000,
                          static_cast<VertexId>(rng.next_below(100)),
                          static_cast<Weight>(op + 1)};
            const auto pos = cal.insert(dense, e.src, e.dst, e.weight,
                                        CellRef{0, 0});
            ASSERT_FALSE(live.contains(pos)) << "pos reuse while occupied";
            live.emplace(pos, e);
        } else {
            // Erase a random live position.
            auto it = live.begin();
            std::advance(it, static_cast<long>(
                                 rng.next_below(live.size())));
            const auto pos = it->first;
            live.erase(it);
            if (const auto moved = cal.erase(pos, compact)) {
                // A tail entry moved into the hole; re-key the model.
                const auto old_it = live.find(moved->new_pos);
                // new_pos == pos always here, and the moved entry came from
                // somewhere else — find it by scanning (model is small).
                ASSERT_EQ(moved->new_pos, pos);
                std::optional<std::uint32_t> source;
                const auto slot = cal.slot_at(pos);
                for (const auto& [p, e] : live) {
                    if (p != pos && e.src == slot.src && e.dst == slot.dst &&
                        e.weight == slot.weight) {
                        source = p;
                        break;
                    }
                }
                ASSERT_TRUE(source.has_value()) << "moved entry untracked";
                live.emplace(pos, live.at(*source));
                live.erase(*source);
                (void)old_it;
            }
        }
        ASSERT_EQ(cal.live_edges(), live.size());
    }
    // Stream audit: multiset equality with the model.
    std::multiset<std::tuple<VertexId, VertexId, Weight>> want;
    for (const auto& [pos, e] : live) {
        want.emplace(e.src, e.dst, e.weight);
    }
    std::multiset<std::tuple<VertexId, VertexId, Weight>> got;
    cal.visit_edges([&](VertexId s, VertexId d, Weight w) {
        got.emplace(s, d, w);
    });
    EXPECT_EQ(got, want);
    if (compact) {
        EXPECT_EQ(cal.scanned_slots(), live.size())
            << "compact mode must not accumulate holes";
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, CalFuzzTest, ::testing::Bool(),
                         [](const auto& info) {
                             return info.param ? "compact" : "delete_only";
                         });

TEST(CalEraseEdgeCases, TailSelfEraseEmitsNoMove) {
    // Erasing the group's tail edge with compact=true is a self-move: the
    // victim IS the slot the tail would relocate into. No Moved may be
    // emitted — a caller re-binding through it would point an owner cell at
    // the slot this erase just vacated.
    CoarseAdjacencyList cal(/*group_size=*/8, /*block_edges=*/4);
    std::vector<std::uint32_t> pos;
    for (VertexId i = 0; i < 3; ++i) {
        pos.push_back(cal.insert(0, 7, 100 + i, i + 1, CellRef{0, 0}));
    }
    // Tail first: nothing to relocate.
    EXPECT_FALSE(cal.erase(pos[2], /*compact=*/true).has_value());
    EXPECT_EQ(cal.live_edges(), 2u);
    EXPECT_EQ(cal.scanned_slots(), 2u);

    // Middle next: the new tail (pos[1]) slides into the hole and the Moved
    // notification points at the vacated position.
    const auto moved = cal.erase(pos[0], /*compact=*/true);
    ASSERT_TRUE(moved.has_value());
    EXPECT_EQ(moved->new_pos, pos[0]);
    EXPECT_EQ(cal.slot_at(pos[0]).dst, 101u);
    EXPECT_EQ(cal.live_edges(), 1u);

    // Down to one edge; erasing it is again a pure self-move.
    EXPECT_FALSE(cal.erase(pos[0], /*compact=*/true).has_value());
    EXPECT_EQ(cal.live_edges(), 0u);
    EXPECT_EQ(cal.scanned_slots(), 0u);
}

TEST(CalEraseEdgeCases, DrainedTailBlocksReturnToFreeList) {
    CoarseAdjacencyList cal(/*group_size=*/8, /*block_edges=*/4);
    std::vector<std::uint32_t> pos;
    for (VertexId i = 0; i < 9; ++i) {  // 3 blocks of 4
        pos.push_back(cal.insert(0, 7, i, i + 1, CellRef{0, 0}));
    }
    const std::size_t peak_blocks = cal.blocks_in_use();
    ASSERT_EQ(peak_blocks, 3u);
    const std::size_t peak_bytes = cal.memory_bytes();

    // Compact-erase from the tail end: every fourth erase drains a block.
    for (std::size_t i = pos.size(); i-- > 4;) {
        EXPECT_FALSE(cal.erase(pos[i], /*compact=*/true).has_value());
    }
    EXPECT_EQ(cal.blocks_in_use(), 1u);
    EXPECT_LT(cal.memory_bytes(), peak_bytes);
    EXPECT_EQ(cal.memory_capacity_bytes() >= peak_bytes, true);

    // Refill: the free-listed blocks are recycled, capacity does not grow.
    const std::size_t capacity = cal.memory_capacity_bytes();
    for (VertexId i = 0; i < 5; ++i) {
        cal.insert(0, 7, 50 + i, i + 1, CellRef{0, 0});
    }
    EXPECT_EQ(cal.blocks_in_use(), peak_blocks);
    EXPECT_EQ(cal.memory_capacity_bytes(), capacity);
}

TEST(CalEraseEdgeCases, GraphLevelTailDeleteKeepsOwnersCoherent) {
    // Through the full stack: in compact mode, deleting the most recently
    // inserted edge of a source hits the CAL tail self-move path; the audit
    // verifies every surviving owner <-> slot pointer pair afterwards.
    Config cfg;
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    GraphTinker g(cfg);
    const test::ScopedAudit audit(g, "tail_delete");
    for (VertexId dst = 0; dst < 20; ++dst) {
        (void)g.insert_edge(4, dst, dst + 1);
    }
    // Delete newest-first: every delete is the group-tail self-move case.
    for (VertexId dst = 20; dst-- > 10;) {
        ASSERT_TRUE(g.delete_edge(4, dst));
        audit.check();
    }
    // And oldest-first: every delete relocates the tail and re-binds.
    for (VertexId dst = 0; dst < 10; ++dst) {
        ASSERT_TRUE(g.delete_edge(4, dst));
        audit.check();
    }
    EXPECT_EQ(g.num_edges(), 0u);
}

TEST(SghStress, MillionsOfLookupsStayConsistent) {
    ScatterGatherHash sgh;
    Rng rng(9);
    std::unordered_map<VertexId, VertexId> model;
    for (int i = 0; i < 200000; ++i) {
        const auto raw = static_cast<VertexId>(rng.next_below(1u << 28));
        const VertexId dense = sgh.get_or_assign(raw);
        auto [it, fresh] = model.emplace(raw, dense);
        if (!fresh) {
            ASSERT_EQ(it->second, dense) << "remap of raw " << raw;
        } else {
            ASSERT_EQ(dense, model.size() - 1) << "dense ids must be serial";
        }
        ASSERT_EQ(sgh.raw_of(dense), raw);
    }
    EXPECT_EQ(sgh.size(), model.size());
    EXPECT_GT(sgh.memory_bytes(), 0u);
}

TEST(GraphTinkerCombo, LargePagewidthSmallGraph) {
    Config cfg;
    cfg.pagewidth = 4096;
    cfg.subblock = 64;
    cfg.workblock = 16;
    GraphTinker g(cfg);
    (void)g.insert_edge(1, 2, 3);
    EXPECT_EQ(g.find_edge(1, 2), std::optional<Weight>(3));
    EXPECT_EQ(g.validate(), "");
    // Iteration over a nearly-empty giant block stays correct (occupancy
    // masks skip the slack).
    int count = 0;
    g.visit_out_edges(1, [&](VertexId, Weight) { ++count; });
    EXPECT_EQ(count, 1);
}

TEST(GraphTinkerCombo, EngineOverBidirectionalStore) {
    // The bidirectional wrapper satisfies the store concept, so the hybrid
    // engine runs over it directly (forward direction).
    BidirectionalGraphTinker g;
    const auto edges = engine::symmetrize(rmat_edges(150, 1500, 31));
    g.insert_batch(edges);
    engine::DynamicAnalysis<BidirectionalGraphTinker, engine::Bfs> bfs(g);
    bfs.set_root(0);
    bfs.run_from_scratch();
    const engine::CsrSnapshot csr(edges, g.num_vertices());
    const auto want = engine::reference_bfs(csr, 0);
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        ASSERT_EQ(bfs.property(v), want[v]) << v;
    }
}

TEST(GraphTinkerCombo, MixedFeatureChurnStaysValid) {
    // Every feature combination under one churny workload, validated deeply.
    for (const bool sgh : {true, false}) {
        for (const bool cal : {true, false}) {
            for (const auto mode : {DeletionMode::DeleteOnly,
                                    DeletionMode::DeleteAndCompact}) {
                Config cfg;
                cfg.enable_sgh = sgh;
                cfg.enable_cal = cal;
                cfg.deletion_mode = mode;
                GraphTinker g(cfg);
                const auto inserts = rmat_edges(120, 2500, 7);
                (void)g.insert_batch(inserts);
                for (std::size_t i = 0; i < inserts.size(); i += 2) {
                    (void)g.delete_edge(inserts[i].src, inserts[i].dst);
                }
                (void)g.insert_batch(rmat_edges(120, 500, 8));
                ASSERT_EQ(g.validate(), "")
                    << "sgh=" << sgh << " cal=" << cal
                    << " compact=" << (mode == DeletionMode::DeleteAndCompact);
            }
        }
    }
}

TEST(StingerExtra, InDegreeTracksBothDirections) {
    gt::stinger::Stinger s;
    (void)s.insert_edge(1, 5);
    (void)s.insert_edge(2, 5);
    (void)s.insert_edge(5, 1);
    EXPECT_EQ(s.in_degree(5), 2u);
    EXPECT_EQ(s.in_degree(1), 1u);
    EXPECT_EQ(s.in_degree(2), 0u);
    (void)s.delete_edge(1, 5);
    EXPECT_EQ(s.in_degree(5), 1u);
    // Duplicate insert must not double-count.
    (void)s.insert_edge(2, 5, 9);
    EXPECT_EQ(s.in_degree(5), 1u);
    EXPECT_GT(s.memory_bytes(), 0u);
}

}  // namespace
}  // namespace gt::core
