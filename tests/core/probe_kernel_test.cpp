// Differential tests for the bit-parallel subblock probe kernels: the SIMD
// and scalar template instantiations must agree with each other and with a
// straight-line reference walk over adversarial subblocks — full windows,
// tombstone-ridden windows, maximum-displacement layouts and wrap-around
// homes — plus a randomized property sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/probe_kernel.hpp"
#include "util/simd.hpp"

namespace gt::core {
namespace {

/// A subblock under test: cell array + the occupancy/tombstone bit windows
/// the EdgeblockArray would maintain for it.
struct TestWindow {
    std::vector<EdgeCell> cells;
    std::uint64_t occ = 0;
    std::uint64_t tomb = 0;

    explicit TestWindow(std::uint32_t width) : cells(width) {}

    [[nodiscard]] std::uint32_t width() const {
        return static_cast<std::uint32_t>(cells.size());
    }

    void occupy(std::uint32_t slot, VertexId dst, std::uint16_t probe) {
        cells[slot].dst = dst;
        cells[slot].probe = probe;
        cells[slot].state = CellState::Occupied;
        occ |= 1ULL << slot;
        tomb &= ~(1ULL << slot);
    }

    void bury(std::uint32_t slot) {
        cells[slot].state = CellState::Tombstone;
        occ &= ~(1ULL << slot);
        tomb |= 1ULL << slot;
    }

    [[nodiscard]] SubblockWindow view() const {
        return SubblockWindow{cells.data(), width(), occ, tomb};
    }
};

/// Straight-line reference for find_step: the scalar cell-by-cell walk the
/// kernel replaces, written as naively as possible.
FindStep reference_find(const TestWindow& w, std::uint32_t home,
                        VertexId dst) {
    const std::uint32_t width = w.width();
    for (std::uint32_t d = 0; d < width; ++d) {
        const std::uint32_t slot = (home + d) & (width - 1);
        const EdgeCell& c = w.cells[slot];
        if (c.state == CellState::Empty) {
            return FindStep{FindStep::Kind::Absent, 0, d + 1};
        }
        if (c.state == CellState::Occupied && c.dst == dst) {
            return FindStep{FindStep::Kind::Found, slot, d + 1};
        }
    }
    return FindStep{FindStep::Kind::Descend, 0, width};
}

/// Straight-line reference for probe_step (fused FIND/INSERT walk).
ProbeStep reference_probe(const TestWindow& w, std::uint32_t home,
                          VertexId dst) {
    const std::uint32_t width = w.width();
    bool candidate = false;
    for (std::uint32_t d = 0; d < width; ++d) {
        const std::uint32_t slot = (home + d) & (width - 1);
        const EdgeCell& c = w.cells[slot];
        if (c.state == CellState::Empty) {
            return ProbeStep{ProbeStep::Kind::Empty, slot, d, candidate,
                             d + 1};
        }
        if (c.state == CellState::Tombstone) {
            candidate = true;
            continue;
        }
        if (c.dst == dst) {
            return ProbeStep{ProbeStep::Kind::Duplicate, slot, d, false,
                             d + 1};
        }
        if (c.probe < d) {
            candidate = true;
        }
    }
    return ProbeStep{ProbeStep::Kind::Descend, 0, 0, candidate, width};
}

void expect_find_agreement(const TestWindow& w, std::uint32_t home,
                           VertexId dst) {
    const SubblockWindow v = w.view();
    const FindStep ref = reference_find(w, home, dst);
    const FindStep scalar = find_step<false>(v, home, dst);
    const FindStep simd = find_step<true>(v, home, dst);
    for (const FindStep* step : {&scalar, &simd}) {
        EXPECT_EQ(step->kind, ref.kind) << "home=" << home << " dst=" << dst;
        EXPECT_EQ(step->scanned, ref.scanned)
            << "home=" << home << " dst=" << dst;
        if (ref.kind == FindStep::Kind::Found) {
            EXPECT_EQ(step->slot, ref.slot)
                << "home=" << home << " dst=" << dst;
        }
    }
}

void expect_probe_agreement(const TestWindow& w, std::uint32_t home,
                            VertexId dst) {
    const SubblockWindow v = w.view();
    const ProbeStep ref = reference_probe(w, home, dst);
    const ProbeStep scalar = probe_step<false>(v, home, dst);
    const ProbeStep simd = probe_step<true>(v, home, dst);
    for (const ProbeStep* step : {&scalar, &simd}) {
        EXPECT_EQ(step->kind, ref.kind) << "home=" << home << " dst=" << dst;
        EXPECT_EQ(step->candidate, ref.candidate)
            << "home=" << home << " dst=" << dst;
        EXPECT_EQ(step->scanned, ref.scanned)
            << "home=" << home << " dst=" << dst;
        if (ref.kind != ProbeStep::Kind::Descend) {
            EXPECT_EQ(step->slot, ref.slot)
                << "home=" << home << " dst=" << dst;
            EXPECT_EQ(step->dist, ref.dist)
                << "home=" << home << " dst=" << dst;
        }
    }
}

void sweep_all_homes_and_keys(const TestWindow& w) {
    for (std::uint32_t home = 0; home < w.width(); ++home) {
        // Probe every resident key, one absent key, and the zero key (cells
        // default to dst == 0, so this catches matches against junk in
        // non-occupied slots).
        for (std::uint32_t slot = 0; slot < w.width(); ++slot) {
            expect_find_agreement(w, home, w.cells[slot].dst);
            expect_probe_agreement(w, home, w.cells[slot].dst);
        }
        expect_find_agreement(w, home, 0xdeadbeefU);
        expect_probe_agreement(w, home, 0xdeadbeefU);
        expect_find_agreement(w, home, 0);
        expect_probe_agreement(w, home, 0);
    }
}

TEST(ProbeKernel, MatchBitsStride16AgreesWithScalar) {
    // The raw matcher contract: bit i set iff the u32 at byte offset i*16
    // equals the needle. Window full of distinct keys plus repeats.
    TestWindow w(64);
    for (std::uint32_t i = 0; i < 64; ++i) {
        w.occupy(i, i % 7 == 0 ? 777U : 1000U + i, 0);
    }
    for (const VertexId needle : {777U, 1000U, 1063U, 5U}) {
        EXPECT_EQ(simd::match_u32_stride16_simd(w.cells.data(), 64, needle),
                  simd::match_u32_stride16_scalar(w.cells.data(), 64, needle))
            << "needle=" << needle;
    }
    // Non-multiple-of-4 counts exercise the SIMD tail path.
    for (const std::uint32_t count : {1U, 2U, 3U, 5U, 7U, 15U, 33U, 63U}) {
        EXPECT_EQ(simd::match_u32_stride16_simd(w.cells.data(), count, 777U),
                  simd::match_u32_stride16_scalar(w.cells.data(), count, 777U))
            << "count=" << count;
    }
}

TEST(ProbeKernel, EmptyWindow) {
    for (const std::uint32_t width : {4U, 16U, 64U}) {
        TestWindow w(width);
        sweep_all_homes_and_keys(w);
    }
}

TEST(ProbeKernel, FullWindowDescends) {
    // Every slot occupied at its home position: FIND of an absent key must
    // descend (no EMPTY anywhere). The walk still flags a swap candidate —
    // a prober at distance d > 0 is poorer than these probe-0 residents, so
    // Robin Hood would displace one.
    TestWindow w(16);
    for (std::uint32_t i = 0; i < 16; ++i) {
        w.occupy(i, 100 + i, 0);
    }
    const ProbeStep step = probe_step<false>(w.view(), 3, 0xdeadbeefU);
    EXPECT_EQ(step.kind, ProbeStep::Kind::Descend);
    EXPECT_TRUE(step.candidate);
    sweep_all_homes_and_keys(w);
}

TEST(ProbeKernel, TombstoneRiddenWindow) {
    // Alternating tombstones and residents, one EMPTY hole: deletions in
    // delete-only mode produce exactly this shape. Tombstones before the
    // EMPTY must flag the reuse candidate but never terminate the walk.
    TestWindow w(16);
    for (std::uint32_t i = 0; i < 16; ++i) {
        if (i % 2 == 0) {
            w.occupy(i, 200 + i, static_cast<std::uint16_t>(i % 3));
            if (i % 4 == 0) {
                w.bury(i);
            }
        }
    }
    // Odd slots from 5 on stay Empty; densify the low end so probes cross
    // resident/tombstone runs before reaching a hole.
    w.occupy(1, 301, 1);
    w.occupy(3, 303, 0);
    sweep_all_homes_and_keys(w);
}

TEST(ProbeKernel, AllTombstonesDescends) {
    TestWindow w(8);
    for (std::uint32_t i = 0; i < 8; ++i) {
        w.occupy(i, 400 + i, 0);
        w.bury(i);
    }
    const FindStep find = find_step<false>(w.view(), 0, 400);
    EXPECT_EQ(find.kind, FindStep::Kind::Descend);
    const ProbeStep probe = probe_step<false>(w.view(), 0, 0xdeadbeefU);
    EXPECT_EQ(probe.kind, ProbeStep::Kind::Descend);
    EXPECT_TRUE(probe.candidate);
    sweep_all_homes_and_keys(w);
}

TEST(ProbeKernel, MaxDisplacementLayout) {
    // Everybody hashed to slot 0 and cascaded: probe distances equal slots.
    // Wrap-around homes then see rich residents (probe < d) immediately.
    TestWindow w(16);
    for (std::uint32_t i = 0; i < 12; ++i) {
        w.occupy(i, 500 + i, static_cast<std::uint16_t>(i));
    }
    sweep_all_homes_and_keys(w);
}

TEST(ProbeKernel, WrapAroundRun) {
    // Occupied run crossing the window boundary (slots 13..15, 0..2).
    TestWindow w(16);
    for (const std::uint32_t slot : {13U, 14U, 15U, 0U, 1U, 2U}) {
        w.occupy(slot, 600 + slot, static_cast<std::uint16_t>(slot % 4));
    }
    sweep_all_homes_and_keys(w);
}

TEST(ProbeKernel, DuplicateBeyondEmptyIsInvisible) {
    // A key sitting *after* the first EMPTY on the probe path must not be
    // reported: the scalar walk never reaches it.
    TestWindow w(8);
    w.occupy(0, 700, 0);
    // slot 1 Empty; key at slot 2.
    w.occupy(2, 701, 0);
    const FindStep find = find_step<false>(w.view(), 0, 701);
    EXPECT_EQ(find.kind, FindStep::Kind::Absent);
    const ProbeStep probe = probe_step<false>(w.view(), 0, 701);
    EXPECT_EQ(probe.kind, ProbeStep::Kind::Empty);
    EXPECT_EQ(probe.dist, 1U);
    sweep_all_homes_and_keys(w);
}

TEST(ProbeKernel, CompactModeFullScan) {
    // find_step_full ignores probe order entirely — compact mode refills
    // holes out of order, so only presence anywhere in the window counts.
    TestWindow w(16);
    w.occupy(11, 800, 0);
    w.occupy(3, 801, 0);
    for (const VertexId dst : {800U, 801U, 0xdeadbeefU}) {
        const FindStep scalar = find_step_full<false>(w.view(), dst);
        const FindStep simd = find_step_full<true>(w.view(), dst);
        EXPECT_EQ(scalar.kind, simd.kind);
        EXPECT_EQ(scalar.slot, simd.slot);
        EXPECT_EQ(scalar.scanned, w.width());
    }
    EXPECT_EQ(find_step_full<false>(w.view(), 800U).kind,
              FindStep::Kind::Found);
    EXPECT_EQ(find_step_full<false>(w.view(), 800U).slot, 11U);
    EXPECT_EQ(find_step_full<false>(w.view(), 0xdeadbeefU).kind,
              FindStep::Kind::Descend);
}

TEST(ProbeKernel, RandomizedPropertySweep) {
    std::mt19937 rng(20260806);
    for (int round = 0; round < 200; ++round) {
        const std::uint32_t width = 1U << (2 + rng() % 5);  // 4..64
        TestWindow w(width);
        for (std::uint32_t slot = 0; slot < width; ++slot) {
            const std::uint32_t roll = rng() % 10;
            if (roll < 5) {
                w.occupy(slot, 1 + rng() % 32,
                         static_cast<std::uint16_t>(rng() % width));
            } else if (roll < 7) {
                w.occupy(slot, 1 + rng() % 32, 0);
                w.bury(slot);
            }
        }
        const std::uint32_t home = rng() % width;
        const VertexId dst = 1 + rng() % 32;  // often collides with residents
        expect_find_agreement(w, home, dst);
        expect_probe_agreement(w, home, dst);
    }
}

}  // namespace
}  // namespace gt::core
