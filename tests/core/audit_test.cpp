// The auditor audited: a clean graph must produce an empty report with real
// coverage, and every deliberately seeded corruption class must surface as
// exactly the violation kind it belongs to. Each corruption test drives the
// graph through the public API, reaches into the internals via the test-only
// CorruptionInjector, and asserts the typed report.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include "core/graphtinker.hpp"
#include "util/rng.hpp"

namespace gt::core {
namespace {

Config small_config() {
    Config cfg;
    cfg.pagewidth = 16;
    cfg.subblock = 8;
    cfg.workblock = 4;
    return cfg;
}

/// Loads a deterministic pseudo-random multigraph dense enough to force
/// Robin Hood displacements and TBH branch-outs on a 16-cell pagewidth.
void load_dense(GraphTinker& g, std::uint32_t vertices = 32,
                std::uint32_t edges = 600) {
    Rng rng(7);
    for (std::uint32_t i = 0; i < edges; ++i) {
        const auto src = static_cast<VertexId>(rng.next() % vertices);
        const auto dst = static_cast<VertexId>(rng.next() % (vertices * 4));
        (void)g.insert_edge(src, dst, 1 + static_cast<Weight>(i % 250));
    }
}

/// First live edge of `src`, so corruption targets always exist.
Edge first_edge_of(const GraphTinker& g, VertexId src) {
    Edge out{src, kInvalidVertex, 0};
    g.visit_out_edges(src, [&](VertexId dst, Weight w) {
        out.dst = dst;
        out.weight = w;
        return false;
    });
    return out;
}

TEST(Audit, CleanGraphReportsNoViolationsWithFullCoverage) {
    GraphTinker g(small_config());
    load_dense(g);
    const AuditReport report = g.audit();
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(report.cells_audited, g.num_edges());
    EXPECT_EQ(report.cal_slots_audited, g.num_edges());
    EXPECT_GT(report.blocks_audited, 1u) << "expected TBH branch-outs";
    EXPECT_EQ(report.vertices_audited, g.num_nonempty_vertices());
    EXPECT_FALSE(report.truncated);
}

TEST(Audit, CleanAfterDeletionsBothModes) {
    for (const DeletionMode mode :
         {DeletionMode::DeleteOnly, DeletionMode::DeleteAndCompact}) {
        Config cfg = small_config();
        cfg.deletion_mode = mode;
        GraphTinker g(cfg);
        load_dense(g);
        Rng rng(13);
        for (std::uint32_t i = 0; i < 400; ++i) {
            (void)g.delete_edge(static_cast<VertexId>(rng.next() % 32),
                          static_cast<VertexId>(rng.next() % 128));
        }
        const AuditReport report = g.audit();
        EXPECT_TRUE(report.ok())
            << "mode " << static_cast<int>(mode) << ": "
            << report.to_string();
    }
}

TEST(Audit, DetectsBrokenCalPointer) {
    GraphTinker g(small_config());
    load_dense(g);
    const Edge target = first_edge_of(g, 3);
    ASSERT_NE(target.dst, kInvalidVertex);
    ASSERT_TRUE(CorruptionInjector::break_cal_pointer(g, 3, target.dst));
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::CalForward)) << report.to_string();
    // The stranded CAL copy still points at the cell, whose pointer no
    // longer points back: the reverse round-trip must trip too.
    EXPECT_TRUE(report.has(AuditCheck::CalReverse)) << report.to_string();
}

TEST(Audit, DetectsCorruptedRhhProbe) {
    GraphTinker g(small_config());
    load_dense(g);
    const Edge target = first_edge_of(g, 5);
    ASSERT_NE(target.dst, kInvalidVertex);
    ASSERT_TRUE(CorruptionInjector::corrupt_probe(g, 5, target.dst));
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::RhhPlacement)) << report.to_string();
}

TEST(Audit, DetectsOrphanedTbhChild) {
    GraphTinker g(small_config());
    load_dense(g);
    // Find a vertex whose tree actually branched out.
    bool orphaned = false;
    for (VertexId src = 0; src < 32 && !orphaned; ++src) {
        orphaned = CorruptionInjector::orphan_child(g, src);
    }
    ASSERT_TRUE(orphaned) << "no vertex grew an overflow child";
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::TbhOrphan)) << report.to_string();
}

TEST(Audit, DetectsTbhCycle) {
    GraphTinker g(small_config());
    load_dense(g);
    bool cycled = false;
    for (VertexId src = 0; src < 32 && !cycled; ++src) {
        cycled = CorruptionInjector::link_cycle(g, src);
    }
    ASSERT_TRUE(cycled) << "no top block had a spare child slot";
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::TbhStructure)) << report.to_string();
}

TEST(Audit, DetectsDegreeDrift) {
    GraphTinker g(small_config());
    load_dense(g);
    ASSERT_TRUE(CorruptionInjector::corrupt_degree(g, 1));
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::DegreeAccounting))
        << report.to_string();
}

TEST(Audit, DetectsSghBijectionBreak) {
    GraphTinker g(small_config());
    load_dense(g);
    ASSERT_TRUE(CorruptionInjector::corrupt_sgh(g));
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::SghBijection)) << report.to_string();
}

TEST(Audit, DetectsOccupancyDrift) {
    GraphTinker g(small_config());
    load_dense(g);
    const Edge target = first_edge_of(g, 2);
    ASSERT_NE(target.dst, kInvalidVertex);
    ASSERT_TRUE(CorruptionInjector::vanish_cell(g, 2, target.dst));
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.has(AuditCheck::Occupancy)) << report.to_string();
    EXPECT_TRUE(report.has(AuditCheck::EdgeAccounting))
        << report.to_string();
}

TEST(Audit, ReportTruncatesInsteadOfExploding) {
    GraphTinker g(small_config());
    load_dense(g, 32, 2000);
    // Swapping the SGH tables misattributes every edge of two vertices;
    // with a dense graph that alone will not exceed the cap, so also break
    // many CAL pointers.
    for (VertexId src = 0; src < 32; ++src) {
        Edge e = first_edge_of(g, src);
        if (e.dst != kInvalidVertex) {
            CorruptionInjector::break_cal_pointer(g, src, e.dst);
        }
    }
    ASSERT_TRUE(CorruptionInjector::corrupt_sgh(g));
    const AuditReport report = g.audit();
    ASSERT_FALSE(report.ok());
    EXPECT_LE(report.violations.size(), AuditReport::kMaxViolations);
}

TEST(Audit, ValidateRendersFirstViolation) {
    GraphTinker g(small_config());
    load_dense(g);
    EXPECT_EQ(g.validate(), "");
    ASSERT_TRUE(CorruptionInjector::corrupt_degree(g, 1));
    const std::string rendered = g.validate();
    EXPECT_NE(rendered.find("degree-accounting"), std::string::npos)
        << rendered;
}

TEST(Audit, CleanWithFeaturesDisabled) {
    Config cfg = small_config();
    cfg.enable_sgh = false;
    cfg.enable_cal = false;
    GraphTinker g(cfg);
    load_dense(g);
    const AuditReport report = g.audit();
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(report.cal_slots_audited, 0u);
}

}  // namespace
}  // namespace gt::core
