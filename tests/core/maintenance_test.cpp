// Maintenance & space-reclamation layer (core/maintenance.hpp): tombstone
// purges, TBH un-branching and CAL chain compaction must reclaim space and
// probe distance without disturbing a single observable edge, across every
// feature configuration and under the full structural audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/scoped_audit.hpp"
#include "core/audit.hpp"
#include "core/graphtinker.hpp"
#include "gen/rmat.hpp"

namespace gt::core {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Weight>;

EdgeMap edge_map(const GraphTinker& g) {
    EdgeMap out;
    g.visit_edges([&](VertexId u, VertexId v, Weight w) {
        out[{u, v}] = w;
    });
    return out;
}

/// Deletes every other streamed edge via delete_batch and returns how many
/// live edges remain.
EdgeCount delete_half(GraphTinker& g, const std::vector<Edge>& edges) {
    std::vector<Edge> deletes;
    for (std::size_t i = 0; i < edges.size(); i += 2) {
        deletes.push_back(edges[i]);
    }
    (void)g.delete_batch(deletes);
    return g.num_edges();
}

/// Mean edge-cells probed per find_edge over every surviving edge.
double mean_find_probe(const GraphTinker& g, const EdgeMap& live) {
    const std::uint64_t before = g.stats().cells_probed;
    for (const auto& [key, weight] : live) {
        EXPECT_EQ(g.find_edge(key.first, key.second), weight);
    }
    const std::uint64_t after = g.stats().cells_probed;
    return live.empty() ? 0.0
                        : static_cast<double>(after - before) /
                              static_cast<double>(live.size());
}

struct NamedConfig {
    std::string name;
    Config config;
};

std::vector<NamedConfig> all_configs() {
    std::vector<NamedConfig> out;
    out.push_back({"default", Config{}});
    Config no_cal;
    no_cal.enable_cal = false;
    out.push_back({"no_cal", no_cal});
    Config compact;
    compact.deletion_mode = DeletionMode::DeleteAndCompact;
    out.push_back({"compact_delete", compact});
    Config no_rhh;
    no_rhh.enable_rhh = false;
    out.push_back({"no_rhh", no_rhh});
    return out;
}

TEST(Maintenance, PurgeRestoresProbeDistanceAndFreesBlocks) {
    // Delete-only mode: a heavy delete wave leaves tombstones that keep
    // probe chains at peak-graph length. The purge must erase them, shorten
    // lookups and hand surplus blocks back to the arena.
    GraphTinker g;  // default = DeleteOnly + RHH
    const test::ScopedAudit audit(g, "purge");
    const auto edges = rmat_edges(800, 40000, 5);
    (void)g.insert_batch(edges);
    delete_half(g, edges);
    audit.check();

    const EdgeMap before_map = edge_map(g);
    const double probe_before = mean_find_probe(g, before_map);
    const std::size_t bytes_before = g.memory_footprint().edgeblock_bytes;

    const MaintenanceReport report = g.maintain();
    EXPECT_TRUE(report.complete);
    EXPECT_GT(report.trees_purged, 0u);
    EXPECT_GT(report.tombstones_purged, 0u);
    EXPECT_EQ(g.stats().trees_rebuilt, report.trees_purged);
    EXPECT_EQ(g.stats().tombstones_purged, report.tombstones_purged);

    // Not one observable edge moved.
    EXPECT_EQ(edge_map(g), before_map);

    // Probe distance and in-use footprint both shrink.
    const double probe_after = mean_find_probe(g, before_map);
    EXPECT_LE(probe_after, probe_before);
    EXPECT_LT(g.memory_footprint().edgeblock_bytes, bytes_before);
    EXPECT_GT(report.eba_blocks_reclaimed, 0u);
}

TEST(Maintenance, MaintainPreservesEquivalenceAcrossConfigs) {
    std::mt19937 rng(7);
    for (const NamedConfig& nc : all_configs()) {
        GraphTinker g(nc.config);
        const test::ScopedAudit audit(g, nc.name);
        const auto edges = rmat_edges(600, 20000, 31);
        (void)g.insert_batch(edges);

        // Random 60% delete wave, batch + per-edge mixed.
        std::vector<Edge> shuffled = edges;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        const std::size_t cut = shuffled.size() * 3 / 5;
        (void)g.delete_batch(std::span<const Edge>(shuffled).subspan(0, cut / 2));
        for (std::size_t i = cut / 2; i < cut; ++i) {
            (void)g.delete_edge(shuffled[i].src, shuffled[i].dst);
        }
        audit.check();

        const EdgeMap before_map = edge_map(g);
        const EdgeCount before_edges = g.num_edges();
        const MaintenanceReport report = g.maintain();
        EXPECT_TRUE(report.complete) << nc.name;
        audit.check();
        EXPECT_EQ(g.num_edges(), before_edges) << nc.name;
        EXPECT_EQ(edge_map(g), before_map) << nc.name;
        for (const auto& [key, weight] : before_map) {
            ASSERT_EQ(g.find_edge(key.first, key.second), weight)
                << nc.name << " (" << key.first << "," << key.second << ")";
        }

        // A second sweep right away finds nothing left to do.
        const MaintenanceReport again = g.maintain();
        EXPECT_TRUE(again.complete) << nc.name;
        EXPECT_TRUE(again.idle()) << nc.name;
    }
}

TEST(Maintenance, UnbranchShrinksTreeDepth) {
    // no-RHH delete-only mode: deletes tombstone window slots while the
    // children stay populated, so after a heavy wave the sparse child
    // subtrees fit back into their parents' windows. (In compact-delete
    // mode refill_hole already pulls children up on every erase, keeping
    // branched windows full — un-branching targets exactly this config.)
    // Purge is disabled so the merge path, not the rebuild path, does the
    // reclamation.
    Config cfg;
    cfg.enable_rhh = false;
    cfg.purge_tombstone_threshold = 1.0;
    GraphTinker g(cfg);
    const test::ScopedAudit audit(g, "unbranch");
    constexpr VertexId kHub = 3;
    constexpr VertexId kFan = 2000;
    for (VertexId dst = 0; dst < kFan; ++dst) {
        (void)g.insert_edge(kHub, dst, dst + 1);
    }
    const std::uint32_t depth_peak = g.tree_depth(kHub);
    ASSERT_GT(depth_peak, 1u);

    for (VertexId dst = 0; dst < kFan; ++dst) {
        if (dst % 16 != 0) {
            (void)g.delete_edge(kHub, dst);
        }
    }
    audit.check();

    const EdgeMap before_map = edge_map(g);
    const std::size_t blocks_before = g.edgeblock_array().blocks_in_use();
    const MaintenanceReport report = g.maintain();
    EXPECT_GT(report.trees_unbranched, 0u);
    EXPECT_GT(report.eba_blocks_reclaimed, 0u);
    EXPECT_LT(g.tree_depth(kHub), depth_peak);
    EXPECT_LT(g.edgeblock_array().blocks_in_use(), blocks_before);
    EXPECT_EQ(edge_map(g), before_map);
    EXPECT_EQ(g.stats().unbranch_moves, report.cells_moved);
}

TEST(Maintenance, CalCompactionReclaimsHolesAndBlocks) {
    // Delete-only holes keep being scanned until compact_chains rewrites the
    // chains dense; afterwards the scanned and live slot counts coincide and
    // emptied blocks sit on the CAL free list.
    GraphTinker g;
    const test::ScopedAudit audit(g, "cal_compact");
    const auto edges = rmat_edges(500, 30000, 13);
    (void)g.insert_batch(edges);
    delete_half(g, edges);
    ASSERT_GT(g.cal().scanned_slots(), g.cal().live_edges());

    const EdgeMap before_map = edge_map(g);
    const std::size_t cal_blocks_before = g.cal().blocks_in_use();
    const MaintenanceReport report = g.maintain();
    EXPECT_GT(report.cal_holes_reclaimed, 0u);
    EXPECT_EQ(g.cal().scanned_slots(), g.cal().live_edges());
    EXPECT_LT(g.cal().blocks_in_use(), cal_blocks_before);
    // visit_edges streams from the CAL: the rebind kept every owner
    // pointer coherent, so the edge set is bit-identical.
    EXPECT_EQ(edge_map(g), before_map);
}

TEST(Maintenance, BudgetedSlicesConvergeToFullSweep) {
    // maintain_some must make monotone progress: repeated small slices end
    // in the same state as one full sweep on a twin store.
    Config cfg;  // explicit maintain_some calls only; no auto budget
    GraphTinker sliced(cfg);
    GraphTinker full(cfg);
    const test::ScopedAudit audit(sliced, "budgeted");
    const auto edges = rmat_edges(400, 15000, 17);
    (void)sliced.insert_batch(edges);
    (void)full.insert_batch(edges);
    delete_half(sliced, edges);
    delete_half(full, edges);

    full.maintain();
    // 400 slices x 512 cells is far more than the total census + relocation
    // work, so the round-robin cursor wraps the vertex set several times and
    // every purge/compaction lands; idle slices still advance the cursor.
    for (int slice = 0; slice < 400; ++slice) {
        const MaintenanceReport r = sliced.maintain_some(512);
        if (slice % 50 == 0) {
            audit.check();
        }
        if (r.complete && r.idle()) {
            break;
        }
    }
    EXPECT_EQ(edge_map(sliced), edge_map(full));
    EXPECT_EQ(sliced.edgeblock_array().blocks_in_use(),
              full.edgeblock_array().blocks_in_use());
    EXPECT_EQ(sliced.cal().scanned_slots(), full.cal().scanned_slots());
}

TEST(Maintenance, AmortizedBudgetInsideBatchesKeepsTwinEquivalence) {
    // With maintenance_budget_cells set, every insert_batch/delete_batch
    // runs a bounded slice on the way out. The store must stay equivalent
    // to a maintenance-free twin at every step.
    Config amortized;
    amortized.maintenance_budget_cells = 2048;
    GraphTinker g(amortized);
    GraphTinker twin;  // no amortized maintenance
    const test::ScopedAudit audit(g, "amortized");
    std::mt19937 rng(23);
    std::vector<Edge> live;
    for (int round = 0; round < 6; ++round) {
        const auto inserts = rmat_edges(300, 5000, 400 + round);
        (void)g.insert_batch(inserts);
        (void)twin.insert_batch(inserts);
        live.insert(live.end(), inserts.begin(), inserts.end());
        std::vector<Edge> deletes;
        for (int i = 0; i < 2000 && !live.empty(); ++i) {
            const std::size_t pick = rng() % live.size();
            deletes.push_back(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
        (void)g.delete_batch(deletes);
        (void)twin.delete_batch(deletes);
        audit.check();
        ASSERT_EQ(g.num_edges(), twin.num_edges()) << "round " << round;
        ASSERT_EQ(edge_map(g), edge_map(twin)) << "round " << round;
    }
    // The amortized store did real reclamation along the way.
    EXPECT_GT(g.stats().trees_rebuilt + g.stats().blocks_freed, 0u);
}

TEST(Maintenance, NoopOnEmptyAndFreshStores) {
    for (const NamedConfig& nc : all_configs()) {
        GraphTinker empty(nc.config);
        const MaintenanceReport r0 = empty.maintain();
        EXPECT_TRUE(r0.complete) << nc.name;
        EXPECT_TRUE(r0.idle()) << nc.name;
        EXPECT_TRUE(empty.maintain_some(64).idle()) << nc.name;
    }

    // A freshly built delete-free store has nothing to purge or compact.
    GraphTinker fresh;
    const test::ScopedAudit audit(fresh, "fresh");
    (void)fresh.insert_batch(rmat_edges(300, 8000, 3));
    const EdgeMap before = edge_map(fresh);
    const MaintenanceReport r = fresh.maintain();
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.idle());
    EXPECT_EQ(edge_map(fresh), before);
}

TEST(Maintenance, FootprintSeparatesInUseFromCapacity) {
    GraphTinker g;
    const test::ScopedAudit audit(g, "footprint");
    const auto edges = rmat_edges(600, 25000, 41);
    (void)g.insert_batch(edges);
    const GraphTinker::MemoryFootprint peak = g.memory_footprint();
    EXPECT_LE(peak.edgeblock_bytes, peak.edgeblock_capacity_bytes);
    EXPECT_LE(peak.cal_bytes, peak.cal_capacity_bytes);

    delete_half(g, edges);
    g.maintain();
    const GraphTinker::MemoryFootprint after = g.memory_footprint();
    // In-use shrinks with reclamation; arena capacity is recycled, never
    // unmapped, so it stays put.
    EXPECT_LT(after.edgeblock_bytes, peak.edgeblock_bytes);
    EXPECT_EQ(after.edgeblock_capacity_bytes, peak.edgeblock_capacity_bytes);
    EXPECT_LE(after.cal_bytes, peak.cal_bytes);
}

TEST(Maintenance, PurgeThresholdOneDisablesPurges) {
    Config cfg;
    cfg.purge_tombstone_threshold = 1.0;
    cfg.cal_compact_threshold = 1.0;
    GraphTinker g(cfg);
    const test::ScopedAudit audit(g, "disabled");
    const auto edges = rmat_edges(300, 10000, 9);
    (void)g.insert_batch(edges);
    delete_half(g, edges);
    const MaintenanceReport report = g.maintain();
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.trees_purged, 0u);
    EXPECT_EQ(report.cal_holes_reclaimed, 0u);
}

}  // namespace
}  // namespace gt::core
