// Round-trip tests for GraphTinker snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "common/scoped_audit.hpp"
#include "core/serialize.hpp"
#include "gen/rmat.hpp"

namespace gt::core {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Weight>;

EdgeMap edge_map(const GraphTinker& g) {
    EdgeMap out;
    g.visit_edges([&](VertexId s, VertexId d, Weight w) {
        out[{s, d}] = w;
    });
    return out;
}

// Status-API wrappers keeping the older round-trip tests terse.
Status save(const GraphTinker& g, std::ostream& out) {
    return write_snapshot(g, out);
}

std::unique_ptr<GraphTinker> load(std::istream& in) {
    LoadedSnapshot loaded;
    if (!read_snapshot(in, loaded).ok()) {
        return nullptr;
    }
    return std::move(loaded.graph);
}

TEST(Serialize, EmptyGraphRoundTrips) {
    GraphTinker g;
    std::stringstream buffer;
    ASSERT_TRUE(save(g, buffer).ok());
    const auto loaded = load(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->num_edges(), 0u);
    EXPECT_EQ(loaded->validate(), "");
}

TEST(Serialize, EdgesWeightsAndDegreesSurvive) {
    GraphTinker g;
    const auto edges = rmat_edges(300, 5000, 77);
    (void)g.insert_batch(edges);
    // A few deletions so tombstoned state is exercised.
    for (std::size_t i = 0; i < edges.size(); i += 7) {
        (void)g.delete_edge(edges[i].src, edges[i].dst);
    }
    std::stringstream buffer;
    ASSERT_TRUE(save(g, buffer).ok());
    const auto loaded = load(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->num_edges(), g.num_edges());
    EXPECT_EQ(edge_map(*loaded), edge_map(g));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(loaded->degree(v), g.degree(v)) << v;
    }
    EXPECT_EQ(loaded->validate(), "");
}

TEST(Serialize, ConfigurationIsPreserved) {
    Config cfg;
    cfg.pagewidth = 128;
    cfg.subblock = 16;
    cfg.workblock = 8;
    cfg.enable_sgh = false;
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    GraphTinker g(cfg);
    (void)g.insert_edge(5, 6, 7);
    std::stringstream buffer;
    ASSERT_TRUE(save(g, buffer).ok());
    const auto loaded = load(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->config().pagewidth, 128u);
    EXPECT_EQ(loaded->config().subblock, 16u);
    EXPECT_FALSE(loaded->config().enable_sgh);
    EXPECT_EQ(loaded->config().deletion_mode,
              DeletionMode::DeleteAndCompact);
    EXPECT_EQ(loaded->find_edge(5, 6), std::optional<Weight>(7));
}

TEST(Serialize, DeleteHeavyStoreRoundTripsInBothModes) {
    // Delete half the graph (mixing batch and per-edge paths), snapshot,
    // reload, and compare against a fresh twin built from only the
    // survivors. Tombstones, CAL holes and compaction debris must all
    // round-trip into a store that is observably identical and audits
    // clean — in delete-only and in compacting mode.
    std::mt19937 rng(55);
    for (const auto mode : {DeletionMode::DeleteOnly,
                            DeletionMode::DeleteAndCompact}) {
        Config cfg;
        cfg.deletion_mode = mode;
        const std::string label =
            mode == DeletionMode::DeleteOnly ? "delete_only" : "compact";
        GraphTinker g(cfg);
        const test::ScopedAudit audit(g, label);
        const auto edges = rmat_edges(400, 12000, 19);
        (void)g.insert_batch(edges);

        std::vector<Edge> shuffled = edges;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        const std::size_t cut = shuffled.size() / 2;
        (void)g.delete_batch(std::span<const Edge>(shuffled).subspan(0, cut / 2));
        for (std::size_t i = cut / 2; i < cut; ++i) {
            (void)g.delete_edge(shuffled[i].src, shuffled[i].dst);
        }
        audit.check();

        std::stringstream buffer;
        ASSERT_TRUE(save(g, buffer).ok()) << label;
        const auto loaded = load(buffer);
        ASSERT_NE(loaded, nullptr) << label;
        const test::ScopedAudit loaded_audit(*loaded, label + " loaded");

        // Fresh twin from the surviving edge set only.
        GraphTinker twin(cfg);
        g.visit_edges([&](VertexId s, VertexId d, Weight w) {
            (void)twin.insert_edge(s, d, w);
        });
        EXPECT_EQ(loaded->num_edges(), twin.num_edges()) << label;
        EXPECT_EQ(edge_map(*loaded), edge_map(g)) << label;
        EXPECT_EQ(edge_map(*loaded), edge_map(twin)) << label;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
            ASSERT_EQ(loaded->degree(v), twin.degree(v))
                << label << " v=" << v;
        }
        twin.visit_edges([&](VertexId s, VertexId d, Weight w) {
            ASSERT_EQ(loaded->find_edge(s, d), std::optional<Weight>(w))
                << label << " (" << s << "," << d << ")";
        });

        // The reloaded store keeps working: maintenance reclaims the
        // round-tripped debris and deletes/inserts still apply.
        const MaintenanceReport report = loaded->maintain();
        EXPECT_TRUE(report.complete) << label;
        EXPECT_EQ(edge_map(*loaded), edge_map(twin)) << label;
        EXPECT_TRUE(loaded->insert_edge(99999, 1, 2)) << label;
        EXPECT_TRUE(loaded->delete_edge(99999, 1)) << label;
    }
}

TEST(Serialize, RejectsGarbageAndTruncation) {
    {
        std::stringstream buffer("definitely not a snapshot");
        EXPECT_EQ(load(buffer), nullptr);
    }
    {
        GraphTinker g;
        (void)g.insert_edge(1, 2, 3);
        (void)g.insert_edge(4, 5, 6);
        std::stringstream buffer;
        ASSERT_TRUE(save(g, buffer).ok());
        const std::string full = buffer.str();
        std::stringstream truncated(full.substr(0, full.size() - 4));
        EXPECT_EQ(load(truncated), nullptr);
    }
    {
        std::stringstream empty;
        EXPECT_EQ(load(empty), nullptr);
    }
}

TEST(Serialize, LoadedStoreRemainsFullyUsable) {
    GraphTinker g;
    (void)g.insert_batch(rmat_edges(100, 1500, 3));
    std::stringstream buffer;
    ASSERT_TRUE(save(g, buffer).ok());
    auto loaded = load(buffer);
    ASSERT_NE(loaded, nullptr);
    const auto before = loaded->num_edges();
    EXPECT_TRUE(loaded->insert_edge(9999, 1, 2));
    EXPECT_TRUE(loaded->delete_edge(9999, 1));
    EXPECT_EQ(loaded->num_edges(), before);
    EXPECT_EQ(loaded->validate(), "");
}

}  // namespace
}  // namespace gt::core
