// Round-trip tests for GraphTinker snapshots.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/serialize.hpp"
#include "gen/rmat.hpp"

namespace gt::core {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Weight>;

EdgeMap edge_map(const GraphTinker& g) {
    EdgeMap out;
    g.for_each_edge([&](VertexId s, VertexId d, Weight w) {
        out[{s, d}] = w;
    });
    return out;
}

TEST(Serialize, EmptyGraphRoundTrips) {
    GraphTinker g;
    std::stringstream buffer;
    ASSERT_TRUE(save_snapshot(g, buffer));
    const auto loaded = load_snapshot(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->num_edges(), 0u);
    EXPECT_EQ(loaded->validate(), "");
}

TEST(Serialize, EdgesWeightsAndDegreesSurvive) {
    GraphTinker g;
    const auto edges = rmat_edges(300, 5000, 77);
    g.insert_batch(edges);
    // A few deletions so tombstoned state is exercised.
    for (std::size_t i = 0; i < edges.size(); i += 7) {
        g.delete_edge(edges[i].src, edges[i].dst);
    }
    std::stringstream buffer;
    ASSERT_TRUE(save_snapshot(g, buffer));
    const auto loaded = load_snapshot(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->num_edges(), g.num_edges());
    EXPECT_EQ(edge_map(*loaded), edge_map(g));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(loaded->degree(v), g.degree(v)) << v;
    }
    EXPECT_EQ(loaded->validate(), "");
}

TEST(Serialize, ConfigurationIsPreserved) {
    Config cfg;
    cfg.pagewidth = 128;
    cfg.subblock = 16;
    cfg.workblock = 8;
    cfg.enable_sgh = false;
    cfg.deletion_mode = DeletionMode::DeleteAndCompact;
    GraphTinker g(cfg);
    g.insert_edge(5, 6, 7);
    std::stringstream buffer;
    ASSERT_TRUE(save_snapshot(g, buffer));
    const auto loaded = load_snapshot(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->config().pagewidth, 128u);
    EXPECT_EQ(loaded->config().subblock, 16u);
    EXPECT_FALSE(loaded->config().enable_sgh);
    EXPECT_EQ(loaded->config().deletion_mode,
              DeletionMode::DeleteAndCompact);
    EXPECT_EQ(loaded->find_edge(5, 6), std::optional<Weight>(7));
}

TEST(Serialize, RejectsGarbageAndTruncation) {
    {
        std::stringstream buffer("definitely not a snapshot");
        EXPECT_EQ(load_snapshot(buffer), nullptr);
    }
    {
        GraphTinker g;
        g.insert_edge(1, 2, 3);
        g.insert_edge(4, 5, 6);
        std::stringstream buffer;
        ASSERT_TRUE(save_snapshot(g, buffer));
        const std::string full = buffer.str();
        std::stringstream truncated(full.substr(0, full.size() - 4));
        EXPECT_EQ(load_snapshot(truncated), nullptr);
    }
    {
        std::stringstream empty;
        EXPECT_EQ(load_snapshot(empty), nullptr);
    }
}

TEST(Serialize, LoadedStoreRemainsFullyUsable) {
    GraphTinker g;
    g.insert_batch(rmat_edges(100, 1500, 3));
    std::stringstream buffer;
    ASSERT_TRUE(save_snapshot(g, buffer));
    auto loaded = load_snapshot(buffer);
    ASSERT_NE(loaded, nullptr);
    const auto before = loaded->num_edges();
    EXPECT_TRUE(loaded->insert_edge(9999, 1, 2));
    EXPECT_TRUE(loaded->delete_edge(9999, 1));
    EXPECT_EQ(loaded->num_edges(), before);
    EXPECT_EQ(loaded->validate(), "");
}

}  // namespace
}  // namespace gt::core
