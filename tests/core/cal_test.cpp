// Tests for the Coarse Adjacency List: chain management, O(1) updates via
// CAL positions, compaction semantics and owner backreferences.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cal.hpp"

namespace gt::core {
namespace {

CellRef ref(std::uint32_t b, std::uint32_t s) { return CellRef{b, s}; }

TEST(Cal, InsertAndStream) {
    CoarseAdjacencyList cal(/*group_size=*/4, /*block_edges=*/2);
    cal.insert(/*dense_src=*/0, /*raw_src=*/100, /*dst=*/1, /*w=*/7, ref(0, 0));
    cal.insert(1, 200, 2, 8, ref(0, 1));
    std::multiset<std::tuple<VertexId, VertexId, Weight>> seen;
    cal.visit_edges([&](VertexId s, VertexId d, Weight w) {
        seen.emplace(s, d, w);
    });
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_TRUE(seen.contains({100, 1, 7}));
    EXPECT_TRUE(seen.contains({200, 2, 8}));
    EXPECT_EQ(cal.live_edges(), 2u);
}

TEST(Cal, VerticesOfSameGroupShareBlocks) {
    CoarseAdjacencyList cal(4, 8);
    // dense 0..3 are group 0: their edges pack into one block.
    for (VertexId v = 0; v < 4; ++v) {
        cal.insert(v, v + 50, 1, 1, ref(v, 0));
    }
    EXPECT_EQ(cal.blocks_in_use(), 1u);
    // dense 4 starts group 1 -> a second block.
    cal.insert(4, 99, 1, 1, ref(4, 0));
    EXPECT_EQ(cal.blocks_in_use(), 2u);
}

TEST(Cal, ChainsGrowBlockByBlock) {
    CoarseAdjacencyList cal(1024, 2);
    for (std::uint32_t i = 0; i < 7; ++i) {
        cal.insert(0, 0, i, 1, ref(0, i));
    }
    EXPECT_EQ(cal.blocks_in_use(), 4u);  // ceil(7/2)
    std::size_t count = 0;
    cal.visit_edges([&](VertexId, VertexId, Weight) { ++count; });
    EXPECT_EQ(count, 7u);
}

TEST(Cal, DeleteOnlyLeavesScannedHoles) {
    CoarseAdjacencyList cal(1024, 4);
    const auto p0 = cal.insert(0, 0, 10, 1, ref(0, 0));
    const auto p1 = cal.insert(0, 0, 11, 1, ref(0, 1));
    cal.insert(0, 0, 12, 1, ref(0, 2));
    EXPECT_FALSE(cal.erase(p1, /*compact=*/false).has_value());
    EXPECT_EQ(cal.live_edges(), 2u);
    EXPECT_EQ(cal.scanned_slots(), 3u);  // hole still scanned
    std::set<VertexId> dsts;
    cal.visit_edges([&](VertexId, VertexId d, Weight) { dsts.insert(d); });
    EXPECT_EQ(dsts, (std::set<VertexId>{10, 12}));
    // Other slots unaffected.
    EXPECT_TRUE(cal.slot_at(p0).valid);
    EXPECT_FALSE(cal.slot_at(p1).valid);
}

TEST(Cal, CompactEraseMovesTailIntoHole) {
    CoarseAdjacencyList cal(1024, 4);
    const auto p0 = cal.insert(0, 0, 10, 1, ref(7, 0));
    cal.insert(0, 0, 11, 1, ref(7, 1));
    const auto p2 = cal.insert(0, 0, 12, 1, ref(7, 2));
    const auto moved = cal.erase(p0, /*compact=*/true);
    ASSERT_TRUE(moved.has_value());
    EXPECT_EQ(moved->new_pos, p0);  // tail edge now lives in the hole
    EXPECT_EQ(moved->owner.block, 7u);
    EXPECT_EQ(moved->owner.slot, 2u);  // it was dst=12's copy
    const auto slot = cal.slot_at(p0);
    EXPECT_TRUE(slot.valid);
    EXPECT_EQ(slot.dst, 12u);
    EXPECT_FALSE(cal.slot_at(p2).valid);  // old tail slot vacated
    EXPECT_EQ(cal.live_edges(), 2u);
    EXPECT_EQ(cal.scanned_slots(), 2u);  // compaction keeps scan tight
}

TEST(Cal, CompactEraseOfTailNeedsNoMove) {
    CoarseAdjacencyList cal(1024, 4);
    cal.insert(0, 0, 10, 1, ref(0, 0));
    const auto p1 = cal.insert(0, 0, 11, 1, ref(0, 1));
    EXPECT_FALSE(cal.erase(p1, true).has_value());
    EXPECT_EQ(cal.live_edges(), 1u);
}

TEST(Cal, CompactEraseFreesEmptiedBlocks) {
    CoarseAdjacencyList cal(1024, 2);
    std::vector<std::uint32_t> pos;
    for (std::uint32_t i = 0; i < 6; ++i) {
        pos.push_back(cal.insert(0, 0, i, 1, ref(0, i)));
    }
    EXPECT_EQ(cal.blocks_in_use(), 3u);
    for (std::uint32_t i = 0; i < 6; ++i) {
        // Always erase position 0: tail edges keep moving forward.
        const auto slot = cal.slot_at(pos[0]);
        if (!slot.valid) {
            break;
        }
        cal.erase(pos[0], true);
    }
    EXPECT_EQ(cal.live_edges(), 0u);
    EXPECT_EQ(cal.blocks_in_use(), 0u);
    // Freed blocks are recycled.
    cal.insert(0, 0, 42, 1, ref(0, 0));
    EXPECT_EQ(cal.blocks_in_use(), 1u);
}

TEST(Cal, CompactionIsGroupLocal) {
    CoarseAdjacencyList cal(/*group_size=*/1, 4);
    const auto g0 = cal.insert(0, 0, 10, 1, ref(0, 0));
    cal.insert(1, 1, 20, 1, ref(1, 0));
    const auto moved = cal.erase(g0, true);
    // Group 1's edge must not migrate into group 0's hole.
    EXPECT_FALSE(moved.has_value());
    std::multiset<VertexId> srcs;
    cal.visit_edges([&](VertexId s, VertexId, Weight) { srcs.insert(s); });
    EXPECT_EQ(srcs, (std::multiset<VertexId>{1}));
}

TEST(Cal, UpdateWeightInPlace) {
    CoarseAdjacencyList cal(1024, 4);
    const auto p = cal.insert(0, 5, 6, 1, ref(0, 0));
    cal.update_weight(p, 77);
    EXPECT_EQ(cal.slot_at(p).weight, 77u);
}

TEST(Cal, RebindUpdatesOwner) {
    CoarseAdjacencyList cal(1024, 4);
    const auto p = cal.insert(0, 5, 6, 1, ref(0, 0));
    cal.rebind(p, ref(9, 3));
    EXPECT_EQ(cal.slot_at(p).owner.block, 9u);
    EXPECT_EQ(cal.slot_at(p).owner.slot, 3u);
}

TEST(Cal, StreamsGroupsInDenseOrder) {
    // Group-major iteration: group 0's edges stream before group 1's
    // regardless of interleaved insertion, because chains are per group.
    CoarseAdjacencyList cal(/*group_size=*/2, 4);
    cal.insert(4, 400, 1, 1, ref(0, 0));  // group 2
    cal.insert(0, 100, 2, 1, ref(0, 1));  // group 0
    cal.insert(5, 500, 3, 1, ref(0, 2));  // group 2
    std::vector<VertexId> order;
    cal.visit_edges([&](VertexId s, VertexId, Weight) {
        order.push_back(s);
    });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 100u);
    EXPECT_EQ(order[1], 400u);
    EXPECT_EQ(order[2], 500u);
}

}  // namespace
}  // namespace gt::core
