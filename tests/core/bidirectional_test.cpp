// Tests for the bidirectional store and the early-terminating traversals.
#include <gtest/gtest.h>

#include <set>

#include "core/bidirectional.hpp"
#include "gen/rmat.hpp"

namespace gt::core {
namespace {

TEST(Bidirectional, MirrorsEveryInsert) {
    BidirectionalGraphTinker g;
    EXPECT_TRUE(g.insert_edge(1, 2, 5));
    EXPECT_FALSE(g.insert_edge(1, 2, 7));  // duplicate updates both copies
    EXPECT_EQ(g.find_edge(1, 2), std::optional<Weight>(7));
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.in_degree(2), 1u);
    EXPECT_EQ(g.in_degree(1), 0u);
    EXPECT_EQ(g.validate(), "");
}

TEST(Bidirectional, InEdgeTraversal) {
    BidirectionalGraphTinker g;
    (void)g.insert_edge(1, 9);
    (void)g.insert_edge(2, 9);
    (void)g.insert_edge(9, 3);
    std::set<VertexId> sources;
    g.visit_in_edges(9, [&](VertexId src, Weight) { sources.insert(src); });
    EXPECT_EQ(sources, (std::set<VertexId>{1, 2}));
    std::set<VertexId> dsts;
    g.visit_out_edges(9, [&](VertexId dst, Weight) { dsts.insert(dst); });
    EXPECT_EQ(dsts, (std::set<VertexId>{3}));
}

TEST(Bidirectional, DeleteRemovesBothDirections) {
    BidirectionalGraphTinker g;
    (void)g.insert_edge(4, 5);
    EXPECT_TRUE(g.delete_edge(4, 5));
    EXPECT_FALSE(g.delete_edge(4, 5));
    EXPECT_EQ(g.in_degree(5), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_EQ(g.validate(), "");
}

TEST(Bidirectional, RandomChurnStaysMirrored) {
    BidirectionalGraphTinker g;
    const auto inserts = rmat_edges(200, 5000, 44);
    g.insert_batch(inserts);
    EXPECT_EQ(g.validate(), "");
    // Delete a third, validate the mirror again.
    for (std::size_t i = 0; i < inserts.size(); i += 3) {
        (void)g.delete_edge(inserts[i].src, inserts[i].dst);
    }
    EXPECT_EQ(g.validate(), "");
    // in-degree sums must equal out-degree sums.
    std::uint64_t out_sum = 0;
    std::uint64_t in_sum = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        out_sum += g.degree(v);
        in_sum += g.in_degree(v);
    }
    EXPECT_EQ(out_sum, in_sum);
    EXPECT_EQ(out_sum, g.num_edges());
}

TEST(Bidirectional, UntilTraversalStopsEarly) {
    BidirectionalGraphTinker g;
    for (VertexId s = 0; s < 100; ++s) {
        (void)g.insert_edge(s, 7);
    }
    int visited = 0;
    const bool completed = g.visit_in_edges(7, [&](VertexId, Weight) {
        ++visited;
        return visited < 5;  // stop after five
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(visited, 5);
    // And a full pass reports completion.
    visited = 0;
    EXPECT_TRUE(g.visit_in_edges(
        7, [&](VertexId, Weight) { ++visited; return true; }));
    EXPECT_EQ(visited, 100);
}

}  // namespace
}  // namespace gt::core
